#!/usr/bin/env python
"""CI perf-regression gate: compare a fresh bench record to the baseline.

``repro bench`` writes machine-readable cold/warm timings per benchmark and
batch size (schema 3, see ``repro.bench``).  This script compares a freshly
measured record against the committed baseline (``BENCH_PR10.json``) and
exits non-zero when any timing regressed beyond the tolerance - turning the
perf-smoke job from an artifact uploader into an actual gate.

Usage::

    python scripts/check_bench.py FRESH.json [--baseline BENCH_PR10.json]
        [--tol 0.25]

The gate is *per phase*, not just per total: ``cold_build_s`` and
``cold_run_s`` are compared independently (both are medians across bench
repeats since schema 3), and every bucket of the ``phases`` breakdown
(build: calibration / trajectory / quantize / norm / im2col; run: norm /
im2col) is gated on its own - so a large build-phase win can never mask a
run-phase regression inside a healthy-looking total.

A fresh timing ``t`` fails against baseline ``b`` when ``t > b * (1 + tol)``
*and* ``t - b > min_delta``.  The default tolerance is 25% (CI-runner noise
on sub-second timings is real); override with ``--tol`` or the
``REPRO_BENCH_TOL`` environment variable (``--tol`` wins).  ``min_delta``
(default 50 ms, ``--min-delta`` / ``REPRO_BENCH_MIN_DELTA``) keeps
micro-timings - the sub-millisecond warm cache load, the small per-phase
buckets - from tripping the relative gate on scheduler jitter.  Speedups
and new benchmarks/batch sizes/phases never fail; disappeared entries are
reported but only warn (the gate guards regressions, not coverage).

When both records carry the host speed probe (``host.speed_index_s``,
recorded by ``repro bench`` since schema 2 of PR 4), timings are
*normalized* by it before comparison - every phase included: a hosted CI
runner that is 2x slower than the machine that recorded the baseline also
measures a ~2x speed index, so the gate compares machine-relative work,
not raw wall clock.  ``--no-normalize`` forces the raw comparison.

Pluggable backends (PR 10) add a second *within-record* check: the blocked
stride-2 ``im2col_t`` path must stay rate-competitive with the stride-1
path.  ``repro bench`` records the stride-split profiler sub-buckets -
``im2col_s1`` / ``im2col_s2`` seconds and the matching ``im2col_s1_elems``
/ ``im2col_s2_elems`` element counters - and this script compares the
*per-element* rates (seconds per gathered element), which is the only
apples-to-apples comparison when the two strides move different volumes.
Stride 2 fails when its rate exceeds the stride-1 rate by more than
``--im2col-parity-tol`` (default 1.0, i.e. within 2x; ``REPRO_IM2COL_TOL``)
while both buckets carry at least ``--im2col-min-seconds`` of signal
(default 5 ms, ``REPRO_IM2COL_MIN_S`` - its own floor, far below the
regression gate's ``min_delta``: stride-2 buckets are milliseconds-sized
because downsample convs are a small share of the model, and a per-element
rate derived from a sub-millisecond bucket is per-call overhead, not
gather throughput).  The element counters themselves are deterministic
counts, not timings, so the regression gate above skips every ``*_elems``
bucket.

Plan-then-execute (PR 9) adds a *within-record* acceptance check on the
fresh measurement: ``plan_replay_run_s`` (the plan-mode serving run) must
sit within ``--plan-floor-tol`` (default 15%, ``REPRO_PLAN_FLOOR_TOL``) of
``plain_run_s`` (the uninstrumented plain-forward floor), subject to the
same ``min_delta`` jitter slack.  Both timings come from the same record on
the same machine, so no normalization applies; records without the plan
fields are skipped.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

# The timings the gate guards, per (benchmark, batch size) record.
GATED_METRICS = (
    "cold_build_s",
    "cold_run_s",
    "cold_total_s",
    "warm_load_s",
    "plan_derive_s",
    "plan_replay_run_s",
    "plain_run_s",
)


def iter_timings(record):
    """Yield ``(benchmark, batch_size, metric, value)`` from a bench record.

    Metrics cover the headline cold/warm timings plus one
    ``<section>.<bucket>`` entry per phase bucket (e.g.
    ``build.calibration``, ``run.norm``) for schema-3 records; older
    records without a ``phases`` dict simply yield fewer metrics.
    """
    for bench, rec in record.get("benchmarks", {}).items():
        for size, sized in rec.get("by_batch_size", {}).items():
            for metric in GATED_METRICS:
                value = sized.get(metric)
                if value is not None:
                    yield bench, size, metric, float(value)
            for section, buckets in (sized.get("phases") or {}).items():
                for bucket, value in (buckets or {}).items():
                    # *_elems buckets are deterministic element counts, not
                    # seconds; host-speed normalization would corrupt them
                    # and the parity check below consumes them instead.
                    if bucket.endswith("_elems"):
                        continue
                    if value is not None:
                        yield bench, size, f"{section}.{bucket}", float(value)


def speed_scale(baseline: dict, fresh: dict):
    """fresh/baseline host-speed ratio, or None when either probe is absent.

    Dividing fresh timings by this ratio converts them to "baseline-machine
    seconds", making the comparison machine-relative.
    """
    base_idx = (baseline.get("host") or {}).get("speed_index_s")
    fresh_idx = (fresh.get("host") or {}).get("speed_index_s")
    if not base_idx or not fresh_idx:
        return None
    return float(fresh_idx) / float(base_idx)


def compare(
    baseline: dict,
    fresh: dict,
    tolerance: float,
    min_delta: float,
    scale: float = 1.0,
):
    """Return (rows, regressions, missing): every comparison, the failures,
    and baseline entries absent from the fresh record.  Fresh timings are
    divided by ``scale`` (the host-speed ratio) before the gate applies."""
    fresh_map = {
        (b, s, m): v for b, s, m, v in iter_timings(fresh)
    }
    rows, regressions, missing = [], [], []
    for bench, size, metric, base in iter_timings(baseline):
        key = (bench, size, metric)
        new = fresh_map.get(key)
        if new is None:
            missing.append(key)
            continue
        adjusted = new / scale
        ratio = adjusted / base if base > 0 else float("inf")
        regressed = (
            adjusted > base * (1.0 + tolerance)
            and adjusted - base > min_delta
        )
        rows.append((bench, size, metric, base, adjusted, ratio, regressed))
        if regressed:
            regressions.append(rows[-1])
    return rows, regressions, missing


def plan_floor_check(fresh: dict, tolerance: float, min_delta: float):
    """Within-record check: plan replay must approach the plain floor.

    Returns ``(rows, violations)`` where each row is ``(bench, size,
    replay, plain, ratio, violated)``.  A record violates the floor when
    ``plan_replay_run_s > plain_run_s * (1 + tolerance)`` *and* the absolute
    gap exceeds ``min_delta`` - both timings come from the same fresh record
    on the same machine, so no speed normalization applies.  Records without
    the plan fields (older baselines) simply yield no rows.
    """
    rows, violations = [], []
    for bench, rec in fresh.get("benchmarks", {}).items():
        for size, sized in rec.get("by_batch_size", {}).items():
            replay = sized.get("plan_replay_run_s")
            plain = sized.get("plain_run_s")
            if replay is None or plain is None:
                continue
            replay, plain = float(replay), float(plain)
            ratio = replay / plain if plain > 0 else float("inf")
            violated = (
                replay > plain * (1.0 + tolerance)
                and replay - plain > min_delta
            )
            rows.append((bench, size, replay, plain, ratio, violated))
            if violated:
                violations.append(rows[-1])
    return rows, violations


def im2col_parity_check(fresh: dict, tolerance: float, min_seconds: float):
    """Within-record check: stride-2 im2col must be rate-competitive.

    Returns ``(rows, violations)`` where each row is ``(bench, size,
    section, rate_s2, rate_s1, ratio, violated)`` and the rates are seconds
    per gathered element, computed from the stride-split profiler
    sub-buckets (``im2col_s2`` / ``im2col_s2_elems`` vs ``im2col_s1`` /
    ``im2col_s1_elems``).  Both strides time the same gather on the same
    machine within one record, so no speed normalization applies.  A
    section violates parity when the stride-2 rate exceeds the stride-1
    rate by more than ``tolerance``; sections where either bucket carries
    less than ``min_seconds`` of wall clock are skipped (a per-element rate
    derived from scheduler-jitter-sized timings is noise, not signal).
    Records without the sub-buckets (no stride-2 conv in the model, or an
    older schema) simply yield no rows.
    """
    rows, violations = [], []
    for bench, rec in fresh.get("benchmarks", {}).items():
        for size, sized in rec.get("by_batch_size", {}).items():
            for section, buckets in (sized.get("phases") or {}).items():
                buckets = buckets or {}
                s1 = buckets.get("im2col_s1")
                s1_elems = buckets.get("im2col_s1_elems")
                s2 = buckets.get("im2col_s2")
                s2_elems = buckets.get("im2col_s2_elems")
                if None in (s1, s1_elems, s2, s2_elems):
                    continue
                if not s1_elems or not s2_elems:
                    continue
                if float(s1) < min_seconds or float(s2) < min_seconds:
                    continue
                rate_s1 = float(s1) / float(s1_elems)
                rate_s2 = float(s2) / float(s2_elems)
                ratio = rate_s2 / rate_s1 if rate_s1 > 0 else float("inf")
                violated = rate_s2 > rate_s1 * (1.0 + tolerance)
                rows.append(
                    (bench, size, section, rate_s2, rate_s1, ratio, violated)
                )
                if violated:
                    violations.append(rows[-1])
    return rows, violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a fresh repro-bench record regresses vs baseline"
    )
    parser.add_argument("fresh", help="freshly measured bench JSON")
    parser.add_argument(
        "--baseline", default="BENCH_PR10.json",
        help="committed baseline record (default: BENCH_PR10.json)",
    )
    parser.add_argument(
        "--tol", type=float, default=None, metavar="FRACTION",
        help="allowed slowdown fraction (default: $REPRO_BENCH_TOL or 0.25)",
    )
    parser.add_argument(
        "--min-delta", type=float, default=None, metavar="SECONDS",
        help="absolute slack before the relative gate applies "
             "(default: $REPRO_BENCH_MIN_DELTA or 0.05)",
    )
    parser.add_argument(
        "--no-normalize", action="store_true",
        help="compare raw wall clock even when both records carry the "
             "host speed probe",
    )
    parser.add_argument(
        "--plan-floor-tol", type=float, default=None, metavar="FRACTION",
        help="allowed plan_replay_run_s excess over plain_run_s within the "
             "fresh record (default: $REPRO_PLAN_FLOOR_TOL or 0.15)",
    )
    parser.add_argument(
        "--im2col-parity-tol", type=float, default=None, metavar="FRACTION",
        help="allowed stride-2 im2col per-element rate excess over the "
             "stride-1 rate (default: $REPRO_IM2COL_TOL or 1.0)",
    )
    parser.add_argument(
        "--im2col-min-seconds", type=float, default=None, metavar="SECONDS",
        help="minimum wall clock BOTH stride buckets must carry before the "
             "parity rate is trusted (default: $REPRO_IM2COL_MIN_S or 0.005)",
    )
    args = parser.parse_args(argv)

    tolerance = args.tol
    if tolerance is None:
        tolerance = float(os.environ.get("REPRO_BENCH_TOL", "0.25"))
    if tolerance < 0:
        parser.error(f"tolerance must be >= 0, got {tolerance}")
    min_delta = args.min_delta
    if min_delta is None:
        min_delta = float(os.environ.get("REPRO_BENCH_MIN_DELTA", "0.05"))
    if min_delta < 0:
        parser.error(f"min-delta must be >= 0, got {min_delta}")
    floor_tol = args.plan_floor_tol
    if floor_tol is None:
        floor_tol = float(os.environ.get("REPRO_PLAN_FLOOR_TOL", "0.15"))
    if floor_tol < 0:
        parser.error(f"plan-floor-tol must be >= 0, got {floor_tol}")
    parity_tol = args.im2col_parity_tol
    if parity_tol is None:
        parity_tol = float(os.environ.get("REPRO_IM2COL_TOL", "1.0"))
    if parity_tol < 0:
        parser.error(f"im2col-parity-tol must be >= 0, got {parity_tol}")
    parity_min = args.im2col_min_seconds
    if parity_min is None:
        parity_min = float(os.environ.get("REPRO_IM2COL_MIN_S", "0.005"))
    if parity_min < 0:
        parser.error(f"im2col-min-seconds must be >= 0, got {parity_min}")

    try:
        baseline = json.loads(Path(args.baseline).read_text())
        fresh = json.loads(Path(args.fresh).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_bench: cannot read records: {exc}", file=sys.stderr)
        return 2

    scale = None if args.no_normalize else speed_scale(baseline, fresh)
    rows, regressions, missing = compare(
        baseline, fresh, tolerance, min_delta, scale=scale or 1.0
    )
    if not rows:
        print("check_bench: no comparable timings between the records",
              file=sys.stderr)
        return 2

    width = max(len(f"{b} b{s} {m}") for b, s, m, *_ in rows)
    print(f"perf gate: tolerance +{100 * tolerance:.0f}% "
          f"(min delta {min_delta:g}s) "
          f"({args.baseline} -> {args.fresh})")
    if scale is None:
        print("  raw wall clock (no host speed probe in both records)")
    else:
        print(f"  host speed ratio {scale:.3f} - fresh timings shown in "
              "baseline-machine seconds")
    for bench, size, metric, base, new, ratio, regressed in rows:
        flag = "REGRESSED" if regressed else "ok"
        print(f"  {f'{bench} b{size} {metric}':<{width}}  "
              f"{base:8.4f}s -> {new:8.4f}s  x{ratio:5.2f}  {flag}")
    for bench, size, metric in missing:
        print(f"  warning: {bench} b{size} {metric} missing from fresh record")

    # Plan-then-execute acceptance: within the fresh record, the plan-replay
    # run must sit within --plan-floor-tol of the plain-forward floor.
    floor_rows, floor_violations = plan_floor_check(fresh, floor_tol, min_delta)
    if floor_rows:
        print(f"plan floor: plan_replay_run_s vs plain_run_s "
              f"(tolerance +{100 * floor_tol:.0f}%)")
        for bench, size, replay, plain, ratio, violated in floor_rows:
            flag = "ABOVE FLOOR" if violated else "ok"
            print(f"  {bench} b{size}  replay {replay:8.4f}s vs plain "
                  f"{plain:8.4f}s  x{ratio:5.2f}  {flag}")

    # Blocked-stride acceptance: the stride-2 im2col per-element rate must
    # stay within --im2col-parity-tol of the stride-1 rate.
    parity_rows, parity_violations = im2col_parity_check(
        fresh, parity_tol, parity_min
    )
    if parity_rows:
        print(f"im2col parity: stride-2 vs stride-1 seconds/element "
              f"(tolerance +{100 * parity_tol:.0f}%)")
        for bench, size, section, r2, r1, ratio, violated in parity_rows:
            flag = "OFF PARITY" if violated else "ok"
            print(f"  {bench} b{size} {section}  s2 {r2:.3e} vs s1 "
                  f"{r1:.3e} s/elem  x{ratio:5.2f}  {flag}")

    if regressions or floor_violations or parity_violations:
        if regressions:
            print(f"\nFAIL: {len(regressions)} timing(s) regressed beyond "
                  f"+{100 * tolerance:.0f}% (override via REPRO_BENCH_TOL)")
        if floor_violations:
            print(f"\nFAIL: plan replay above the plain-forward floor in "
                  f"{len(floor_violations)} record(s) (override via "
                  "REPRO_PLAN_FLOOR_TOL)")
        if parity_violations:
            print(f"\nFAIL: stride-2 im2col off rate parity in "
                  f"{len(parity_violations)} section(s) (override via "
                  "REPRO_IM2COL_TOL)")
        return 1
    print(f"\nOK: {len(rows)} timing(s) within tolerance"
          + (f", {len(floor_rows)} plan-floor check(s) passed"
             if floor_rows else "")
          + (f", {len(parity_rows)} im2col-parity check(s) passed"
             if parity_rows else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
