#!/usr/bin/env python
"""CI docs gate: intra-repo markdown link check.

Scans the repo's human-facing markdown (``README.md``, ``ROADMAP.md``,
``docs/*.md``) for inline links and images, and fails when a relative
link points at a file that does not exist or an anchor that no heading
produces.  External links (``http(s)://``, ``mailto:``) are *not*
fetched - the gate guards the repo's own tree, not the internet.

Anchors are resolved GitHub-style: a heading ``## Zero-state difference
algebra`` yields ``#zero-state-difference-algebra`` (lowercase,
punctuation stripped, spaces to dashes, duplicate slugs suffixed
``-1``, ``-2``, ...).

Usage::

    python scripts/check_docs.py [FILES...]

With no arguments, checks the default set relative to the repo root.
Exits 1 on any broken link, 2 when an input file cannot be read.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

DEFAULT_FILES = ("README.md", "ROADMAP.md", "docs")

# Inline links/images: [text](target) / ![alt](target).  Targets with
# spaces or nested parens do not occur in this repo's docs.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str, seen: dict) -> str:
    """GitHub's anchor slug for a heading line (deduplicated via ``seen``)."""
    # Strip inline markdown (code spans, links, emphasis) down to text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "")
    slug = re.sub(r"[^\w\- ]", "", text.strip().lower())
    slug = slug.replace(" ", "-")
    count = seen.get(slug)
    seen[slug] = 0 if count is None else count + 1
    return slug if count is None else f"{slug}-{seen[slug]}"


def collect_anchors(path: Path) -> set:
    """All heading anchors a markdown file exposes."""
    anchors, seen = set(), {}
    in_fence = False
    for line in path.read_text().splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            anchors.add(github_slug(match.group(2), seen))
    return anchors


def iter_links(path: Path):
    """Yield ``(line_number, target)`` for every inline link, skipping
    fenced code blocks (shell examples are full of ``$(...)``)."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path, anchor_cache: dict) -> list:
    """Return ``"<file>:<line>: <problem>"`` strings for broken links."""
    problems = []
    for lineno, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        raw, _, anchor = target.partition("#")
        dest = path if not raw else (path.parent / raw).resolve()
        if not dest.exists():
            problems.append(f"{path}:{lineno}: missing file: {target}")
            continue
        if anchor and dest.suffix == ".md":
            if dest not in anchor_cache:
                anchor_cache[dest] = collect_anchors(dest)
            if anchor not in anchor_cache[dest]:
                problems.append(
                    f"{path}:{lineno}: missing anchor: {target}"
                )
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        roots = [Path(a) for a in argv]
    else:
        roots = [REPO_ROOT / name for name in DEFAULT_FILES]

    files = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.glob("*.md")))
        else:
            files.append(root)

    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"check_docs: no such file: {f}", file=sys.stderr)
        return 2

    anchor_cache = {}
    problems = []
    checked_links = 0
    for path in files:
        before = len(problems)
        links = list(iter_links(path))
        checked_links += len(links)
        problems.extend(check_file(path, anchor_cache))
        status = "ok" if len(problems) == before else "BROKEN"
        print(f"  {path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path}"
              f"  {len(links)} link(s)  {status}")

    if problems:
        print()
        for problem in problems:
            print(problem)
        print(f"\nFAIL: {len(problems)} broken link(s) "
              f"across {len(files)} file(s)")
        return 1
    print(f"\nOK: {checked_links} link(s) across {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
