"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the Table I benchmark suite.
``run BENCH``
    Run one benchmark end-to-end (engine + Fig. 13 hardware sweep) and
    print the study tables.  ``--steps``, ``--seed``, ``--clusters``
    control the run.
``similarity BENCH``
    FP32 activation-similarity analysis (paper Figs. 3-4).
``sweep``
    Run every benchmark and print the Fig. 13-style summary matrix.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from . import __version__
from .analysis import format_table, run_study
from .core import similarity_report
from .diffusion import DiffusionSchedule, GenerationPipeline, make_sampler
from .workloads import SUITE, get_benchmark

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ditto (HPCA 2025) reproduction - benchmarks and studies",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table I benchmarks")

    run_p = sub.add_parser("run", help="run one benchmark study")
    run_p.add_argument("benchmark", choices=list(SUITE))
    run_p.add_argument("--steps", type=int, default=None, help="override step count")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--clusters", type=int, default=1,
        help="timestep-clustered quantization (TDQ synergy); 1 = global scale",
    )

    sim_p = sub.add_parser("similarity", help="Fig. 3/4 similarity analysis")
    sim_p.add_argument("benchmark", choices=list(SUITE))
    sim_p.add_argument("--steps", type=int, default=12)

    sub.add_parser("sweep", help="run all benchmarks (Fig. 13 summary)")
    return parser


def _cmd_list() -> int:
    rows = [
        [name, spec.sampler, spec.num_steps, spec.paper_steps,
         "x".join(map(str, spec.sample_shape)), spec.dataset]
        for name, spec in SUITE.items()
    ]
    print(format_table(
        ["name", "sampler", "steps", "paper", "shape", "dataset"], rows
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    study = run_study(
        args.benchmark,
        num_steps=args.steps,
        seed=args.seed,
        step_clusters=args.clusters,
    )
    print(study.summary())
    print("\nBOPs (paper Fig. 6):")
    print(study.bops_table())
    print("\nHardware (paper Fig. 13, normalized to ITC):")
    print(study.hardware_table())
    return 0


def _cmd_similarity(args: argparse.Namespace) -> int:
    spec = get_benchmark(args.benchmark)
    model = spec.build_model()
    sampler = make_sampler(spec.sampler, DiffusionSchedule(1000), args.steps)
    pipeline = GenerationPipeline(
        model, sampler, spec.sample_shape, spec.build_conditioning()
    )
    rng = np.random.default_rng(1)
    report = similarity_report(spec.name, model, lambda: pipeline.generate(1, rng))
    print(report.summary())
    rows = sorted(
        (
            (layer, float(np.mean(sims)), report.spatial.get(layer, float("nan")))
            for layer, sims in report.temporal.items()
        ),
        key=lambda r: r[1],
        reverse=True,
    )
    if len(rows) > 24:
        rows = rows[:12] + [("...", float("nan"), float("nan"))] + rows[-12:]
    print(format_table(["layer", "temporal", "spatial"], rows))
    return 0


def _cmd_sweep() -> int:
    rows = []
    for name in SUITE:
        study = run_study(name)
        itc = study.design_results["ITC"].report
        ditto = study.design_results["Ditto"].report
        ditto_plus = study.design_results["Ditto+"].report
        rows.append(
            [
                name,
                itc.total_cycles / ditto.total_cycles,
                ditto.total_energy_pj / itc.total_energy_pj,
                itc.total_cycles / ditto_plus.total_cycles,
                100.0 * study.design_results["Ditto"].defo.changed_fraction,
            ]
        )
    print(format_table(
        ["bench", "Ditto spd", "Ditto energy", "Ditto+ spd", "Defo chg%"], rows
    ))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "similarity":
        return _cmd_similarity(args)
    if args.command == "sweep":
        return _cmd_sweep()
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
