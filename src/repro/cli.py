"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the Table I benchmark suite.
``run BENCH``
    Run one benchmark end-to-end (engine + Fig. 13 hardware sweep) and
    print the study tables.  ``--steps``, ``--seed``, ``--clusters``
    control the run.
``similarity BENCH``
    FP32 activation-similarity analysis (paper Figs. 3-4).
``sweep``
    Run every benchmark and print the Fig. 13-style summary matrix.
``serve BENCH``
    Simulate the paper's serving scenario: a request queue with a
    configurable arrival pattern driven at ``--batch-sizes`` (default
    1 2 4 8) under ``--scheduler fixed`` (lockstep micro-batching window)
    or ``--scheduler continuous`` (iteration-level scheduling with
    per-row timesteps); reports throughput, latency percentiles,
    utilization, and temporal-mode MAC savings per batch size.
    ``--pool-budget-mb`` caps batch sizes by scratch-memory footprint;
    ``--verify`` asserts every request is bit-exact with its seeded
    batch-1 reference.  Fault tolerance (continuous scheduler):
    ``--deadline``/``--slo`` set per-request/per-class latency targets,
    ``--fault-spec`` (or ``$REPRO_FAULTS``) injects deterministic step
    errors, kills, latency, cancellations, and cache corruption;
    ``--max-retries`` bounds exact-replay retries and ``--no-recover``
    disables crash recovery.  The report then carries per-class SLO
    accounting (every request completed/cancelled/expired/failed).
``bench [BENCH ...]``
    Time the cold engine build+run and warm cache load per benchmark and
    batch size, and write machine-readable JSON (``--quick`` restricts to
    DDPM with one repeat, for CI perf smoke).
``cache info|clear``
    Inspect or reclaim the on-disk result cache.

``run``, ``similarity`` and ``sweep`` accept ``--cache``/``--no-cache`` and
``--cache-dir DIR`` (content-addressed on-disk reuse of results, see
:mod:`repro.runtime`); ``sweep`` additionally accepts ``--jobs N``
(process-pool engine construction).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from . import __version__
from .analysis import format_table, run_study
from .runtime import EngineRunner, ResultCache, default_cache_dir
from .workloads import SUITE


def _add_runtime_flags(
    parser: argparse.ArgumentParser, jobs: bool = True
) -> None:
    if jobs:
        parser.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="build benchmark engines across N worker processes",
        )
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache", dest="cache", action="store_true", default=True,
        help="reuse/populate the on-disk engine-result cache (default)",
    )
    cache_group.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="always rebuild engines, never touch the cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/ditto-repro)",
    )


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    from .nn.backends import registered_backends

    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        choices=list(registered_backends()),
        help="compute backend for the GEMM/im2col hot path (default: "
             "$REPRO_BACKEND or 'reference'); an unavailable backend "
             "degrades to reference with a recorded reason",
    )


def _make_runner(args: argparse.Namespace) -> EngineRunner:
    return EngineRunner(
        jobs=getattr(args, "jobs", 1),
        cache=args.cache,
        cache_dir=args.cache_dir,
    )

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ditto (HPCA 2025) reproduction - benchmarks and studies",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table I benchmarks")

    run_p = sub.add_parser("run", help="run one benchmark study")
    run_p.add_argument("benchmark", choices=list(SUITE))
    run_p.add_argument("--steps", type=int, default=None, help="override step count")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--clusters", type=int, default=1,
        help="timestep-clustered quantization (TDQ synergy); 1 = global scale",
    )
    run_p.add_argument(
        "--batch-size", type=int, default=1, metavar="N",
        help="samples per generation batch (batch-N is bit-exact with N batch-1 runs)",
    )
    _add_backend_flag(run_p)
    # A single-benchmark run builds one engine, so --jobs has nothing to
    # parallelize; only the cache flags apply.
    _add_runtime_flags(run_p, jobs=False)

    sim_p = sub.add_parser("similarity", help="Fig. 3/4 similarity analysis")
    sim_p.add_argument("benchmark", choices=list(SUITE))
    sim_p.add_argument("--steps", type=int, default=12)
    _add_runtime_flags(sim_p, jobs=False)

    sweep_p = sub.add_parser("sweep", help="run all benchmarks (Fig. 13 summary)")
    sweep_p.add_argument(
        "--batch-size", type=int, default=1, metavar="N",
        help="generation batch size for every benchmark run",
    )
    _add_backend_flag(sweep_p)
    _add_runtime_flags(sweep_p)

    serve_p = sub.add_parser(
        "serve", help="simulate the serving scenario (queue + micro-batching)"
    )
    serve_p.add_argument("benchmark", choices=list(SUITE))
    serve_p.add_argument(
        "--batch-sizes", type=int, nargs="+", default=[1, 2, 4, 8],
        metavar="N",
        help="maximum micro-batch sizes (fixed) / session capacities "
             "(continuous) to sweep",
    )
    serve_p.add_argument(
        "--scheduler", choices=["fixed", "continuous"], default="fixed",
        help="fixed: lockstep micro-batches; continuous: iteration-level "
             "scheduling (rows admitted/evicted at step boundaries, each at "
             "its own timestep)",
    )
    serve_p.add_argument(
        "--pool-budget-mb", type=float, default=None, metavar="MB",
        help="scratch-pool memory budget; caps every batch size at the "
             "largest row count that fits (refuses budgets below one row)",
    )
    serve_p.add_argument(
        "--sampler", choices=["ddim", "ddpm", "plms", "dpmpp"], default=None,
        help="override the benchmark's sampler (e.g. ddpm for stochastic "
             "ancestral sampling)",
    )
    serve_p.add_argument(
        "--eta", type=float, default=None, metavar="ETA",
        help="stochastic DDIM eta (> 0 draws per-request posterior noise)",
    )
    _add_backend_flag(serve_p)
    serve_p.add_argument(
        "--requests", type=int, default=16, metavar="N",
        help="number of requests in the simulated queue",
    )
    serve_p.add_argument(
        "--rate", type=float, default=4.0, metavar="RPS",
        help="mean request arrival rate (requests/second)",
    )
    serve_p.add_argument(
        "--pattern", choices=["poisson", "uniform", "burst"], default="poisson",
        help="arrival pattern of the request trace",
    )
    serve_p.add_argument(
        "--window", type=float, default=0.25, metavar="SECONDS",
        help="micro-batching window: max wait after the first queued request",
    )
    serve_p.add_argument("--steps", type=int, default=None, help="override step count")
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument(
        "--guidance", type=float, default=None, metavar="SCALE",
        help="classifier-free guidance scale (needs an uncond branch, e.g. SDM)",
    )
    serve_p.add_argument(
        "--verify", action="store_true",
        help="re-run one micro-batch request-by-request and assert bit-exactness",
    )
    serve_p.add_argument(
        "--plan", dest="use_plan", action="store_true",
        help="plan-then-execute: load (or derive once and cache) the "
             "ExecutionPlan and serve instrumentation-free; cached plans "
             "are drift-checked against a re-instrumented derivation run "
             "(with --verify, references run instrumented)",
    )
    serve_p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        dest="deadline_s",
        help="per-request completion deadline from arrival; expired rows "
             "are evicted at step boundaries (continuous scheduler)",
    )
    serve_p.add_argument(
        "--slo", default=None, metavar="SPEC",
        help="per-class SLOs 'name:deadline[:weight],...' (empty/none "
             "deadline = no target); requests are assigned to classes "
             "weight-proportionally and reported per class",
    )
    serve_p.add_argument(
        "--fault-spec", default=None, metavar="SPEC",
        help="deterministic fault plan, e.g. "
             "'error@req=1,step=2;kill@req=2,step=3;delay@req=5,step=1,"
             "ms=30000' (default: $REPRO_FAULTS; see README 'Robustness & "
             "failure model' for the grammar)",
    )
    serve_p.add_argument(
        "--fault-seed", type=int, default=0, metavar="N",
        help="seed for probabilistic (p=...) fault entries",
    )
    serve_p.add_argument(
        "--max-retries", type=int, default=3, metavar="N",
        help="exact-replay retries per step before the session is declared "
             "unhealthy",
    )
    serve_p.add_argument(
        "--no-recover", dest="recover", action="store_false", default=True,
        help="disable crash recovery: a killed session fails its in-flight "
             "requests instead of rebuilding and re-admitting them",
    )
    serve_p.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the serving report as JSON",
    )

    bench_p = sub.add_parser(
        "bench", help="time cold/warm engine runs, write JSON perf record"
    )
    bench_p.add_argument(
        "benchmarks", nargs="*", metavar="BENCH",
        help="benchmarks to time (default: the whole suite)",
    )
    bench_p.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: DDPM only (unless named), one repeat",
    )
    bench_p.add_argument(
        "--repeats", type=int, default=2, metavar="N",
        help="cold repeats per benchmark; headline cold_*/phase timings are "
             "the medians across repeats (schema 3; cold_best_total_s keeps "
             "the optimistic best-of-N total)",
    )
    bench_p.add_argument("--steps", type=int, default=None, help="override step count")
    bench_p.add_argument("--seed", type=int, default=0)
    bench_p.add_argument(
        "--batch-size", type=int, nargs="+", default=[1], metavar="N",
        dest="batch_sizes",
        help="batch sizes to time (cold run + warm load recorded per size)",
    )
    bench_p.add_argument(
        "--out", default=None, metavar="PATH",
        help="output JSON path (default: BENCH_PR10.json)",
    )
    _add_backend_flag(bench_p)
    bench_p.add_argument(
        "--calibration-dtype", default=None, metavar="DTYPE",
        choices=["float32", "float64"], dest="calibration_dtype",
        help="calibration-trajectory precision (default: float32 fast path; "
             "float64 is the legacy exact trajectory)",
    )
    bench_p.add_argument(
        "--baseline", type=float, default=None, metavar="SECONDS",
        help="reference cold time to record a speedup against",
    )
    bench_p.add_argument(
        "--baseline-ref", default=None, metavar="REF",
        help="label for the reference measurement (e.g. a commit hash)",
    )
    bench_p.add_argument("--cache-dir", default=None, metavar="DIR")

    cache_p = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_p.add_argument("action", choices=["info", "clear"])
    cache_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/ditto-repro)",
    )

    lint_p = sub.add_parser(
        "lint",
        help="run the AST + dataflow invariant checkers (RPL001-RPL011)",
        add_help=False,
    )
    # All flags are owned by repro.lint.main (one source of truth); forward
    # everything after "lint" verbatim, including --help.
    lint_p.add_argument("lint_args", nargs=argparse.REMAINDER)
    return parser


def _cmd_list() -> int:
    rows = [
        [name, spec.sampler, spec.num_steps, spec.paper_steps,
         "x".join(map(str, spec.sample_shape)), spec.dataset]
        for name, spec in SUITE.items()
    ]
    print(format_table(
        ["name", "sampler", "steps", "paper", "shape", "dataset"], rows
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    result = runner.run_benchmark(
        args.benchmark,
        num_steps=args.steps,
        step_clusters=args.clusters,
        seed=args.seed,
        batch_size=args.batch_size,
        backend=args.backend,
    )
    study = run_study(args.benchmark, engine_result=result)
    print(study.summary())
    print("\nBOPs (paper Fig. 6):")
    print(study.bops_table())
    print("\nHardware (paper Fig. 13, normalized to ITC):")
    print(study.hardware_table())
    if args.cache:
        print(f"\n[{runner.stats.summary()}]")
    return 0


def _cmd_similarity(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    report = runner.similarity(args.benchmark, num_steps=args.steps)
    print(report.summary())
    rows = sorted(
        (
            (layer, float(np.mean(sims)), report.spatial.get(layer, float("nan")))
            for layer, sims in report.temporal.items()
        ),
        key=lambda r: r[1],
        reverse=True,
    )
    if len(rows) > 24:
        rows = rows[:12] + [("...", float("nan"), float("nan"))] + rows[-12:]
    print(format_table(["layer", "temporal", "spatial"], rows))
    if args.cache:
        print(f"\n[{runner.stats.summary()}]")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    results = runner.run_suite(batch_size=args.batch_size, backend=args.backend)
    rows = []
    for name in SUITE:
        study = run_study(name, engine_result=results[name])
        itc = study.design_results["ITC"].report
        ditto = study.design_results["Ditto"].report
        ditto_plus = study.design_results["Ditto+"].report
        rows.append(
            [
                name,
                itc.total_cycles / ditto.total_cycles,
                ditto.total_energy_pj / itc.total_energy_pj,
                itc.total_cycles / ditto_plus.total_cycles,
                100.0 * study.design_results["Ditto"].defo.changed_fraction,
            ]
        )
    print(format_table(
        ["bench", "Ditto spd", "Ditto energy", "Ditto+ spd", "Defo chg%"], rows
    ))
    if args.cache:
        print(f"\n[{runner.stats.summary()}]")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .runtime.serving import simulate_serving

    report = simulate_serving(
        args.benchmark,
        batch_sizes=args.batch_sizes,
        num_requests=args.requests,
        rate_rps=args.rate,
        pattern=args.pattern,
        window_s=args.window,
        num_steps=args.steps,
        seed=args.seed,
        guidance_scale=args.guidance,
        verify_invariance=args.verify,
        scheduler=args.scheduler,
        pool_budget_mb=args.pool_budget_mb,
        backend=args.backend,
        sampler=args.sampler,
        sampler_eta=args.eta,
        deadline_s=args.deadline_s,
        slo=args.slo,
        fault_spec=args.fault_spec,
        fault_seed=args.fault_seed,
        max_retries=args.max_retries,
        recover=args.recover,
        use_plan=args.use_plan,
    )
    print(report.summary())
    if args.out:
        import json
        from pathlib import Path

        Path(args.out).write_text(json.dumps(report.to_json(), indent=1) + "\n")
        print(f"\nwrote {args.out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import DEFAULT_OUT, run_bench

    unknown = [b for b in args.benchmarks if b not in SUITE]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    out_path = args.out or DEFAULT_OUT
    payload = run_bench(
        benchmarks=args.benchmarks or None,
        repeats=args.repeats,
        quick=args.quick,
        seed=args.seed,
        num_steps=args.steps,
        batch_sizes=args.batch_sizes,
        out_path=out_path,
        baseline_s=args.baseline,
        baseline_ref=args.baseline_ref,
        cache_dir=args.cache_dir,
        calibration_dtype=args.calibration_dtype,
        backend=args.backend,
    )
    rows = []
    for name, rec in payload["benchmarks"].items():
        for size, sized in rec["by_batch_size"].items():
            rows.append(
                [name, int(size), sized["cold_build_s"], sized["cold_run_s"],
                 sized["cold_total_s"], sized["warm_load_s"], sized["records"]]
            )
    print(format_table(
        ["bench", "batch", "build s", "run s", "cold s", "warm s", "records"],
        rows,
    ))
    baseline = payload.get("baseline")
    if baseline:
        print(
            f"\n{baseline['benchmark']}: {baseline['speedup']}x vs "
            f"{baseline['ref']} ({baseline['cold_total_s']}s)"
        )
    print(f"\nwrote {out_path}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.cache_dir}")
        return 0
    print(f"dir:     {cache.cache_dir}")
    print(f"entries: {cache.entry_count()}")
    print(f"size:    {cache.size_bytes() / 1e6:.1f} MB")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["lint"]:
        # Forwarded before parsing: argparse.REMAINDER cannot carry leading
        # optionals ("repro lint --list-rules"), and repro.lint.main owns
        # every lint flag including --help.
        from .lint import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "similarity":
        return _cmd_similarity(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "lint":
        from .lint import main as lint_main

        return lint_main(args.lint_args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
