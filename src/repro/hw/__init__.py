"""Analytic hardware models: Ditto accelerator, baselines, design points."""

from .ablation import DBDS_CONFIG, DB_CONFIG, DS_CONFIG
from .accelerators import (
    AdderTreeAccelerator,
    CambriconDAccelerator,
    GPUModel,
    build_accelerator,
)
from .config import TABLE_III, EnergyModel, HardwareConfig, get_config
from .report import HardwareReport, LayerCycles
from .simulator import (
    FIG13_DESIGNS,
    FIG15_DESIGNS,
    FIG16_DESIGNS,
    FIG18_DESIGNS,
    DesignPoint,
    DesignResult,
    evaluate_design,
    evaluate_designs,
)

__all__ = [
    "EnergyModel",
    "HardwareConfig",
    "TABLE_III",
    "get_config",
    "DS_CONFIG",
    "DB_CONFIG",
    "DBDS_CONFIG",
    "AdderTreeAccelerator",
    "CambriconDAccelerator",
    "GPUModel",
    "build_accelerator",
    "HardwareReport",
    "LayerCycles",
    "DesignPoint",
    "DesignResult",
    "evaluate_design",
    "evaluate_designs",
    "FIG13_DESIGNS",
    "FIG15_DESIGNS",
    "FIG16_DESIGNS",
    "FIG18_DESIGNS",
]
