"""Result dataclasses produced by the hardware models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["LayerCycles", "HardwareReport"]


@dataclass
class LayerCycles:
    """Cycle/energy outcome of one layer-step on one hardware model."""

    layer_name: str
    step_index: int
    mode: str
    compute_cycles: float
    memory_cycles: float
    encode_cycles: float = 0.0
    vpu_cycles: float = 0.0
    energy_pj: Dict[str, float] = field(default_factory=dict)
    bytes_moved: int = 0

    @property
    def cycles(self) -> float:
        """Pipelined execution: the slowest stage bounds the layer."""
        return max(
            self.compute_cycles,
            self.memory_cycles,
            self.encode_cycles,
            self.vpu_cycles,
        )

    @property
    def stall_cycles(self) -> float:
        """Cycles the Compute Unit waits on memory."""
        return max(0.0, self.memory_cycles - self.compute_cycles)

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_pj.values())


@dataclass
class HardwareReport:
    """Aggregate outcome of running a full trace on one hardware model."""

    hardware: str
    layers: List[LayerCycles] = field(default_factory=list)

    def append(self, layer: LayerCycles) -> None:
        self.layers.append(layer)

    # -- cycles ----------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        return sum(l.cycles for l in self.layers)

    @property
    def compute_cycles(self) -> float:
        return sum(min(l.compute_cycles, l.cycles) for l in self.layers)

    @property
    def stall_cycles(self) -> float:
        return sum(l.stall_cycles for l in self.layers)

    # -- energy / traffic -------------------------------------------------
    @property
    def total_energy_pj(self) -> float:
        return sum(l.total_energy_pj for l in self.layers)

    def energy_breakdown_pj(self) -> Dict[str, float]:
        breakdown: Dict[str, float] = {}
        for layer in self.layers:
            for component, value in layer.energy_pj.items():
                breakdown[component] = breakdown.get(component, 0.0) + value
        return breakdown

    @property
    def total_bytes(self) -> int:
        return sum(l.bytes_moved for l in self.layers)

    # -- comparisons --------------------------------------------------------
    def speedup_over(self, other: "HardwareReport") -> float:
        if self.total_cycles == 0:
            return float("inf")
        return other.total_cycles / self.total_cycles

    def relative_energy(self, other: "HardwareReport") -> float:
        if other.total_energy_pj == 0:
            return float("inf")
        return self.total_energy_pj / other.total_energy_pj

    def relative_memory_accesses(self, other: "HardwareReport") -> float:
        if other.total_bytes == 0:
            return float("inf")
        return self.total_bytes / other.total_bytes

    # -- per-layer views ---------------------------------------------------
    def cycles_by_layer(self) -> Dict[str, float]:
        grouped: Dict[str, float] = {}
        for layer in self.layers:
            grouped[layer.layer_name] = grouped.get(layer.layer_name, 0.0) + layer.cycles
        return grouped

    def cycles_by_step(self) -> Dict[int, float]:
        grouped: Dict[int, float] = {}
        for layer in self.layers:
            grouped[layer.step_index] = grouped.get(layer.step_index, 0.0) + layer.cycles
        return grouped

    def summary(self) -> str:
        energy_uj = self.total_energy_pj / 1e6
        return (
            f"{self.hardware}: {self.total_cycles:,.0f} cycles "
            f"(compute {self.compute_cycles:,.0f}, stall {self.stall_cycles:,.0f}), "
            f"{energy_uj:,.2f} uJ, {self.total_bytes:,} bytes"
        )
