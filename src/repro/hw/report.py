"""Result containers produced by the hardware models.

:class:`HardwareReport` has two storage modes.  Appending
:class:`LayerCycles` records one at a time (tests, custom models) keeps a
plain Python list.  The vectorized accelerators instead hand over flat
numpy columns via :meth:`HardwareReport.from_arrays`; aggregate metrics then
run as column reductions and per-record :class:`LayerCycles` views are only
materialized if somebody iterates ``report.layers``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["LayerCycles", "HardwareReport"]


@dataclass
class LayerCycles:
    """Cycle/energy outcome of one layer-step on one hardware model."""

    layer_name: str
    step_index: int
    mode: str
    compute_cycles: float
    memory_cycles: float
    encode_cycles: float = 0.0
    vpu_cycles: float = 0.0
    energy_pj: Dict[str, float] = field(default_factory=dict)
    bytes_moved: int = 0

    @property
    def cycles(self) -> float:
        """Pipelined execution: the slowest stage bounds the layer."""
        return max(
            self.compute_cycles,
            self.memory_cycles,
            self.encode_cycles,
            self.vpu_cycles,
        )

    @property
    def stall_cycles(self) -> float:
        """Cycles the Compute Unit waits on memory."""
        return max(0.0, self.memory_cycles - self.compute_cycles)

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_pj.values())


class HardwareReport:
    """Aggregate outcome of running a full trace on one hardware model."""

    def __init__(
        self, hardware: str, layers: Optional[Sequence[LayerCycles]] = None
    ) -> None:
        self.hardware = hardware
        self._layers: Optional[List[LayerCycles]] = (
            list(layers) if layers is not None else []
        )
        self._arrays: Optional[dict] = None

    @classmethod
    def from_arrays(
        cls,
        hardware: str,
        layer_names: List[str],
        layer_ids: np.ndarray,
        step_index: np.ndarray,
        modes: List[str],
        mode_ids: np.ndarray,
        compute: np.ndarray,
        memory: np.ndarray,
        encode: np.ndarray,
        vpu: np.ndarray,
        energy: Dict[str, np.ndarray],
        bytes_moved: np.ndarray,
    ) -> "HardwareReport":
        """Columnar constructor used by the vectorized accelerator models."""
        report = cls(hardware)
        report._layers = None
        cycles = np.maximum(np.maximum(compute, memory), np.maximum(encode, vpu))
        report._arrays = {
            "layer_names": layer_names,
            "layer_ids": np.asarray(layer_ids),
            "step_index": np.asarray(step_index),
            "modes": modes,
            "mode_ids": np.asarray(mode_ids),
            "compute": np.asarray(compute, dtype=np.float64),
            "memory": np.asarray(memory, dtype=np.float64),
            "encode": np.asarray(encode, dtype=np.float64),
            "vpu": np.asarray(vpu, dtype=np.float64),
            "cycles": cycles,
            "energy": {k: np.asarray(v, dtype=np.float64) for k, v in energy.items()},
            "bytes_moved": np.asarray(bytes_moved),
        }
        return report

    # -- record access -----------------------------------------------------
    def _materialize(self) -> List[LayerCycles]:
        a = self._arrays
        energy_items = list(a["energy"].items())
        layers = []
        for i in range(len(a["step_index"])):
            layers.append(
                LayerCycles(
                    layer_name=a["layer_names"][a["layer_ids"][i]],
                    step_index=int(a["step_index"][i]),
                    mode=a["modes"][a["mode_ids"][i]],
                    compute_cycles=float(a["compute"][i]),
                    memory_cycles=float(a["memory"][i]),
                    encode_cycles=float(a["encode"][i]),
                    vpu_cycles=float(a["vpu"][i]),
                    energy_pj={k: float(v[i]) for k, v in energy_items},
                    bytes_moved=int(a["bytes_moved"][i]),
                )
            )
        return layers

    @property
    def layers(self) -> List[LayerCycles]:
        if self._layers is None:
            self._layers = self._materialize()
        return self._layers

    def append(self, layer: LayerCycles) -> None:
        layers = self.layers  # materializes the views if needed
        self._arrays = None  # record-level mutation invalidates the columns
        layers.append(layer)

    def __len__(self) -> int:
        if self._arrays is not None:
            return len(self._arrays["step_index"])
        return len(self._layers)

    # -- cycles ----------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        if self._arrays is not None:
            return float(self._arrays["cycles"].sum())
        return sum(layer.cycles for layer in self.layers)

    @property
    def compute_cycles(self) -> float:
        if self._arrays is not None:
            a = self._arrays
            return float(np.minimum(a["compute"], a["cycles"]).sum())
        return sum(min(layer.compute_cycles, layer.cycles) for layer in self.layers)

    @property
    def stall_cycles(self) -> float:
        if self._arrays is not None:
            a = self._arrays
            return float(np.maximum(a["memory"] - a["compute"], 0.0).sum())
        return sum(layer.stall_cycles for layer in self.layers)

    # -- energy / traffic -------------------------------------------------
    @property
    def total_energy_pj(self) -> float:
        if self._arrays is not None:
            return float(
                sum(arr.sum() for arr in self._arrays["energy"].values())
            )
        return sum(layer.total_energy_pj for layer in self.layers)

    def energy_breakdown_pj(self) -> Dict[str, float]:
        if self._arrays is not None:
            return {
                component: float(arr.sum())
                for component, arr in self._arrays["energy"].items()
            }
        breakdown: Dict[str, float] = {}
        for layer in self.layers:
            for component, value in layer.energy_pj.items():
                breakdown[component] = breakdown.get(component, 0.0) + value
        return breakdown

    @property
    def total_bytes(self) -> int:
        if self._arrays is not None:
            return int(self._arrays["bytes_moved"].sum())
        return sum(layer.bytes_moved for layer in self.layers)

    # -- comparisons --------------------------------------------------------
    def speedup_over(self, other: "HardwareReport") -> float:
        if self.total_cycles == 0:
            return float("inf")
        return other.total_cycles / self.total_cycles

    def relative_energy(self, other: "HardwareReport") -> float:
        if other.total_energy_pj == 0:
            return float("inf")
        return self.total_energy_pj / other.total_energy_pj

    def relative_memory_accesses(self, other: "HardwareReport") -> float:
        if other.total_bytes == 0:
            return float("inf")
        return self.total_bytes / other.total_bytes

    # -- per-layer views ---------------------------------------------------
    def cycles_by_layer(self) -> Dict[str, float]:
        if self._arrays is not None:
            a = self._arrays
            sums = np.bincount(
                a["layer_ids"], weights=a["cycles"], minlength=len(a["layer_names"])
            )
            ids_present = np.unique(a["layer_ids"])
            return {a["layer_names"][i]: float(sums[i]) for i in ids_present}
        grouped: Dict[str, float] = {}
        for layer in self.layers:
            grouped[layer.layer_name] = grouped.get(layer.layer_name, 0.0) + layer.cycles
        return grouped

    def cycles_by_step(self) -> Dict[int, float]:
        if self._arrays is not None:
            a = self._arrays
            steps, inverse = np.unique(a["step_index"], return_inverse=True)
            sums = np.bincount(inverse, weights=a["cycles"])
            return {int(step): float(sums[i]) for i, step in enumerate(steps)}
        grouped: Dict[int, float] = {}
        for layer in self.layers:
            grouped[layer.step_index] = grouped.get(layer.step_index, 0.0) + layer.cycles
        return grouped

    def summary(self) -> str:
        energy_uj = self.total_energy_pj / 1e6
        return (
            f"{self.hardware}: {self.total_cycles:,.0f} cycles "
            f"(compute {self.compute_cycles:,.0f}, stall {self.stall_cycles:,.0f}), "
            f"{energy_uj:,.2f} uJ, {self.total_bytes:,} bytes"
        )
