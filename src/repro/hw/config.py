"""Hardware configurations (paper Table III) and energy model constants.

All accelerators are compared iso-area: the 8-bit integer tensor core (ITC)
fits 27648 A8W8 MAC units in the area where the 4-bit-multiplier designs
(Diffy, Cambricon-D, Ditto) fit 39398 A4W8 multipliers; Cambricon-D splits
its budget into 38280 normal A4W8 multipliers plus 2552 A8W8 outlier PEs.
SRAM capacity and frequency are fixed across designs, exactly as in the
paper's methodology.

The energy constants are calibrated to 45nm-class per-operation costs (the
paper uses Synopsys DC + FreePDK45 and CACTI); absolute Joules are therefore
model estimates, but the *relative* energy story - compute energy shrinking
with zero-skipping/4-bit ops while DRAM traffic grows with temporal
difference state - is preserved, which is what the Fig. 13/14 reproductions
check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["EnergyModel", "HardwareConfig", "TABLE_III", "get_config"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy constants in picojoules."""

    mult4_pj: float = 0.11  # one 4b x 8b multiply + adder-tree slot
    mult8_pj: float = 0.24  # one 8b x 8b MAC (two 4-bit slots + shift)
    encode_pj: float = 0.02  # Encoding Unit: subtract + compare + enqueue
    vpu_pj: float = 0.40  # non-linear fn + (de)quantization per element
    defo_pj: float = 0.0001  # Defo table update per layer
    sram_byte_pj: float = 2.0
    # The 192 MB on-chip SRAM holds weights and activations of every Table I
    # workload, so DRAM is touched only for first-load/spill; its energy is
    # amortized into a small per-byte surcharge on the streamed traffic.
    dram_byte_pj: float = 0.5
    leak_per_mult_cycle_pj: float = 0.004  # idle/static per multiplier-cycle


@dataclass(frozen=True)
class HardwareConfig:
    """Iso-area accelerator configuration (one row of Table III)."""

    name: str
    num_mults: int  # multiplier count (4-bit lanes unless mult_bits=8)
    mult_bits: int  # native multiplier activation width
    outlier_mults: int = 0  # Cambricon-D's A8W8 outlier PEs
    power_w: float = 33.6
    sram_mb: int = 192
    area_mm2: float = 64.48
    freq_ghz: float = 1.0
    dram_bw_bytes_per_cycle: int = 2048
    supports_zero_skip: bool = False
    supports_dyn_bitwidth: bool = False
    # Defo Unit layer table (paper Section V-B): the largest Table I model
    # has 347 layers, sized up to the next power of two; each entry holds
    # two 16-bit cycle counts plus the 1-bit decision.
    defo_table_entries: int = 512
    defo_entry_bits: int = 33
    energy: EnergyModel = field(default_factory=EnergyModel)

    @property
    def defo_table_bits(self) -> int:
        return self.defo_table_entries * self.defo_entry_bits

    @property
    def dense_macs_per_cycle(self) -> float:
        """MAC throughput on full 8-bit activations."""
        if self.mult_bits >= 8:
            return float(self.num_mults)
        # A 4-bit-multiplier design pairs two lanes (+ shifter) per 8-bit MAC.
        return self.num_mults / 2.0


TABLE_III: Dict[str, HardwareConfig] = {
    "ITC": HardwareConfig(
        name="ITC",
        num_mults=27648,
        mult_bits=8,
        power_w=36.9,
    ),
    "Diffy": HardwareConfig(
        name="Diffy",
        num_mults=39398,
        mult_bits=4,
        power_w=33.6,
        supports_dyn_bitwidth=True,
    ),
    "Cambricon-D": HardwareConfig(
        name="Cambricon-D",
        num_mults=38280,
        mult_bits=4,
        outlier_mults=2552,
        power_w=33.3,
        supports_dyn_bitwidth=True,
    ),
    "Ditto": HardwareConfig(
        name="Ditto",
        num_mults=39398,
        mult_bits=4,
        power_w=33.6,
        supports_zero_skip=True,
        supports_dyn_bitwidth=True,
    ),
}


def get_config(name: str) -> HardwareConfig:
    try:
        return TABLE_III[name]
    except KeyError:
        raise ValueError(
            f"unknown hardware {name!r}; choose from {sorted(TABLE_III)}"
        ) from None
