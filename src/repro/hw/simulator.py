"""Design-point simulator: (hardware model, execution policy) -> report.

A :class:`DesignPoint` pairs a hardware cycle model with the execution-flow
policy that schedules work on it; :func:`evaluate_design` lowers a rich
trace under the policy and runs it through the hardware model.  The design
points of every figure in the paper's evaluation are predefined:

* Fig. 13/14 - :data:`FIG13_DESIGNS` (GPU, ITC, Diffy, Cambricon-D, Ditto,
  Ditto+).
* Fig. 15 - :data:`FIG15_DESIGNS` (software techniques cross-applied between
  Cambricon-D and Ditto).
* Fig. 16 - :data:`FIG16_DESIGNS` (DS / DB / DB&DS / +attention / Ditto /
  Ditto+).
* Fig. 18/19 - ideal / dynamic variants via ``policy='ideal'`` etc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.defo import DefoReport, run_defo, run_ideal
from ..core.policy import lower_dense, lower_spatial, lower_temporal
from ..core.trace import RichTrace, Trace
from .ablation import DBDS_CONFIG, DB_CONFIG, DS_CONFIG
from .accelerators import build_accelerator
from .config import HardwareConfig
from .report import HardwareReport

__all__ = [
    "DesignPoint",
    "evaluate_design",
    "evaluate_designs",
    "FIG13_DESIGNS",
    "FIG15_DESIGNS",
    "FIG16_DESIGNS",
    "FIG18_DESIGNS",
]


@dataclass(frozen=True)
class DesignPoint:
    """A (hardware, execution policy) pair to evaluate."""

    name: str
    hardware: str  # Table III name, 'GPU', or '' when config is given
    policy: str  # dense | spatial | temporal | defo | defo+ | ideal | ideal+ | dynamic | dynamic+
    bypass: str = "chained"  # chained | sign_mask | both | none
    attention_diff: bool = True
    config: Optional[HardwareConfig] = None

    def build_hardware(self):
        if self.config is not None:
            return build_accelerator(self.config.name, self.config)
        return build_accelerator(self.hardware)


def _lower(
    design: DesignPoint, rich_trace: RichTrace, hardware
) -> Tuple[Trace, Optional[DefoReport]]:
    policy = design.policy
    if policy == "dense":
        return lower_dense(rich_trace), None
    if policy == "spatial":
        return lower_spatial(rich_trace, attention_diff=design.attention_diff), None
    if policy == "temporal":
        return (
            lower_temporal(
                rich_trace,
                bypass_style=design.bypass,
                attention_diff=design.attention_diff,
            ),
            None,
        )
    if policy in ("defo", "defo+", "dynamic", "dynamic+"):
        report = run_defo(
            rich_trace,
            hardware,
            plus=policy.endswith("+"),
            dynamic=policy.startswith("dynamic"),
            bypass_style=design.bypass,
            attention_diff=design.attention_diff,
        )
        return report.trace, report
    if policy in ("ideal", "ideal+"):
        trace = run_ideal(
            rich_trace,
            hardware,
            plus=policy.endswith("+"),
            bypass_style=design.bypass,
            attention_diff=design.attention_diff,
        )
        return trace, None
    raise ValueError(f"unknown policy {policy!r}")


@dataclass
class DesignResult:
    """Hardware report plus the Defo report when the policy used one."""

    design: DesignPoint
    report: HardwareReport
    defo: Optional[DefoReport] = None


def evaluate_design(design: DesignPoint, rich_trace: RichTrace) -> DesignResult:
    hardware = design.build_hardware()
    trace, defo = _lower(design, rich_trace, hardware)
    report = hardware.run(trace)
    report.hardware = design.name
    return DesignResult(design=design, report=report, defo=defo)


def evaluate_designs(
    designs: List[DesignPoint], rich_trace: RichTrace
) -> Dict[str, DesignResult]:
    return {d.name: evaluate_design(d, rich_trace) for d in designs}


# -- the paper's comparison sets ---------------------------------------------

FIG13_DESIGNS: List[DesignPoint] = [
    DesignPoint("GPU", "GPU", "dense"),
    DesignPoint("ITC", "ITC", "dense"),
    DesignPoint("Diffy", "Diffy", "spatial"),
    # Fair-comparison Cambricon-D: attention differences + dependency check
    # integrated (paper Section VI-A), sign-mask dataflow native.
    DesignPoint("Cambricon-D", "Cambricon-D", "temporal", bypass="both"),
    DesignPoint("Ditto", "Ditto", "defo"),
    DesignPoint("Ditto+", "Ditto", "defo+"),
]

FIG15_DESIGNS: List[DesignPoint] = [
    DesignPoint("Org. Cam-D", "Cambricon-D", "temporal", bypass="sign_mask", attention_diff=False),
    DesignPoint("Cam-D & Attn. Diff.", "Cambricon-D", "temporal", bypass="sign_mask"),
    DesignPoint("Cam-D & Attn. Diff. & Defo", "Cambricon-D", "defo", bypass="sign_mask"),
    DesignPoint("Cam-D & Attn. Diff. & Defo+", "Cambricon-D", "defo+", bypass="sign_mask"),
    DesignPoint("Ditto", "Ditto", "defo"),
    DesignPoint("Ditto & Sign-mask", "Ditto", "defo", bypass="both"),
    DesignPoint("Ditto+", "Ditto", "defo+"),
    DesignPoint("Ditto+ & Sign-mask", "Ditto", "defo+", bypass="both"),
]

FIG16_DESIGNS: List[DesignPoint] = [
    DesignPoint("ITC", "ITC", "dense"),
    DesignPoint("DS", "", "temporal", attention_diff=False, config=DS_CONFIG),
    DesignPoint("DB", "", "temporal", attention_diff=False, config=DB_CONFIG),
    DesignPoint("DB&DS", "", "temporal", attention_diff=False, config=DBDS_CONFIG),
    DesignPoint("DB&DS&Attn", "", "temporal", config=DBDS_CONFIG),
    DesignPoint("Ditto", "Ditto", "defo"),
    DesignPoint("Ditto+", "Ditto", "defo+"),
]

FIG18_DESIGNS: List[DesignPoint] = [
    DesignPoint("ITC", "ITC", "dense"),
    DesignPoint("Ditto", "Ditto", "defo"),
    DesignPoint("Ideal-Ditto", "Ditto", "ideal"),
    DesignPoint("Ditto+", "Ditto", "defo+"),
    DesignPoint("Ideal-Ditto+", "Ditto", "ideal+"),
]
