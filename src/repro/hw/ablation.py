"""Design-space-exploration configurations (paper Fig. 16).

The paper decomposes Ditto hardware into its two mechanisms:

* **DS** (dynamic sparsity): a sparse accelerator - 8-bit MAC units with
  zero skipping but no bit-width reduction (SparTen / SpAtten style).
* **DB** (dynamic bit-width): a precision-scalable accelerator - 4-bit
  multiplier lanes without zero skipping (BitFusion / DRQ style).
* **DB&DS**: both mechanisms, i.e. the Ditto Compute Unit, but running the
  naive all-temporal schedule without the attention trick or Defo.

All variants keep the iso-area budget of Table III: the 8-bit-MAC design
fits the ITC's 27648 units, the 4-bit designs fit 39398 lanes.
"""

from __future__ import annotations

from .config import HardwareConfig

__all__ = ["DS_CONFIG", "DB_CONFIG", "DBDS_CONFIG"]

DS_CONFIG = HardwareConfig(
    name="DS",
    num_mults=27648,
    mult_bits=8,
    power_w=36.9,
    supports_zero_skip=True,
    supports_dyn_bitwidth=False,
)

DB_CONFIG = HardwareConfig(
    name="DB",
    num_mults=39398,
    mult_bits=4,
    power_w=33.6,
    supports_zero_skip=False,
    supports_dyn_bitwidth=True,
)

# DB&DS is exactly the Ditto Compute Unit.
DBDS_CONFIG = HardwareConfig(
    name="DB&DS",
    num_mults=39398,
    mult_bits=4,
    power_w=33.6,
    supports_zero_skip=True,
    supports_dyn_bitwidth=True,
)
