"""Analytic cycle/energy models of the evaluated accelerators.

Modelling level (deliberately matched to what decides the paper's results):

* **Compute** - an adder-tree design processes one 4-bit operand per
  multiplier lane and pairs two lanes (plus shifter) per 8-bit operand;
  zero operands are skipped when the Encoding Unit supports it.  Cycle count
  is effective lane-operations divided by lane count.
* **Memory** - a bandwidth model: bytes moved / (bytes per cycle).  Temporal
  difference processing moves extra bytes (previous input + partial-sum
  state), which is what turns some layers memory-bound (paper Fig. 8/16).
* **Pipelining** - Encoding Unit, Compute Unit and Vector Processing Unit
  overlap; a layer costs the max of its stage times (paper Section V-A).

The models consume hardware-facing :class:`~repro.core.trace.Trace` records.
``run`` and ``cycles_array`` operate on the trace's numpy columns directly -
one vectorized pass per design point instead of a Python loop over tens of
thousands of records - while ``layer_cycles`` keeps the per-record scalar
contract for custom/stub models and spot checks.  Any execution policy
(dense / Diffy spatial / naive temporal / Defo / ideal oracle) can be
evaluated on any hardware by lowering the rich trace accordingly.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.modes import ExecutionMode
from ..core.trace import DENSE_ID, MODES, LayerStep, Trace
from .config import EnergyModel, HardwareConfig, get_config
from .report import HardwareReport, LayerCycles

__all__ = [
    "AdderTreeAccelerator",
    "CambriconDAccelerator",
    "GPUModel",
    "build_accelerator",
]

_MODE_STRS = [str(mode) for mode in MODES]


class AdderTreeAccelerator:
    """Generic adder-tree accelerator: covers ITC, Diffy, Ditto, DS/DB.

    Behaviour is derived from the :class:`HardwareConfig` flags:

    * ``mult_bits=8`` - every operand costs one lane-op (ITC, DS ablation).
    * ``mult_bits=4`` - low-bit operands cost one lane-op, full-bit two.
    * ``supports_zero_skip`` - zero operands cost nothing (Ditto, DS).
    * otherwise zeros cost a low-bit operation (Diffy, DB ablation).
    """

    def __init__(self, config: HardwareConfig) -> None:
        self.config = config
        self.name = config.name

    # -- per-stage models (scalar contract) ---------------------------------
    def _lane_ops(self, step: LayerStep) -> Dict[str, float]:
        """Effective lane-operations split by operand class."""
        cfg = self.config
        total = step.macs * step.sub_ops
        if step.mode is ExecutionMode.DENSE:
            # Dense execution bypasses the Encoding Unit: every operand is
            # treated as a full 8-bit activation.
            high = float(total)
            return {"low": 0.0, "high": high}
        stats = step.stats
        zero_cost = 0.0 if cfg.supports_zero_skip else 1.0
        low = total * (stats.low_frac + stats.zero_frac * zero_cost)
        high = total * stats.high_frac
        return {"low": low, "high": high}

    def compute_cycles(self, step: LayerStep) -> float:
        cfg = self.config
        ops = self._lane_ops(step)
        if cfg.mult_bits >= 8:
            lane_ops = ops["low"] + ops["high"]
        else:
            lane_ops = ops["low"] + 2.0 * ops["high"]
        return lane_ops / cfg.num_mults

    def encode_cycles(self, step: LayerStep) -> float:
        if step.mode is ExecutionMode.DENSE:
            return 0.0
        # The Encoding Unit is sized for the Compute Unit's peak low-bit
        # throughput (paper Section V-A): one operand per lane per cycle.
        return step.data_elems / self.config.num_mults

    def vpu_cycles(self, step: LayerStep) -> float:
        # Vector lanes are provisioned at 1/8 of the multiplier count.
        return step.vpu_elems / max(self.config.num_mults / 8.0, 1.0)

    def memory_cycles(self, step: LayerStep) -> float:
        return step.bytes_total / self.config.dram_bw_bytes_per_cycle

    # -- energy (scalar contract) ------------------------------------------
    def _energy(self, step: LayerStep, cycles: float) -> Dict[str, float]:
        cfg = self.config
        e: EnergyModel = cfg.energy
        ops = self._lane_ops(step)
        if cfg.mult_bits >= 8:
            compute = (ops["low"] + ops["high"]) * e.mult8_pj
        else:
            compute = ops["low"] * e.mult4_pj + ops["high"] * e.mult8_pj
        breakdown = {
            "compute": compute,
            "encode": (
                0.0
                if step.mode is ExecutionMode.DENSE
                else step.data_elems * e.encode_pj
            ),
            "vpu": step.vpu_elems * e.vpu_pj,
            "defo": e.defo_pj,
            "sram": step.bytes_total * e.sram_byte_pj,
            "dram": step.bytes_total * e.dram_byte_pj,
            "leak": cycles * cfg.num_mults * e.leak_per_mult_cycle_pj,
        }
        return breakdown

    # -- vectorized column models -------------------------------------------
    def _lane_ops_arrays(self, trace: Trace):
        """``(low, high, dense_mask, total)`` lane-op columns for a trace."""
        cfg = self.config
        total = (trace.col("macs") * trace.col("sub_ops")).astype(np.float64)
        dense = trace.col("mode") == DENSE_ID
        elems = trace.col("st_total").astype(np.float64)
        safe = np.where(elems > 0.0, elems, 1.0)
        zero_frac = trace.col("st_zero") / safe
        low_frac = trace.col("st_low") / safe
        high_frac = trace.col("st_high") / safe
        zero_cost = 0.0 if cfg.supports_zero_skip else 1.0
        low = np.where(dense, 0.0, total * (low_frac + zero_frac * zero_cost))
        high = np.where(dense, total, total * high_frac)
        return low, high, dense, total

    def compute_cycles_array(self, trace: Trace) -> np.ndarray:
        cfg = self.config
        low, high, _, _ = self._lane_ops_arrays(trace)
        if cfg.mult_bits >= 8:
            lane_ops = low + high
        else:
            lane_ops = low + 2.0 * high
        return lane_ops / cfg.num_mults

    def encode_cycles_array(self, trace: Trace) -> np.ndarray:
        dense = trace.col("mode") == DENSE_ID
        return np.where(dense, 0.0, trace.col("data_elems") / self.config.num_mults)

    def vpu_cycles_array(self, trace: Trace) -> np.ndarray:
        return trace.col("vpu_elems") / max(self.config.num_mults / 8.0, 1.0)

    def memory_cycles_array(self, trace: Trace) -> np.ndarray:
        return trace.bytes_total() / self.config.dram_bw_bytes_per_cycle

    def cycles_array(self, trace: Trace) -> np.ndarray:
        """Per-record pipelined cycle counts (max over the four stages)."""
        return np.maximum(
            np.maximum(
                self.compute_cycles_array(trace), self.memory_cycles_array(trace)
            ),
            np.maximum(
                self.encode_cycles_array(trace), self.vpu_cycles_array(trace)
            ),
        )

    def _energy_arrays(
        self, trace: Trace, cycles: np.ndarray
    ) -> Dict[str, np.ndarray]:
        cfg = self.config
        e: EnergyModel = cfg.energy
        low, high, dense, total = self._lane_ops_arrays(trace)
        if cfg.mult_bits >= 8:
            compute = (low + high) * e.mult8_pj
        else:
            compute = low * e.mult4_pj + high * e.mult8_pj
        bytes_total = trace.bytes_total()
        n = len(trace)
        return {
            "compute": compute,
            "encode": np.where(dense, 0.0, trace.col("data_elems") * e.encode_pj),
            "vpu": trace.col("vpu_elems") * e.vpu_pj,
            "defo": np.full(n, e.defo_pj),
            "sram": bytes_total * e.sram_byte_pj,
            "dram": bytes_total * e.dram_byte_pj,
            "leak": cycles * cfg.num_mults * e.leak_per_mult_cycle_pj,
        }

    # -- driver ------------------------------------------------------------
    def layer_cycles(self, step: LayerStep) -> LayerCycles:
        compute = self.compute_cycles(step)
        memory = self.memory_cycles(step)
        encode = self.encode_cycles(step)
        vpu = self.vpu_cycles(step)
        cycles = max(compute, memory, encode, vpu)
        return LayerCycles(
            layer_name=step.layer_name,
            step_index=step.step_index,
            mode=str(step.mode),
            compute_cycles=compute,
            memory_cycles=memory,
            encode_cycles=encode,
            vpu_cycles=vpu,
            energy_pj=self._energy(step, cycles),
            bytes_moved=step.bytes_total,
        )

    def run(self, trace: Trace) -> HardwareReport:
        compute = self.compute_cycles_array(trace)
        memory = self.memory_cycles_array(trace)
        encode = self.encode_cycles_array(trace)
        vpu = self.vpu_cycles_array(trace)
        cycles = np.maximum(np.maximum(compute, memory), np.maximum(encode, vpu))
        return HardwareReport.from_arrays(
            hardware=self.name,
            layer_names=trace.layer_names(),
            layer_ids=trace.col("layer_id"),
            step_index=trace.col("step_index"),
            modes=_MODE_STRS,
            mode_ids=trace.col("mode"),
            compute=compute,
            memory=memory,
            encode=encode,
            vpu=vpu,
            energy=self._energy_arrays(trace, cycles),
            bytes_moved=trace.bytes_total(),
        )


class CambriconDAccelerator(AdderTreeAccelerator):
    """Cambricon-D: normal A4W8 PEs plus dedicated A8W8 outlier PEs.

    Differences processed on the normal array (no zero skipping); full
    bit-width differences are routed to the outlier PEs, so throughput is
    ``max(normal_work / normal_lanes, outlier_work / outlier_lanes)``.
    Original-activation (dense) execution must run entirely on the outlier
    array - the normal PEs lack the lane-pairing shifters of the Ditto PE -
    which is exactly the paper's criticism of outlier-PE designs
    (Section VI-B, Fig. 15).
    """

    def compute_cycles(self, step: LayerStep) -> float:
        cfg = self.config
        if step.mode is ExecutionMode.DENSE:
            return (step.macs * step.sub_ops) / cfg.outlier_mults
        ops = self._lane_ops(step)
        normal = ops["low"] / cfg.num_mults
        outlier = ops["high"] / cfg.outlier_mults
        return max(normal, outlier)

    def compute_cycles_array(self, trace: Trace) -> np.ndarray:
        cfg = self.config
        low, high, dense, total = self._lane_ops_arrays(trace)
        routed = np.maximum(low / cfg.num_mults, high / cfg.outlier_mults)
        return np.where(dense, total / cfg.outlier_mults, routed)

    def _energy(self, step: LayerStep, cycles: float) -> Dict[str, float]:
        breakdown = super()._energy(step, cycles)
        if step.mode is ExecutionMode.DENSE:
            breakdown["compute"] = (
                step.macs * step.sub_ops * self.config.energy.mult8_pj
            )
        return breakdown

    def _energy_arrays(
        self, trace: Trace, cycles: np.ndarray
    ) -> Dict[str, np.ndarray]:
        breakdown = super()._energy_arrays(trace, cycles)
        dense = trace.col("mode") == DENSE_ID
        total = (trace.col("macs") * trace.col("sub_ops")).astype(np.float64)
        breakdown["compute"] = np.where(
            dense, total * self.config.energy.mult8_pj, breakdown["compute"]
        )
        return breakdown


class GPUModel:
    """Roofline-with-launch-overhead model of an A100-class GPU.

    Small diffusion layers underutilize GPU tensor cores and pay a per-kernel
    launch cost; both effects are modelled with two constants.  The GPU only
    serves as the normalization anchor of Fig. 13, so fidelity beyond "slower
    and far less energy-efficient than the dedicated designs" is not needed.
    """

    name = "GPU"

    def __init__(
        self,
        peak_macs_per_cycle: float = 312000.0,  # INT8 TC peak at 1 GHz equiv.
        # Utilization reflects the small-kernel regime of diffusion denoisers
        # (the paper's GPU baseline also runs far below peak on these layers).
        utilization: float = 0.06,
        launch_cycles: float = 25.0,
        power_w: float = 400.0,
        freq_ghz: float = 1.0,
    ) -> None:
        self.peak_macs_per_cycle = peak_macs_per_cycle
        self.utilization = utilization
        self.launch_cycles = launch_cycles
        self.power_w = power_w
        self.freq_ghz = freq_ghz

    def _compute_array(self, trace: Trace) -> np.ndarray:
        return (
            trace.col("macs") / (self.peak_macs_per_cycle * self.utilization)
            + self.launch_cycles
        )

    def cycles_array(self, trace: Trace) -> np.ndarray:
        return self._compute_array(trace)

    def layer_cycles(self, step: LayerStep) -> LayerCycles:
        compute = (
            step.macs / (self.peak_macs_per_cycle * self.utilization)
            + self.launch_cycles
        )
        cycles = compute
        seconds = cycles / (self.freq_ghz * 1e9)
        energy_pj = {"gpu": self.power_w * seconds * 1e12}
        return LayerCycles(
            layer_name=step.layer_name,
            step_index=step.step_index,
            mode="dense",
            compute_cycles=compute,
            memory_cycles=0.0,
            energy_pj=energy_pj,
            bytes_moved=step.bytes_in + step.bytes_weight + step.bytes_out,
        )

    def run(self, trace: Trace) -> HardwareReport:
        compute = self._compute_array(trace)
        n = len(trace)
        seconds = compute / (self.freq_ghz * 1e9)
        zeros = np.zeros(n)
        # The GPU model executes the original activations: no difference
        # traffic, so bytes_extra is excluded from bytes moved.
        bytes_moved = (
            trace.col("bytes_in") + trace.col("bytes_weight") + trace.col("bytes_out")
        )
        return HardwareReport.from_arrays(
            hardware=self.name,
            layer_names=trace.layer_names(),
            layer_ids=trace.col("layer_id"),
            step_index=trace.col("step_index"),
            modes=["dense"],
            mode_ids=np.zeros(n, dtype=np.int64),
            compute=compute,
            memory=zeros,
            encode=zeros,
            vpu=zeros,
            energy={"gpu": self.power_w * seconds * 1e12},
            bytes_moved=bytes_moved,
        )


def build_accelerator(name: str, config: Optional[HardwareConfig] = None):
    """Factory for the Table III hardware models (plus the GPU anchor)."""
    if name == "GPU":
        return GPUModel()
    config = config or get_config(name)
    if name == "Cambricon-D":
        return CambriconDAccelerator(config)
    return AdderTreeAccelerator(config)
