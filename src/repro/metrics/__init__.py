"""Image-quality metrics: FID / IS / CLIP-score proxies, PSNR/SNR."""

from .features import FeatureExtractor
from .fid import fid_score, frechet_distance, gaussian_stats
from .scores import clip_score, inception_score, psnr, snr_db

__all__ = [
    "FeatureExtractor",
    "gaussian_stats",
    "frechet_distance",
    "fid_score",
    "inception_score",
    "clip_score",
    "psnr",
    "snr_db",
]
