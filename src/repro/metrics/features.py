"""Fixed random-projection feature extractor (Inception-v3 stand-in).

FID and Inception Score are defined over a *fixed* feature space; which
network provides it matters for comparability with published numbers, not
for the internal comparison Table II makes (FP32 pipeline vs Ditto pipeline
on the same generator).  We use a frozen two-stage random convolutional
feature extractor with average pooling: deterministic, fast, and sensitive
to both low-level statistics and spatial structure.
"""

from __future__ import annotations

import numpy as np

from ..nn.functional import avg_pool2d, conv2d, silu

__all__ = ["FeatureExtractor"]


class FeatureExtractor:
    """Frozen random CNN mapping image batches to feature vectors."""

    def __init__(
        self,
        image_channels: int = 3,
        feature_dim: int = 64,
        hidden: int = 32,
        seed: int = 1234,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.image_channels = image_channels
        self.feature_dim = feature_dim
        k1_fan = image_channels * 9
        self.w1 = rng.normal(0.0, 1.0 / np.sqrt(k1_fan), (hidden, image_channels, 3, 3))
        k2_fan = hidden * 9
        self.w2 = rng.normal(0.0, 1.0 / np.sqrt(k2_fan), (hidden, hidden, 3, 3))
        self.proj = rng.normal(0.0, 1.0 / np.sqrt(2 * hidden), (feature_dim, 2 * hidden))
        # Fixed "classifier" head for the Inception-Score proxy.
        self.head = rng.normal(0.0, 1.0 / np.sqrt(feature_dim), (10, feature_dim))

    def features(self, images: np.ndarray) -> np.ndarray:
        """``(N, C, H, W)`` images in [-1, 1] -> ``(N, feature_dim)``."""
        if images.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) images, got {images.shape}")
        if images.shape[1] != self.image_channels:
            raise ValueError(
                f"expected {self.image_channels} channels, got {images.shape[1]}"
            )
        h = silu(conv2d(images, self.w1, padding=1))
        if h.shape[2] % 2 == 0 and h.shape[2] >= 4:
            h = avg_pool2d(h, 2)
        h = silu(conv2d(h, self.w2, padding=1))
        mean_pool = h.mean(axis=(2, 3))
        # Mean + dispersion pooling keeps second-order information.
        std_pool = h.std(axis=(2, 3))
        pooled = np.concatenate([mean_pool, std_pool], axis=1)
        return pooled @ self.proj.T

    def logits(self, images: np.ndarray) -> np.ndarray:
        """Class logits of the proxy classifier head (for IS)."""
        return self.features(images) @ self.head.T
