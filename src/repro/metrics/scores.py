"""Inception-Score and CLIP-Score proxies plus pixel-level metrics.

* :func:`inception_score` - IS over the proxy classifier head
  (``exp(E_x KL(p(y|x) || p(y)))``), higher is better.
* :func:`clip_score` - cosine alignment between toy text embeddings and
  image features projected into the same space, mirroring CLIPScore's
  ``max(0, cos) * 100 / 100`` convention (reported in [0, 1] like Table II).
* :func:`psnr` / :func:`snr_db` - pixel-level fidelity between two
  pipelines' outputs (used to demonstrate FP32-vs-Ditto closeness sample by
  sample, a stronger check than the distribution metrics).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..models.text_encoder import ToyTextEncoder
from .features import FeatureExtractor

__all__ = ["inception_score", "clip_score", "psnr", "snr_db"]


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def inception_score(
    images: np.ndarray,
    extractor: Optional[FeatureExtractor] = None,
    eps: float = 1e-12,
) -> float:
    """IS proxy: ``exp(mean_x KL(p(y|x) || p(y)))`` over the frozen head."""
    extractor = extractor or FeatureExtractor(image_channels=images.shape[1])
    probs = _softmax(extractor.logits(images))
    marginal = probs.mean(axis=0, keepdims=True)
    kl = np.sum(probs * (np.log(probs + eps) - np.log(marginal + eps)), axis=1)
    return float(np.exp(kl.mean()))


def clip_score(
    images: np.ndarray,
    prompts: Sequence[str],
    extractor: Optional[FeatureExtractor] = None,
    encoder: Optional[ToyTextEncoder] = None,
    seed: int = 77,
) -> float:
    """CLIP-score proxy: mean clipped cosine between text and image embeds."""
    if len(prompts) != images.shape[0]:
        raise ValueError("one prompt per image required")
    extractor = extractor or FeatureExtractor(image_channels=images.shape[1])
    encoder = encoder or ToyTextEncoder()
    image_embed = extractor.features(images)
    text_tokens = encoder.encode(list(prompts))  # (N, T, D)
    text_embed = text_tokens.mean(axis=1)
    # Fixed projection aligning the two embedding widths.
    rng = np.random.default_rng(seed)
    proj = rng.normal(
        0.0, 1.0 / np.sqrt(text_embed.shape[1]),
        (image_embed.shape[1], text_embed.shape[1]),
    )
    text_proj = text_embed @ proj.T
    num = np.sum(image_embed * text_proj, axis=1)
    den = np.linalg.norm(image_embed, axis=1) * np.linalg.norm(text_proj, axis=1)
    cos = np.where(den > 0, num / np.maximum(den, 1e-12), 0.0)
    return float(np.mean(np.clip(cos, 0.0, None)))


def psnr(reference: np.ndarray, test: np.ndarray, data_range: float = 2.0) -> float:
    """Peak signal-to-noise ratio in dB ([-1, 1] images -> range 2.0)."""
    if reference.shape != test.shape:
        raise ValueError("shape mismatch")
    mse = float(np.mean((reference - test) ** 2))
    if mse == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range ** 2 / mse))


def snr_db(reference: np.ndarray, test: np.ndarray) -> float:
    """Signal-to-noise ratio of ``test`` against ``reference`` in dB."""
    if reference.shape != test.shape:
        raise ValueError("shape mismatch")
    noise = float(np.sum((reference - test) ** 2))
    signal = float(np.sum(reference ** 2))
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return float(10.0 * np.log10(signal / noise))
