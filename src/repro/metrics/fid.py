"""Frechet Inception Distance over the proxy feature space (Table II).

Implements the exact Frechet distance between the Gaussian fits of two
feature populations:

    FID = |mu_1 - mu_2|^2 + Tr(S_1 + S_2 - 2 (S_1 S_2)^{1/2})

computed with the usual stabilized matrix square root (scipy ``sqrtm``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import linalg

from .features import FeatureExtractor

__all__ = ["gaussian_stats", "frechet_distance", "fid_score"]


def gaussian_stats(features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Mean and covariance of a feature population ``(N, D)``."""
    if features.ndim != 2 or features.shape[0] < 2:
        raise ValueError("need at least 2 feature vectors of shape (N, D)")
    mu = features.mean(axis=0)
    sigma = np.cov(features, rowvar=False)
    return mu, np.atleast_2d(sigma)


def _sqrtm(mat: np.ndarray) -> np.ndarray:
    """Matrix square root, tolerant of scipy API differences."""
    result = linalg.sqrtm(mat)
    return result[0] if isinstance(result, tuple) else result


def frechet_distance(
    mu1: np.ndarray, sigma1: np.ndarray, mu2: np.ndarray, sigma2: np.ndarray,
    eps: float = 1e-6,
) -> float:
    """Frechet distance between two Gaussians."""
    diff = mu1 - mu2
    covmean = _sqrtm(sigma1 @ sigma2)
    if not np.isfinite(covmean).all():
        offset = np.eye(sigma1.shape[0]) * eps
        covmean = _sqrtm((sigma1 + offset) @ (sigma2 + offset))
    if np.iscomplexobj(covmean):
        covmean = covmean.real
    value = diff @ diff + np.trace(sigma1) + np.trace(sigma2) - 2.0 * np.trace(covmean)
    return float(max(value, 0.0))


def fid_score(
    images_a: np.ndarray,
    images_b: np.ndarray,
    extractor: Optional[FeatureExtractor] = None,
) -> float:
    """FID between two image batches ``(N, C, H, W)`` in [-1, 1]."""
    extractor = extractor or FeatureExtractor(image_channels=images_a.shape[1])
    feats_a = extractor.features(images_a)
    feats_b = extractor.features(images_b)
    return frechet_distance(*gaussian_stats(feats_a), *gaussian_stats(feats_b))
