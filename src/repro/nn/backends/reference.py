"""The ``reference`` backend: the pure-numpy kernels, verbatim.

Every op delegates straight to :mod:`repro.nn.functional`, so this backend
*is* the pre-PR-10 behaviour - the bit-exactness anchor the golden
equivalence suite and the serving ``--verify`` references are defined
against.  It is always available and is what unavailable backends degrade
to.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import functional as F
from . import ComputeBackend


class ReferenceBackend(ComputeBackend):
    """Pure-numpy dispatch: batched ``np.matmul`` GEMMs, blocked im2col."""

    name = "reference"

    def linear(
        self, x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return F.linear(x, weight, bias)

    def conv2d_from_cols_t(
        self,
        cols_t: np.ndarray,
        weight: np.ndarray,
        out_hw: Tuple[int, int],
        bias: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return F.conv2d_from_cols_t(cols_t, weight, out_hw, bias)
