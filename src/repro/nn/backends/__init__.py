"""Pluggable compute backends for the GEMM / im2col hot path (PR 10).

Every integer GEMM the quantized layers execute - ``conv2d_from_cols_t``,
``linear``, the two attention activation x activation matmuls - plus the
float conv/linear calibration paths and the ``im2col_t`` unfold, dispatch
through one small interface, :class:`ComputeBackend`.  Two implementations
ship:

* ``reference`` - the pure-numpy kernels in :mod:`repro.nn.functional`,
  verbatim.  This is the default and the bit-exactness anchor.
* ``blas-batched`` - reshapes the ``(out_c, dot) @ (N, dot, P)`` batched
  conv products and the stacked ``linear`` products into single large 2-D
  GEMMs so one BLAS call sees the whole batch (see
  :mod:`repro.nn.backends.blas_batched`).

**Exactness obligation.** A backend may reorder floating-point summation
freely *only because* every quantized GEMM runs behind the provable
float32-exactness gate from PR 2 (``dot_len * 2^(2(bits-1)) < 2^24``; the
float64 path is exact up to ``2^53`` by the same argument).  Integer-valued
operands under those bounds make every partial sum exactly representable,
so any accumulation order produces identical bits.  The *float* calibration
paths carry no such guarantee - a backend may move them in the last ulp,
which is exactly why backend selection is a cache-key axis
(``engine_key`` / ``engine_build_key`` / ``plan_key``): results from
different backends never alias.

**Selection & fallback.** :func:`repro.defaults.resolve_backend` resolves
the *requested* name (override > spec pin > ``$REPRO_BACKEND`` > default).
:func:`probe_backend` then degrades an unavailable or unknown backend to
``reference`` with a recorded human-readable reason; the cache key keeps
the requested name either way, so a degraded run never aliases a native
one.  The active backend is per-thread: engines wrap their runs in
:func:`use_backend`, and the layers ask :func:`active` at dispatch time.

See ``docs/backends.md`` for the full contract.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Optional, Tuple, Type

import numpy as np

from ...defaults import resolve_backend
from .. import functional as F

__all__ = [
    "ComputeBackend",
    "ReferenceBackend",
    "BlasBatchedBackend",
    "register_backend",
    "registered_backends",
    "available_backends",
    "probe_backend",
    "get_backend",
    "active",
    "use_backend",
]


class ComputeBackend:
    """The dispatch surface the quantized and float layers call into.

    Implementations MUST be stateless apart from per-thread scratch (engine
    objects pickle through the result cache holding only the backend
    *name*), and MUST be bit-exact for integer-valued operands within the
    exact-f32 gate bounds - that is the whole license to reorder the math.
    ``im2col_t`` output must be C-contiguous in the reference
    ``(N, C*k*k, positions)`` layout: the gate reasoning and the
    spatial-difference stats both assume it.
    """

    name = "abstract"

    @classmethod
    def probe(cls) -> Tuple[bool, Optional[str]]:
        """``(available, reason)``: why this backend cannot run here (if so)."""
        return True, None

    # -- integer/float GEMM surface -----------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Batched activation x activation product (attention QK / PV)."""
        return np.matmul(a, b)

    def linear(
        self, x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None
    ) -> np.ndarray:
        raise NotImplementedError

    def conv2d_from_cols_t(
        self,
        cols_t: np.ndarray,
        weight: np.ndarray,
        out_hw: Tuple[int, int],
        bias: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        raise NotImplementedError

    # -- unfold + composed float conv ---------------------------------------
    def im2col_t(
        self,
        x: np.ndarray,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        out: Optional[np.ndarray] = None,
    ):
        return F.im2col_t(x, kernel, stride, padding, out=out)

    def conv2d(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        stride: int = 1,
        padding: int = 0,
    ) -> np.ndarray:
        """Float conv path, composed from this backend's unfold + GEMM."""
        kernel = weight.shape[2]
        n, c, h, w = x.shape
        out_h = (h + 2 * padding - kernel) // stride + 1
        out_w = (w + 2 * padding - kernel) // stride + 1
        cols_t, out_hw = self.im2col_t(
            x,
            kernel,
            stride,
            padding,
            out=F.scratch_buffer(
                "conv2d-cols", (n, c * kernel * kernel, out_h * out_w), x.dtype
            ),
        )
        return self.conv2d_from_cols_t(cols_t, weight, out_hw, bias)

    # -- accounting ----------------------------------------------------------
    def scratch_nbytes(self) -> int:
        """Backend-private scratch held *outside* the shared pool.

        Both shipped backends route their workspaces through
        ``repro.scratch.scratch_buffer``, which ``scratch_pool_bytes()``
        already counts, so they report 0 here; a backend holding its own
        buffers must report them so ``estimate_row_footprint`` (and thus
        ``--pool-budget-mb``) stays honest.
        """
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} {self.name!r}>"


from .blas_batched import BlasBatchedBackend  # noqa: E402
from .reference import ReferenceBackend  # noqa: E402

_REGISTRY: Dict[str, Type[ComputeBackend]] = {}
_INSTANCES: Dict[str, ComputeBackend] = {}
_PROBES: Dict[str, Tuple[bool, Optional[str]]] = {}
_ACTIVE = threading.local()


def register_backend(name: str, cls: Type[ComputeBackend]) -> None:
    """Add a backend to the registry (tests register failing probes here)."""
    _REGISTRY[name] = cls
    _INSTANCES.pop(name, None)
    _PROBES.pop(name, None)


register_backend("reference", ReferenceBackend)
register_backend("blas-batched", BlasBatchedBackend)


def registered_backends() -> Tuple[str, ...]:
    """Every registered backend name, available or not."""
    return tuple(sorted(_REGISTRY))


def available_backends() -> Tuple[str, ...]:
    """Registered backends whose availability probe passes."""
    return tuple(name for name in registered_backends() if _probe(name)[0])


def _probe(name: str) -> Tuple[bool, Optional[str]]:
    cached = _PROBES.get(name)
    if cached is None:
        try:
            cached = _REGISTRY[name].probe()
        except Exception as exc:  # probe itself blew up: not available
            cached = (False, f"probe raised {type(exc).__name__}: {exc}")
        _PROBES[name] = cached
    return cached


def probe_backend(name: Optional[str] = None) -> Tuple[str, Optional[str]]:
    """``(effective_name, fallback_reason)`` for a requested backend.

    Unknown names and backends whose probe fails degrade to ``reference``;
    the reason says why.  ``reason`` is ``None`` when the request runs
    natively.
    """
    requested = resolve_backend(None, name)
    if requested not in _REGISTRY:
        return "reference", f"unknown backend {requested!r}, using reference"
    ok, reason = _probe(requested)
    if ok:
        return requested, None
    return "reference", f"backend {requested!r} unavailable ({reason}), using reference"


def get_backend(name: Optional[str] = None) -> ComputeBackend:
    """The (shared, stateless) backend instance a request resolves to."""
    effective, _ = probe_backend(name)
    instance = _INSTANCES.get(effective)
    if instance is None:
        instance = _REGISTRY[effective]()
        _INSTANCES[effective] = instance
    return instance


def active() -> ComputeBackend:
    """This thread's active backend (engines set it via :func:`use_backend`).

    Outside any ``use_backend`` scope, falls back to the environment-level
    resolution so standalone layer calls (tests, notebooks) honour
    ``REPRO_BACKEND`` too.
    """
    backend = getattr(_ACTIVE, "backend", None)
    if backend is not None:
        return backend
    return get_backend(None)


@contextmanager
def use_backend(name: Optional[str]):
    """Make ``name`` (after fallback) this thread's active backend."""
    previous = getattr(_ACTIVE, "backend", None)
    _ACTIVE.backend = get_backend(name)
    try:
        yield _ACTIVE.backend
    finally:
        _ACTIVE.backend = previous
