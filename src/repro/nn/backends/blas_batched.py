"""The ``blas-batched`` backend: batched products as single 2-D GEMMs.

numpy dispatches a 3-d ``(out_c, dot) @ (N, dot, P)`` matmul as ``N``
separate BLAS GEMM calls; for the serving batch sizes that means ``N``
fixed per-call overheads and ``N`` chances for the (single-threaded on the
dev container, multi-threaded on real hosts) BLAS to see a matrix too small
to tile well.  This backend gathers the batch into one ``(dot, N*P)``
operand - contiguous ``P``-long position runs, staged through the shared
per-thread scratch pool so ``scratch_pool_bytes()`` (and therefore
``estimate_row_footprint`` / ``--pool-budget-mb``) accounts it - issues a
single 2-D GEMM, and scatters the ``(out_c, N*P)`` product back to the
C-contiguous ``(N, out_c, P)`` layout the layers expect.  ``linear`` gets
the same treatment by flattening the leading axes.  A thread-per-batch-row
variant would split exactly this gather/GEMM/scatter structure; on the
single-core container the fused GEMM alone is the point.

Bit-exactness: the quantized GEMMs run behind the exact-f32 gate, so the
re-blocked BLAS accumulation order cannot change a single bit (every
partial sum is an exactly-representable integer).  The *float* calibration
products may move in the last ulp relative to ``reference`` - which is why
backend selection is a cache-key axis and cross-backend results never
alias.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import functional as F
from . import ComputeBackend


class BlasBatchedBackend(ComputeBackend):
    """Fuse batched conv/linear products into single large 2-D GEMMs."""

    name = "blas-batched"

    @classmethod
    def probe(cls) -> Tuple[bool, Optional[str]]:
        """A tiny fused-GEMM self-check; degrade to reference if it fails."""
        try:
            a = np.arange(6, dtype=np.float32).reshape(2, 3)
            b = np.arange(12, dtype=np.float32).reshape(3, 4)
            if not np.array_equal(a @ b, np.einsum("ij,jk->ik", a, b)):
                return False, "fused 2-D GEMM self-check mismatch"
        except Exception as exc:
            return False, f"GEMM self-check failed: {type(exc).__name__}: {exc}"
        return True, None

    def linear(
        self, x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if x.ndim <= 2 or not x.flags.c_contiguous:
            # 2-d inputs are already one GEMM; non-contiguous stacks would
            # need a compacting copy that the batched path avoids.
            return F.linear(x, weight, bias)
        lead = x.shape[:-1]
        # Free on C-contiguous activations: one (rows, in) view of the stack.
        # repro-lint: assume[c-contiguous]
        flat = x.reshape(-1, x.shape[-1])
        out = flat @ weight.T
        if bias is not None:
            out = out + bias
        return out.reshape(lead + (weight.shape[0],))

    def conv2d_from_cols_t(
        self,
        cols_t: np.ndarray,
        weight: np.ndarray,
        out_hw: Tuple[int, int],
        bias: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        flat_w = weight if weight.ndim == 2 else weight.reshape(weight.shape[0], -1)
        n, dot, positions = cols_t.shape
        if not cols_t.flags.c_contiguous:
            return F.conv2d_from_cols_t(cols_t, weight, out_hw, bias)
        if n == 1:
            # (1, dot, P) -> (dot, P) is a free view: batch 1 *is* 2-D.
            # repro-lint: assume[c-contiguous]
            cols2d = cols_t.reshape(dot, positions)
        else:
            # Gather (N, dot, P) -> (dot, N*P): N contiguous P-runs per
            # feature row, staged in the shared pool so the serving memory
            # accounting sees it.
            cols2d = F.scratch_buffer("blas-cols2d", (dot, n * positions), cols_t.dtype)
            np.copyto(cols2d.reshape(dot, n, positions).transpose(1, 0, 2), cols_t)
        out2d = np.matmul(flat_w, cols2d)
        if n == 1:
            out = out2d.reshape(1, flat_w.shape[0], positions)
        else:
            # Scatter (out_c, N*P) back to the C-contiguous (N, out_c, P)
            # layout conv2d_from_cols_t promises downstream consumers.
            out = np.empty((n, flat_w.shape[0], positions), dtype=out2d.dtype)
            np.copyto(
                out, out2d.reshape(flat_w.shape[0], n, positions).transpose(1, 0, 2)
            )
        if bias is not None:
            out += bias[:, None]
        return out.reshape(n, flat_w.shape[0], *out_hw)
