"""Float (FP32-reference) layers used to assemble the denoising models.

Layers fall into two classes that matter to Ditto:

* **linear layers** (:class:`Linear`, :class:`Conv2d`) - candidates for
  temporal/spatial difference processing; the quantizer swaps them for
  quantized wrappers.
* **non-linear functions** (:class:`SiLU`, :class:`GELU`, :class:`GroupNorm`,
  :class:`LayerNorm`, :class:`Softmax`) - these force difference/summation
  boundaries in Defo's static analysis (Section IV-B of the paper).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from . import backends
from . import functional as F
from .module import Module, Parameter

__all__ = [
    "Linear",
    "Conv2d",
    "GroupNorm",
    "LayerNorm",
    "SiLU",
    "GELU",
    "Softmax",
    "Identity",
    "Sequential",
    "ModuleList",
    "AvgPool2d",
    "Upsample",
    "Downsample",
]


def _kaiming(rng: np.random.Generator, shape, fan_in: int) -> np.ndarray:
    # math.sqrt: same correctly-rounded double as np.sqrt (weights are
    # bit-identical) without minting a strong np.float64 scalar (NEP 50).
    scale = 1.0 / math.sqrt(max(fan_in, 1))
    return rng.uniform(-scale, scale, size=shape)


class Linear(Module):
    """Fully-connected layer, a primary Ditto difference-processing target."""

    is_linear_op = True

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming(rng, (out_features, in_features), in_features))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        return backends.active().linear(x, self.weight.data, bias)

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}"


class Conv2d(Module):
    """2-D convolution, a primary Ditto difference-processing target."""

    is_linear_op = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            _kaiming(rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in)
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        return backends.active().conv2d(
            x, self.weight.data, bias, self.stride, self.padding
        )

    def extra_repr(self) -> str:
        return (
            f"in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding}"
        )


class GroupNorm(Module):
    """GroupNorm; a non-linear boundary for Defo."""

    is_nonlinear = True

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(np.ones(num_channels))
        self.bias = Parameter(np.zeros(num_channels))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.group_norm(x, self.num_groups, self.weight.data, self.bias.data, self.eps)


class LayerNorm(Module):
    """LayerNorm over the trailing dim; a non-linear boundary for Defo."""

    is_nonlinear = True

    def __init__(self, dim: int, eps: float = 1e-5, affine: bool = True) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones(dim))
            self.bias = Parameter(np.zeros(dim))
        else:
            self.weight = None
            self.bias = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        weight = self.weight.data if self.weight is not None else None
        bias = self.bias.data if self.bias is not None else None
        return F.layer_norm(x, weight, bias, self.eps)


class SiLU(Module):
    is_nonlinear = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.silu(x)


class GELU(Module):
    is_nonlinear = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.gelu(x)


class Softmax(Module):
    is_nonlinear = True

    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.softmax(x, self.axis)


class Identity(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x


class Sequential(Module):
    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            self.register_module(name, module)
            self._order.append(name)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __iter__(self):
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)


class ModuleList(Module):
    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._order: List[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        name = str(len(self._order))
        self.register_module(name, module)
        self._order.append(name)

    def __iter__(self):
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]


class AvgPool2d(Module):
    def __init__(self, kernel: int = 2) -> None:
        super().__init__()
        self.kernel = kernel

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.avg_pool2d(x, self.kernel)


class Upsample(Module):
    """Nearest-neighbour upsample followed by a smoothing conv."""

    def __init__(self, channels: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.scale = 2
        self.conv = Conv2d(channels, channels, 3, padding=1, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.conv(F.upsample_nearest(x, self.scale))


class Downsample(Module):
    """Stride-2 conv downsample as used by DDPM/LDM UNets."""

    def __init__(self, channels: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.conv = Conv2d(channels, channels, 3, stride=2, padding=1, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.conv(x)
