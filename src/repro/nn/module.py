"""Minimal module system for pure-numpy neural network inference.

This is the foundation the whole reproduction stands on: every denoising
model in :mod:`repro.models` is assembled from :class:`Module` subclasses, and
the Ditto machinery in :mod:`repro.core` discovers layers through the module
tree (``named_modules``) and observes activations through forward hooks.

The design intentionally mirrors the small, explicit subset of
``torch.nn.Module`` that the paper's tooling relies on (parameter registry,
submodule registry, hooks) without any autograd - the reproduction only ever
runs inference.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

import numpy as np

__all__ = ["Parameter", "Module"]


class Parameter:
    """A named tensor owned by a :class:`Module`.

    Parameters are thin wrappers around ``numpy.ndarray`` so that the
    quantization stack can tell weights apart from transient activations when
    walking a module tree.
    """

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=np.float64)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.data.shape})"


HookFn = Callable[["Module", Tuple, np.ndarray], None]


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; assignment registers them automatically, exactly like the
    PyTorch convention the paper's hook-based simulator builds on.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_forward_hooks", [])

    # -- registration ----------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register ``module`` under ``name`` (used by containers)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal --------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, module in self._modules.items():
            sub_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_parameters(sub_prefix)

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, module in self._modules.items():
            sub_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(sub_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the subtree."""
        return sum(p.size for p in self.parameters())

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for module in self.modules():
            fn(module)
        return self

    # -- hooks --------------------------------------------------------------
    def register_forward_hook(self, hook: HookFn) -> Callable[[], None]:
        """Attach ``hook(module, inputs, output)``; returns a remover."""
        self._forward_hooks.append(hook)

        def remove() -> None:
            if hook in self._forward_hooks:
                self._forward_hooks.remove(hook)

        return remove

    def clear_forward_hooks(self) -> None:
        del self._forward_hooks[:]

    # -- execution ---------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError(
            f"{type(self).__name__} does not implement forward()"
        )

    def __call__(self, *args, **kwargs):
        output = self.forward(*args, **kwargs)
        for hook in list(self._forward_hooks):
            hook(self, args, output)
        return output

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines: List[str] = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else "".join(lines)
