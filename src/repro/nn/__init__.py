"""Pure-numpy neural-network substrate for the Ditto reproduction."""

from . import functional, io
from .attention import Attention
from .embeddings import LabelEmbedding, PatchEmbed, TimestepEmbedding
from .layers import (
    AvgPool2d,
    Conv2d,
    Downsample,
    GELU,
    GroupNorm,
    Identity,
    LayerNorm,
    Linear,
    ModuleList,
    Sequential,
    SiLU,
    Softmax,
    Upsample,
)
from .module import Module, Parameter

__all__ = [
    "functional",
    "io",
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "GroupNorm",
    "LayerNorm",
    "SiLU",
    "GELU",
    "Softmax",
    "Identity",
    "Sequential",
    "ModuleList",
    "AvgPool2d",
    "Upsample",
    "Downsample",
    "Attention",
    "TimestepEmbedding",
    "PatchEmbed",
    "LabelEmbedding",
]
