"""Embedding modules shared by the denoising models.

Every denoising network in Table I conditions on the diffusion time step via
a sinusoidal embedding pushed through a small MLP; DiT/Latte additionally use
patch embeddings and class-label embeddings, and SDM-style models use a toy
text encoder (:mod:`repro.models.text_encoder`) whose output flows into cross
attention.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .layers import Conv2d, Linear, SiLU
from .module import Module, Parameter

__all__ = ["TimestepEmbedding", "PatchEmbed", "LabelEmbedding"]


class TimestepEmbedding(Module):
    """Sinusoidal embedding followed by a 2-layer SiLU MLP."""

    def __init__(
        self, dim: int, hidden: int, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        self.dim = dim
        self.fc1 = Linear(dim, hidden, rng=rng)
        self.act = SiLU()
        self.fc2 = Linear(hidden, hidden, rng=rng)

    def forward(self, timesteps: np.ndarray) -> np.ndarray:
        emb = F.sinusoidal_embedding(timesteps, self.dim)
        return self.fc2(self.act(self.fc1(emb)))


class PatchEmbed(Module):
    """Non-overlapping patchification conv used by DiT / Latte.

    Maps ``(N, C, H, W)`` to ``(N, (H/p)*(W/p), dim)`` token sequences.
    """

    def __init__(
        self,
        in_channels: int,
        dim: int,
        patch: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.patch = patch
        self.proj = Conv2d(in_channels, dim, patch, stride=patch, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        feat = self.proj(x)
        n, c, h, w = feat.shape
        return feat.reshape(n, c, h * w).transpose(0, 2, 1)


class LabelEmbedding(Module):
    """Class-label lookup table (ImageNet / UCF-101 conditioning)."""

    def __init__(
        self, num_classes: int, dim: int, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_classes = num_classes
        self.table = Parameter(rng.normal(0.0, 0.02, size=(num_classes, dim)))

    def forward(self, labels: np.ndarray) -> np.ndarray:
        labels = np.atleast_1d(np.asarray(labels, dtype=np.int64))
        if labels.min() < 0 or labels.max() >= self.num_classes:
            raise ValueError(
                f"labels must be in [0, {self.num_classes}), got {labels}"
            )
        return self.table.data[labels]
