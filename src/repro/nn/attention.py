"""Multi-head (self / cross) attention over token sequences.

The attention layer matters to Ditto for two reasons (Section IV-A):

* ``Q @ K^T`` and ``P @ V`` multiply two matrices that *both* change across
  time steps, so naive difference processing would need three sub-operations;
  the algebraic identity ``Q_t K_t = Q_{t+1} K_{t+1} + Q_t dK + dQ K_{t+1}``
  reduces this to two.
* in cross attention the context (text embedding) is constant across time
  steps, so ``K'``/``V'`` behave exactly like weights and the ordinary linear
  difference path applies.

This float module exposes its internals (projections, head split, score
matmuls) through small methods so that :class:`repro.quant.qlayers.QAttention`
can override only the arithmetic that quantization/difference processing
changes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import backends
from . import functional as F
from .layers import Linear
from .module import Module

__all__ = ["Attention"]


class Attention(Module):
    """Multi-head attention over ``(batch, tokens, dim)`` activations."""

    is_attention = True

    def __init__(
        self,
        dim: int,
        num_heads: int = 2,
        context_dim: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.context_dim = context_dim
        self.is_cross = context_dim is not None
        kv_dim = context_dim if context_dim is not None else dim
        self.to_q = Linear(dim, dim, bias=False, rng=rng)
        self.to_k = Linear(kv_dim, dim, bias=False, rng=rng)
        self.to_v = Linear(kv_dim, dim, bias=False, rng=rng)
        self.to_out = Linear(dim, dim, rng=rng)

    # -- head plumbing ------------------------------------------------------
    def split_heads(self, x: np.ndarray) -> np.ndarray:
        """``(B, T, dim)`` -> ``(B, heads, T, head_dim)``."""
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def merge_heads(self, x: np.ndarray) -> np.ndarray:
        """``(B, heads, T, head_dim)`` -> ``(B, T, dim)``."""
        b, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * d)

    # -- arithmetic (overridden by the quantized subclass) -------------------
    def scores(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        # Python float, not np.float64 scalar: a float64 scalar divisor
        # would promote the float32 calibration fast path back to float64
        # under NEP 50 (identical double value either way).
        # Transposed-K and head-split views are the batched-attention idiom:
        # numpy's batched matmul consumes the stride-swapped trailing axes
        # without a copy, and the backend owns any re-blocking it wants.
        qk = backends.active().matmul(q, k.transpose(0, 1, 3, 2))
        return qk / float(np.sqrt(self.head_dim))

    def attend(self, probs: np.ndarray, v: np.ndarray) -> np.ndarray:
        return backends.active().matmul(probs, v)

    def forward(self, x: np.ndarray, context: Optional[np.ndarray] = None) -> np.ndarray:
        source = context if context is not None else x
        q = self.split_heads(self.to_q(x))
        k = self.split_heads(self.to_k(source))
        v = self.split_heads(self.to_v(source))
        probs = F.softmax(self.scores(q, k), axis=-1)
        out = self.merge_heads(self.attend(probs, v))
        return self.to_out(out)

    def extra_repr(self) -> str:
        kind = "cross" if self.is_cross else "self"
        return f"dim={self.dim}, heads={self.num_heads}, kind={kind}"
