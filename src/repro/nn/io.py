"""Weight serialization: save/load a module tree's parameters as ``.npz``.

Random initialization is deterministic per seed, but a released library
needs reproducible artifacts: trained-elsewhere weights, calibration
snapshots, regression goldens.  Parameters are addressed by their qualified
names (``named_parameters``), so any structurally-identical module tree can
load them - including a quantized tree loading FP32 weights *before*
``quantize_model`` swaps its layers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from .module import Module

__all__ = ["state_dict", "load_state_dict", "save_weights", "load_weights"]

PathLike = Union[str, Path]


def state_dict(model: Module) -> Dict[str, np.ndarray]:
    """Qualified-name -> array copy of every parameter."""
    return {name: param.data.copy() for name, param in model.named_parameters()}


def load_state_dict(
    model: Module, state: Dict[str, np.ndarray], strict: bool = True
) -> None:
    """Copy arrays from ``state`` into the model's parameters in place.

    ``strict=True`` demands an exact key match in both directions and equal
    shapes; ``strict=False`` loads the intersection.
    """
    params = dict(model.named_parameters())
    if strict:
        missing = sorted(set(params) - set(state))
        unexpected = sorted(set(state) - set(params))
        if missing or unexpected:
            raise KeyError(
                f"state mismatch: missing {missing[:5]}, unexpected {unexpected[:5]}"
            )
    for name, param in params.items():
        if name not in state:
            continue
        value = np.asarray(state[name], dtype=np.float64)
        if value.shape != param.data.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: "
                f"{value.shape} vs {param.data.shape}"
            )
        param.data[...] = value


def save_weights(model: Module, path: PathLike) -> None:
    """Write all parameters to a compressed ``.npz`` archive."""
    np.savez_compressed(str(path), **state_dict(model))


def load_weights(model: Module, path: PathLike, strict: bool = True) -> None:
    """Load parameters previously written by :func:`save_weights`."""
    with np.load(str(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    load_state_dict(model, state, strict=strict)
