"""Stateless numpy implementations of the operations used by the models.

These are shared by both the float modules in :mod:`repro.nn` and the
quantized wrappers in :mod:`repro.quant.qlayers`; keeping the math here in a
single place guarantees that the Ditto difference-processed path and the
dense path call literally the same kernels, which is what makes the
bit-exactness property tests in ``tests/test_exactness.py`` meaningful.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "silu",
    "gelu",
    "softmax",
    "group_norm",
    "layer_norm",
    "im2col",
    "conv2d",
    "conv2d_from_cols",
    "linear",
    "avg_pool2d",
    "upsample_nearest",
    "sinusoidal_embedding",
    "scratch_buffer",
]

# Re-exported for the layer hot paths; see repro.scratch for the contract
# (the "pad" tag's zero border is this module's own invariant - only the
# interior of that buffer is ever written, so the border stays zero).
from ..scratch import scratch_buffer


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish: ``x * sigmoid(x)`` computed stably for large ``|x|``."""
    t = np.clip(x, -60.0, 60.0, out=scratch_buffer("silu", x.shape, x.dtype))
    np.negative(t, out=t)
    np.exp(t, out=t)
    t += 1.0
    return x / t


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU with the tanh approximation used by DiT-style transformers."""
    inner = np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)
    return 0.5 * x * (1.0 + np.tanh(inner))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)  # fresh; reuse in place
    np.exp(shifted, out=shifted)
    shifted /= np.sum(shifted, axis=axis, keepdims=True)
    return shifted


def group_norm(
    x: np.ndarray,
    num_groups: int,
    weight: Optional[np.ndarray] = None,
    bias: Optional[np.ndarray] = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """GroupNorm over ``(N, C, H, W)`` activations."""
    n, c, h, w = x.shape
    if c % num_groups:
        raise ValueError(f"channels {c} not divisible by groups {num_groups}")
    grouped = x.reshape(n, num_groups, c // num_groups, h, w)
    axes = (2, 3, 4)
    mean = grouped.mean(axis=axes, keepdims=True)
    # Centering once serves both the variance and the normalization;
    # mean-of-squares over the centered values matches np.var bit for bit
    # (identical reduction order) at one fewer full pass over the data.
    # The squared temporary must inherit ``centered``'s memory layout (which
    # follows the input's - conv outputs arrive as transposed views): the
    # mean reduction's summation order depends on layout, and a C-contiguous
    # scratch here would change the result in the last ulp.
    centered = grouped - mean
    var = np.mean(centered * centered, axis=axes, keepdims=True)
    var += eps
    np.sqrt(var, out=var)
    normed = np.divide(centered, var, out=centered).reshape(n, c, h, w)
    if weight is not None:
        normed *= weight.reshape(1, c, 1, 1)
    if bias is not None:
        normed += bias.reshape(1, c, 1, 1)
    return normed


def layer_norm(
    x: np.ndarray,
    weight: Optional[np.ndarray] = None,
    bias: Optional[np.ndarray] = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """LayerNorm over the trailing dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = np.mean(centered * centered, axis=-1, keepdims=True)
    var += eps
    np.sqrt(var, out=var)
    normed = centered / var
    if weight is not None:
        normed *= weight
    if bias is not None:
        normed += bias
    return normed


def im2col(
    x: np.ndarray,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` into ``(N, out_h*out_w, C*k*k)`` patch rows.

    Rows are ordered by output spatial position (row-major).  That ordering is
    load-bearing for the Diffy-style spatial difference path, which differences
    *consecutive sliding windows* - i.e. consecutive rows of this matrix.

    ``out``, when given with the right shape and dtype, receives the patch
    rows in place (callers owning reusable buffers skip the per-call
    allocation); otherwise a fresh array is returned.
    """
    n, c, h, w = x.shape
    padded = None
    if padding:
        # Copy into a preallocated zero-bordered workspace instead of
        # np.pad's fresh allocation: only the interior is ever written, so
        # the zero border survives across reuses.  The padding width is part
        # of the key - two calls whose padded shapes coincide but whose
        # borders differ must not share a buffer, or stale interior values
        # would masquerade as padding.
        padded = scratch_buffer(
            f"pad{padding}", (n, c, h + 2 * padding, w + 2 * padding), x.dtype
        )
        padded[:, :, padding : padding + h, padding : padding + w] = x
        x = padded
    ph, pw = x.shape[2], x.shape[3]
    out_h = (ph - kernel) // stride + 1
    out_w = (pw - kernel) // stride + 1
    s_n, s_c, s_h, s_w = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s_n, s_c, s_h * stride, s_w * stride, s_h, s_w),
        writeable=False,
    )
    transposed = windows.transpose(0, 2, 3, 1, 4, 5)
    if out is not None and out.shape == (n, out_h * out_w, c * kernel * kernel):
        # copyto casts on the fly (e.g. float64 patches into a float32
        # buffer for the provably-exact single-precision integer GEMM).
        np.copyto(out.reshape(n, out_h, out_w, c, kernel, kernel), transposed)
        return out, (out_h, out_w)
    cols = transposed.reshape(n, out_h * out_w, c * kernel * kernel)
    cols = np.ascontiguousarray(cols)
    if padded is not None and np.shares_memory(cols, padded):
        cols = cols.copy()  # detach from the reusable workspace
    return cols, (out_h, out_w)


def conv2d_from_cols(
    cols: np.ndarray,
    weight: np.ndarray,
    out_hw: Tuple[int, int],
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Finish a convolution given pre-unfolded patch rows.

    ``weight`` has shape ``(out_c, in_c, k, k)``; ``cols`` comes from
    :func:`im2col`.
    """
    out_c = weight.shape[0]
    flat_w = weight.reshape(out_c, -1)
    out = cols @ flat_w.T
    if bias is not None:
        out = out + bias
    n = cols.shape[0]
    out_h, out_w = out_hw
    return out.reshape(n, out_h, out_w, out_c).transpose(0, 3, 1, 2)


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """2-D convolution via im2col; exact for integer-valued inputs."""
    kernel = weight.shape[2]
    n, c, h, w = x.shape
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    # The patch rows are consumed by the matmul before this returns, so they
    # can live in the shared per-thread scratch pool.
    cols, out_hw = im2col(
        x,
        kernel,
        stride,
        padding,
        out=scratch_buffer(
            "conv2d-cols", (n, out_h * out_w, c * kernel * kernel), x.dtype
        ),
    )
    return conv2d_from_cols(cols, weight, out_hw, bias)


def linear(
    x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None
) -> np.ndarray:
    """Affine map over the trailing dimension; ``weight`` is ``(out, in)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def avg_pool2d(x: np.ndarray, kernel: int = 2) -> np.ndarray:
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims ({h},{w}) not divisible by {kernel}")
    return x.reshape(n, c, h // kernel, kernel, w // kernel, kernel).mean(axis=(3, 5))


def upsample_nearest(x: np.ndarray, scale: int = 2) -> np.ndarray:
    return x.repeat(scale, axis=2).repeat(scale, axis=3)


# Frequency tables are tiny, deterministic in (dim, max_period), and
# recomputed on every denoiser call otherwise; memoize them read-only.
_FREQ_CACHE: Dict[Tuple[int, float], np.ndarray] = {}


def _sinusoidal_freqs(dim: int, max_period: float) -> np.ndarray:
    key = (dim, float(max_period))
    freqs = _FREQ_CACHE.get(key)
    if freqs is None:
        half = dim // 2
        freqs = np.exp(-np.log(max_period) * np.arange(half) / max(half, 1))
        freqs.setflags(write=False)
        _FREQ_CACHE[key] = freqs
    return freqs


def sinusoidal_embedding(timesteps: np.ndarray, dim: int, max_period: float = 10000.0) -> np.ndarray:
    """Transformer-style sinusoidal timestep embedding ``(len(t), dim)``."""
    timesteps = np.atleast_1d(np.asarray(timesteps, dtype=np.float64))
    freqs = _sinusoidal_freqs(dim, max_period)
    args = timesteps[:, None] * freqs[None, :]
    emb = np.concatenate([np.cos(args), np.sin(args)], axis=-1)
    if dim % 2:
        emb = np.concatenate([emb, np.zeros((emb.shape[0], 1))], axis=-1)
    return emb
