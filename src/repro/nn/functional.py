"""Stateless numpy implementations of the operations used by the models.

These are shared by both the float modules in :mod:`repro.nn` and the
quantized wrappers in :mod:`repro.quant.qlayers`; keeping the math here in a
single place guarantees that the Ditto difference-processed path and the
dense path call literally the same kernels, which is what makes the
bit-exactness property tests in ``tests/test_exactness.py`` meaningful.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "silu",
    "gelu",
    "softmax",
    "group_norm",
    "layer_norm",
    "im2col",
    "conv2d",
    "conv2d_from_cols",
    "linear",
    "avg_pool2d",
    "upsample_nearest",
    "sinusoidal_embedding",
]


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish: ``x * sigmoid(x)`` computed stably for large ``|x|``."""
    return x / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU with the tanh approximation used by DiT-style transformers."""
    inner = np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)
    return 0.5 * x * (1.0 + np.tanh(inner))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def group_norm(
    x: np.ndarray,
    num_groups: int,
    weight: Optional[np.ndarray] = None,
    bias: Optional[np.ndarray] = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """GroupNorm over ``(N, C, H, W)`` activations."""
    n, c, h, w = x.shape
    if c % num_groups:
        raise ValueError(f"channels {c} not divisible by groups {num_groups}")
    grouped = x.reshape(n, num_groups, c // num_groups, h, w)
    mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
    var = grouped.var(axis=(2, 3, 4), keepdims=True)
    normed = ((grouped - mean) / np.sqrt(var + eps)).reshape(n, c, h, w)
    if weight is not None:
        normed = normed * weight.reshape(1, c, 1, 1)
    if bias is not None:
        normed = normed + bias.reshape(1, c, 1, 1)
    return normed


def layer_norm(
    x: np.ndarray,
    weight: Optional[np.ndarray] = None,
    bias: Optional[np.ndarray] = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """LayerNorm over the trailing dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normed = (x - mean) / np.sqrt(var + eps)
    if weight is not None:
        normed = normed * weight
    if bias is not None:
        normed = normed + bias
    return normed


def im2col(
    x: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` into ``(N, out_h*out_w, C*k*k)`` patch rows.

    Rows are ordered by output spatial position (row-major).  That ordering is
    load-bearing for the Diffy-style spatial difference path, which differences
    *consecutive sliding windows* - i.e. consecutive rows of this matrix.
    """
    n, c, h, w = x.shape
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    ph, pw = x.shape[2], x.shape[3]
    out_h = (ph - kernel) // stride + 1
    out_w = (pw - kernel) // stride + 1
    s_n, s_c, s_h, s_w = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s_n, s_c, s_h * stride, s_w * stride, s_h, s_w),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h * out_w, c * kernel * kernel)
    return np.ascontiguousarray(cols), (out_h, out_w)


def conv2d_from_cols(
    cols: np.ndarray,
    weight: np.ndarray,
    out_hw: Tuple[int, int],
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Finish a convolution given pre-unfolded patch rows.

    ``weight`` has shape ``(out_c, in_c, k, k)``; ``cols`` comes from
    :func:`im2col`.
    """
    out_c = weight.shape[0]
    flat_w = weight.reshape(out_c, -1)
    out = cols @ flat_w.T
    if bias is not None:
        out = out + bias
    n = cols.shape[0]
    out_h, out_w = out_hw
    return out.reshape(n, out_h, out_w, out_c).transpose(0, 3, 1, 2)


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """2-D convolution via im2col; exact for integer-valued inputs."""
    cols, out_hw = im2col(x, weight.shape[2], stride, padding)
    return conv2d_from_cols(cols, weight, out_hw, bias)


def linear(
    x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None
) -> np.ndarray:
    """Affine map over the trailing dimension; ``weight`` is ``(out, in)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def avg_pool2d(x: np.ndarray, kernel: int = 2) -> np.ndarray:
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims ({h},{w}) not divisible by {kernel}")
    return x.reshape(n, c, h // kernel, kernel, w // kernel, kernel).mean(axis=(3, 5))


def upsample_nearest(x: np.ndarray, scale: int = 2) -> np.ndarray:
    return x.repeat(scale, axis=2).repeat(scale, axis=3)


def sinusoidal_embedding(timesteps: np.ndarray, dim: int, max_period: float = 10000.0) -> np.ndarray:
    """Transformer-style sinusoidal timestep embedding ``(len(t), dim)``."""
    timesteps = np.atleast_1d(np.asarray(timesteps, dtype=np.float64))
    half = dim // 2
    freqs = np.exp(-np.log(max_period) * np.arange(half) / max(half, 1))
    args = timesteps[:, None] * freqs[None, :]
    emb = np.concatenate([np.cos(args), np.sin(args)], axis=-1)
    if dim % 2:
        emb = np.concatenate([emb, np.zeros((emb.shape[0], 1))], axis=-1)
    return emb
