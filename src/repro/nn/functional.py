"""Stateless numpy implementations of the operations used by the models.

These are shared by both the float modules in :mod:`repro.nn` and the
quantized wrappers in :mod:`repro.quant.qlayers`; keeping the math here in a
single place guarantees that the Ditto difference-processed path and the
dense path call literally the same kernels, which is what makes the
bit-exactness property tests in ``tests/test_exactness.py`` meaningful.

Numerics contract of the fused reductions (PR 5): :func:`group_norm` and
:func:`layer_norm` compute variance as ``E[x^2] - E[x]^2`` from one fused
sum/sum-of-squares pass instead of the old centered two-pass formulation.
That changes floating-point summation order, so outputs move in the last
ulps relative to the multi-pass reference.  The quantized integer paths are
unaffected (norms run *between* quantized layers, in float), and
``tests/test_hotloop_numerics.py`` pins the consequence that matters: the
calibration scales and end metrics of all seven Table I benchmarks are
invariant to far below quantization resolution.  This is the documented
bit-exactness waiver for the float (calibration) path.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, Optional, Tuple

import numpy as np

from .. import profiling

__all__ = [
    "silu",
    "gelu",
    "softmax",
    "group_norm",
    "layer_norm",
    "im2col",
    "im2col_t",
    "conv2d",
    "conv2d_from_cols",
    "conv2d_from_cols_t",
    "linear",
    "avg_pool2d",
    "upsample_nearest",
    "sinusoidal_embedding",
    "embedding_dtype",
    "set_embedding_dtype",
    "scratch_buffer",
]

# Re-exported for the layer hot paths; see repro.scratch for the contract
# (the "pad" tag's zero border is this module's own invariant - only the
# interior of that buffer is ever written, so the border stays zero).
from ..scratch import scratch_buffer

_perf_counter = time.perf_counter


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish: ``x * sigmoid(x)`` computed stably for large ``|x|``."""
    t = np.clip(x, -60.0, 60.0, out=scratch_buffer("silu", x.shape, x.dtype))
    np.negative(t, out=t)
    np.exp(t, out=t)
    t += 1.0
    return x / t


# Python float, not np.float64 scalar: NEP-50 treats numpy scalars as
# "strong", so a float64 scalar factor would silently promote the float32
# calibration fast path back to float64.  The double value is identical.
_GELU_C = float(np.sqrt(2.0 / np.pi))


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU with the tanh approximation used by DiT-style transformers."""
    inner = _GELU_C * (x + 0.044715 * x ** 3)
    return 0.5 * x * (1.0 + np.tanh(inner))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)  # fresh; reuse in place
    np.exp(shifted, out=shifted)
    shifted /= np.sum(shifted, axis=axis, keepdims=True)
    return shifted


def _finish_moments(s1: np.ndarray, s2: np.ndarray, count: int, eps: float):
    """(mean, 1/std) from a fused sum / sum-of-squares pass.

    Callers MUST accumulate ``s1``/``s2`` in float64 (``dtype=np.float64``
    on the reductions) even for float32 inputs: ``var = E[x^2] - mean^2``
    cancels catastrophically when the variance is small relative to the
    mean, and in float32 that can annihilate the variance entirely - float64
    keeps the cancellation error at ~``eps64 * mean^2/var``, i.e. last-ulp
    territory for any realistic normalization statistics.  It can still go
    infinitesimally negative from rounding; clip before the sqrt so the
    fused path can never produce NaNs the two-pass formulation would not.
    All arrays here are per-group scalars (tiny), so the extra elementwise
    ops are free compared to the full-tensor passes they replace.
    """
    mean = s1 / count
    var = s2 / count
    var -= mean * mean
    np.clip(var, 0.0, None, out=var)
    var += eps
    np.sqrt(var, out=var)
    inv_std = np.divide(1.0, var, out=var)
    return mean, inv_std


def group_norm(
    x: np.ndarray,
    num_groups: int,
    weight: Optional[np.ndarray] = None,
    bias: Optional[np.ndarray] = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """GroupNorm over ``(N, C, H, W)`` activations, fused single-pass stats.

    The statistics come from one fused ``einsum`` pass per moment (sum and
    sum of squares) over an axis-split *view* - no centered full-size
    temporary, no layout-dependent reduction subtlety - and the
    normalization + affine collapse into one per-channel multiply-add:
    ``out = x * (w/std) + (b - mean*w/std)``.  See the module docstring for
    the summation-order waiver.
    """
    prof = profiling.active()
    t0 = _perf_counter() if prof is not None else 0.0
    n, c, h, w = x.shape
    if c % num_groups:
        raise ValueError(f"channels {c} not divisible by groups {num_groups}")
    per_group = c // num_groups
    count = per_group * h * w
    # 2-d flat view per group: the conv path now emits C-contiguous NCHW,
    # so this reshape is free on the hot path (and one compacting copy -
    # still cheaper than the centered temporaries it replaces - elsewhere).
    flat = x.reshape(n * num_groups, count)
    # float64 accumulation regardless of input dtype - see _finish_moments.
    s1 = flat.sum(axis=1, dtype=np.float64)
    s2 = np.einsum("ij,ij->i", flat, flat, dtype=np.float64)
    mean, inv_std = _finish_moments(
        s1.reshape(n, num_groups), s2.reshape(n, num_groups), count, eps
    )
    # Fold the affine into per-(n, c) scale/shift (tiny arrays), then apply
    # in two full passes: one multiply into a fresh output, one in-place add.
    if weight is not None:
        scale = inv_std[:, :, None] * weight.reshape(num_groups, per_group)[None]
    else:
        scale = np.repeat(inv_std[:, :, None], per_group, axis=2)
    shift = -mean[:, :, None] * scale
    if bias is not None:
        shift += bias.reshape(num_groups, per_group)[None]
    # Cast the folded affine back to the input dtype: a float64 scale array
    # would silently promote the whole float32 calibration trajectory.
    scale = scale.reshape(n, c, 1, 1).astype(x.dtype, copy=False)
    shift = shift.reshape(n, c, 1, 1).astype(x.dtype, copy=False)
    out = x * scale
    out += shift
    if prof is not None:
        prof.add("norm", _perf_counter() - t0)
    return out


def layer_norm(
    x: np.ndarray,
    weight: Optional[np.ndarray] = None,
    bias: Optional[np.ndarray] = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """LayerNorm over the trailing dimension, fused single-pass stats.

    Same fused-moment formulation as :func:`group_norm` (one ``einsum``
    sum-of-squares pass, no centered temporary); the affine weight/bias stay
    separate passes because they are per-feature while the moments are
    per-row.
    """
    prof = profiling.active()
    t0 = _perf_counter() if prof is not None else 0.0
    d = x.shape[-1]
    # float64 accumulation regardless of input dtype - see _finish_moments.
    s1 = x.sum(axis=-1, keepdims=True, dtype=np.float64)
    s2 = np.einsum("...i,...i->...", x, x, dtype=np.float64)[..., None]
    mean, inv_std = _finish_moments(s1, s2, d, eps)
    shift = (-mean * inv_std).astype(x.dtype, copy=False)
    inv_std = inv_std.astype(x.dtype, copy=False)
    out = x * inv_std
    out += shift
    if weight is not None:
        out *= weight
    if bias is not None:
        out += bias
    if prof is not None:
        prof.add("norm", _perf_counter() - t0)
    return out


def _pad_workspace(x: np.ndarray, padding: int) -> np.ndarray:
    """Copy ``x`` into the preallocated zero-bordered pad workspace.

    Only the interior is ever written, so the zero border survives across
    reuses.  The padding width is part of the key - two calls whose padded
    shapes coincide but whose borders differ must not share a buffer, or
    stale interior values would masquerade as padding.
    """
    n, c, h, w = x.shape
    padded = scratch_buffer(
        f"pad{padding}", (n, c, h + 2 * padding, w + 2 * padding), x.dtype
    )
    padded[:, :, padding : padding + h, padding : padding + w] = x
    return padded


def im2col(
    x: np.ndarray,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` into ``(N, out_h*out_w, C*k*k)`` patch rows.

    Rows are ordered by output spatial position (row-major).  That ordering is
    load-bearing for the Diffy-style spatial difference path, which differences
    *consecutive sliding windows* - i.e. consecutive rows of this matrix.

    ``out``, when given with the right shape and dtype, receives the patch
    rows in place (callers owning reusable buffers skip the per-call
    allocation); otherwise a fresh array is returned.

    This is the row-major layout consumed by :func:`conv2d_from_cols`; the
    quantized conv hot path uses the transposed, block-copied
    :func:`im2col_t` instead.
    """
    prof = profiling.active()
    t0 = _perf_counter() if prof is not None else 0.0
    n, c, h, w = x.shape
    padded = None
    if padding:
        padded = _pad_workspace(x, padding)
        x = padded
    ph, pw = x.shape[2], x.shape[3]
    out_h = (ph - kernel) // stride + 1
    out_w = (pw - kernel) // stride + 1
    s_n, s_c, s_h, s_w = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s_n, s_c, s_h * stride, s_w * stride, s_h, s_w),
        writeable=False,
    )
    transposed = windows.transpose(0, 2, 3, 1, 4, 5)
    if out is not None and out.shape == (n, out_h * out_w, c * kernel * kernel):
        # copyto casts on the fly (e.g. float64 patches into a float32
        # buffer for the provably-exact single-precision integer GEMM).
        np.copyto(out.reshape(n, out_h, out_w, c, kernel, kernel), transposed)
        if prof is not None:
            prof.add("im2col", _perf_counter() - t0)
        return out, (out_h, out_w)
    cols = transposed.reshape(n, out_h * out_w, c * kernel * kernel)
    cols = np.ascontiguousarray(cols)
    if padded is not None and np.shares_memory(cols, padded):
        cols = cols.copy()  # detach from the reusable workspace
    if prof is not None:
        prof.add("im2col", _perf_counter() - t0)
    return cols, (out_h, out_w)


def im2col_t(
    x: np.ndarray,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` into transposed ``(N, C*k*k, out_h*out_w)``.

    The transposed twin of :func:`im2col`: patch features are the middle
    axis (same ``(c, ki, kj)`` order as a flattened conv weight), spatial
    positions the trailing one.  Column *values* are identical to
    ``im2col(...)`` - only the memory layout differs - so the Ditto
    linearity identities (``im2col(a - b) == im2col(a) - im2col(b)``), the
    spatial-difference stats, and the exact-f32 GEMM bound all carry over
    unchanged.

    The payoff is the gather itself: for stride 1 (every conv in the UNet /
    VAE trunks) the unfold becomes ``k*k`` *shifted contiguous block
    copies* - each kernel offset ``(ki, kj)`` copies the whole shifted
    ``(N, C, out_h, out_w)`` image block, contiguous runs of ``out_w`` on
    the source and ``out_h*out_w`` on the destination - instead of a 6-d
    strided gather whose innermost contiguous run is ``k`` elements.  The
    matching GEMM (:func:`conv2d_from_cols_t`) then emits NCHW outputs
    directly, with no transposed view for downstream consumers to trip on.

    ``stride > 1`` (the ``Downsample`` / VAE-encoder convs) now runs the
    *same* blocked scheme instead of the old monolithic 6-d
    ``as_strided`` window gather: each kernel offset ``(ki, kj)`` copies
    its whole shifted block in one call - the source rows are the
    stride-``s`` slices ``x[:, :, ki::s, kj::s]`` - so the unfold is
    ``k*k`` block copies for every stride, one code shape, no
    manufactured striding.  (numpy's strided-copy iterator already
    gathers the contiguous ``k``-element source runs along the kernel
    axis in either formulation; the blocked form makes that structure
    explicit, removes the repo's last writeable=False ``as_strided``
    alias on the hot path, and is what a thread-per-block variant would
    split.)  The per-stride cost is attributed to the ``im2col_s1`` /
    ``im2col_s2`` profiling sub-buckets (plus ``im2col_s1_elems`` /
    ``im2col_s2_elems`` element counters) so the stride-2-vs-stride-1
    per-element parity claim is *gated* by ``scripts/check_bench.py``
    against ``BENCH_PR10.json``, not asserted.
    """
    prof = profiling.active()
    t0 = _perf_counter() if prof is not None else 0.0
    n, c, h, w = x.shape
    if padding:
        x = _pad_workspace(x, padding)
    ph, pw = x.shape[2], x.shape[3]
    out_h = (ph - kernel) // stride + 1
    out_w = (pw - kernel) // stride + 1
    dot_len = c * kernel * kernel
    positions = out_h * out_w
    if out is not None:
        # Unlike im2col's legacy silent fallback, a mis-shaped buffer here
        # is a caller bug (stale per-layer buffer after a shape change):
        # returning a fresh array while leaving ``out`` untouched would let
        # the owner keep consuming stale patch data without any error.
        if out.shape != (n, dot_len, positions):
            raise ValueError(
                f"im2col_t out buffer has shape {out.shape}, need "
                f"{(n, dot_len, positions)}"
            )
        cols_t = out
    else:
        cols_t = np.empty((n, dot_len, positions), dtype=x.dtype)
    # (N, C, k, k, out_h, out_w): splitting the contiguous (dot, positions)
    # axes, so writes through this view land in the transposed layout.
    view6 = cols_t.reshape(n, c, kernel, kernel, out_h, out_w)
    if stride == 1:
        for ki in range(kernel):
            for kj in range(kernel):
                # copyto casts on the fly (float64 -> float32 buffers).
                np.copyto(
                    view6[:, :, ki, kj],
                    x[:, :, ki : ki + out_h, kj : kj + out_w],
                )
    elif kernel == 1:
        # 1x1 stride-s conv: the unfold is a single decimated block copy.
        np.copyto(view6[:, :, 0, 0], x[:, :, ::stride, ::stride])
    else:
        # Blocked stride-s gather (see docstring): the stride-1 scheme with
        # the source block decimated - one shifted block copy per kernel
        # offset, no 6-d as_strided window view.
        h_stop = (out_h - 1) * stride + 1
        w_stop = (out_w - 1) * stride + 1
        for ki in range(kernel):
            for kj in range(kernel):
                np.copyto(
                    view6[:, :, ki, kj],
                    x[:, :, ki : ki + h_stop : stride, kj : kj + w_stop : stride],
                )
    if prof is not None:
        elapsed = _perf_counter() - t0
        prof.add("im2col", elapsed)
        # Per-stride sub-buckets: check_bench.py gates stride-2 per-element
        # parity with stride-1 from these (seconds + element counters).
        if stride == 1:
            prof.add("im2col_s1", elapsed)
            prof.add("im2col_s1_elems", float(cols_t.size))
        else:
            prof.add("im2col_s2", elapsed)
            prof.add("im2col_s2_elems", float(cols_t.size))
    return cols_t, (out_h, out_w)


def conv2d_from_cols(
    cols: np.ndarray,
    weight: np.ndarray,
    out_hw: Tuple[int, int],
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Finish a convolution given pre-unfolded patch rows.

    ``weight`` has shape ``(out_c, in_c, k, k)``; ``cols`` comes from
    :func:`im2col`.
    """
    out_c = weight.shape[0]
    flat_w = weight.reshape(out_c, -1)
    out = cols @ flat_w.T
    if bias is not None:
        out = out + bias
    n = cols.shape[0]
    out_h, out_w = out_hw
    return out.reshape(n, out_h, out_w, out_c).transpose(0, 3, 1, 2)


def conv2d_from_cols_t(
    cols_t: np.ndarray,
    weight: np.ndarray,
    out_hw: Tuple[int, int],
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Finish a convolution given transposed patch columns.

    ``cols_t`` comes from :func:`im2col_t`; ``weight`` is either the usual
    ``(out_c, in_c, k, k)`` tensor or an already-flattened ``(out_c, dot)``
    matrix (the quantized conv caches the flattened form).  The GEMM runs
    ``(out_c, dot) @ (N, dot, positions)`` and reshapes straight to a
    C-contiguous ``(N, out_c, out_h, out_w)`` - no output transpose.
    """
    flat_w = weight if weight.ndim == 2 else weight.reshape(weight.shape[0], -1)
    out = np.matmul(flat_w, cols_t)
    if bias is not None:
        out += bias[:, None]
    n = cols_t.shape[0]
    return out.reshape(n, flat_w.shape[0], *out_hw)


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """2-D convolution via blocked im2col; exact for integer-valued inputs."""
    kernel = weight.shape[2]
    n, c, h, w = x.shape
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    # The patch columns are consumed by the matmul before this returns, so
    # they can live in the shared per-thread scratch pool.
    cols_t, out_hw = im2col_t(
        x,
        kernel,
        stride,
        padding,
        out=scratch_buffer(
            "conv2d-cols", (n, c * kernel * kernel, out_h * out_w), x.dtype
        ),
    )
    return conv2d_from_cols_t(cols_t, weight, out_hw, bias)


def linear(
    x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None
) -> np.ndarray:
    """Affine map over the trailing dimension; ``weight`` is ``(out, in)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def avg_pool2d(x: np.ndarray, kernel: int = 2) -> np.ndarray:
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims ({h},{w}) not divisible by {kernel}")
    return x.reshape(n, c, h // kernel, kernel, w // kernel, kernel).mean(axis=(3, 5))


def upsample_nearest(x: np.ndarray, scale: int = 2) -> np.ndarray:
    return x.repeat(scale, axis=2).repeat(scale, axis=3)


# Frequency tables are tiny, deterministic in (dim, max_period), and
# recomputed on every denoiser call otherwise; memoize them read-only.
_FREQ_CACHE: Dict[Tuple[int, float], np.ndarray] = {}

# Thread-local embedding output dtype override.  Sinusoidal tables always
# *compute* in float64 (the cache stays exact); the float32 calibration
# fast path sets this so the embedding result - the one float64 source
# inside every denoiser forward - does not re-promote the whole trajectory.
_EMBED_DTYPE = threading.local()


def set_embedding_dtype(dtype) -> None:
    """Set (or with ``None`` clear) this thread's embedding output dtype."""
    _EMBED_DTYPE.dtype = None if dtype is None else np.dtype(dtype)


def embedding_dtype():
    """This thread's embedding output dtype override, or ``None``."""
    return getattr(_EMBED_DTYPE, "dtype", None)


def _sinusoidal_freqs(dim: int, max_period: float) -> np.ndarray:
    key = (dim, float(max_period))
    freqs = _FREQ_CACHE.get(key)
    if freqs is None:
        half = dim // 2
        freqs = np.exp(-math.log(max_period) * np.arange(half) / max(half, 1))
        freqs.setflags(write=False)
        _FREQ_CACHE[key] = freqs
    return freqs


def sinusoidal_embedding(timesteps: np.ndarray, dim: int, max_period: float = 10000.0) -> np.ndarray:
    """Transformer-style sinusoidal timestep embedding ``(len(t), dim)``."""
    timesteps = np.atleast_1d(np.asarray(timesteps, dtype=np.float64))
    freqs = _sinusoidal_freqs(dim, max_period)
    args = timesteps[:, None] * freqs[None, :]
    emb = np.concatenate([np.cos(args), np.sin(args)], axis=-1)
    if dim % 2:
        emb = np.concatenate([emb, np.zeros((emb.shape[0], 1))], axis=-1)
    dtype = embedding_dtype()
    if dtype is not None and emb.dtype != dtype:
        emb = emb.astype(dtype)
    return emb
