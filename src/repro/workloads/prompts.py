"""Prompt sets for the text-conditioned (SDM) benchmark.

COCO2017 captions are substituted by a fixed caption list in the same style;
the paper's own example prompt ("a white vase with yellow tulips against a
grey background", Fig. 3a) leads the list.
"""

from __future__ import annotations

from typing import List

__all__ = ["COCO_STYLE_PROMPTS", "sample_prompts"]

COCO_STYLE_PROMPTS: List[str] = [
    "a white vase with yellow tulips against a grey background",
    "a man riding a wave on top of a surfboard",
    "a group of people standing around a kitchen counter",
    "two dogs playing with a frisbee in a grassy field",
    "a red double decker bus driving down a city street",
    "a plate of food with broccoli and rice on a table",
    "a train traveling over a bridge near a river",
    "a young girl holding an umbrella in the rain",
    "a bathroom with a white toilet and a sink",
    "several boats docked in a harbor at sunset",
    "a cat laying on top of a wooden desk",
    "a baseball player swinging a bat at a ball",
]


def sample_prompts(count: int, offset: int = 0) -> List[str]:
    """Deterministically pick ``count`` prompts (wrapping around the list)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    n = len(COCO_STYLE_PROMPTS)
    return [COCO_STYLE_PROMPTS[(offset + i) % n] for i in range(count)]
