"""Synthetic stand-ins for the paper's evaluation datasets.

The reproduction has no network access and no licence to ship CIFAR-10,
LSUN, ImageNet, COCO or UCF-101; the accelerator study only needs reference
*distributions* with the right shapes and channel statistics (for the
FID/IS-proxy metrics of Table II).  Each generator produces smooth,
structured images - mixtures of oriented gradients and blobs - rather than
white noise, so feature statistics are non-degenerate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["DatasetSpec", "DATASETS", "synthetic_images", "synthetic_video"]


@dataclass(frozen=True)
class DatasetSpec:
    """Shape/conditioning description of one evaluation dataset."""

    name: str
    image_shape: Tuple[int, ...]  # (C, H, W)
    num_classes: int = 0
    is_video: bool = False
    num_frames: int = 1


DATASETS = {
    "cifar10": DatasetSpec("cifar10", (3, 16, 16), num_classes=10),
    "lsun_bedroom": DatasetSpec("lsun_bedroom", (3, 32, 32)),
    "lsun_church": DatasetSpec("lsun_church", (3, 32, 32)),
    "imagenet": DatasetSpec("imagenet", (3, 32, 32), num_classes=10),
    "coco2017": DatasetSpec("coco2017", (3, 32, 32)),
    "ucf101": DatasetSpec(
        "ucf101", (3, 32, 32), num_classes=10, is_video=True, num_frames=4
    ),
}


def _blob(h: int, w: int, rng: np.random.Generator) -> np.ndarray:
    """A smooth Gaussian bump at a random position/scale."""
    ys = np.linspace(-1.0, 1.0, h)[:, None]
    xs = np.linspace(-1.0, 1.0, w)[None, :]
    cy, cx = rng.uniform(-0.6, 0.6, size=2)
    sigma = rng.uniform(0.2, 0.6)
    return np.exp(-((ys - cy) ** 2 + (xs - cx) ** 2) / (2.0 * sigma ** 2))


def synthetic_images(
    dataset: str, count: int, seed: int = 0
) -> np.ndarray:
    """``(count, C, H, W)`` reference images in [-1, 1]."""
    spec = DATASETS[dataset]
    if spec.is_video:
        raise ValueError(f"{dataset} is a video dataset; use synthetic_video")
    c, h, w = spec.image_shape
    rng = np.random.default_rng(seed)
    images = np.empty((count, c, h, w))
    ys = np.linspace(0.0, 1.0, h)[:, None]
    xs = np.linspace(0.0, 1.0, w)[None, :]
    for i in range(count):
        base = np.zeros((h, w))
        angle = rng.uniform(0.0, np.pi)
        base += 0.5 * np.sin(
            2 * np.pi * rng.uniform(0.5, 2.0) * (np.cos(angle) * xs + np.sin(angle) * ys)
        )
        for _ in range(rng.integers(1, 4)):
            base += rng.uniform(-1.0, 1.0) * _blob(h, w, rng)
        for ch in range(c):
            tint = rng.uniform(0.5, 1.5)
            images[i, ch] = np.tanh(tint * base + rng.normal(0.0, 0.05, (h, w)))
    return images


def synthetic_video(
    dataset: str, count: int, seed: int = 0
) -> np.ndarray:
    """``(count, F, C, H, W)`` clips whose frames drift smoothly."""
    spec = DATASETS[dataset]
    if not spec.is_video:
        raise ValueError(f"{dataset} is not a video dataset")
    c, h, w = spec.image_shape
    rng = np.random.default_rng(seed)
    clips = np.empty((count, spec.num_frames, c, h, w))
    for i in range(count):
        frame = synthetic_images("imagenet", 1, seed=seed * 1000 + i)[0]
        frame = frame[:, :h, :w]
        for f in range(spec.num_frames):
            # Smooth temporal drift: shift plus small additive flow.
            frame = np.roll(frame, shift=1, axis=2)
            frame = np.clip(frame + rng.normal(0.0, 0.02, frame.shape), -1.0, 1.0)
            clips[i, f] = frame
    return clips
