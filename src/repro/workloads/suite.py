"""The Table I benchmark suite (scaled-down).

Seven benchmarks matching the paper's table:

====== ======================= ============== ================
Abbr.  Model                   Dataset        Sampler & steps
====== ======================= ============== ================
DDPM   pixel-space UNet        CIFAR-10       DDIM, 100 steps
BED    latent UNet             LSUN-Bedroom   DDIM, 200 steps
CHUR   latent UNet             LSUN-Church    DDIM, 200 steps
IMG    conditional latent UNet ImageNet       DDIM, 20 steps
SDM    text-conditional UNet   COCO2017       PLMS, 50 steps
DiT    DiT-XL/2                ImageNet       DDIM, 250 steps
Latte  Latte-XL/2 (video)      UCF-101        DDIM, 20 steps
====== ======================= ============== ================

Step counts are scaled (roughly 10x down, preserving the relative ordering)
so the pure-numpy suite finishes in seconds; ``paper_steps`` records the
original counts and any experiment can override ``num_steps``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..models import zoo
from ..nn.module import Module

__all__ = ["BenchmarkSpec", "SUITE", "get_benchmark", "benchmark_names"]


def _class_context(label: int) -> np.ndarray:
    """IMG conditioning: a single constant class-embedding context token."""
    table = np.random.default_rng(100 + 0).normal(0.0, 0.5, (zoo.NUM_CLASSES, zoo.CONTEXT_DIM))
    return table[label][None, None, :]


def _text_context(prompt_index: int = 0) -> np.ndarray:
    from .prompts import sample_prompts

    encoder = zoo.build_text_encoder()
    return encoder.encode(sample_prompts(1, offset=prompt_index))


def _empty_text_context() -> dict:
    """SDM unconditional branch: the empty-prompt embedding (CFG null)."""
    encoder = zoo.build_text_encoder()
    return {"context": encoder.encode([""])}


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of Table I, scaled for the numpy substrate."""

    name: str
    # Human-facing only; never influences the computed result, so it is
    # deliberately absent from the cache-key signatures.
    description: str  # repro-lint: ignore[RPL003]
    dataset: str
    sampler: str
    num_steps: int
    paper_steps: int
    sample_shape: Tuple[int, ...]
    build_model: Callable[[], Module]
    build_conditioning: Callable[[], Optional[dict]]
    latent: bool = False
    is_video: bool = False
    # Classifier-free guidance: ``guidance_scale`` is the default (None keeps
    # plain conditional sampling); ``build_uncond_conditioning`` supplies the
    # unconditional branch and is required whenever guidance is requested,
    # either here or per-run via ``DittoEngine.from_benchmark``.
    guidance_scale: Optional[float] = None
    build_uncond_conditioning: Optional[Callable[[], Optional[dict]]] = None
    # Calibration-trajectory precision: ``None`` means the engine default
    # (the float32 fast path); set ``"float64"`` to pin a benchmark to the
    # legacy exact trajectory.  Overridable per run via
    # ``DittoEngine.from_benchmark(calibration_dtype=...)``.
    calibration_dtype: Optional[str] = None
    # Compute backend pin: ``None`` means the environment-level resolution
    # (``$REPRO_BACKEND``, else ``reference``); set e.g. ``"blas-batched"``
    # to pin a spec.  Overridable per run via
    # ``DittoEngine.from_benchmark(backend=...)``.
    backend: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BenchmarkSpec({self.name}: {self.description}, "
            f"{self.sampler} x{self.num_steps})"
        )

    def signature(self) -> Dict[str, object]:
        """Stable, hashable identity for the runtime result cache.

        Callables are identified by module-qualified name plus a hash of
        their source (see :func:`repro.runtime.hashing.callable_fingerprint`),
        so editing a builder - even one defined outside the ``repro``
        package - invalidates cached results, while the signature stays
        identical across processes and sessions.
        """
        from ..defaults import resolve_backend, resolve_calibration_dtype
        from ..runtime.hashing import callable_fingerprint

        return {
            "name": self.name,
            "dataset": self.dataset,
            "sampler": self.sampler,
            "num_steps": self.num_steps,
            "paper_steps": self.paper_steps,
            "sample_shape": list(self.sample_shape),
            "latent": self.latent,
            "is_video": self.is_video,
            "build_model": callable_fingerprint(self.build_model),
            "build_conditioning": callable_fingerprint(self.build_conditioning),
            "guidance_scale": self.guidance_scale,
            "build_uncond_conditioning": (
                None
                if self.build_uncond_conditioning is None
                else callable_fingerprint(self.build_uncond_conditioning)
            ),
            # Normalized through the one shared resolution rule: a spec
            # explicitly pinned to the engine default is behaviorally
            # identical to an unpinned one and must share its cache entries.
            "calibration_dtype": resolve_calibration_dtype(self),
            # The *requested* backend name (fallback never collapses this
            # axis): results from different backends must never alias.
            "backend": resolve_backend(self),
        }


SUITE: Dict[str, BenchmarkSpec] = {
    "DDPM": BenchmarkSpec(
        name="DDPM",
        description="pixel-space unconditional diffusion (DDPM on CIFAR-10)",
        dataset="cifar10",
        sampler="ddim",
        num_steps=50,
        paper_steps=100,
        sample_shape=(3, 16, 16),
        build_model=zoo.build_ddpm_unet,
        build_conditioning=lambda: None,
    ),
    "BED": BenchmarkSpec(
        name="BED",
        description="latent-space unconditional diffusion (LSUN-Bedroom)",
        dataset="lsun_bedroom",
        sampler="ddim",
        num_steps=40,
        paper_steps=200,
        sample_shape=(4, 16, 16),
        build_model=lambda: zoo.build_latent_unet(seed=2),
        build_conditioning=lambda: None,
        latent=True,
    ),
    "CHUR": BenchmarkSpec(
        name="CHUR",
        description="latent-space unconditional diffusion (LSUN-Church)",
        dataset="lsun_church",
        sampler="ddim",
        num_steps=40,
        paper_steps=200,
        sample_shape=(4, 16, 16),
        build_model=lambda: zoo.build_latent_unet(seed=12),
        build_conditioning=lambda: None,
        latent=True,
    ),
    "IMG": BenchmarkSpec(
        name="IMG",
        description="class-conditional latent diffusion (ImageNet)",
        dataset="imagenet",
        sampler="ddim",
        num_steps=15,
        paper_steps=20,
        sample_shape=(4, 16, 16),
        build_model=lambda: zoo.build_conditional_unet(seed=3),
        build_conditioning=lambda: {"context": _class_context(3)},
        latent=True,
    ),
    "SDM": BenchmarkSpec(
        name="SDM",
        description="text-conditional stable-diffusion-style model (COCO)",
        dataset="coco2017",
        sampler="plms",
        num_steps=20,
        paper_steps=50,
        sample_shape=(4, 16, 16),
        build_model=lambda: zoo.build_conditional_unet(seed=13),
        build_conditioning=lambda: {"context": _text_context(0)},
        latent=True,
        build_uncond_conditioning=_empty_text_context,
    ),
    "DiT": BenchmarkSpec(
        name="DiT",
        description="diffusion transformer (DiT-XL/2 on ImageNet)",
        dataset="imagenet",
        sampler="ddim",
        num_steps=50,
        paper_steps=250,
        sample_shape=(4, 16, 16),
        build_model=zoo.build_dit,
        build_conditioning=lambda: {"y": np.array([3])},
        latent=True,
    ),
    "Latte": BenchmarkSpec(
        name="Latte",
        description="video diffusion transformer (Latte-XL/2 on UCF-101)",
        dataset="ucf101",
        sampler="ddim",
        num_steps=16,
        paper_steps=20,
        sample_shape=(4, 4, 16, 16),
        build_model=zoo.build_latte,
        build_conditioning=lambda: {"y": np.array([2])},
        latent=True,
        is_video=True,
    ),
}


def get_benchmark(name: str) -> BenchmarkSpec:
    try:
        return SUITE[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {benchmark_names()}"
        ) from None


def benchmark_names() -> List[str]:
    return list(SUITE)
