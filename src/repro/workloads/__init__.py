"""Workloads: synthetic datasets, prompts, and the Table I benchmark suite."""

from .datasets import DATASETS, DatasetSpec, synthetic_images, synthetic_video
from .prompts import COCO_STYLE_PROMPTS, sample_prompts
from .suite import SUITE, BenchmarkSpec, benchmark_names, get_benchmark

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "synthetic_images",
    "synthetic_video",
    "COCO_STYLE_PROMPTS",
    "sample_prompts",
    "SUITE",
    "BenchmarkSpec",
    "benchmark_names",
    "get_benchmark",
]
