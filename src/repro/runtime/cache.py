"""Content-addressed on-disk cache for engine results and reports.

Entries are pickles stored under ``<cache_dir>/<key[:2]>/<key>.pkl`` where
``key`` is the stable hash produced by :mod:`repro.runtime.hashing`.  The
cache is safe against concurrent writers (atomic rename via
:func:`repro.export.dump_pickle`) and against corrupted entries: a pickle
that fails to load is deleted and reported as a miss, so the caller simply
recomputes and overwrites it.

Traces are persisted in their compact columnar form: before pickling, any
stored value exposing ``seal()`` (or holding a sealable ``rich_trace`` /
``trace`` attribute, like :class:`~repro.core.engine.EngineResult`) has its
columns sealed into flat numpy arrays, so entries are a handful of arrays
instead of one object graph per layer-step record - smaller pickles and far
faster warm loads.

The default location is ``$REPRO_CACHE_DIR`` if set, else
``~/.cache/ditto-repro``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from ..export import dump_pickle, load_pickle

__all__ = ["CacheStats", "ResultCache", "default_cache_dir"]

_ENV_VAR = "REPRO_CACHE_DIR"


def _seal_for_storage(value: Any) -> None:
    """Seal columnar traces inside ``value`` ahead of pickling."""
    for target in (value, getattr(value, "rich_trace", None), getattr(value, "trace", None)):
        seal = getattr(target, "seal", None)
        if callable(seal):
            seal()


def default_cache_dir() -> Path:
    """The on-disk store location: ``$REPRO_CACHE_DIR`` or ``~/.cache/ditto-repro``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "ditto-repro"


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """A new ``CacheStats`` summing this instance's counters with ``other``'s."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            stores=self.stores + other.stores,
            corrupt=self.corrupt + other.corrupt,
        )

    def summary(self) -> str:
        """One human-readable counter line for CLI output."""
        return (
            f"cache: {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores, {self.corrupt} corrupt"
        )


@dataclass
class ResultCache:
    """Pickle-backed content-addressed store keyed by stable hashes."""

    cache_dir: Union[str, Path] = field(default_factory=default_cache_dir)
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.cache_dir = Path(self.cache_dir)

    def path_for(self, key: str) -> Path:
        """The entry path for ``key``: ``<dir>/<key[:2]>/<key>.pkl``."""
        return self.cache_dir / key[:2] / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        """Whether an entry exists for ``key`` (always ``False`` when disabled)."""
        return self.enabled and self.path_for(key).exists()

    def get(self, key: str) -> Optional[Any]:
        """Return the cached object or ``None`` (miss or corrupted entry)."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        from . import faults

        plan = faults.active()
        if plan is not None and plan.corrupt_cache_read():
            # Deterministic fault injection: scribble over the entry so this
            # very read exercises the corrupted-entry path below (drop,
            # report a miss, recompute) instead of a synthetic unit test.
            path.write_bytes(b"repro fault injection: corrupted entry")
        try:
            value = load_pickle(path)
        except Exception:
            # Corrupted / truncated / stale-format entry: drop and recompute.
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Pickle ``value`` under ``key`` (no-op when the cache is disabled)."""
        if not self.enabled:
            return
        _seal_for_storage(value)
        dump_pickle(value, self.path_for(key))
        self.stats.stores += 1

    def get_or_compute(self, key: str, compute) -> Any:
        """Return the cached value for ``key``, computing and storing on miss.

        Parameters
        ----------
        key:
            A stable hash from :mod:`repro.runtime.hashing`.
        compute:
            Zero-argument callable producing the value on a miss; its result
            is stored before being returned.

        Returns
        -------
        Any
            The cached or freshly computed value.
        """
        value = self.get(key)
        if value is None:
            value = compute()
            self.put(key, value)
        return value

    def invalidate(self, key: str) -> bool:
        """Delete one entry; returns whether it existed."""
        path = self.path_for(key)
        if path.exists():
            path.unlink()
            return True
        return False

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        if not Path(self.cache_dir).exists():
            return 0
        return sum(1 for _ in Path(self.cache_dir).rglob("*.pkl"))

    def size_bytes(self) -> int:
        """Total on-disk size of all entries, in bytes."""
        if not Path(self.cache_dir).exists():
            return 0
        return sum(p.stat().st_size for p in Path(self.cache_dir).rglob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry (and any orphaned temp files); returns the
        number of entries removed.

        There is no automatic eviction: keys embed the package code
        fingerprint, so each source edit strands the previous generation of
        entries.  ``repro cache clear`` (or this method) is the reclaim path.
        """
        removed = 0
        root = Path(self.cache_dir)
        if root.exists():
            for entry in root.rglob("*.pkl"):
                entry.unlink()
                removed += 1
            # Writers killed mid-dump_pickle leave *.tmp files behind.
            for leftover in root.rglob("*.tmp"):
                leftover.unlink()
        return removed
