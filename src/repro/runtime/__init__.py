"""Parallel, cached execution runtime for the reproduction.

Public surface:

* :class:`EngineRunner` - process-pool fan-out of benchmark engine runs
  with a shared content-addressed result cache,
* :class:`ResultCache` / :class:`CacheStats` - the on-disk store,
* :func:`engine_key` / :func:`engine_build_key` / :func:`plan_key` /
  :func:`similarity_key` / :func:`stable_hash` / :func:`code_fingerprint` -
  stable cache-key construction,
* :class:`FaultPlan` / :class:`CancelToken` / :class:`ReplayableRNG` - the
  deterministic fault-injection harness and cancellation primitives behind
  fault-tolerant serving (:mod:`repro.runtime.faults`).
"""

from .cache import CacheStats, ResultCache, default_cache_dir
from .faults import (
    CancelToken,
    FaultPlan,
    InjectedFault,
    ReplayableRNG,
    SessionKilled,
)
from .hashing import (
    CACHE_SCHEMA_VERSION,
    callable_fingerprint,
    code_fingerprint,
    engine_build_key,
    engine_key,
    plan_key,
    similarity_key,
    spec_signature,
    stable_hash,
)
from .runner import SIMILARITY_MAX_STEPS, EngineRunner, normalize_batch_sizes
from .serving import (
    ARRIVAL_PATTERNS,
    REQUEST_OUTCOMES,
    SCHEDULERS,
    BatchSizeReport,
    Request,
    ServedRequest,
    ServingReport,
    SLOClass,
    SLOClassReport,
    assign_slo_classes,
    estimate_row_footprint,
    generate_requests,
    parse_slo_spec,
    pool_budget_row_cap,
    simulate_serving,
)

__all__ = [
    "ARRIVAL_PATTERNS",
    "BatchSizeReport",
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "CancelToken",
    "EngineRunner",
    "FaultPlan",
    "InjectedFault",
    "REQUEST_OUTCOMES",
    "ReplayableRNG",
    "Request",
    "ResultCache",
    "SCHEDULERS",
    "SIMILARITY_MAX_STEPS",
    "SLOClass",
    "SLOClassReport",
    "ServedRequest",
    "ServingReport",
    "SessionKilled",
    "assign_slo_classes",
    "callable_fingerprint",
    "code_fingerprint",
    "default_cache_dir",
    "engine_build_key",
    "engine_key",
    "estimate_row_footprint",
    "generate_requests",
    "normalize_batch_sizes",
    "parse_slo_spec",
    "plan_key",
    "pool_budget_row_cap",
    "similarity_key",
    "simulate_serving",
    "spec_signature",
    "stable_hash",
]
