"""Parallel, cached execution runtime for the reproduction.

Public surface:

* :class:`EngineRunner` - process-pool fan-out of benchmark engine runs
  with a shared content-addressed result cache,
* :class:`ResultCache` / :class:`CacheStats` - the on-disk store,
* :func:`engine_key` / :func:`similarity_key` / :func:`stable_hash` /
  :func:`code_fingerprint` - stable cache-key construction.
"""

from .cache import CacheStats, ResultCache, default_cache_dir
from .hashing import (
    CACHE_SCHEMA_VERSION,
    callable_fingerprint,
    code_fingerprint,
    engine_key,
    similarity_key,
    spec_signature,
    stable_hash,
)
from .runner import SIMILARITY_MAX_STEPS, EngineRunner, normalize_batch_sizes
from .serving import (
    ARRIVAL_PATTERNS,
    SCHEDULERS,
    BatchSizeReport,
    Request,
    ServedRequest,
    ServingReport,
    estimate_row_footprint,
    generate_requests,
    pool_budget_row_cap,
    simulate_serving,
)

__all__ = [
    "ARRIVAL_PATTERNS",
    "BatchSizeReport",
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "EngineRunner",
    "Request",
    "ResultCache",
    "SCHEDULERS",
    "SIMILARITY_MAX_STEPS",
    "ServedRequest",
    "ServingReport",
    "callable_fingerprint",
    "code_fingerprint",
    "default_cache_dir",
    "engine_key",
    "estimate_row_footprint",
    "generate_requests",
    "normalize_batch_sizes",
    "pool_budget_row_cap",
    "similarity_key",
    "simulate_serving",
    "spec_signature",
    "stable_hash",
]
