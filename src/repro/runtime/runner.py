"""EngineRunner - parallel, cached production of instrumented engine runs.

The paper's methodology funnels every analysis (BOPs, Defo policies, all
hardware comparisons) through *one* instrumented generation run per Table I
benchmark.  Building those seven engines is by far the most expensive part
of a sweep, and it is embarrassingly parallel and fully deterministic given
the seeds.  :class:`EngineRunner` therefore:

* fans benchmark engine construction out across a
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs > 1``), and
* backs every :class:`~repro.core.engine.EngineResult` and
  :class:`~repro.core.similarity.SimilarityReport` with the
  content-addressed on-disk cache from :mod:`repro.runtime.cache`, so a
  second sweep (or a second pytest benchmark session) skips engine
  reconstruction entirely.

Workers consult and populate the same cache directory, so a parallel first
run warms the cache for every later serial consumer.  Benchmarks are
usually addressed by Table I name (resolved inside the worker process, so
nothing unpicklable crosses the pool boundary); custom
:class:`~repro.workloads.suite.BenchmarkSpec` objects are also accepted as
long as their ``build_*`` callables are importable module-level functions.
"""

from __future__ import annotations

import multiprocessing
import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..core.engine import DittoEngine, EngineResult
from ..core.similarity import SimilarityReport, similarity_report
from .cache import CacheStats, ResultCache, default_cache_dir
from .hashing import engine_build_key, engine_key, similarity_key

__all__ = ["EngineRunner", "SIMILARITY_MAX_STEPS", "normalize_batch_sizes"]


def normalize_batch_sizes(
    batch_sizes: Iterable[int], preserve_order: bool = False
) -> List[int]:
    """Dedupe and validate a batch-size axis (shared by bench/serve/sweeps).

    ``preserve_order=True`` keeps first-occurrence order (``repro bench``
    treats the first size as the headline record); the default sorts
    ascending.  Rejects empty input and sizes < 1.
    """
    requested = [int(b) for b in batch_sizes]
    if preserve_order:
        sizes = list(dict.fromkeys(requested))
    else:
        sizes = sorted(set(requested))
    if not sizes:
        raise ValueError("need at least one batch size")
    if min(sizes) < 1:
        raise ValueError(f"batch sizes must be >= 1, got {requested}")
    return sizes

# Similarity analysis only needs a window of adjacent steps (Figs. 3-4), so
# runs are capped at this many steps unless the caller overrides them.
SIMILARITY_MAX_STEPS = 16

SpecOrName = Union[str, object]


def _resolve_spec(spec_or_name: SpecOrName):
    if isinstance(spec_or_name, str):
        from ..workloads import get_benchmark

        return get_benchmark(spec_or_name)
    return spec_or_name


def _compute_engine_result(spec, params: dict) -> EngineResult:
    engine = DittoEngine.from_benchmark(
        spec,
        num_steps=params["num_steps"],
        calibrate=params["calibrate"],
        calibration_seed=params["calibration_seed"],
        step_clusters=params["step_clusters"],
        guidance_scale=params.get("guidance_scale"),
        calibration_dtype=params.get("calibration_dtype"),
        backend=params.get("backend"),
    )
    return engine.run(batch_size=params["batch_size"], seed=params["seed"])


def _compute_similarity(spec, params: dict) -> SimilarityReport:
    from ..diffusion import DiffusionSchedule, GenerationPipeline, make_sampler

    model = spec.build_model()
    sampler = make_sampler(
        spec.sampler, DiffusionSchedule(1000), params["num_steps"]
    )
    pipeline = GenerationPipeline(
        model, sampler, spec.sample_shape, spec.build_conditioning()
    )
    rng = np.random.default_rng(params["seed"])
    return similarity_report(
        spec.name, model, lambda: pipeline.generate(1, rng)
    )


_COMPUTE = {
    "engine": (_compute_engine_result, engine_key),
    "similarity": (_compute_similarity, similarity_key),
}


def _normalized_params(kind: str, spec, params: dict) -> dict:
    """Resolve defaults that depend on the spec, so equivalent invocations
    share one cache key (``num_steps=None`` vs the resolved step count)."""
    if params.get("num_steps") is None:
        if kind == "engine":
            return {**params, "num_steps": spec.num_steps}
        return {**params, "num_steps": min(spec.num_steps, SIMILARITY_MAX_STEPS)}
    return params


def _run_one(
    kind: str, spec_or_name: SpecOrName, params: dict, cache: ResultCache
) -> Tuple[str, object]:
    """Cache-through computation of one result; shared by pool and serial paths."""
    compute, make_key = _COMPUTE[kind]
    spec = _resolve_spec(spec_or_name)
    params = _normalized_params(kind, spec, params)
    key = make_key(spec, **params)
    value = cache.get(key)
    if value is None:
        value = compute(spec, params)
        cache.put(key, value)
    return spec.name, value


def _pool_worker(
    kind: str,
    spec_or_name: SpecOrName,
    params: dict,
    cache_dir: str,
    cache_enabled: bool,
) -> Tuple[str, object, CacheStats]:
    """Top-level (picklable) worker: fresh cache handle, stats shipped back."""
    cache = ResultCache(cache_dir, enabled=cache_enabled)
    name, value = _run_one(kind, spec_or_name, params, cache)
    return name, value, cache.stats


class EngineRunner:
    """Runs benchmark engines across a process pool with a shared result cache."""

    def __init__(
        self,
        jobs: int = 1,
        cache: bool = True,
        cache_dir=None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self._cache = ResultCache(
            cache_dir if cache_dir is not None else default_cache_dir(),
            enabled=cache,
        )

    # -- introspection -----------------------------------------------------
    @property
    def cache(self) -> ResultCache:
        """The shared content-addressed result store."""
        return self._cache

    @property
    def stats(self) -> CacheStats:
        """Hit/miss counters of the underlying cache."""
        return self._cache.stats

    # -- single results ----------------------------------------------------
    def run_benchmark(
        self,
        spec_or_name: SpecOrName,
        num_steps: Optional[int] = None,
        calibrate: bool = True,
        calibration_seed: int = 11,
        step_clusters: int = 1,
        seed: int = 0,
        batch_size: int = 1,
        guidance_scale: Optional[float] = None,
        calibration_dtype: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> EngineResult:
        """One cached instrumented run (serial; use :meth:`run_suite` to fan out)."""
        params = {
            "num_steps": num_steps,
            "calibrate": calibrate,
            "calibration_seed": calibration_seed,
            "step_clusters": step_clusters,
            "seed": seed,
            "batch_size": batch_size,
            "guidance_scale": guidance_scale,
            "calibration_dtype": calibration_dtype,
            "backend": backend,
        }
        return _run_one("engine", spec_or_name, params, self._cache)[1]

    def build_engine(
        self,
        spec_or_name: SpecOrName,
        num_steps: Optional[int] = None,
        calibrate: bool = True,
        calibration_seed: int = 11,
        step_clusters: int = 1,
        guidance_scale: Optional[float] = None,
        sampler: Optional[str] = None,
        sampler_eta: Optional[float] = None,
        calibration_dtype: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> DittoEngine:
        """One cached engine *build* (quantization + calibration, no run).

        This is the crash-recovery path of the serving tier: rebuilding a
        killed session's engine must be fast, so the built
        :class:`DittoEngine` object itself is stored in the
        content-addressed cache (engines are plain numpy + pure-Python
        state, so they pickle; the key carries the source fingerprint and
        every build parameter).  Builds are deterministic given the
        calibration seed, so a cache miss rebuilds bit-identically - the
        cache only buys warmth, never correctness.
        """
        spec = _resolve_spec(spec_or_name)
        resolved_steps = num_steps if num_steps is not None else spec.num_steps
        key = engine_build_key(
            spec,
            num_steps=resolved_steps,
            calibrate=calibrate,
            calibration_seed=calibration_seed,
            step_clusters=step_clusters,
            guidance_scale=guidance_scale,
            sampler=sampler,
            sampler_eta=sampler_eta,
            calibration_dtype=calibration_dtype,
            backend=backend,
        )
        engine = self._cache.get(key)
        if engine is None:
            engine = DittoEngine.from_benchmark(
                spec,
                num_steps=resolved_steps,
                calibrate=calibrate,
                calibration_seed=calibration_seed,
                step_clusters=step_clusters,
                guidance_scale=guidance_scale,
                sampler=sampler,
                sampler_eta=sampler_eta,
                calibration_dtype=calibration_dtype,
                backend=backend,
            )
            try:
                self._cache.put(key, engine)
            except Exception:
                # An unpicklable custom spec (e.g. a closure-built model)
                # cannot be cached, but the freshly built engine still
                # serves; recovery then cold-rebuilds instead of reloading.
                pass
        return engine

    def run_batch_sizes(
        self,
        spec_or_name: SpecOrName,
        batch_sizes: Iterable[int] = (1, 2, 4, 8),
        num_steps: Optional[int] = None,
        calibrate: bool = True,
        calibration_seed: int = 11,
        step_clusters: int = 1,
        seed: int = 0,
        guidance_scale: Optional[float] = None,
        calibration_dtype: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> Dict[int, EngineResult]:
        """Cached instrumented runs of one benchmark across batch sizes.

        The batch-size axis fans out across the process pool exactly like the
        benchmark axis of :meth:`run_suite` (cache keys carry ``batch_size``,
        so each point is independently reusable).  Returns
        ``{batch_size: EngineResult}``.
        """
        sizes = normalize_batch_sizes(batch_sizes)
        items = [
            (
                spec_or_name,
                {
                    "num_steps": num_steps,
                    "calibrate": calibrate,
                    "calibration_seed": calibration_seed,
                    "step_clusters": step_clusters,
                    "seed": seed,
                    "batch_size": size,
                    "guidance_scale": guidance_scale,
                    "calibration_dtype": calibration_dtype,
                    "backend": backend,
                },
            )
            for size in sizes
        ]
        # _map_varied yields results in completion order and every item here
        # shares one benchmark name, so re-key each result by its actual
        # batch dimension (samples are (batch, *sample_shape)).
        results = [value for _, value in self._map_varied("engine", items)]
        by_size = {int(r.samples.shape[0]): r for r in results}
        if sorted(by_size) != sizes:
            raise AssertionError(
                f"batched sweep returned sizes {sorted(by_size)}, wanted {sizes}"
            )
        return {size: by_size[size] for size in sizes}

    def similarity(
        self,
        spec_or_name: SpecOrName,
        num_steps: Optional[int] = None,
        seed: int = 1,
    ) -> SimilarityReport:
        """One cached FP32 similarity report (Figs. 3-4).

        ``num_steps=None`` resolves to ``min(spec steps, SIMILARITY_MAX_STEPS)``.
        """
        params = {"num_steps": num_steps, "seed": seed}
        return _run_one("similarity", spec_or_name, params, self._cache)[1]

    # -- suite fan-out -----------------------------------------------------
    def run_suite(
        self,
        benchmarks: Optional[Iterable[SpecOrName]] = None,
        num_steps: Optional[int] = None,
        calibrate: bool = True,
        calibration_seed: int = 11,
        step_clusters: int = 1,
        seed: int = 0,
        batch_size: int = 1,
        guidance_scale: Optional[float] = None,
        calibration_dtype: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> Dict[str, EngineResult]:
        """Instrumented runs for every benchmark, cache-first then pooled."""
        params = {
            "num_steps": num_steps,
            "calibrate": calibrate,
            "calibration_seed": calibration_seed,
            "step_clusters": step_clusters,
            "seed": seed,
            "batch_size": batch_size,
            "guidance_scale": guidance_scale,
            "calibration_dtype": calibration_dtype,
            "backend": backend,
        }
        return self._map("engine", self._default_suite(benchmarks), params)

    def similarity_suite(
        self,
        benchmarks: Optional[Iterable[SpecOrName]] = None,
        num_steps: Optional[int] = None,
        seed: int = 1,
    ) -> Dict[str, SimilarityReport]:
        """Similarity reports for every benchmark, cache-first then pooled."""
        params = {"num_steps": num_steps, "seed": seed}
        return self._map("similarity", self._default_suite(benchmarks), params)

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _default_suite(
        benchmarks: Optional[Iterable[SpecOrName]],
    ) -> List[SpecOrName]:
        if benchmarks is not None:
            return list(benchmarks)
        from ..workloads import benchmark_names

        return list(benchmark_names())

    def _map(
        self, kind: str, items: List[SpecOrName], params: dict
    ) -> Dict[str, object]:
        ordered = [(item, params) for item in items]
        results: Dict[str, object] = {}
        for name, value in self._map_varied(kind, ordered):
            results[name] = value
        return results

    def _map_varied(
        self, kind: str, items: List[Tuple[SpecOrName, dict]]
    ) -> List[Tuple[str, object]]:
        make_key = _COMPUTE[kind][1]
        out: List[Tuple[str, object]] = []
        pending: List[Tuple[SpecOrName, dict]] = []
        # Cache-first pass: warm entries load in-process, no pool needed.
        for item, params in items:
            spec = _resolve_spec(item)
            if self._cache.contains(
                make_key(spec, **_normalized_params(kind, spec, params))
            ):
                out.append(_run_one(kind, item, params, self._cache))
            else:
                pending.append((item, params))
        if not pending:
            return out
        if self.jobs == 1 or len(pending) == 1:
            for item, params in pending:
                out.append(_run_one(kind, item, params, self._cache))
            return out
        # Fork keeps worker startup cheap and inherits sys.path / custom
        # specs.  Restricted to Linux: on macOS forking after numpy /
        # Accelerate initialization is crash-prone, and specs passed by
        # Table I name survive spawn anyway.
        if sys.platform == "linux":
            ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - exercised only off-Linux
            ctx = multiprocessing.get_context()
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            futures = {
                pool.submit(
                    _pool_worker,
                    kind,
                    item,
                    params,
                    str(self._cache.cache_dir),
                    self._cache.enabled,
                ): item
                for item, params in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    name, value, stats = future.result()
                    self._cache.stats = self._cache.stats.merge(stats)
                    out.append((name, value))
        return out
