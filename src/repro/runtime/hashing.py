"""Stable content hashing for the engine-result cache.

A cache key must be reproducible across processes and sessions (so a second
``repro sweep`` or pytest session hits the entries the first one wrote) yet
change whenever anything that influences the computed result changes:

* the benchmark specification (model family, sampler, step counts, shapes),
* the run parameters (step overrides, clustering, calibration/run seeds,
  batch size),
* the code that produces the numbers.

The last point is covered by :func:`code_fingerprint`, which hashes the
source of every module in the ``repro`` package plus the cache schema
version.  Editing any source file therefore invalidates all prior entries -
the blunt but safe interpretation of "code-relevant config".
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional

from ..defaults import resolve_backend, resolve_calibration_dtype

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "callable_fingerprint",
    "code_fingerprint",
    "stable_hash",
    "spec_signature",
    "engine_key",
    "engine_build_key",
    "plan_key",
    "similarity_key",
]

# Bump when the cached payload layout changes (e.g. new EngineResult fields
# that old pickles would silently lack).
CACHE_SCHEMA_VERSION = 1

_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Hex digest over every ``repro`` source file (memoized per process)."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        digest.update(f"schema={CACHE_SCHEMA_VERSION}".encode())
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def callable_fingerprint(fn: Callable) -> str:
    """Stable identity for a spec's builder callable.

    Module-qualified name plus a hash of the callable's source, so editing a
    builder defined *outside* the ``repro`` package (custom specs, test
    helpers) still changes the cache key.  Callables whose source is
    unretrievable (builtins, C extensions) fall back to the name alone.
    """
    if isinstance(fn, functools.partial):
        # Partials have no source of their own; fingerprint the wrapped
        # callable plus the bound arguments so differently-configured
        # partials never share a key.
        bound = (fn.args, sorted(fn.keywords.items()))
        return f"partial({callable_fingerprint(fn.func)}, {bound!r})"
    ident = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', '?')}"
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        return ident
    return f"{ident}#{hashlib.sha256(source.encode()).hexdigest()[:16]}"


def _normalize(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-serializable primitives, deterministically."""
    if isinstance(obj, Mapping):
        return {str(k): _normalize(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_normalize(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "signature"):
        return _normalize(obj.signature())
    raise TypeError(f"cannot hash {type(obj).__name__!r} into a cache key")


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of a canonical JSON rendering of ``obj``."""
    payload = json.dumps(_normalize(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def spec_signature(spec) -> Dict[str, Any]:
    """Cache-relevant description of a :class:`BenchmarkSpec`-like object."""
    if hasattr(spec, "signature"):
        return spec.signature()
    build = getattr(spec, "build_model", None)
    build_cond = getattr(spec, "build_conditioning", None)
    build_uncond = getattr(spec, "build_uncond_conditioning", None)
    return {
        "name": spec.name,
        "sampler": spec.sampler,
        "num_steps": spec.num_steps,
        # paper_steps feeds run-time step overrides ("paper steps" sweeps);
        # a duck-typed spec without it inherits num_steps, matching how the
        # engine falls back.
        "paper_steps": getattr(spec, "paper_steps", None),
        "sample_shape": list(spec.sample_shape),
        "dataset": getattr(spec, "dataset", ""),
        "latent": getattr(spec, "latent", False),
        "is_video": getattr(spec, "is_video", False),
        "builder": "" if build is None else callable_fingerprint(build),
        # Conditioning builders shape the sampled trajectory just as much as
        # the model builder; leaving them out aliased cached engines across
        # differently-conditioned duck-typed specs.
        "cond_builder": "" if build_cond is None else callable_fingerprint(build_cond),
        "guidance_scale": getattr(spec, "guidance_scale", None),
        "uncond_builder": (
            "" if build_uncond is None else callable_fingerprint(build_uncond)
        ),
        # Normalized like BenchmarkSpec.signature(): an explicit default pin
        # is behaviorally identical to None and must share cache entries.
        "calibration_dtype": resolve_calibration_dtype(spec),
        # The *requested* compute backend; availability fallback never
        # collapses this axis, so degraded runs cannot alias native ones.
        "backend": resolve_backend(spec),
    }


def engine_key(
    spec,
    num_steps: Optional[int] = None,
    calibrate: bool = True,
    calibration_seed: int = 11,
    step_clusters: int = 1,
    seed: int = 0,
    batch_size: int = 1,
    guidance_scale: Optional[float] = None,
    calibration_dtype: Optional[str] = None,
    backend: Optional[str] = None,
) -> str:
    """Cache key for one instrumented :class:`EngineResult`.

    ``calibration_dtype`` normalizes through the one shared
    :func:`repro.defaults.resolve_calibration_dtype` rule -
    exactly how ``DittoEngine.from_benchmark`` resolves it - so equivalent
    invocations share one entry while differently-calibrated engines can
    never collide.  ``backend`` normalizes the same way through
    :func:`repro.defaults.resolve_backend`: the float calibration products
    may drift in the last ulp across backends, so their results must never
    share an entry.
    """
    resolved_cal_dtype = resolve_calibration_dtype(spec, calibration_dtype)
    return stable_hash(
        {
            "kind": "engine_result",
            "code": code_fingerprint(),
            "spec": spec_signature(spec),
            "num_steps": num_steps,
            "calibrate": calibrate,
            "calibration_seed": calibration_seed,
            "step_clusters": step_clusters,
            "seed": seed,
            "batch_size": batch_size,
            "guidance_scale": guidance_scale,
            "calibration_dtype": str(resolved_cal_dtype),
            "backend": resolve_backend(spec, backend),
        }
    )


def engine_build_key(
    spec,
    num_steps: Optional[int] = None,
    calibrate: bool = True,
    calibration_seed: int = 11,
    step_clusters: int = 1,
    guidance_scale: Optional[float] = None,
    sampler: Optional[str] = None,
    sampler_eta: Optional[float] = None,
    calibration_dtype: Optional[str] = None,
    backend: Optional[str] = None,
) -> str:
    """Cache key for one built :class:`DittoEngine` *object*.

    Distinct from :func:`engine_key`: no run parameters (seed/batch size) -
    the engine build is what crash recovery reloads, and the same build
    serves any run.  Carries the sampler override because
    ``DittoEngine.from_benchmark`` accepts one (the run-result key predates
    that axis and never passes it).
    """
    resolved_cal_dtype = resolve_calibration_dtype(spec, calibration_dtype)
    return stable_hash(
        {
            "kind": "engine_build",
            "code": code_fingerprint(),
            "spec": spec_signature(spec),
            "num_steps": num_steps,
            "calibrate": calibrate,
            "calibration_seed": calibration_seed,
            "step_clusters": step_clusters,
            "guidance_scale": guidance_scale,
            "sampler": sampler,
            "sampler_eta": sampler_eta,
            "calibration_dtype": str(resolved_cal_dtype),
            "backend": resolve_backend(spec, backend),
        }
    )


def plan_key(
    spec,
    num_steps: Optional[int] = None,
    calibrate: bool = True,
    calibration_seed: int = 11,
    step_clusters: int = 1,
    guidance_scale: Optional[float] = None,
    sampler: Optional[str] = None,
    sampler_eta: Optional[float] = None,
    calibration_dtype: Optional[str] = None,
    backend: Optional[str] = None,
    derivation_seed: int = 0,
    derivation_batch_size: int = 1,
    hardware: str = "Ditto",
    plan_format: int = 1,
) -> str:
    """Cache key for one :class:`~repro.core.plan.ExecutionPlan`.

    Same engine-construction axes as :func:`engine_build_key` (a plan is a
    property of the built engine, not of any one serving run), plus the
    *derivation* run parameters (``derivation_seed`` /
    ``derivation_batch_size`` - bitwidth stats depend on the sampled noise),
    the Defo hardware model, and the plan payload format.  Embeds
    :func:`code_fingerprint`, so every source edit strands stale plans
    exactly like every other cache entry.
    """
    resolved_cal_dtype = resolve_calibration_dtype(spec, calibration_dtype)
    return stable_hash(
        {
            "kind": "execution_plan",
            "code": code_fingerprint(),
            "spec": spec_signature(spec),
            "num_steps": num_steps,
            "calibrate": calibrate,
            "calibration_seed": calibration_seed,
            "step_clusters": step_clusters,
            "guidance_scale": guidance_scale,
            "sampler": sampler,
            "sampler_eta": sampler_eta,
            "calibration_dtype": str(resolved_cal_dtype),
            "backend": resolve_backend(spec, backend),
            "derivation_seed": derivation_seed,
            "derivation_batch_size": derivation_batch_size,
            "hardware": hardware,
            "plan_format": plan_format,
        }
    )


def similarity_key(spec, num_steps: int, seed: int = 1) -> str:
    """Cache key for one FP32 :class:`SimilarityReport`."""
    return stable_hash(
        {
            "kind": "similarity_report",
            "code": code_fingerprint(),
            "spec": spec_signature(spec),
            "num_steps": num_steps,
            "seed": seed,
        }
    )
