"""``repro serve`` - the paper's serving scenario as a workload driver.

The headline claim of the paper is that temporal difference processing makes
diffusion denoisers cheap enough to *serve*.  Serving means batching: a
request queue, a micro-batching window that trades a little latency for
occupancy, and a denoiser driven at ``batch_size > 1``.  This module
simulates exactly that on top of :class:`~repro.core.engine.DittoEngine`:

* :func:`generate_requests` draws a request trace with a configurable
  arrival pattern (``poisson`` / ``uniform`` / ``burst``), each request
  carrying its own noise seed;
* :func:`simulate_serving` replays the same trace against every requested
  maximum batch size.  A greedy micro-batcher collects requests while the
  server is busy and for up to ``window_s`` after the first waiting request,
  stacks their independently-seeded initial noise into one ``x_init``, and
  drives ``DittoEngine.run``; service times are *measured* wall-clock, so
  throughput and latency percentiles reflect the numpy substrate honestly.

Two schedulers are provided:

* ``fixed`` - the PR-3 micro-batcher: lockstep batches, the engine drains
  between launches;
* ``continuous`` - iteration-level (Orca-style) scheduling over a
  persistent :class:`~repro.core.session.EngineSession`: rows are admitted
  and evicted at *step boundaries*, each row carries its own timestep, and
  the engine never drains while requests are queued.

Stacking requests is only sound because of the per-batch-element
temporal-state invariance contract: every quantized layer's cached
``_prev_*`` state differences along the batch axis, so a batch-N run is
bit-exact with N independent batch-1 runs (pinned by
``tests/test_batched_state.py`` and optionally re-checked per serve via
``verify_invariance``).  Stochastic samplers (ddpm, ddim eta>0) join the
contract through per-request ``SeedSequence.spawn`` noise streams
(:meth:`Request.sampler_rng`).  The per-batch-size MAC/BOPs savings come
from one instrumented run per batch size; the timed runs skip
instrumentation (``record_trace=False``) so stats scans do not pollute the
latency numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core import lower_temporal, relative_bops
from ..core.engine import DittoEngine

__all__ = [
    "ARRIVAL_PATTERNS",
    "SCHEDULERS",
    "Request",
    "ServedRequest",
    "BatchSizeReport",
    "ServingReport",
    "generate_requests",
    "simulate_serving",
    "estimate_row_footprint",
    "pool_budget_row_cap",
]

ARRIVAL_PATTERNS = ("poisson", "uniform", "burst")
SCHEDULERS = ("fixed", "continuous")


@dataclass(frozen=True)
class Request:
    """One generation request: identity, arrival time, private noise seed."""

    req_id: int
    arrival_s: float
    seed: Tuple[int, int]

    def draw_noise(self, sample_shape: Tuple[int, ...]) -> np.ndarray:
        """The request's initial noise, independent of any batching."""
        rng = np.random.default_rng(self.seed)
        return rng.standard_normal((1,) + tuple(sample_shape))

    def sampler_rng(self) -> np.random.Generator:
        """The request's private sampler noise stream.

        Built as the ``req_id``-th spawned child of
        ``SeedSequence(trace_seed)`` (``SeedSequence(s).spawn(n)[i] ==
        SeedSequence(s, spawn_key=(i,))``), so every call returns a fresh
        generator positioned at the start of the *same* stream - the batched
        replay and the batch-1 reference draw identical noise, which is what
        extends the bit-exact serving contract to stochastic samplers.
        """
        root, idx = self.seed
        return np.random.default_rng(
            np.random.SeedSequence(root, spawn_key=(idx,))
        )


@dataclass(frozen=True)
class ServedRequest:
    """Completion record of one request under one batching configuration."""

    req_id: int
    arrival_s: float
    launch_s: float
    finish_s: float
    batch_fill: int

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s


@dataclass
class BatchSizeReport:
    """Queue replay results for one maximum micro-batch size / capacity.

    ``utilization`` is mean occupied rows over capacity: for the fixed
    scheduler, mean launched-batch fill divided by the maximum batch size;
    for the continuous scheduler, mean in-flight rows per engine step
    divided by the session capacity.  ``num_batches`` counts engine launches
    (micro-batches for fixed, denoiser steps for continuous), and
    ``mean_service_s`` their mean measured wall-clock duration.
    """

    batch_size: int
    num_requests: int
    num_batches: int
    mean_batch_fill: float
    makespan_s: float
    throughput_rps: float
    latency_p50_s: float
    latency_p90_s: float
    latency_p99_s: float
    mean_service_s: float
    temporal_relative_bops: float
    mac_savings_pct: float
    utilization: float = 0.0
    served: List[ServedRequest] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "batch_size": self.batch_size,
            "num_requests": self.num_requests,
            "num_batches": self.num_batches,
            "mean_batch_fill": round(self.mean_batch_fill, 3),
            "utilization": round(self.utilization, 4),
            "makespan_s": round(self.makespan_s, 4),
            "throughput_rps": round(self.throughput_rps, 3),
            "latency_p50_s": round(self.latency_p50_s, 4),
            "latency_p90_s": round(self.latency_p90_s, 4),
            "latency_p99_s": round(self.latency_p99_s, 4),
            "mean_service_s": round(self.mean_service_s, 4),
            "temporal_relative_bops": round(self.temporal_relative_bops, 4),
            "mac_savings_pct": round(self.mac_savings_pct, 2),
        }


@dataclass
class ServingReport:
    """Per-batch-size serving metrics for one benchmark."""

    benchmark: str
    num_steps: int
    pattern: str
    rate_rps: float
    window_s: float
    num_requests: int
    guidance_scale: Optional[float]
    invariance_checked: bool
    scheduler: str = "fixed"
    sampler: Optional[str] = None
    pool_budget_mb: Optional[float] = None
    pool_row_cap: Optional[int] = None
    per_batch: Dict[int, BatchSizeReport] = field(default_factory=dict)

    def rows(self) -> List[List[object]]:
        return [
            [
                report.batch_size,
                report.throughput_rps,
                report.latency_p50_s,
                report.latency_p99_s,
                report.mean_batch_fill,
                report.mac_savings_pct,
            ]
            for report in self.per_batch.values()
        ]

    def utilization_lines(self) -> List[str]:
        """The per-scheduler utilization section (mean occupied rows)."""
        label = (
            "capacity" if self.scheduler == "continuous" else "max batch"
        )
        lines = [f"utilization ({self.scheduler} scheduler, occupied rows / {label}):"]
        for size, report in self.per_batch.items():
            lines.append(
                f"  {label} {size}: {100.0 * report.utilization:5.1f}% "
                f"(mean {report.mean_batch_fill:.2f} rows over "
                f"{report.num_batches} "
                + ("steps)" if self.scheduler == "continuous" else "batches)")
            )
        return lines

    def summary(self) -> str:
        from ..analysis import format_table

        head = (
            f"{self.benchmark}: {self.num_requests} requests, "
            f"{self.pattern} arrivals @ {self.rate_rps:g} req/s, "
            f"window {self.window_s * 1e3:g} ms, {self.num_steps} steps, "
            f"{self.scheduler} scheduler"
            + (f" [{self.sampler}]" if self.sampler else "")
            + (
                f", CFG x{self.guidance_scale:g}"
                if self.guidance_scale is not None
                else ""
            )
        )
        if self.pool_row_cap is not None:
            head += (
                f"\npool budget {self.pool_budget_mb:g} MB caps the batch at "
                f"{self.pool_row_cap} row(s)"
            )
        table = format_table(
            ["batch", "req/s", "p50 s", "p99 s", "fill", "MAC sav%"],
            self.rows(),
        )
        util = "\n".join(self.utilization_lines())
        if not self.invariance_checked:
            tail = ""
        elif self.scheduler == "continuous":
            tail = "every request verified bit-exact against its batch-1 reference"
        else:  # fixed verify covers one synthetic micro-batch, not the trace
            tail = "batch-N == N x batch-1 verified bit-exact"
        return "\n".join(part for part in (head, table, util, tail) if part)

    def to_json(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "num_steps": self.num_steps,
            "pattern": self.pattern,
            "rate_rps": self.rate_rps,
            "window_s": self.window_s,
            "num_requests": self.num_requests,
            "guidance_scale": self.guidance_scale,
            "invariance_checked": self.invariance_checked,
            "scheduler": self.scheduler,
            "sampler": self.sampler,
            "pool_budget_mb": self.pool_budget_mb,
            "pool_row_cap": self.pool_row_cap,
            "per_batch": {
                str(size): report.to_json()
                for size, report in self.per_batch.items()
            },
        }


def generate_requests(
    num_requests: int,
    rate_rps: float = 4.0,
    pattern: str = "poisson",
    seed: int = 0,
) -> List[Request]:
    """Draw a request trace with the given arrival pattern.

    ``poisson`` draws exponential inter-arrival gaps at ``rate_rps``;
    ``uniform`` spaces arrivals exactly ``1/rate_rps`` apart; ``burst``
    drops every request at t=0 (the worst case for the micro-batcher).
    Each request gets a private, reproducible noise seed derived from
    ``(seed, req_id)``, so its sample is identical no matter which
    micro-batch it lands in.
    """
    if num_requests < 1:
        raise ValueError("need at least one request")
    if pattern not in ARRIVAL_PATTERNS:
        raise ValueError(
            f"unknown arrival pattern {pattern!r}; choose from {ARRIVAL_PATTERNS}"
        )
    if pattern != "burst" and rate_rps <= 0.0:
        raise ValueError("rate_rps must be positive")
    if pattern == "poisson":
        rng = np.random.default_rng(seed)
        gaps = rng.exponential(1.0 / rate_rps, size=num_requests)
        arrivals = np.cumsum(gaps) - gaps[0]  # first request arrives at t=0
    elif pattern == "uniform":
        arrivals = np.arange(num_requests) / rate_rps
    else:  # burst
        arrivals = np.zeros(num_requests)
    return [
        Request(req_id=i, arrival_s=float(arrivals[i]), seed=(seed, i))
        for i in range(num_requests)
    ]


def _drain_queue(
    engine: DittoEngine,
    requests: Sequence[Request],
    noises: Sequence[np.ndarray],
    window_s: float,
    max_batch: int,
) -> Tuple[List[ServedRequest], List[float]]:
    """Replay the request trace through greedy micro-batching.

    Arrival times live on a simulated clock; service times are measured
    wall-clock per ``DittoEngine.run`` call.  A batch opens when the server
    is free and a request is waiting, admits arrivals for up to ``window_s``
    (closing early once full), then launches.  Every member draws sampler
    noise from its private stream, so stochastic samplers stay bit-exact
    with each request's batch-1 reference.  Samples are not retained - a
    drain is a throughput measurement, and holding every batch's output
    would grow memory with the trace length (verification re-generates
    what it needs).
    """
    served: List[ServedRequest] = []
    service_times: List[float] = []
    free_at = 0.0
    i = 0
    n = len(requests)
    while i < n:
        first_ready = max(free_at, requests[i].arrival_s)
        deadline = first_ready + window_s
        members = [i]
        i += 1
        while (
            i < n
            and len(members) < max_batch
            and requests[i].arrival_s <= deadline
        ):
            members.append(i)
            i += 1
        if len(members) == max_batch:
            # Closed early: launched the moment the filling request arrived
            # (or immediately, if the backlog already covered the batch).
            launch = max(first_ready, requests[members[-1]].arrival_s)
        else:
            # A real server cannot know no further request is coming; it
            # waits out the window.
            launch = deadline
        x_init = np.concatenate([noises[j] for j in members], axis=0)
        rngs = [requests[j].sampler_rng() for j in members]
        t0 = time.perf_counter()
        engine.run(x_init=x_init, record_trace=False, rngs=rngs)
        service_s = time.perf_counter() - t0
        service_times.append(service_s)
        finish = launch + service_s
        free_at = finish
        for j in members:
            served.append(
                ServedRequest(
                    req_id=requests[j].req_id,
                    arrival_s=requests[j].arrival_s,
                    launch_s=launch,
                    finish_s=finish,
                    batch_fill=len(members),
                )
            )
    return served, service_times


def _drain_continuous(
    engine: DittoEngine,
    requests: Sequence[Request],
    noises: Sequence[np.ndarray],
    capacity: int,
) -> Tuple[List[ServedRequest], List[float], List[int], Dict[int, np.ndarray]]:
    """Replay the request trace through iteration-level scheduling.

    A persistent :class:`~repro.core.session.EngineSession` advances one
    denoiser step at a time; queued requests are admitted at every step
    boundary (up to ``capacity``) and completed rows leave the batch the
    step they finish.  There is no batching window: admission is continuous,
    so a request waits at most one step, and the engine never drains while
    work is queued.  Returns the completion records, per-step wall-clock
    times, per-step occupancies, and each request's sample (for
    verification).
    """
    served: List[ServedRequest] = []
    step_times: List[float] = []
    occupancies: List[int] = []
    samples: Dict[int, np.ndarray] = {}
    launch_at: Dict[int, float] = {}
    now = 0.0
    i = 0
    n = len(requests)
    with engine.open_session(capacity=capacity) as session:
        while i < n or session.occupancy:
            if not session.occupancy and i < n and requests[i].arrival_s > now:
                now = requests[i].arrival_s  # idle server: jump to next arrival
            while (
                i < n
                and requests[i].arrival_s <= now
                and session.occupancy < capacity
            ):
                session.admit(
                    noises[i], rng=requests[i].sampler_rng(), tag=i
                )
                launch_at[i] = now
                i += 1
            fill = session.occupancy
            t0 = time.perf_counter()
            finished = session.step()
            dt = time.perf_counter() - t0
            now += dt
            step_times.append(dt)
            occupancies.append(fill)
            for tag, sample in finished:
                req = requests[tag]
                samples[tag] = sample
                served.append(
                    ServedRequest(
                        req_id=req.req_id,
                        arrival_s=req.arrival_s,
                        launch_s=launch_at[tag],
                        finish_s=now,
                        batch_fill=fill,
                    )
                )
    return served, step_times, occupancies, samples


def estimate_row_footprint(engine: DittoEngine) -> int:
    """Measured scratch + temporal-state bytes of one batch row.

    Runs two probe forwards (the second exercises the temporal-difference
    scratch paths) at batch 1 and tallies the thread's scratch pool plus
    every layer's cached state and im2col buffers.  Both grow linearly with
    the batch, so ``budget // row_bytes`` bounds the admissible batch size.
    """
    from ..quant.qlayers import model_state_nbytes, reset_model_state, set_model_mode
    from ..core.modes import ExecutionMode
    from ..scratch import clear_scratch, scratch_pool_bytes

    engine._freeze_scales(1)
    clear_scratch()
    reset_model_state(engine.qmodel)
    set_model_mode(engine.qmodel, ExecutionMode.TEMPORAL)
    probe = engine._probe_fn(1)
    probe()
    probe()
    total = scratch_pool_bytes() + model_state_nbytes(engine.qmodel)
    reset_model_state(engine.qmodel)
    clear_scratch()
    return total


def pool_budget_row_cap(engine: DittoEngine, budget_mb: float) -> int:
    """Largest batch the scratch-pool budget admits; raises if below 1 row.

    The graceful refusal the ROADMAP asked for: a budget smaller than a
    single row's footprint cannot serve anything, so it fails loudly with
    the measured requirement instead of thrashing.
    """
    if budget_mb <= 0:
        raise ValueError(f"pool budget must be positive, got {budget_mb} MB")
    row_bytes = estimate_row_footprint(engine)
    cap = int(budget_mb * 2**20) // max(row_bytes, 1)
    if cap < 1:
        raise ValueError(
            f"pool budget {budget_mb:g} MB is below one batch row's "
            f"footprint (~{row_bytes / 2**20:.2f} MB); raise the budget or "
            "shrink the model"
        )
    return cap


def _mac_savings(engine: DittoEngine, batch_size: int, seed: int) -> Tuple[float, float]:
    """Instrumented run -> (temporal relative BOPs, savings % vs dense)."""
    result = engine.run(batch_size=batch_size, seed=seed)
    rel = relative_bops(lower_temporal(result.rich_trace))
    return rel, 100.0 * (1.0 - rel)


def simulate_serving(
    spec_or_name,
    batch_sizes: Iterable[int] = (1, 2, 4, 8),
    num_requests: int = 16,
    rate_rps: float = 4.0,
    pattern: str = "poisson",
    window_s: float = 0.25,
    num_steps: Optional[int] = None,
    seed: int = 0,
    guidance_scale: Optional[float] = None,
    calibrate: bool = True,
    verify_invariance: bool = False,
    engine: Optional[DittoEngine] = None,
    scheduler: str = "fixed",
    pool_budget_mb: Optional[float] = None,
    sampler: Optional[str] = None,
    sampler_eta: Optional[float] = None,
) -> ServingReport:
    """Replay one request trace at every batch size and report the numbers.

    The engine is built once (quantization + calibration are
    batch-independent) and reused across batch sizes; every
    :meth:`~repro.core.engine.DittoEngine.run` resets the temporal state.
    ``scheduler="continuous"`` replaces the lockstep micro-batcher with
    iteration-level scheduling (``batch_sizes`` then sweep the persistent
    batch *capacity*).  ``pool_budget_mb`` caps every batch size at what the
    scratch-pool memory budget admits.  ``sampler``/``sampler_eta`` override
    the spec's sampler (e.g. stochastic ddpm).

    ``verify_invariance=True`` re-runs requests individually and demands
    bit-exact agreement with the batched replay - the temporal-state
    contract checked in production rather than only in tests.  For the fixed
    scheduler that covers one micro-batch of the largest size; for the
    continuous scheduler *every* request of the largest-capacity replay
    (arbitrary admission/eviction interleavings included) is checked
    against its seeded batch-1 reference.
    """
    if isinstance(spec_or_name, str):
        from ..workloads import get_benchmark

        spec = get_benchmark(spec_or_name)
    else:
        spec = spec_or_name
    from .runner import normalize_batch_sizes

    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; choose from {SCHEDULERS}"
        )
    if engine is not None and (sampler is not None or sampler_eta is not None):
        # A prebuilt engine already owns its sampler; silently recording an
        # override that never took effect would falsify the report metadata.
        raise ValueError(
            "sampler/sampler_eta overrides conflict with a prebuilt engine; "
            "build the engine with the desired sampler instead"
        )
    sizes = normalize_batch_sizes(batch_sizes)
    steps = num_steps if num_steps is not None else spec.num_steps
    if engine is None:
        engine = DittoEngine.from_benchmark(
            spec,
            num_steps=steps,
            calibrate=calibrate,
            guidance_scale=guidance_scale,
            sampler=sampler,
            sampler_eta=sampler_eta,
        )
    pool_row_cap = None
    if pool_budget_mb is not None:
        pool_row_cap = pool_budget_row_cap(engine, pool_budget_mb)
        sizes = normalize_batch_sizes(min(s, pool_row_cap) for s in sizes)
    requests = generate_requests(num_requests, rate_rps, pattern, seed)
    noises = [req.draw_noise(spec.sample_shape) for req in requests]

    report = ServingReport(
        benchmark=spec.name,
        num_steps=steps,
        pattern=pattern,
        rate_rps=rate_rps,
        window_s=window_s,
        num_requests=num_requests,
        guidance_scale=(
            guidance_scale
            if guidance_scale is not None
            else getattr(spec, "guidance_scale", None)
        ),
        invariance_checked=False,
        scheduler=scheduler,
        sampler=sampler,
        pool_budget_mb=pool_budget_mb,
        pool_row_cap=pool_row_cap,
    )
    continuous_samples: Dict[int, np.ndarray] = {}
    for size in sizes:
        # One batch size's scratch working set at a time: the pools key
        # buffers by shape and never evict, so sweeping sizes 1..8 in one
        # thread would otherwise hold the union of all their buffer sets.
        from ..core.bitwidth import clear_classification_pool
        from ..scratch import clear_scratch

        clear_scratch()
        clear_classification_pool()
        if scheduler == "continuous":
            served, service_times, occupancies, samples = _drain_continuous(
                engine, requests, noises, size
            )
            continuous_samples = samples  # the largest size's replay wins
            mean_fill = float(np.mean(occupancies))
        else:
            served, service_times = _drain_queue(
                engine, requests, noises, window_s, size
            )
            mean_fill = float(len(served) / len(service_times))
        latencies = np.array([s.latency_s for s in served])
        first_arrival = min(req.arrival_s for req in requests)
        makespan = max(s.finish_s for s in served) - first_arrival
        rel_bops, savings = _mac_savings(engine, size, seed)
        report.per_batch[size] = BatchSizeReport(
            batch_size=size,
            num_requests=len(served),
            # Engine launches: micro-batches (fixed) or denoiser steps
            # (continuous).  For fixed, fill averages per *launched batch* -
            # averaging per-request fills would weight full batches by their
            # own size and overstate occupancy.
            num_batches=len(service_times),
            mean_batch_fill=mean_fill,
            makespan_s=float(makespan),
            throughput_rps=float(len(served) / makespan) if makespan > 0 else float("inf"),
            latency_p50_s=float(np.percentile(latencies, 50)),
            latency_p90_s=float(np.percentile(latencies, 90)),
            latency_p99_s=float(np.percentile(latencies, 99)),
            mean_service_s=float(np.mean(service_times)),
            temporal_relative_bops=rel_bops,
            mac_savings_pct=savings,
            utilization=mean_fill / size,
            served=served,
        )
    if verify_invariance:
        if scheduler == "continuous":
            _verify_continuous(
                spec.name, engine, requests, noises, continuous_samples
            )
        else:
            _verify_fixed(spec.name, engine, requests, noises, sizes)
        report.invariance_checked = True
    return report


def _verify_fixed(
    name: str,
    engine: DittoEngine,
    requests: Sequence[Request],
    noises: Sequence[np.ndarray],
    sizes: Sequence[int],
) -> None:
    """Stack the first requests into one micro-batch of the largest
    configured size, re-run them one at a time, and demand bit-exact
    agreement.  Built independently of what the drains happened to form, so
    --verify can never silently verify nothing."""
    fill = min(sizes[-1], len(requests))
    if fill < 2:
        raise ValueError(
            "verify_invariance needs a multi-request batch: got "
            f"max batch size {sizes[-1]} and {len(requests)} request(s)"
        )
    members = list(range(fill))
    x_init = np.concatenate([noises[j] for j in members], axis=0)
    batched = engine.run(
        x_init=x_init,
        record_trace=False,
        rngs=[requests[j].sampler_rng() for j in members],
    ).samples
    for pos, j in enumerate(members):
        single = engine.run(
            x_init=noises[j],
            record_trace=False,
            rngs=[requests[j].sampler_rng()],
        ).samples
        if not np.array_equal(batched[pos : pos + 1], single):
            raise AssertionError(
                f"batch invariance violated for request {j} in "
                f"batch {members} of {name}"
            )


def _verify_continuous(
    name: str,
    engine: DittoEngine,
    requests: Sequence[Request],
    noises: Sequence[np.ndarray],
    samples: Dict[int, np.ndarray],
) -> None:
    """Every request of the continuous replay - whatever interleaving of
    admissions and evictions the queue produced - must match its seeded
    batch-1 reference bit-exactly."""
    if len(samples) != len(requests):
        missing = sorted(set(range(len(requests))) - set(samples))
        raise AssertionError(
            f"continuous replay of {name} lost requests {missing}"
        )
    for j, req in enumerate(requests):
        reference = engine.run(
            x_init=noises[j],
            record_trace=False,
            rngs=[req.sampler_rng()],
        ).samples
        if not np.array_equal(samples[j], reference):
            raise AssertionError(
                f"continuous-batching invariance violated for request "
                f"{req.req_id} of {name}"
            )
