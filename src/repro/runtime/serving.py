"""``repro serve`` - the paper's serving scenario as a workload driver.

The headline claim of the paper is that temporal difference processing makes
diffusion denoisers cheap enough to *serve*.  Serving means batching: a
request queue, a micro-batching window that trades a little latency for
occupancy, and a denoiser driven at ``batch_size > 1``.  This module
simulates exactly that on top of :class:`~repro.core.engine.DittoEngine`:

* :func:`generate_requests` draws a request trace with a configurable
  arrival pattern (``poisson`` / ``uniform`` / ``burst``), each request
  carrying its own noise seed;
* :func:`simulate_serving` replays the same trace against every requested
  maximum batch size.  A greedy micro-batcher collects requests while the
  server is busy and for up to ``window_s`` after the first waiting request,
  stacks their independently-seeded initial noise into one ``x_init``, and
  drives ``DittoEngine.run``; service times are *measured* wall-clock, so
  throughput and latency percentiles reflect the numpy substrate honestly.

Stacking requests is only sound because of the per-batch-element
temporal-state invariance contract: every quantized layer's cached
``_prev_*`` state differences along the batch axis, so a batch-N run is
bit-exact with N independent batch-1 runs (pinned by
``tests/test_batched_state.py`` and optionally re-checked per serve via
``verify_invariance``).  The per-batch-size MAC/BOPs savings come from one
instrumented run per batch size; the timed runs skip instrumentation
(``record_trace=False``) so stats scans do not pollute the latency numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core import lower_temporal, relative_bops
from ..core.engine import DittoEngine

__all__ = [
    "ARRIVAL_PATTERNS",
    "Request",
    "ServedRequest",
    "BatchSizeReport",
    "ServingReport",
    "generate_requests",
    "simulate_serving",
]

ARRIVAL_PATTERNS = ("poisson", "uniform", "burst")


@dataclass(frozen=True)
class Request:
    """One generation request: identity, arrival time, private noise seed."""

    req_id: int
    arrival_s: float
    seed: Tuple[int, int]

    def draw_noise(self, sample_shape: Tuple[int, ...]) -> np.ndarray:
        """The request's initial noise, independent of any batching."""
        rng = np.random.default_rng(self.seed)
        return rng.standard_normal((1,) + tuple(sample_shape))


@dataclass(frozen=True)
class ServedRequest:
    """Completion record of one request under one batching configuration."""

    req_id: int
    arrival_s: float
    launch_s: float
    finish_s: float
    batch_fill: int

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s


@dataclass
class BatchSizeReport:
    """Queue replay results for one maximum micro-batch size."""

    batch_size: int
    num_requests: int
    num_batches: int
    mean_batch_fill: float
    makespan_s: float
    throughput_rps: float
    latency_p50_s: float
    latency_p90_s: float
    latency_p99_s: float
    mean_service_s: float
    temporal_relative_bops: float
    mac_savings_pct: float
    served: List[ServedRequest] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "batch_size": self.batch_size,
            "num_requests": self.num_requests,
            "num_batches": self.num_batches,
            "mean_batch_fill": round(self.mean_batch_fill, 3),
            "makespan_s": round(self.makespan_s, 4),
            "throughput_rps": round(self.throughput_rps, 3),
            "latency_p50_s": round(self.latency_p50_s, 4),
            "latency_p90_s": round(self.latency_p90_s, 4),
            "latency_p99_s": round(self.latency_p99_s, 4),
            "mean_service_s": round(self.mean_service_s, 4),
            "temporal_relative_bops": round(self.temporal_relative_bops, 4),
            "mac_savings_pct": round(self.mac_savings_pct, 2),
        }


@dataclass
class ServingReport:
    """Per-batch-size serving metrics for one benchmark."""

    benchmark: str
    num_steps: int
    pattern: str
    rate_rps: float
    window_s: float
    num_requests: int
    guidance_scale: Optional[float]
    invariance_checked: bool
    per_batch: Dict[int, BatchSizeReport] = field(default_factory=dict)

    def rows(self) -> List[List[object]]:
        return [
            [
                report.batch_size,
                report.throughput_rps,
                report.latency_p50_s,
                report.latency_p99_s,
                report.mean_batch_fill,
                report.mac_savings_pct,
            ]
            for report in self.per_batch.values()
        ]

    def summary(self) -> str:
        from ..analysis import format_table

        head = (
            f"{self.benchmark}: {self.num_requests} requests, "
            f"{self.pattern} arrivals @ {self.rate_rps:g} req/s, "
            f"window {self.window_s * 1e3:g} ms, {self.num_steps} steps"
            + (
                f", CFG x{self.guidance_scale:g}"
                if self.guidance_scale is not None
                else ""
            )
        )
        table = format_table(
            ["batch", "req/s", "p50 s", "p99 s", "fill", "MAC sav%"],
            self.rows(),
        )
        tail = (
            "batch-N == N x batch-1 verified bit-exact"
            if self.invariance_checked
            else ""
        )
        return "\n".join(part for part in (head, table, tail) if part)

    def to_json(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "num_steps": self.num_steps,
            "pattern": self.pattern,
            "rate_rps": self.rate_rps,
            "window_s": self.window_s,
            "num_requests": self.num_requests,
            "guidance_scale": self.guidance_scale,
            "invariance_checked": self.invariance_checked,
            "per_batch": {
                str(size): report.to_json()
                for size, report in self.per_batch.items()
            },
        }


def generate_requests(
    num_requests: int,
    rate_rps: float = 4.0,
    pattern: str = "poisson",
    seed: int = 0,
) -> List[Request]:
    """Draw a request trace with the given arrival pattern.

    ``poisson`` draws exponential inter-arrival gaps at ``rate_rps``;
    ``uniform`` spaces arrivals exactly ``1/rate_rps`` apart; ``burst``
    drops every request at t=0 (the worst case for the micro-batcher).
    Each request gets a private, reproducible noise seed derived from
    ``(seed, req_id)``, so its sample is identical no matter which
    micro-batch it lands in.
    """
    if num_requests < 1:
        raise ValueError("need at least one request")
    if pattern not in ARRIVAL_PATTERNS:
        raise ValueError(
            f"unknown arrival pattern {pattern!r}; choose from {ARRIVAL_PATTERNS}"
        )
    if pattern != "burst" and rate_rps <= 0.0:
        raise ValueError("rate_rps must be positive")
    if pattern == "poisson":
        rng = np.random.default_rng(seed)
        gaps = rng.exponential(1.0 / rate_rps, size=num_requests)
        arrivals = np.cumsum(gaps) - gaps[0]  # first request arrives at t=0
    elif pattern == "uniform":
        arrivals = np.arange(num_requests) / rate_rps
    else:  # burst
        arrivals = np.zeros(num_requests)
    return [
        Request(req_id=i, arrival_s=float(arrivals[i]), seed=(seed, i))
        for i in range(num_requests)
    ]


def _drain_queue(
    engine: DittoEngine,
    requests: Sequence[Request],
    noises: Sequence[np.ndarray],
    window_s: float,
    max_batch: int,
) -> Tuple[List[ServedRequest], List[float], List[np.ndarray]]:
    """Replay the request trace through greedy micro-batching.

    Arrival times live on a simulated clock; service times are measured
    wall-clock per ``DittoEngine.run`` call.  A batch opens when the server
    is free and a request is waiting, admits arrivals for up to ``window_s``
    (closing early once full), then launches.
    """
    served: List[ServedRequest] = []
    service_times: List[float] = []
    batch_samples: List[np.ndarray] = []
    free_at = 0.0
    i = 0
    n = len(requests)
    while i < n:
        first_ready = max(free_at, requests[i].arrival_s)
        deadline = first_ready + window_s
        members = [i]
        i += 1
        while (
            i < n
            and len(members) < max_batch
            and requests[i].arrival_s <= deadline
        ):
            members.append(i)
            i += 1
        if len(members) == max_batch:
            # Closed early: launched the moment the filling request arrived
            # (or immediately, if the backlog already covered the batch).
            launch = max(first_ready, requests[members[-1]].arrival_s)
        else:
            # A real server cannot know no further request is coming; it
            # waits out the window.
            launch = deadline
        x_init = np.concatenate([noises[j] for j in members], axis=0)
        t0 = time.perf_counter()
        result = engine.run(x_init=x_init, record_trace=False)
        service_s = time.perf_counter() - t0
        service_times.append(service_s)
        batch_samples.append(result.samples)
        finish = launch + service_s
        free_at = finish
        for j in members:
            served.append(
                ServedRequest(
                    req_id=requests[j].req_id,
                    arrival_s=requests[j].arrival_s,
                    launch_s=launch,
                    finish_s=finish,
                    batch_fill=len(members),
                )
            )
    return served, service_times, batch_samples


def _mac_savings(engine: DittoEngine, batch_size: int, seed: int) -> Tuple[float, float]:
    """Instrumented run -> (temporal relative BOPs, savings % vs dense)."""
    result = engine.run(batch_size=batch_size, seed=seed)
    rel = relative_bops(lower_temporal(result.rich_trace))
    return rel, 100.0 * (1.0 - rel)


def simulate_serving(
    spec_or_name,
    batch_sizes: Iterable[int] = (1, 2, 4, 8),
    num_requests: int = 16,
    rate_rps: float = 4.0,
    pattern: str = "poisson",
    window_s: float = 0.25,
    num_steps: Optional[int] = None,
    seed: int = 0,
    guidance_scale: Optional[float] = None,
    calibrate: bool = True,
    verify_invariance: bool = False,
    engine: Optional[DittoEngine] = None,
) -> ServingReport:
    """Replay one request trace at every batch size and report the numbers.

    The engine is built once (quantization + calibration are
    batch-independent) and reused across batch sizes; every
    :meth:`~repro.core.engine.DittoEngine.run` resets the temporal state.
    ``verify_invariance=True`` additionally re-runs every request of the
    largest batch size's first multi-request micro-batch individually and
    asserts bit-exact equality with its batched samples - the temporal-state
    contract checked in production rather than only in tests.
    """
    if isinstance(spec_or_name, str):
        from ..workloads import get_benchmark

        spec = get_benchmark(spec_or_name)
    else:
        spec = spec_or_name
    from .runner import normalize_batch_sizes

    sizes = normalize_batch_sizes(batch_sizes)
    steps = num_steps if num_steps is not None else spec.num_steps
    if engine is None:
        engine = DittoEngine.from_benchmark(
            spec,
            num_steps=steps,
            calibrate=calibrate,
            guidance_scale=guidance_scale,
        )
    requests = generate_requests(num_requests, rate_rps, pattern, seed)
    noises = [req.draw_noise(spec.sample_shape) for req in requests]

    report = ServingReport(
        benchmark=spec.name,
        num_steps=steps,
        pattern=pattern,
        rate_rps=rate_rps,
        window_s=window_s,
        num_requests=num_requests,
        guidance_scale=(
            guidance_scale
            if guidance_scale is not None
            else getattr(spec, "guidance_scale", None)
        ),
        invariance_checked=False,
    )
    for size in sizes:
        served, service_times, batch_samples = _drain_queue(
            engine, requests, noises, window_s, size
        )
        latencies = np.array([s.latency_s for s in served])
        first_arrival = min(req.arrival_s for req in requests)
        makespan = max(s.finish_s for s in served) - first_arrival
        rel_bops, savings = _mac_savings(engine, size, seed)
        report.per_batch[size] = BatchSizeReport(
            batch_size=size,
            num_requests=len(served),
            num_batches=len(service_times),
            # Mean requests per *launched micro-batch* - averaging the
            # per-request fill values instead would weight full batches by
            # their own size and overstate occupancy.
            mean_batch_fill=float(len(served) / len(service_times)),
            makespan_s=float(makespan),
            throughput_rps=float(len(served) / makespan) if makespan > 0 else float("inf"),
            latency_p50_s=float(np.percentile(latencies, 50)),
            latency_p90_s=float(np.percentile(latencies, 90)),
            latency_p99_s=float(np.percentile(latencies, 99)),
            mean_service_s=float(np.mean(service_times)),
            temporal_relative_bops=rel_bops,
            mac_savings_pct=savings,
            served=served,
        )
    if verify_invariance:
        # Stack the first requests into one micro-batch of the largest
        # configured size, re-run them one at a time, and demand bit-exact
        # agreement.  Built independently of what the drains happened to
        # form, so --verify can never silently verify nothing.
        fill = min(sizes[-1], num_requests)
        if fill < 2:
            raise ValueError(
                "verify_invariance needs a multi-request batch: got "
                f"max batch size {sizes[-1]} and {num_requests} request(s)"
            )
        members = list(range(fill))
        x_init = np.concatenate([noises[j] for j in members], axis=0)
        batched = engine.run(x_init=x_init, record_trace=False).samples
        for pos, j in enumerate(members):
            single = engine.run(x_init=noises[j], record_trace=False).samples
            if not np.array_equal(batched[pos : pos + 1], single):
                raise AssertionError(
                    f"batch invariance violated for request {j} in "
                    f"batch {members} of {spec.name}"
                )
        report.invariance_checked = True
    return report
