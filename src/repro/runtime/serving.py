"""``repro serve`` - the paper's serving scenario as a workload driver.

The headline claim of the paper is that temporal difference processing makes
diffusion denoisers cheap enough to *serve*.  Serving means batching: a
request queue, a micro-batching window that trades a little latency for
occupancy, and a denoiser driven at ``batch_size > 1``.  This module
simulates exactly that on top of :class:`~repro.core.engine.DittoEngine`:

* :func:`generate_requests` draws a request trace with a configurable
  arrival pattern (``poisson`` / ``uniform`` / ``burst``), each request
  carrying its own noise seed;
* :func:`simulate_serving` replays the same trace against every requested
  maximum batch size.  A greedy micro-batcher collects requests while the
  server is busy and for up to ``window_s`` after the first waiting request,
  stacks their independently-seeded initial noise into one ``x_init``, and
  drives ``DittoEngine.run``; service times are *measured* wall-clock, so
  throughput and latency percentiles reflect the numpy substrate honestly.

Two schedulers are provided:

* ``fixed`` - the PR-3 micro-batcher: lockstep batches, the engine drains
  between launches;
* ``continuous`` - iteration-level (Orca-style) scheduling over a
  persistent :class:`~repro.core.session.EngineSession`: rows are admitted
  and evicted at *step boundaries*, each row carries its own timestep, and
  the engine never drains while requests are queued.

Stacking requests is only sound because of the per-batch-element
temporal-state invariance contract: every quantized layer's cached
``_prev_*`` state differences along the batch axis, so a batch-N run is
bit-exact with N independent batch-1 runs (pinned by
``tests/test_batched_state.py`` and optionally re-checked per serve via
``verify_invariance``).  Stochastic samplers (ddpm, ddim eta>0) join the
contract through per-request ``SeedSequence.spawn`` noise streams
(:meth:`Request.sampler_rng`).  The per-batch-size MAC/BOPs savings come
from one instrumented run per batch size; the timed runs skip
instrumentation (``record_trace=False``) so stats scans do not pollute the
latency numbers.

The continuous scheduler additionally carries the serving tier's
fault-tolerance contract (:mod:`repro.runtime.faults`):

* **deadlines & cancellation** - per-request ``deadline_s`` (assigned per
  SLO class) and a :class:`~repro.runtime.faults.CancelToken`, both checked
  at step boundaries; cancelled/expired rows are evicted mid-flight, which
  is bit-exact for the survivors by the session's difference algebra;
* **retry with exact replay** - a step that raises is retried with capped
  exponential backoff (simulated clock).  Safe because a failed step is an
  exact no-op: the remap was committed before the forward and the rng
  streams are rewound, so the retry replays the step bit-exactly;
* **crash recovery** - a killed session (or one that exhausted its
  retries) is snapshotted, the engine rebuilt (warm from the
  content-addressed cache via :meth:`EngineRunner.build_engine
  <repro.runtime.runner.EngineRunner.build_engine>`), and every in-flight
  row re-admitted at its recorded step with its rng stream rebuilt from the
  request's seed and fast-forwarded past the recorded draws.  Recovered
  outputs are bit-exact with an uninterrupted run - ``--verify`` proves it;
* **accounting** - every request ends as exactly one of ``completed``,
  ``cancelled``, ``expired``, or ``failed``, reported per SLO class (p99
  vs target, goodput, abandonment) alongside retry/recovery counts.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core import lower_temporal, relative_bops
from ..core.engine import DittoEngine
from . import faults

__all__ = [
    "ARRIVAL_PATTERNS",
    "SCHEDULERS",
    "REQUEST_OUTCOMES",
    "Request",
    "ServedRequest",
    "SLOClass",
    "SLOClassReport",
    "BatchSizeReport",
    "ServingReport",
    "parse_slo_spec",
    "assign_slo_classes",
    "generate_requests",
    "simulate_serving",
    "estimate_row_footprint",
    "pool_budget_row_cap",
]

ARRIVAL_PATTERNS = ("poisson", "uniform", "burst")
SCHEDULERS = ("fixed", "continuous")
REQUEST_OUTCOMES = ("completed", "cancelled", "expired", "failed")


@dataclass(frozen=True)
class SLOClass:
    """One service class: a latency target and a traffic-mix weight.

    ``deadline_s`` is the class's completion deadline measured from arrival
    (``None`` = no deadline, e.g. batch/offline traffic); ``weight`` sets
    the class's share of the request trace when several classes are mixed
    (:func:`assign_slo_classes`).
    """

    name: str
    deadline_s: Optional[float] = None
    weight: float = 1.0


DEFAULT_SLO_CLASS = SLOClass("default")


def parse_slo_spec(spec: str) -> List[SLOClass]:
    """Parse ``"name:deadline[:weight],..."`` into SLO classes.

    An empty/``none``/``inf`` deadline means no deadline.  Example:
    ``"interactive:0.5:2,batch::1"`` - two interactive requests for every
    batch request, only the former with a 500 ms target.
    """
    classes: List[SLOClass] = []
    for raw in spec.split(","):
        raw = raw.strip()
        if not raw:
            continue
        parts = raw.split(":")
        if not 1 <= len(parts) <= 3 or not parts[0]:
            raise ValueError(
                f"bad SLO class {raw!r}; expected 'name:deadline[:weight]'"
            )
        deadline: Optional[float] = None
        if len(parts) >= 2 and parts[1] not in ("", "none", "inf"):
            deadline = float(parts[1])
            if deadline <= 0:
                raise ValueError(f"SLO class {raw!r}: deadline must be > 0")
        weight = float(parts[2]) if len(parts) == 3 else 1.0
        if weight <= 0:
            raise ValueError(f"SLO class {raw!r}: weight must be > 0")
        classes.append(SLOClass(parts[0], deadline, weight))
    if not classes:
        raise ValueError(f"SLO spec {spec!r} defines no classes")
    if len({c.name for c in classes}) != len(classes):
        raise ValueError(f"SLO spec {spec!r} repeats a class name")
    return classes


def assign_slo_classes(
    num_requests: int, classes: Sequence[SLOClass]
) -> List[SLOClass]:
    """Deterministic weight-proportional class assignment (D'Hondt).

    Request ``i`` always lands in the same class for a given spec - the
    assignment is part of the trace, so fault coordinates addressed by
    request id stay meaningful across replays.  Ties break toward the
    earlier class.
    """
    counts = [0] * len(classes)
    assigned: List[SLOClass] = []
    for _ in range(num_requests):
        best = max(
            range(len(classes)),
            key=lambda j: (classes[j].weight / (counts[j] + 1), -j),
        )
        counts[best] += 1
        assigned.append(classes[best])
    return assigned


@dataclass(frozen=True)
class Request:
    """One generation request: identity, arrival time, private noise seed."""

    req_id: int
    arrival_s: float
    seed: Tuple[int, int]
    deadline_s: Optional[float] = None
    slo_class: str = DEFAULT_SLO_CLASS.name

    def draw_noise(self, sample_shape: Tuple[int, ...]) -> np.ndarray:
        """The request's initial noise, independent of any batching."""
        rng = np.random.default_rng(self.seed)
        return rng.standard_normal((1,) + tuple(sample_shape))

    def sampler_rng(self) -> np.random.Generator:
        """The request's private sampler noise stream.

        Built as the ``req_id``-th spawned child of
        ``SeedSequence(trace_seed)`` (``SeedSequence(s).spawn(n)[i] ==
        SeedSequence(s, spawn_key=(i,))``), so every call returns a fresh
        generator positioned at the start of the *same* stream - the batched
        replay and the batch-1 reference draw identical noise, which is what
        extends the bit-exact serving contract to stochastic samplers.
        """
        root, idx = self.seed
        return np.random.default_rng(
            np.random.SeedSequence(root, spawn_key=(idx,))
        )


@dataclass(frozen=True)
class ServedRequest:
    """Terminal record of one request under one batching configuration.

    ``outcome`` is one of :data:`REQUEST_OUTCOMES`; for non-``completed``
    requests ``finish_s`` is the step boundary at which the outcome was
    decided and ``batch_fill`` is 0 (they never contributed a finished
    sample).
    """

    req_id: int
    arrival_s: float
    launch_s: float
    finish_s: float
    batch_fill: int
    outcome: str = "completed"
    slo_class: str = DEFAULT_SLO_CLASS.name
    deadline_s: Optional[float] = None

    @property
    def latency_s(self) -> float:
        """Completion minus arrival: queueing delay and batching window included."""
        return self.finish_s - self.arrival_s

    @property
    def on_time(self) -> bool:
        """Completed within the SLO deadline (``True`` when no deadline applies)."""
        return self.outcome == "completed" and (
            self.deadline_s is None or self.latency_s <= self.deadline_s
        )


@dataclass
class SLOClassReport:
    """Per-class accounting: every request is exactly one outcome."""

    name: str
    deadline_s: Optional[float]
    total: int
    completed: int
    on_time: int
    expired: int
    cancelled: int
    failed: int
    latency_p99_s: float  # NaN when the class completed nothing

    @property
    def goodput(self) -> float:
        """Fraction of the class's requests completed within the target."""
        return self.on_time / self.total if self.total else 0.0

    @property
    def abandonment(self) -> float:
        """Fraction evicted before completing (cancelled or expired)."""
        return (self.cancelled + self.expired) / self.total if self.total else 0.0

    def to_json(self) -> Dict[str, object]:
        """Machine-readable rendering for the serve report JSON."""
        return {
            "name": self.name,
            "deadline_s": self.deadline_s,
            "total": self.total,
            "completed": self.completed,
            "on_time": self.on_time,
            "expired": self.expired,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "latency_p99_s": (
                None
                if math.isnan(self.latency_p99_s)
                else round(self.latency_p99_s, 4)
            ),
            "goodput": round(self.goodput, 4),
            "abandonment": round(self.abandonment, 4),
        }


def _slo_class_reports(
    served: Sequence[ServedRequest], classes: Optional[Sequence[SLOClass]]
) -> List[SLOClassReport]:
    """Group terminal records by class; classes keep spec order."""
    by_name: Dict[str, List[ServedRequest]] = {}
    order: List[str] = []
    deadlines: Dict[str, Optional[float]] = {}
    for cls in classes or ():
        by_name[cls.name] = []
        order.append(cls.name)
        deadlines[cls.name] = cls.deadline_s
    for record in served:
        if record.slo_class not in by_name:
            by_name[record.slo_class] = []
            order.append(record.slo_class)
            deadlines[record.slo_class] = record.deadline_s
        by_name[record.slo_class].append(record)
    reports = []
    for name in order:
        members = by_name[name]
        done = [r.latency_s for r in members if r.outcome == "completed"]
        reports.append(
            SLOClassReport(
                name=name,
                deadline_s=deadlines[name],
                total=len(members),
                completed=len(done),
                on_time=sum(r.on_time for r in members),
                expired=sum(r.outcome == "expired" for r in members),
                cancelled=sum(r.outcome == "cancelled" for r in members),
                failed=sum(r.outcome == "failed" for r in members),
                latency_p99_s=(
                    float(np.percentile(done, 99)) if done else float("nan")
                ),
            )
        )
    return reports


@dataclass
class BatchSizeReport:
    """Queue replay results for one maximum micro-batch size / capacity.

    ``utilization`` is mean occupied rows over capacity: for the fixed
    scheduler, mean launched-batch fill divided by the maximum batch size;
    for the continuous scheduler, mean in-flight rows per engine step
    divided by the session capacity.  ``num_batches`` counts engine launches
    (micro-batches for fixed, denoiser steps for continuous), and
    ``mean_service_s`` their mean measured wall-clock duration.
    """

    batch_size: int
    num_requests: int
    num_batches: int
    mean_batch_fill: float
    makespan_s: float
    throughput_rps: float
    latency_p50_s: float
    latency_p90_s: float
    latency_p99_s: float
    mean_service_s: float
    temporal_relative_bops: float
    mac_savings_pct: float
    utilization: float = 0.0
    served: List[ServedRequest] = field(default_factory=list)
    # Fault-tolerance accounting: every request's terminal outcome, the
    # per-class SLO rollup, and how eventful the replay was.
    outcomes: Dict[int, str] = field(default_factory=dict)
    slo: List[SLOClassReport] = field(default_factory=list)
    retries: int = 0
    recoveries: int = 0

    def outcome_counts(self) -> Dict[str, int]:
        """Requests per terminal outcome (all ``REQUEST_OUTCOMES`` keys present)."""
        counts = {name: 0 for name in REQUEST_OUTCOMES}
        for outcome in self.outcomes.values():
            counts[outcome] += 1
        return counts

    def to_json(self) -> Dict[str, object]:
        """Machine-readable rendering for the serve report JSON (NaN -> null)."""
        def _num(value: float) -> Optional[float]:
            return None if math.isnan(value) else round(value, 4)

        return {
            "batch_size": self.batch_size,
            "num_requests": self.num_requests,
            "num_batches": self.num_batches,
            "mean_batch_fill": round(self.mean_batch_fill, 3),
            "utilization": round(self.utilization, 4),
            "makespan_s": round(self.makespan_s, 4),
            "throughput_rps": round(self.throughput_rps, 3),
            "latency_p50_s": _num(self.latency_p50_s),
            "latency_p90_s": _num(self.latency_p90_s),
            "latency_p99_s": _num(self.latency_p99_s),
            "mean_service_s": round(self.mean_service_s, 4),
            "temporal_relative_bops": round(self.temporal_relative_bops, 4),
            "mac_savings_pct": round(self.mac_savings_pct, 2),
            "outcomes": {str(rid): oc for rid, oc in sorted(self.outcomes.items())},
            "outcome_counts": self.outcome_counts(),
            "retries": self.retries,
            "recoveries": self.recoveries,
            "slo": [cls.to_json() for cls in self.slo],
        }


@dataclass
class ServingReport:
    """Per-batch-size serving metrics for one benchmark."""

    benchmark: str
    num_steps: int
    pattern: str
    rate_rps: float
    window_s: float
    num_requests: int
    guidance_scale: Optional[float]
    invariance_checked: bool
    scheduler: str = "fixed"
    sampler: Optional[str] = None
    # The requested compute backend, what it resolved to in this process,
    # and why it degraded (None when running natively).
    backend: Optional[str] = None
    backend_effective: Optional[str] = None
    backend_fallback_reason: Optional[str] = None
    pool_budget_mb: Optional[float] = None
    pool_row_cap: Optional[int] = None
    fault_spec: Optional[str] = None
    slo_spec: Optional[str] = None
    # Request ids --verify actually re-ran batch-1 and matched bit-exactly
    # (completed requests of the largest continuous replay; the synthetic
    # micro-batch members for the fixed scheduler).
    verified_requests: List[int] = field(default_factory=list)
    # Plan-replay mode (use_plan=True): where the ExecutionPlan came from
    # ("derived" | "cache"), its content digest, and the drift-check result
    # ({"checked": bool, "matches": bool, "mismatches": [...]}).
    plan_source: Optional[str] = None
    plan_digest: Optional[str] = None
    plan_drift: Optional[Dict[str, object]] = None
    per_batch: Dict[int, BatchSizeReport] = field(default_factory=dict)

    def rows(self) -> List[List[object]]:
        """Summary-table rows: one per batch size (see :meth:`summary`)."""
        return [
            [
                report.batch_size,
                report.throughput_rps,
                report.latency_p50_s,
                report.latency_p99_s,
                report.mean_batch_fill,
                report.mac_savings_pct,
            ]
            for report in self.per_batch.values()
        ]

    def utilization_lines(self) -> List[str]:
        """The per-scheduler utilization section (mean occupied rows)."""
        label = (
            "capacity" if self.scheduler == "continuous" else "max batch"
        )
        lines = [f"utilization ({self.scheduler} scheduler, occupied rows / {label}):"]
        for size, report in self.per_batch.items():
            lines.append(
                f"  {label} {size}: {100.0 * report.utilization:5.1f}% "
                f"(mean {report.mean_batch_fill:.2f} rows over "
                f"{report.num_batches} "
                + ("steps)" if self.scheduler == "continuous" else "batches)")
            )
        return lines

    def slo_lines(self) -> List[str]:
        """Per-class SLO accounting (only sizes that tracked outcomes)."""
        label = "capacity" if self.scheduler == "continuous" else "max batch"
        lines: List[str] = []
        for size, report in self.per_batch.items():
            if not report.slo:
                continue
            if not lines:
                lines.append("SLO accounting (p99 vs target, goodput, abandonment):")
            for cls in report.slo:
                target = (
                    f"{cls.deadline_s:g}s" if cls.deadline_s is not None else "none"
                )
                p99 = (
                    "n/a"
                    if math.isnan(cls.latency_p99_s)
                    else f"{cls.latency_p99_s:.3f}s"
                )
                lines.append(
                    f"  {label} {size}, class {cls.name}: {cls.total} req -> "
                    f"{cls.completed} completed ({cls.on_time} on-time), "
                    f"{cls.expired} expired, {cls.cancelled} cancelled, "
                    f"{cls.failed} failed; p99 {p99} vs target {target}; "
                    f"goodput {100.0 * cls.goodput:.1f}%, "
                    f"abandonment {100.0 * cls.abandonment:.1f}%"
                )
            if report.retries or report.recoveries:
                lines.append(
                    f"  {label} {size}: {report.retries} retried step(s), "
                    f"{report.recoveries} session recovery(ies)"
                )
        return lines

    def summary(self) -> str:
        """The human serve report: headline, per-batch-size table, SLO section."""
        from ..analysis import format_table

        head = (
            f"{self.benchmark}: {self.num_requests} requests, "
            f"{self.pattern} arrivals @ {self.rate_rps:g} req/s, "
            f"window {self.window_s * 1e3:g} ms, {self.num_steps} steps, "
            f"{self.scheduler} scheduler"
            + (f" [{self.sampler}]" if self.sampler else "")
            + (f", backend {self.backend}" if self.backend else "")
            + (
                f", CFG x{self.guidance_scale:g}"
                if self.guidance_scale is not None
                else ""
            )
        )
        if self.backend_fallback_reason:
            head += f"\nbackend fallback: {self.backend_fallback_reason}"
        if self.pool_row_cap is not None:
            head += (
                f"\npool budget {self.pool_budget_mb:g} MB caps the batch at "
                f"{self.pool_row_cap} row(s)"
            )
        if self.fault_spec:
            head += f"\nfault plan: {self.fault_spec}"
        if self.plan_source is not None:
            digest = (self.plan_digest or "")[:12]
            head += (
                f"\nplan-replay mode: ExecutionPlan {self.plan_source} "
                f"[{digest}], runs instrumentation-free"
            )
            drift = self.plan_drift or {}
            if not drift.get("checked"):
                pass  # freshly derived: nothing older to drift from
            elif drift.get("matches"):
                head += "; drift check: re-derived plan matches bit-exactly"
            else:
                mismatches = drift.get("mismatches") or []
                head += (
                    f"\nWARNING plan drift: cached plan diverges from "
                    f"re-derivation ({len(mismatches)} difference(s): "
                    + "; ".join(str(m) for m in mismatches[:3])
                    + ")"
                )
        table = format_table(
            ["batch", "req/s", "p50 s", "p99 s", "fill", "MAC sav%"],
            self.rows(),
        )
        util = "\n".join(self.utilization_lines())
        slo = "\n".join(self.slo_lines())
        if not self.invariance_checked:
            tail = ""
        elif self.scheduler == "continuous":
            if len(self.verified_requests) == self.num_requests:
                tail = "every request verified bit-exact against its batch-1 reference"
            else:
                tail = (
                    f"{len(self.verified_requests)} completed request(s) "
                    "verified bit-exact against their batch-1 references: "
                    f"{self.verified_requests}"
                )
        else:  # fixed verify covers one synthetic micro-batch, not the trace
            tail = "batch-N == N x batch-1 verified bit-exact"
        return "\n".join(part for part in (head, table, util, slo, tail) if part)

    def to_json(self) -> Dict[str, object]:
        """Machine-readable rendering of the whole report (``--out`` payload)."""
        return {
            "benchmark": self.benchmark,
            "num_steps": self.num_steps,
            "pattern": self.pattern,
            "rate_rps": self.rate_rps,
            "window_s": self.window_s,
            "num_requests": self.num_requests,
            "guidance_scale": self.guidance_scale,
            "invariance_checked": self.invariance_checked,
            "scheduler": self.scheduler,
            "sampler": self.sampler,
            "backend": self.backend,
            "backend_effective": self.backend_effective,
            "backend_fallback_reason": self.backend_fallback_reason,
            "pool_budget_mb": self.pool_budget_mb,
            "pool_row_cap": self.pool_row_cap,
            "fault_spec": self.fault_spec,
            "slo_spec": self.slo_spec,
            "verified_requests": list(self.verified_requests),
            "plan_source": self.plan_source,
            "plan_digest": self.plan_digest,
            "plan_drift": self.plan_drift,
            "per_batch": {
                str(size): report.to_json()
                for size, report in self.per_batch.items()
            },
        }


def generate_requests(
    num_requests: int,
    rate_rps: float = 4.0,
    pattern: str = "poisson",
    seed: int = 0,
    slo: Optional[Sequence[SLOClass]] = None,
) -> List[Request]:
    """Draw a request trace with the given arrival pattern.

    ``poisson`` draws exponential inter-arrival gaps at ``rate_rps``;
    ``uniform`` spaces arrivals exactly ``1/rate_rps`` apart; ``burst``
    drops every request at t=0 (the worst case for the micro-batcher).
    Each request gets a private, reproducible noise seed derived from
    ``(seed, req_id)``, so its sample is identical no matter which
    micro-batch it lands in.  ``slo`` assigns each request a service class
    (and with it a deadline) weight-proportionally via
    :func:`assign_slo_classes`.
    """
    if num_requests < 1:
        raise ValueError("need at least one request")
    if pattern not in ARRIVAL_PATTERNS:
        raise ValueError(
            f"unknown arrival pattern {pattern!r}; choose from {ARRIVAL_PATTERNS}"
        )
    if pattern != "burst" and rate_rps <= 0.0:
        raise ValueError("rate_rps must be positive")
    if pattern == "poisson":
        rng = np.random.default_rng(seed)
        gaps = rng.exponential(1.0 / rate_rps, size=num_requests)
        arrivals = np.cumsum(gaps) - gaps[0]  # first request arrives at t=0
    elif pattern == "uniform":
        arrivals = np.arange(num_requests) / rate_rps
    else:  # burst
        arrivals = np.zeros(num_requests)
    classes = (
        assign_slo_classes(num_requests, slo)
        if slo
        else [DEFAULT_SLO_CLASS] * num_requests
    )
    return [
        Request(
            req_id=i,
            arrival_s=float(arrivals[i]),
            seed=(seed, i),
            deadline_s=classes[i].deadline_s,
            slo_class=classes[i].name,
        )
        for i in range(num_requests)
    ]


def _drain_queue(
    engine: DittoEngine,
    requests: Sequence[Request],
    noises: Sequence[np.ndarray],
    window_s: float,
    max_batch: int,
) -> Tuple[List[ServedRequest], List[float]]:
    """Replay the request trace through greedy micro-batching.

    Arrival times live on a simulated clock; service times are measured
    wall-clock per ``DittoEngine.run`` call.  A batch opens when the server
    is free and a request is waiting, admits arrivals for up to ``window_s``
    (closing early once full), then launches.  Every member draws sampler
    noise from its private stream, so stochastic samplers stay bit-exact
    with each request's batch-1 reference.  Samples are not retained - a
    drain is a throughput measurement, and holding every batch's output
    would grow memory with the trace length (verification re-generates
    what it needs).

    Deadlines under the fixed scheduler are queue-drop only: a member whose
    deadline already passed at launch is recorded ``expired`` instead of
    launched.  Lockstep batches cannot evict mid-trajectory - that (plus
    cancellation and fault injection) is the continuous scheduler's domain.
    """
    served: List[ServedRequest] = []
    service_times: List[float] = []
    free_at = 0.0
    i = 0
    n = len(requests)
    while i < n:
        first_ready = max(free_at, requests[i].arrival_s)
        deadline = first_ready + window_s
        members = [i]
        i += 1
        while (
            i < n
            and len(members) < max_batch
            and requests[i].arrival_s <= deadline
        ):
            members.append(i)
            i += 1
        if len(members) == max_batch:
            # Closed early: launched the moment the filling request arrived
            # (or immediately, if the backlog already covered the batch).
            launch = max(first_ready, requests[members[-1]].arrival_s)
        else:
            # A real server cannot know no further request is coming; it
            # waits out the window.
            launch = deadline
        live = []
        for j in members:
            req = requests[j]
            if req.deadline_s is not None and launch > req.arrival_s + req.deadline_s:
                served.append(
                    ServedRequest(
                        req_id=req.req_id,
                        arrival_s=req.arrival_s,
                        launch_s=launch,
                        finish_s=launch,
                        batch_fill=0,
                        outcome="expired",
                        slo_class=req.slo_class,
                        deadline_s=req.deadline_s,
                    )
                )
            else:
                live.append(j)
        if not live:
            continue  # nothing left to launch; the server never went busy
        x_init = np.concatenate([noises[j] for j in live], axis=0)
        rngs = [requests[j].sampler_rng() for j in live]
        t0 = time.perf_counter()
        engine.run(x_init=x_init, record_trace=False, rngs=rngs)
        service_s = time.perf_counter() - t0
        service_times.append(service_s)
        finish = launch + service_s
        free_at = finish
        for j in live:
            served.append(
                ServedRequest(
                    req_id=requests[j].req_id,
                    arrival_s=requests[j].arrival_s,
                    launch_s=launch,
                    finish_s=finish,
                    batch_fill=len(live),
                    slo_class=requests[j].slo_class,
                    deadline_s=requests[j].deadline_s,
                )
            )
    return served, service_times


@dataclass
class _DrainStats:
    """Fault-tolerance counters for one continuous drain."""

    retries: int = 0
    recoveries: int = 0


def _drain_continuous(
    engine: DittoEngine,
    requests: Sequence[Request],
    noises: Sequence[np.ndarray],
    capacity: int,
    fault_plan: Optional[faults.FaultPlan] = None,
    cancel_tokens: Optional[Dict[int, faults.CancelToken]] = None,
    engine_factory: Optional[Callable[[], DittoEngine]] = None,
    max_retries: int = 3,
    retry_backoff_s: float = 0.05,
    retry_backoff_cap_s: float = 2.0,
    recover: bool = True,
    max_recoveries: int = 8,
    execution_plan=None,
) -> Tuple[
    List[ServedRequest],
    List[float],
    List[int],
    Dict[int, np.ndarray],
    _DrainStats,
    DittoEngine,
]:
    """Replay the request trace through iteration-level scheduling.

    A persistent :class:`~repro.core.session.EngineSession` advances one
    denoiser step at a time; queued requests are admitted at every step
    boundary (up to ``capacity``) and completed rows leave the batch the
    step they finish.  There is no batching window: admission is continuous,
    so a request waits at most one step, and the engine never drains while
    work is queued.

    Each step boundary additionally runs the fault-tolerance policy, in
    order: trip plan-scheduled cancellations, evict cancelled rows, evict
    deadline-expired rows, drop cancelled/expired queued requests, admit.
    A step that raises is retried up to ``max_retries`` times with capped
    exponential backoff on the simulated clock - exact replay is guaranteed
    by the session (committed remap + rewound rng streams).  A killed
    session (or exhausted retries) triggers crash recovery: snapshot the
    rows, rebuild the engine via ``engine_factory``, re-admit every row at
    its recorded step with its stream fast-forwarded past its recorded
    draws.  With recovery disabled or exhausted (``max_recoveries``), the
    in-flight rows are recorded ``failed`` and the remaining queue
    continues on a fresh session.

    Returns the terminal records (one per request), per-step wall-clock
    times, per-step occupancies, each completed request's sample (for
    verification), the retry/recovery counters, and the engine in use at
    the end (recovery may have rebuilt it).
    """
    served: List[ServedRequest] = []
    step_times: List[float] = []
    occupancies: List[int] = []
    samples: Dict[int, np.ndarray] = {}
    launch_at: Dict[int, float] = {}
    streams: Dict[int, Optional[faults.ReplayableRNG]] = {}
    stats = _DrainStats()
    tokens = cancel_tokens if cancel_tokens is not None else {}
    needs_rng = bool(getattr(engine.pipeline.sampler, "needs_rng", False))
    sample_shape = tuple(engine.pipeline.sample_shape)
    now = 0.0
    i = 0
    n = len(requests)

    def _finish(idx: int, outcome: str, launch: float, fill: int) -> None:
        req = requests[idx]
        served.append(
            ServedRequest(
                req_id=req.req_id,
                arrival_s=req.arrival_s,
                launch_s=launch,
                finish_s=now,
                batch_fill=fill,
                outcome=outcome,
                slo_class=req.slo_class,
                deadline_s=req.deadline_s,
            )
        )

    def _retire(tag: int, outcome: str) -> None:
        """Evict an in-flight row and record its terminal outcome."""
        session.evict(tag)
        streams.pop(tag, None)
        _finish(tag, outcome, launch_at[tag], 0)

    def _recover_or_fail(dead, reason: str):
        """Rebuild + re-admit from snapshots, or fail the in-flight rows.

        Bit-exact by construction: a rebuilt engine is deterministic (same
        spec, steps, calibration seed), a re-admitted row starts from zero
        temporal state at its snapshot latent (its first step computes the
        dense result), and its rng stream - rebuilt from the request's
        ``SeedSequence`` seed - is fast-forwarded past exactly the draws
        the dead session spent (streams were rewound on failure, so the
        count excludes the failed step).
        """
        nonlocal engine
        inflight = dead.snapshot()
        draws = {tag: streams[tag].draws if streams.get(tag) else 0 for tag, _, _ in inflight}
        dead.close()  # resets the shared layer state; safe when unhealthy
        if recover and engine_factory is not None and stats.recoveries < max_recoveries:
            stats.recoveries += 1
            engine = engine_factory()
            fresh = engine.open_session(capacity=capacity, plan=execution_plan)
            for tag, step_k, x_k in inflight:
                rng = None
                if needs_rng:
                    rng = faults.ReplayableRNG(requests[tag].sampler_rng())
                    rng.fast_forward(draws[tag], (1,) + sample_shape)
                fresh.admit(x_k, rng=rng, tag=tag, step=step_k)
                streams[tag] = rng
            return fresh
        for tag, _step_k, _x_k in inflight:
            streams.pop(tag, None)
            _finish(tag, "failed", launch_at[tag], 0)
        return engine.open_session(capacity=capacity, plan=execution_plan)

    session = engine.open_session(capacity=capacity, plan=execution_plan)
    try:
        while i < n or session.occupancy:
            if not session.occupancy and i < n and requests[i].arrival_s > now:
                now = requests[i].arrival_s  # idle server: jump to next arrival
            # -- step-boundary policy: cancellations, then deadlines --------
            if fault_plan is not None and tokens:
                next_steps: Dict[int, int] = {
                    requests[j].req_id: 0 for j in range(i, n)
                }
                for tag, step_k in zip(session.tags, session.row_steps):
                    next_steps[tag] = step_k
                for rid in fault_plan.cancellations(now, next_steps):
                    token = tokens.get(rid)
                    if token is not None:
                        token.cancel(f"fault plan cancel at t={now:.3f}s")
            for tag in list(session.tags):
                token = tokens.get(tag)
                if token is not None and token.cancelled:
                    _retire(tag, "cancelled")
                    continue
                req = requests[tag]
                if req.deadline_s is not None and now > req.arrival_s + req.deadline_s:
                    _retire(tag, "expired")
            # -- admissions --------------------------------------------------
            while (
                i < n
                and requests[i].arrival_s <= now
                and session.occupancy < capacity
            ):
                req = requests[i]
                token = tokens.get(req.req_id)
                if token is not None and token.cancelled:
                    _finish(i, "cancelled", now, 0)
                elif req.deadline_s is not None and now > req.arrival_s + req.deadline_s:
                    _finish(i, "expired", now, 0)
                else:
                    rng = (
                        faults.ReplayableRNG(req.sampler_rng())
                        if needs_rng
                        else None
                    )
                    session.admit(noises[i], rng=rng, tag=i)
                    streams[i] = rng
                    launch_at[i] = now
                i += 1
            if not session.occupancy:
                if i >= n:
                    break
                continue  # queued work arrives later; the jump above advances the clock
            # -- one step, with retries and crash recovery -------------------
            fill = session.occupancy
            tags_before = list(session.tags)
            steps_before = list(session.row_steps)
            attempt = 0
            stepped = False
            while not stepped:
                t0 = time.perf_counter()
                try:
                    finished = session.step()
                    dt = time.perf_counter() - t0
                    stepped = True
                except faults.SessionKilled as exc:
                    # The injected crash.  step() marks the session
                    # unhealthy before re-raising; keep that invariant even
                    # for a kill raised by foreign code.
                    now += time.perf_counter() - t0
                    if session.healthy:
                        session.mark_unhealthy(str(exc) or "session killed")
                    session = _recover_or_fail(session, str(exc))
                    break
                except Exception as exc:
                    # Transient step failure: the session rewound its rng
                    # streams and kept its latents, so a retry is an exact
                    # replay.  Backoff lands on the simulated clock - it
                    # can trip deadlines but costs no wall time.
                    now += time.perf_counter() - t0
                    attempt += 1
                    if attempt > max_retries:
                        session.mark_unhealthy(
                            f"step failed {attempt} times: {exc}"
                        )
                        session = _recover_or_fail(session, str(exc))
                        break
                    stats.retries += 1
                    now += min(
                        retry_backoff_s * 2.0 ** (attempt - 1),
                        retry_backoff_cap_s,
                    )
            if not stepped:
                continue  # recovered (rows re-admitted) or failed (rows retired)
            step_times.append(dt)
            occupancies.append(fill)
            now += dt
            if fault_plan is not None:
                # Injected service latency lands after the measured step,
                # so the next boundary's deadline checks see it.
                now += fault_plan.service_delay_s(tags_before, steps_before)
            for tag, sample in finished:
                samples[tag] = sample
                streams.pop(tag, None)
                _finish(tag, "completed", launch_at[tag], fill)
    finally:
        session.close()
    return served, step_times, occupancies, samples, stats, engine


def estimate_row_footprint(engine: DittoEngine) -> int:
    """Measured scratch + temporal-state bytes of one batch row.

    Runs two probe forwards (the second exercises the temporal-difference
    scratch paths) at batch 2 - under the engine's compute backend, so
    backend workspaces that only materialize at batch >= 2 (the
    ``blas-batched`` gather buffer is a free view at batch 1) are captured -
    and tallies the thread's scratch pool, every layer's cached state and
    im2col buffers, plus any backend-private scratch held outside the pool
    (:meth:`~repro.nn.backends.ComputeBackend.scratch_nbytes`).  All of it
    grows linearly with the batch, so half the batch-2 total is one row and
    ``budget // row_bytes`` bounds the admissible batch size.
    """
    from ..core.modes import ExecutionMode
    from ..nn import backends
    from ..quant.qlayers import model_state_nbytes, reset_model_state, set_model_mode
    from ..scratch import clear_scratch, scratch_pool_bytes

    engine._freeze_scales(1)
    clear_scratch()
    reset_model_state(engine.qmodel)
    set_model_mode(engine.qmodel, ExecutionMode.TEMPORAL)
    probe = engine._probe_fn(2)
    with backends.use_backend(engine.backend) as bk:
        probe()
        probe()
        total = (
            scratch_pool_bytes()
            + model_state_nbytes(engine.qmodel)
            + bk.scratch_nbytes()
        )
    reset_model_state(engine.qmodel)
    clear_scratch()
    return -(-total // 2)  # ceil: never under-report a row


def pool_budget_row_cap(engine: DittoEngine, budget_mb: float) -> int:
    """Largest batch the scratch-pool budget admits; raises if below 1 row.

    The graceful refusal the ROADMAP asked for: a budget smaller than a
    single row's footprint cannot serve anything, so it fails loudly with
    the measured requirement instead of thrashing.
    """
    if budget_mb <= 0:
        raise ValueError(f"pool budget must be positive, got {budget_mb} MB")
    row_bytes = estimate_row_footprint(engine)
    cap = int(budget_mb * 2**20) // max(row_bytes, 1)
    if cap < 1:
        # Report the measured footprint AND the smallest budget that would
        # admit one row (ceiling at 0.01 MB so the suggestion always works).
        min_mb = math.ceil(row_bytes / 2**20 * 100.0) / 100.0
        raise ValueError(
            f"pool budget {budget_mb:g} MB is below one batch row's "
            f"measured footprint ({row_bytes / 2**20:.2f} MB = {row_bytes} "
            f"bytes); pass --pool-budget-mb {min_mb:.2f} or more, or shrink "
            "the model"
        )
    return cap


def _mac_savings(engine: DittoEngine, batch_size: int, seed: int) -> Tuple[float, float]:
    """Instrumented run -> (temporal relative BOPs, savings % vs dense)."""
    result = engine.run(batch_size=batch_size, seed=seed)
    rel = relative_bops(lower_temporal(result.rich_trace))
    return rel, 100.0 * (1.0 - rel)


def simulate_serving(
    spec_or_name,
    batch_sizes: Iterable[int] = (1, 2, 4, 8),
    num_requests: int = 16,
    rate_rps: float = 4.0,
    pattern: str = "poisson",
    window_s: float = 0.25,
    num_steps: Optional[int] = None,
    seed: int = 0,
    guidance_scale: Optional[float] = None,
    calibrate: bool = True,
    verify_invariance: bool = False,
    engine: Optional[DittoEngine] = None,
    scheduler: str = "fixed",
    pool_budget_mb: Optional[float] = None,
    sampler: Optional[str] = None,
    sampler_eta: Optional[float] = None,
    backend: Optional[str] = None,
    deadline_s: Optional[float] = None,
    slo: Optional[object] = None,
    fault_spec: Optional[str] = None,
    fault_seed: int = 0,
    max_retries: int = 3,
    retry_backoff_s: float = 0.05,
    recover: bool = True,
    engine_factory: Optional[Callable[[], DittoEngine]] = None,
    use_plan: bool = False,
    plan_cache_dir=None,
) -> ServingReport:
    """Replay one request trace at every batch size and report the numbers.

    The engine is built once (quantization + calibration are
    batch-independent) and reused across batch sizes; every
    :meth:`~repro.core.engine.DittoEngine.run` resets the temporal state.
    ``scheduler="continuous"`` replaces the lockstep micro-batcher with
    iteration-level scheduling (``batch_sizes`` then sweep the persistent
    batch *capacity*).  ``pool_budget_mb`` caps every batch size at what the
    scratch-pool memory budget admits.  ``sampler``/``sampler_eta`` override
    the spec's sampler (e.g. stochastic ddpm).

    ``verify_invariance=True`` re-runs requests individually and demands
    bit-exact agreement with the batched replay - the temporal-state
    contract checked in production rather than only in tests.  For the fixed
    scheduler that covers one micro-batch of the largest size; for the
    continuous scheduler *every completed* request of the largest-capacity
    replay (arbitrary admission/eviction/recovery interleavings included)
    is checked against its seeded batch-1 reference, and the report records
    which request ids were verified.

    Fault tolerance (continuous scheduler): ``deadline_s`` applies one
    deadline to every request; ``slo`` (a spec string for
    :func:`parse_slo_spec` or a list of :class:`SLOClass`) assigns
    per-class deadlines instead.  ``fault_spec`` (default:
    ``$REPRO_FAULTS``) injects deterministic failures - a *fresh*
    :class:`~repro.runtime.faults.FaultPlan` is built per batch size so
    firing budgets never leak across the sweep.  ``max_retries`` /
    ``retry_backoff_s`` bound the exact-replay retry loop; ``recover``
    toggles crash recovery, which rebuilds the engine via
    ``engine_factory`` (default: the content-addressed engine-object cache
    for spec-built engines, reopening the same object for prebuilt ones).

    ``use_plan=True`` switches to plan-then-execute mode (``repro serve
    --plan``, see ``docs/plan-cache.md``): the bitwidth/Defo numbers come
    from an :class:`~repro.core.plan.ExecutionPlan` loaded from the
    content-addressed cache (``plan_cache_dir``, default
    :func:`~repro.runtime.cache.default_cache_dir`) or derived once on miss
    - instead of one instrumented run *per batch size*.  A cache-hit plan is
    drift-checked: the derivation run is re-instrumented once and its plan
    must match the cached artifact bit-exactly; divergence is reported in
    ``ServingReport.plan_drift``, never raised.  With
    ``verify_invariance=True`` the batch-1 references are run *instrumented*
    in this mode, proving the plan-replay path bit-exact against the
    instrumented path per request.
    """
    if isinstance(spec_or_name, str):
        from ..workloads import get_benchmark

        spec = get_benchmark(spec_or_name)
    else:
        spec = spec_or_name
    from .runner import normalize_batch_sizes

    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; choose from {SCHEDULERS}"
        )
    if engine is not None and (sampler is not None or sampler_eta is not None):
        # A prebuilt engine already owns its sampler; silently recording an
        # override that never took effect would falsify the report metadata.
        raise ValueError(
            "sampler/sampler_eta overrides conflict with a prebuilt engine; "
            "build the engine with the desired sampler instead"
        )
    if engine is not None and backend is not None and backend != engine.backend:
        # Same shape as the sampler conflict: the engine was calibrated
        # under its own backend, and every cache key embeds it.
        raise ValueError(
            f"backend override {backend!r} conflicts with a prebuilt engine "
            f"built for {engine.backend!r}; build the engine with the "
            "desired backend instead"
        )
    if fault_spec is None:
        fault_spec = os.environ.get("REPRO_FAULTS") or None
    if fault_spec is not None and scheduler != "continuous":
        raise ValueError(
            "fault injection needs step-boundary scheduling; use "
            "--scheduler continuous"
        )
    slo_classes: Optional[List[SLOClass]] = None
    if slo is not None:
        slo_classes = parse_slo_spec(slo) if isinstance(slo, str) else list(slo)
    elif deadline_s is not None:
        slo_classes = [SLOClass(DEFAULT_SLO_CLASS.name, deadline_s)]
    sizes = normalize_batch_sizes(batch_sizes)
    steps = num_steps if num_steps is not None else spec.num_steps
    prebuilt = engine is not None
    if engine is None:
        engine = DittoEngine.from_benchmark(
            spec,
            num_steps=steps,
            calibrate=calibrate,
            guidance_scale=guidance_scale,
            sampler=sampler,
            sampler_eta=sampler_eta,
            backend=backend,
        )
    if scheduler == "continuous" and engine_factory is None:
        if prebuilt:
            # Reopening the same object is a valid rebuild: EngineSession
            # resets every layer's temporal state on open, and an injected
            # kill corrupts no engine-side state in this simulation.
            def engine_factory(engine=engine):
                return engine
        else:
            def engine_factory():
                # Warm rebuild: the engine-object cache is content-addressed
                # (source fingerprint + spec + build params), so recovery
                # reloads the deterministic build instead of recalibrating.
                from .runner import EngineRunner

                return EngineRunner().build_engine(
                    spec,
                    num_steps=steps,
                    calibrate=calibrate,
                    guidance_scale=guidance_scale,
                    sampler=sampler,
                    sampler_eta=sampler_eta,
                    backend=backend,
                )
    execution_plan = None
    plan_source = None
    plan_drift: Optional[Dict[str, object]] = None
    if use_plan:
        from ..core.plan import compare_plans
        from .cache import ResultCache, default_cache_dir
        from .hashing import plan_key

        plan_cache = ResultCache(plan_cache_dir or default_cache_dir())
        key = plan_key(
            spec,
            num_steps=steps,
            calibrate=calibrate,
            guidance_scale=guidance_scale,
            sampler=sampler,
            sampler_eta=sampler_eta,
            backend=engine.backend,
            derivation_seed=seed,
            derivation_batch_size=1,
        )
        execution_plan = plan_cache.get(key)
        if execution_plan is None:
            # The one instrumented pass of this serve: derive and persist.
            execution_plan = engine.derive_plan(seed=seed, batch_size=1)
            plan_cache.put(key, execution_plan)
            plan_source = "derived"
            plan_drift = {"checked": False, "matches": True, "mismatches": []}
        else:
            plan_source = "cache"
            # Drift check: replay the exact derivation run (deterministic,
            # so the digests must match bit-exactly) and report - never
            # raise - divergence between the cached artifact and what the
            # current engine actually computes.
            fresh = engine.derive_plan(
                seed=execution_plan.derivation_seed,
                batch_size=execution_plan.derivation_batch_size,
                hardware=execution_plan.hardware,
            )
            mismatches = compare_plans(execution_plan, fresh)
            plan_drift = {
                "checked": True,
                "matches": not mismatches,
                "mismatches": mismatches,
            }
    pool_row_cap = None
    if pool_budget_mb is not None:
        pool_row_cap = pool_budget_row_cap(engine, pool_budget_mb)
        sizes = normalize_batch_sizes(min(s, pool_row_cap) for s in sizes)
    requests = generate_requests(
        num_requests, rate_rps, pattern, seed, slo=slo_classes
    )
    noises = [req.draw_noise(spec.sample_shape) for req in requests]

    report = ServingReport(
        benchmark=spec.name,
        num_steps=steps,
        pattern=pattern,
        rate_rps=rate_rps,
        window_s=window_s,
        num_requests=num_requests,
        guidance_scale=(
            guidance_scale
            if guidance_scale is not None
            else getattr(spec, "guidance_scale", None)
        ),
        invariance_checked=False,
        scheduler=scheduler,
        sampler=sampler,
        backend=engine.backend,
        backend_effective=engine.effective_backend,
        backend_fallback_reason=engine.backend_fallback_reason,
        pool_budget_mb=pool_budget_mb,
        pool_row_cap=pool_row_cap,
        fault_spec=fault_spec,
        slo_spec=slo if isinstance(slo, str) else None,
        plan_source=plan_source,
        plan_digest=execution_plan.digest if execution_plan is not None else None,
        plan_drift=plan_drift,
    )
    track_outcomes = bool(slo_classes or fault_spec)
    continuous_samples: Dict[int, np.ndarray] = {}
    continuous_outcomes: Dict[int, str] = {}
    for size in sizes:
        # One batch size's scratch working set at a time: the pools key
        # buffers by shape and never evict, so sweeping sizes 1..8 in one
        # thread would otherwise hold the union of all their buffer sets.
        from ..core.bitwidth import clear_classification_pool
        from ..scratch import clear_scratch

        clear_scratch()
        clear_classification_pool()
        stats = _DrainStats()
        if scheduler == "continuous":
            # A fresh plan per batch size: entry firing budgets must not
            # leak from one replay of the trace into the next.
            plan = (
                faults.FaultPlan.from_spec(fault_spec, seed=fault_seed)
                if fault_spec
                else None
            )
            tokens = {req.req_id: faults.CancelToken() for req in requests}
            with faults.install(plan):
                (
                    served,
                    service_times,
                    occupancies,
                    samples,
                    stats,
                    engine,
                ) = _drain_continuous(
                    engine,
                    requests,
                    noises,
                    size,
                    fault_plan=plan,
                    cancel_tokens=tokens,
                    engine_factory=engine_factory,
                    max_retries=max_retries,
                    retry_backoff_s=retry_backoff_s,
                    recover=recover,
                    execution_plan=execution_plan,
                )
            continuous_samples = samples  # the largest size's replay wins
            continuous_outcomes = {s.req_id: s.outcome for s in served}
            mean_fill = float(np.mean(occupancies)) if occupancies else 0.0
        else:
            served, service_times = _drain_queue(
                engine, requests, noises, window_s, size
            )
            launched = sum(s.outcome == "completed" for s in served)
            mean_fill = (
                float(launched / len(service_times)) if service_times else 0.0
            )
        completed = [s for s in served if s.outcome == "completed"]
        latencies = np.array([s.latency_s for s in completed])
        first_arrival = min(req.arrival_s for req in requests)
        makespan = max(s.finish_s for s in served) - first_arrival
        if execution_plan is not None:
            # Plan-replay: the persisted artifact carries the derived
            # numbers; no per-batch-size instrumented run at all.
            rel_bops = execution_plan.temporal_relative_bops
            savings = execution_plan.mac_savings_pct
        else:
            rel_bops, savings = _mac_savings(engine, size, seed)

        def _pct(q: float) -> float:
            return float(np.percentile(latencies, q)) if completed else float("nan")

        report.per_batch[size] = BatchSizeReport(
            batch_size=size,
            num_requests=len(served),
            # Engine launches: micro-batches (fixed) or denoiser steps
            # (continuous).  For fixed, fill averages per *launched batch* -
            # averaging per-request fills would weight full batches by their
            # own size and overstate occupancy.
            num_batches=len(service_times),
            mean_batch_fill=mean_fill,
            makespan_s=float(makespan),
            throughput_rps=(
                float(len(completed) / makespan) if makespan > 0 else float("inf")
            ),
            latency_p50_s=_pct(50),
            latency_p90_s=_pct(90),
            latency_p99_s=_pct(99),
            mean_service_s=(
                float(np.mean(service_times)) if service_times else 0.0
            ),
            temporal_relative_bops=rel_bops,
            mac_savings_pct=savings,
            utilization=mean_fill / size,
            served=served,
            outcomes={s.req_id: s.outcome for s in served},
            slo=(
                _slo_class_reports(served, slo_classes) if track_outcomes else []
            ),
            retries=stats.retries,
            recoveries=stats.recoveries,
        )
    if verify_invariance:
        if scheduler == "continuous":
            report.verified_requests = _verify_continuous(
                spec.name,
                engine,
                requests,
                noises,
                continuous_samples,
                continuous_outcomes,
                instrumented_reference=use_plan,
            )
        else:
            report.verified_requests = _verify_fixed(
                spec.name, engine, requests, noises, sizes,
                instrumented_reference=use_plan,
            )
        report.invariance_checked = True
    return report


def _deviation(got: np.ndarray, want: np.ndarray) -> str:
    """Human-readable max abs/rel deviation between two sample tensors."""
    diff = np.abs(np.asarray(got, dtype=np.float64) - np.asarray(want, dtype=np.float64))
    denom = np.maximum(np.abs(np.asarray(want, dtype=np.float64)), 1e-12)
    return (
        f"max |delta|={float(diff.max()):.6e}, "
        f"max rel={float((diff / denom).max()):.6e}"
    )


def _verify_fixed(
    name: str,
    engine: DittoEngine,
    requests: Sequence[Request],
    noises: Sequence[np.ndarray],
    sizes: Sequence[int],
    instrumented_reference: bool = False,
) -> List[int]:
    """Stack the first requests into one micro-batch of the largest
    configured size, re-run them one at a time, and demand bit-exact
    agreement.  Built independently of what the drains happened to form, so
    --verify can never silently verify nothing.  Returns the verified
    request ids.

    ``instrumented_reference=True`` (plan-replay mode) runs the batch-1
    references with full instrumentation, so the check proves the
    plan-replay path bit-exact against the *instrumented* path per request
    rather than against another uninstrumented run."""
    fill = min(sizes[-1], len(requests))
    if fill < 2:
        raise ValueError(
            "verify_invariance needs a multi-request batch: got "
            f"max batch size {sizes[-1]} and {len(requests)} request(s)"
        )
    num_steps = len(engine.pipeline.sampler.timesteps)
    members = list(range(fill))
    x_init = np.concatenate([noises[j] for j in members], axis=0)
    batched = engine.run(
        x_init=x_init,
        record_trace=False,
        rngs=[requests[j].sampler_rng() for j in members],
    ).samples
    for pos, j in enumerate(members):
        single = engine.run(
            x_init=noises[j],
            record_trace=instrumented_reference,
            rngs=[requests[j].sampler_rng()],
        ).samples
        if not np.array_equal(batched[pos : pos + 1], single):
            raise AssertionError(
                f"batch invariance violated for request {j} in batch "
                f"{members} of {name}: first mismatch after {num_steps} "
                f"steps, {_deviation(batched[pos : pos + 1], single)}"
            )
    return members


def _verify_continuous(
    name: str,
    engine: DittoEngine,
    requests: Sequence[Request],
    noises: Sequence[np.ndarray],
    samples: Dict[int, np.ndarray],
    outcomes: Dict[int, str],
    instrumented_reference: bool = False,
) -> List[int]:
    """Every *completed* request of the continuous replay - whatever
    interleaving of admissions, evictions, and recoveries the queue
    produced - must match its seeded batch-1 reference bit-exactly.
    Returns the verified request ids.

    ``instrumented_reference=True`` (plan-replay mode) makes each reference
    a fully instrumented run, proving plan-replay bit-exact against the
    instrumented path."""
    completed = sorted(
        rid for rid, outcome in outcomes.items() if outcome == "completed"
    )
    unaccounted = sorted(
        set(req.req_id for req in requests) - set(outcomes)
    )
    if unaccounted:
        raise AssertionError(
            f"continuous replay of {name} lost requests {unaccounted}: no "
            "terminal outcome recorded"
        )
    missing = [rid for rid in completed if rid not in samples]
    if missing:
        raise AssertionError(
            f"continuous replay of {name} reported requests {missing} "
            "completed but produced no sample for them"
        )
    if not completed:
        raise AssertionError(
            f"--verify has nothing to check: no request of {name} completed "
            f"(outcomes: {outcomes})"
        )
    num_steps = len(engine.pipeline.sampler.timesteps)
    for j in completed:
        reference = engine.run(
            x_init=noises[j],
            record_trace=instrumented_reference,
            rngs=[requests[j].sampler_rng()],
        ).samples
        if not np.array_equal(samples[j], reference):
            raise AssertionError(
                f"continuous-batching invariance violated for request {j} "
                f"of {name}: served sample deviates from its batch-1 "
                f"reference after {num_steps} steps, "
                f"{_deviation(samples[j], reference)}"
            )
    return completed
