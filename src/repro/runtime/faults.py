"""Deterministic fault injection and the serving tier's failure model.

Serving (PR 3-4) assumed every step succeeds and every request runs to
completion.  This module supplies the primitives that drop that assumption
without giving up the repo's bit-exactness contract:

* :class:`FaultPlan` - a seeded, declarative schedule of injected failures
  (step exceptions, session kills, artificial step latency, cache-read
  corruption, cancellations) addressed by (request, step) coordinates, so
  every recovery path is exercised *reproducibly* in tests and CI;
* :class:`CancelToken` - per-request cancellation, checked by the
  continuous scheduler at step boundaries;
* :class:`ReplayableRNG` - a draw-counting wrapper around a request's
  private sampler stream.  Draws in the serving paths are always shape
  ``(1, *sample_shape)``, so the *count* alone pins the stream position:
  crash recovery rebuilds the stream from the request's ``SeedSequence``
  seed and fast-forwards past the recorded draws, and a failed step rewinds
  every row to its pre-step position for an exact retry.

Fault-spec grammar (``--fault-spec`` / ``$REPRO_FAULTS``)::

    spec   := entry (';' entry)*
    entry  := kind '@' key=value (',' key=value)*

    error  @ [req=R,] step=S [,times=N|*] [,p=F]   raise before the forward
    kill   @ [req=R,] step=S [,times=N|*] [,p=F]   kill the session (unhealthy)
    delay  @ [req=R,] step=S, ms=M [,times=N|*]    add M ms simulated latency
    cancel @ req=R, (at=T | step=S)                trip R's cancellation token
    corrupt@ [read=N|*] [,times=N|*]               scribble over a cache read

With ``req=R`` the coordinate means "request R is in flight at its row-step
S"; without it, ``step=S`` addresses the S-th step *attempt* of the drain
(0-based, counted across retries and recoveries).  ``times`` caps how often
an entry fires (default once, ``*`` = unlimited); ``p`` makes a matching
entry fire with that probability, drawn from the plan's own seeded stream -
still fully deterministic for a fixed ``(spec, seed)``.

Injected latency and cancellation trip times live on the *simulated* clock
(the one arrivals and deadlines use), so a ``delay`` entry deterministically
expires a deadline without slowing the wall-clock test down.

Plans installed via :func:`install` are consulted by
:meth:`EngineSession.step <repro.core.session.EngineSession.step>` (step
errors and kills) and :meth:`ResultCache.get <repro.runtime.cache.ResultCache.get>`
(read corruption); an ambient plan parsed from ``$REPRO_FAULTS`` is the
fallback when none is installed.  The env-derived plan is memoized per spec
string so its ``times`` budgets span the whole process - the intended use is
one-shot CLI runs.
"""

from __future__ import annotations

import copy
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "InjectedFault",
    "SessionKilled",
    "CancelToken",
    "ReplayableRNG",
    "FaultEntry",
    "FaultPlan",
    "install",
    "active",
    "capture_rng_state",
    "restore_rng_state",
]

FAULT_KINDS = ("error", "kill", "delay", "cancel", "corrupt")


class InjectedFault(RuntimeError):
    """A fault raised by a :class:`FaultPlan` at a step attempt."""


class SessionKilled(InjectedFault):
    """An injected crash: the session is unusable and must be rebuilt."""


class CancelToken:
    """Per-request cancellation flag, checked at step boundaries.

    Cooperative: cancelling never interrupts a running step - the serving
    loop evicts the row at the next boundary, which is exactly the
    granularity at which eviction is bit-exact for the survivors.
    """

    __slots__ = ("_cancelled", "reason")

    def __init__(self) -> None:
        self._cancelled = False
        self.reason = ""

    def cancel(self, reason: str = "") -> None:
        """Latch the token cancelled (idempotent), keeping the first reason."""
        self._cancelled = True
        if reason:
            self.reason = reason

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled


class ReplayableRNG:
    """A draw-counting wrapper around a request's sampler noise stream.

    Samplers only ever call ``standard_normal`` with the row shape
    ``(1, *sample_shape)``, so ``draws`` fully determines the stream
    position.  That buys two replay operations:

    * :meth:`capture_state` / :meth:`restore_state` - exact rewind after a
      failed step (undoing partial per-row draws before a retry);
    * :meth:`fast_forward` - crash recovery rebuilds the stream from the
      request's seed and skips the draws its journal recorded, landing the
      fresh generator bit-exactly where the dead session left off.
    """

    __slots__ = ("generator", "draws")

    def __init__(self, generator: np.random.Generator) -> None:
        self.generator = generator
        self.draws = 0

    def standard_normal(self, *args, **kwargs):
        """Draw from the wrapped generator, counting the call."""
        self.draws += 1
        return self.generator.standard_normal(*args, **kwargs)

    def capture_state(self) -> Dict[str, object]:
        """Snapshot the draw count and exact bit-generator state."""
        return {
            "draws": self.draws,
            "state": copy.deepcopy(self.generator.bit_generator.state),
        }

    def restore_state(self, snapshot: Mapping[str, object]) -> None:
        """Rewind to a :meth:`capture_state` snapshot (exact bit-for-bit)."""
        self.draws = int(snapshot["draws"])
        self.generator.bit_generator.state = copy.deepcopy(snapshot["state"])

    def fast_forward(self, draws: int, shape: Tuple[int, ...]) -> None:
        """Skip ``draws`` row-shaped draws, landing where a dead stream left off."""
        for _ in range(draws):
            self.standard_normal(shape)


def capture_rng_state(rng) -> Optional[object]:
    """Snapshot any row stream (plain Generator or :class:`ReplayableRNG`)."""
    if rng is None:
        return None
    capture = getattr(rng, "capture_state", None)
    if capture is not None:
        return capture()
    return copy.deepcopy(rng.bit_generator.state)


def restore_rng_state(rng, snapshot: Optional[object]) -> None:
    """Rewind a row stream to a :func:`capture_rng_state` snapshot."""
    if rng is None:
        return
    restore = getattr(rng, "restore_state", None)
    if restore is not None:
        restore(snapshot)
        return
    rng.bit_generator.state = copy.deepcopy(snapshot)


@dataclass
class FaultEntry:
    """One parsed fault-spec entry; ``times`` is its remaining firing budget."""

    kind: str
    req: Optional[int] = None
    step: Optional[int] = None
    at: Optional[float] = None
    ms: float = 0.0
    read: Optional[int] = None
    times: Optional[int] = 1  # None = unlimited
    p: float = 1.0

    def spent(self) -> bool:
        """Whether the firing budget is exhausted (``times=None`` never spends)."""
        return self.times is not None and self.times <= 0

    def consume(self) -> None:
        """Spend one firing from the budget (no-op for unlimited entries)."""
        if self.times is not None:
            self.times -= 1

    def coord(self) -> str:
        """Human rendering of the entry's firing coordinate for fault logs."""
        if self.req is not None:
            return f"req={self.req}, step={self.step}"
        return f"attempt={self.step}"


def _parse_int_or_star(value: str, key: str) -> Optional[int]:
    if value == "*":
        return None
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"fault key {key}={value!r} must be an int or '*'") from None


class FaultPlan:
    """A seeded schedule of injected failures (see the module docstring).

    A plan is stateful: entries carry firing budgets, and the plan counts
    step attempts and cache reads to resolve attempt-/read-indexed
    coordinates.  Build a *fresh* plan per drain (``from_spec``) so one
    replay's consumption never leaks into the next.
    """

    def __init__(
        self,
        entries: Sequence[FaultEntry],
        seed: int = 0,
        spec: Optional[str] = None,
    ) -> None:
        self.entries = list(entries)
        self.seed = seed
        self.spec = spec
        self.step_attempts = 0
        self.cache_reads = 0
        self._rng = np.random.default_rng(seed)

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a ``;``-separated fault-spec string into a fresh plan.

        Each entry is ``kind@key=value,...`` (see the module docstring for
        the grammar and ``FAULT_KINDS`` for the kinds).  Raises
        ``ValueError`` on unknown kinds, malformed keys, or out-of-range
        probabilities.
        """
        entries: List[FaultEntry] = []
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            kind, sep, body = raw.partition("@")
            kind = kind.strip()
            if not sep or kind not in FAULT_KINDS:
                raise ValueError(
                    f"fault entry {raw!r} must be 'kind@key=value,...' with "
                    f"kind in {FAULT_KINDS}"
                )
            entry = FaultEntry(kind=kind)
            for pair in body.split(","):
                key, sep, value = pair.partition("=")
                key, value = key.strip(), value.strip()
                if not sep or not key:
                    raise ValueError(f"fault entry {raw!r}: bad key=value pair {pair!r}")
                if key == "req":
                    entry.req = int(value)
                elif key == "step":
                    entry.step = int(value)
                elif key == "at":
                    entry.at = float(value)
                elif key == "ms":
                    entry.ms = float(value)
                elif key == "read":
                    entry.read = _parse_int_or_star(value, key)
                elif key == "times":
                    entry.times = _parse_int_or_star(value, key)
                elif key == "p":
                    entry.p = float(value)
                else:
                    raise ValueError(f"fault entry {raw!r}: unknown key {key!r}")
            cls._validate(raw, entry)
            entries.append(entry)
        return cls(entries, seed=seed, spec=spec)

    @staticmethod
    def _validate(raw: str, entry: FaultEntry) -> None:
        if entry.kind in ("error", "kill", "delay") and entry.step is None:
            raise ValueError(f"fault entry {raw!r}: {entry.kind} needs step=S")
        if entry.kind == "delay" and entry.ms <= 0.0:
            raise ValueError(f"fault entry {raw!r}: delay needs ms=M > 0")
        if entry.kind == "cancel":
            if entry.req is None or (entry.at is None) == (entry.step is None):
                raise ValueError(
                    f"fault entry {raw!r}: cancel needs req=R and exactly one "
                    "of at=T (simulated seconds) or step=S"
                )
        if not 0.0 < entry.p <= 1.0:
            raise ValueError(f"fault entry {raw!r}: p must be in (0, 1]")

    # -- firing --------------------------------------------------------------
    def _fires(self, entry: FaultEntry) -> bool:
        if entry.spent():
            return False
        if entry.p < 1.0 and float(self._rng.random()) >= entry.p:
            return False
        entry.consume()
        return True

    @staticmethod
    def _matches_step(
        entry: FaultEntry, attempt: int, coords: Mapping[object, int]
    ) -> bool:
        if entry.req is not None:
            return coords.get(entry.req) == entry.step
        return entry.step == attempt

    def on_step_attempt(
        self, tags: Sequence[object], steps: Sequence[int]
    ) -> None:
        """Consulted by ``EngineSession.step`` just before the forward.

        Raises :class:`InjectedFault` (transient, retriable) or
        :class:`SessionKilled` (fatal) when an ``error``/``kill`` entry
        matches this attempt.  Every call - including retried attempts -
        advances the attempt counter, so attempt-indexed entries can target
        "the retry of step 3" deterministically.
        """
        attempt = self.step_attempts
        self.step_attempts += 1
        coords = {tag: int(step) for tag, step in zip(tags, steps)}
        for entry in self.entries:
            if entry.kind not in ("error", "kill"):
                continue
            if not self._matches_step(entry, attempt, coords):
                continue
            if not self._fires(entry):
                continue
            if entry.kind == "kill":
                raise SessionKilled(
                    f"injected session kill at attempt {attempt} ({entry.coord()})"
                )
            raise InjectedFault(
                f"injected step error at attempt {attempt} ({entry.coord()})"
            )

    def service_delay_s(
        self, tags: Sequence[object], steps: Sequence[int]
    ) -> float:
        """Simulated latency to add after the step attempt that just ran."""
        attempt = self.step_attempts - 1
        coords = {tag: int(step) for tag, step in zip(tags, steps)}
        total = 0.0
        for entry in self.entries:
            if entry.kind != "delay":
                continue
            if self._matches_step(entry, attempt, coords) and self._fires(entry):
                total += entry.ms / 1e3
        return total

    def cancellations(
        self, now: float, next_steps: Mapping[object, int]
    ) -> List[object]:
        """Request ids whose ``cancel`` entries trip at this step boundary.

        ``next_steps`` maps every unfinished request (queued requests sit at
        step 0) to its next step index; ``at=T`` entries trip at the first
        boundary with simulated time >= T, ``step=S`` entries once the
        request's next step reaches S.
        """
        tripped: List[object] = []
        for entry in self.entries:
            if entry.kind != "cancel" or entry.req not in next_steps:
                continue
            hit = (entry.at is not None and now >= entry.at) or (
                entry.step is not None and next_steps[entry.req] >= entry.step
            )
            if hit and self._fires(entry):
                tripped.append(entry.req)
        return tripped

    def corrupt_cache_read(self) -> bool:
        """Whether to scribble over the cache entry about to be read."""
        idx = self.cache_reads
        self.cache_reads += 1
        for entry in self.entries:
            if entry.kind != "corrupt":
                continue
            if (entry.read is None or entry.read == idx) and self._fires(entry):
                return True
        return False


# -- ambient plan ------------------------------------------------------------
_PLANS: List[FaultPlan] = []
_ENV_PLANS: Dict[str, FaultPlan] = {}


@contextmanager
def install(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Make ``plan`` the ambient fault plan for the dynamic extent.

    ``install(None)`` is a no-op context, so callers can wrap
    unconditionally.
    """
    if plan is None:
        yield None
        return
    _PLANS.append(plan)
    try:
        yield plan
    finally:
        _PLANS.pop()


def active() -> Optional[FaultPlan]:
    """The innermost installed plan, else one parsed from ``$REPRO_FAULTS``.

    The env-derived plan is memoized per spec string: its firing budgets
    span the process, which is what a one-shot CLI invocation wants.
    """
    if _PLANS:
        return _PLANS[-1]
    spec = os.environ.get("REPRO_FAULTS")
    if not spec:
        return None
    plan = _ENV_PLANS.get(spec)
    if plan is None:
        plan = FaultPlan.from_spec(spec)
        _ENV_PLANS[spec] = plan
    return plan
