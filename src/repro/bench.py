"""``repro bench`` - machine-readable performance measurements.

Times the cold path (``DittoEngine.from_benchmark(...).run()``: quantize +
calibrate + instrumented generation) and the warm path (loading the same
:class:`~repro.core.engine.EngineResult` back from the content-addressed
result cache) per Table I benchmark, and writes the numbers as JSON so the
repository accumulates a perf trajectory over PRs instead of anecdotes.

The cold timing is exactly the hot path every figure and ablation funnels
through, which is why it is the headline number; ``--baseline`` lets a run
record the reference measurement it should be compared against (e.g. the
same benchmark timed on the previous mainline commit on the same machine).
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from . import profiling
from .core import DittoEngine
from .core.bitwidth import clear_classification_pool
from .defaults import resolve_backend, resolve_calibration_dtype
from .nn import backends as compute_backends
from .runtime import ResultCache, default_cache_dir, normalize_batch_sizes
from .runtime.hashing import engine_key
from .scratch import clear_scratch
from .workloads import get_benchmark

__all__ = [
    "bench_benchmark", "run_bench", "DEFAULT_OUT", "clear_pools",
    "host_speed_index",
]

DEFAULT_OUT = "BENCH_PR10.json"


def clear_pools() -> None:
    """Reset the per-thread scratch pools between measured models."""
    clear_scratch()
    clear_classification_pool()


def host_speed_index(repeats: int = 9) -> float:
    """Seconds for a fixed single-core numpy workload (smaller = faster).

    A ~30 ms float64 GEMM + elementwise probe shaped like the engine's hot
    path.  Recorded into every bench record so the CI perf gate
    (``scripts/check_bench.py``) can compare *normalized* timings across
    machines - a hosted runner 2x slower than the machine that recorded the
    baseline also measures a ~2x speed index, leaving the ratio meaningful.
    Best-of-``repeats`` to shed scheduler noise.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 256))
    b = rng.standard_normal((256, 256))
    (a @ b)  # BLAS warmup: first-call setup must not pollute the probe
    best = float("inf")
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        c = a
        for _ in range(8):
            c = c @ b
            np.rint(c, out=c)
            np.clip(c, -127, 127, out=c)
        best = min(best, time.perf_counter() - t0)
    return best


def _median_phases(per_repeat: List[Dict[str, float]]) -> Dict[str, float]:
    """Per-bucket medians across repeats (absent buckets count as 0)."""
    names: List[str] = []
    for snapshot in per_repeat:
        for name in snapshot:
            if name not in names:
                names.append(name)
    return {
        name: round(
            statistics.median(s.get(name, 0.0) for s in per_repeat), 4
        )
        for name in names
    }


def _bench_one_batch_size(
    spec,
    params: Dict[str, object],
    repeats: int,
    cache_dir,
) -> Dict[str, object]:
    """Cold build+run (per-phase medians of ``repeats``) and warm load.

    Every repeat records a full phase breakdown: the build phase splits
    into ``calibration`` (containing ``trajectory``, which itself contains
    its ``norm``/``im2col`` share) and ``quantize``; the run phase reports
    its ``norm``/``im2col`` share.  The headline ``cold_build_s`` /
    ``cold_run_s`` / ``cold_total_s`` are *medians* across repeats (schema
    3) - best-of-N totals let one lucky repeat hide a phase regression, and
    the per-phase gate in ``scripts/check_bench.py`` needs each phase
    centred on the same statistic.  ``cold_best_total_s`` keeps the
    optimistic headline.

    The ``im2col`` phase bucket is further split by stride so the blocked
    stride-2 unfold can be *gated* against the stride-1 scheme rather than
    asserted: ``im2col_s1`` / ``im2col_s2`` accumulate seconds and
    ``im2col_s1_elems`` / ``im2col_s2_elems`` the elements written, and
    ``scripts/check_bench.py`` compares the per-element rates.

    Plan-then-execute (PR 9) adds three steady-state fields per record:
    ``plan_derive_s`` (the one-time instrumented derivation of the
    :class:`~repro.core.plan.ExecutionPlan`), ``plan_replay_run_s`` (median
    plan-mode serving run: ``record_trace=False`` with the plan already
    derived), and ``plain_run_s`` (median plain-forward floor - the same
    uninstrumented run with no plan involved).  ``scripts/check_bench.py``
    gates ``plan_replay_run_s`` within 15% of ``plain_run_s``, proving the
    serving run phase reached the floor.  These are record *fields*, not new
    ``phases`` sections: each cold repeat's phase dict stays exactly
    ``{"build", "run"}``.
    """
    cold_runs: List[Dict[str, object]] = []
    result = None
    for _ in range(max(repeats, 1)):
        clear_pools()  # measure each repeat from a cold scratch state
        with profiling.profile() as build_prof:
            t0 = time.perf_counter()
            engine = DittoEngine.from_benchmark(
                spec,
                num_steps=params["num_steps"],
                calibrate=params["calibrate"],
                calibration_seed=params["calibration_seed"],
                step_clusters=params["step_clusters"],
                calibration_dtype=params.get("calibration_dtype"),
                backend=params.get("backend"),
            )
            t1 = time.perf_counter()
        with profiling.profile() as run_prof:
            result = engine.run(
                batch_size=params["batch_size"], seed=params["seed"]
            )
            t2 = time.perf_counter()
        cold_runs.append(
            {
                "build_s": round(t1 - t0, 4),
                "run_s": round(t2 - t1, 4),
                "total_s": round(t2 - t0, 4),
                "phases": {
                    "build": build_prof.snapshot(),
                    "run": run_prof.snapshot(),
                },
            }
        )
    build_s = statistics.median(r["build_s"] for r in cold_runs)
    run_s = statistics.median(r["run_s"] for r in cold_runs)
    total_s = statistics.median(r["total_s"] for r in cold_runs)
    best_total_s = min(r["total_s"] for r in cold_runs)
    phases = {
        "build": _median_phases([r["phases"]["build"] for r in cold_runs]),
        "run": _median_phases([r["phases"]["run"] for r in cold_runs]),
    }

    # Warm path: persist the result, then time the cache read that a warm
    # sweep / benchmark session would perform instead of rebuilding.
    cache = ResultCache(cache_dir or default_cache_dir())
    key = engine_key(spec, **params)
    cache.put(key, result)
    t0 = time.perf_counter()
    loaded = cache.get(key)
    warm_s: Optional[float] = time.perf_counter() - t0
    if loaded is None:  # pragma: no cover - cache dir unwritable
        warm_s = None  # null in JSON; NaN would break strict parsers

    trace = result.rich_trace
    batch = int(params["batch_size"])

    # Plan-then-execute: the plan-replay run phase vs the plain-forward
    # floor, both steady-state.  One untimed record_trace=False run first so
    # the one-time sticky-scale probe forward is excluded from every timed
    # repeat (a serving loop pays it once, not per run).
    seed = params["seed"]
    engine.run(batch_size=batch, seed=seed, record_trace=False)
    plain_times = []
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        engine.run(batch_size=batch, seed=seed, record_trace=False)
        plain_times.append(time.perf_counter() - t0)
    t0 = time.perf_counter()
    plan = engine.derive_plan(seed=seed, batch_size=1)
    plan_derive_s = time.perf_counter() - t0
    # The plan-mode serving run: explicit per-request noise + rng streams
    # (the form _drain_queue launches), plan already derived, no
    # instrumentation.  The gate demands this approaches plain_run_s.
    x_init = np.random.default_rng(seed).standard_normal(
        (batch,) + tuple(engine.pipeline.sample_shape)
    )
    rngs = [
        np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(i,)))
        for i in range(batch)
    ]
    replay_times = []
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        engine.run(x_init=x_init, record_trace=False, rngs=rngs)
        replay_times.append(time.perf_counter() - t0)
    assert plan.num_records == len(trace)  # same engine, same trajectory

    requested = engine.backend
    return {
        "batch_size": batch,
        "backend": requested,
        "backend_effective": engine.effective_backend,
        "backend_fallback_reason": engine.backend_fallback_reason,
        "cold_build_s": round(build_s, 4),
        "cold_run_s": round(run_s, 4),
        "cold_total_s": round(total_s, 4),
        "cold_best_total_s": round(best_total_s, 4),
        "cold_runs": cold_runs,
        "phases": phases,
        "warm_load_s": None if warm_s is None else round(warm_s, 4),
        "plan_derive_s": round(plan_derive_s, 4),
        "plan_replay_run_s": round(statistics.median(replay_times), 4),
        "plain_run_s": round(statistics.median(plain_times), 4),
        "records": len(trace),
        "steps": trace.num_steps(),
        "total_macs": trace.total_macs(),
        "samples_per_cold_run_s": round(batch / run_s, 3) if run_s else None,
        "samples_l1": float(np.abs(result.samples).sum()),  # drift canary
    }


def bench_benchmark(
    name: str,
    repeats: int = 2,
    seed: int = 0,
    num_steps: Optional[int] = None,
    batch_sizes: Optional[Sequence[int]] = None,
    cache_dir=None,
    calibration_dtype: Optional[str] = None,
    backend: Optional[str] = None,
) -> Dict[str, object]:
    """Cold/warm timings for one benchmark; returns a JSON-ready record.

    ``batch_sizes`` (default ``[1]``) adds one cold build+run / warm load
    measurement per generation batch size under ``by_batch_size``; the
    top-level ``cold_*`` / ``warm_load_s`` / ``phases`` fields mirror the
    first batch size, so single-batch consumers keep reading the same keys.
    """
    spec = get_benchmark(name)
    # First-occurrence order: the first size is the headline record; a
    # duplicated size would re-run the cold measurement and silently
    # overwrite its by_batch_size entry.
    sizes = normalize_batch_sizes(batch_sizes or [1], preserve_order=True)
    by_size: Dict[str, Dict[str, object]] = {}
    for size in sizes:
        # One params dict drives BOTH the engine construction and the cache
        # key, so the stored entry can never claim parameters not used.
        params = {
            "num_steps": num_steps if num_steps is not None else spec.num_steps,
            "calibrate": True,
            "calibration_seed": 11,
            "step_clusters": 1,
            "seed": seed,
            "batch_size": size,
            "calibration_dtype": calibration_dtype,
            "backend": backend,
        }
        by_size[str(size)] = _bench_one_batch_size(spec, params, repeats, cache_dir)
    headline = by_size[str(sizes[0])]
    record = {
        key: headline[key]
        for key in (
            "backend", "backend_effective", "backend_fallback_reason",
            "cold_build_s", "cold_run_s", "cold_total_s", "cold_best_total_s",
            "cold_runs", "phases", "warm_load_s", "plan_derive_s",
            "plan_replay_run_s", "plain_run_s", "records", "steps",
            "total_macs", "samples_l1",
        )
    }
    record["by_batch_size"] = by_size
    return record


def run_bench(
    benchmarks: Optional[Sequence[str]] = None,
    repeats: int = 2,
    quick: bool = False,
    seed: int = 0,
    num_steps: Optional[int] = None,
    batch_sizes: Optional[Sequence[int]] = None,
    out_path: Optional[str] = None,
    baseline_s: Optional[float] = None,
    baseline_ref: Optional[str] = None,
    cache_dir=None,
    calibration_dtype: Optional[str] = None,
    backend: Optional[str] = None,
) -> Dict[str, object]:
    """Bench the given benchmarks (default: whole Table I suite) to JSON."""
    from .workloads import SUITE

    if quick:
        repeats = 1
        if not benchmarks:
            benchmarks = ["DDPM"]
    names = list(benchmarks) if benchmarks else list(SUITE)
    sizes = normalize_batch_sizes(batch_sizes or [1], preserve_order=True)
    results: Dict[str, object] = {}
    for name in names:
        results[name] = bench_benchmark(
            name, repeats=repeats, seed=seed, num_steps=num_steps,
            batch_sizes=sizes, cache_dir=cache_dir,
            calibration_dtype=calibration_dtype, backend=backend,
        )
    payload: Dict[str, object] = {
        # Schema 3 (PR 5): cold_* headline timings are per-phase medians
        # across repeats (cold_best_total_s keeps the best-of-N total) and
        # every record carries a "phases" breakdown (build: calibration /
        # trajectory / quantize / norm / im2col; run: norm / im2col).
        # PR 9 adds per-record plan-then-execute fields (plan_derive_s /
        # plan_replay_run_s / plain_run_s) without changing the schema: the
        # gate treats absent metrics as "fewer comparisons", never failures.
        # PR 10 adds per-record backend fields and the im2col stride
        # sub-buckets (seconds + element counters) the same additive way.
        "schema": 3,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            # Single-core numpy speed probe: lets the perf gate normalize
            # absolute timings recorded on different machine classes.
            "speed_index_s": round(host_speed_index(), 5),
        },
        "config": {
            "repeats": repeats,
            "seed": seed,
            "num_steps": num_steps,
            "batch_sizes": sizes,
            # The run-level default through the one shared resolution rule;
            # per-spec float64 pins (if a spec carries one) are reflected in
            # each engine's cache key, not re-recorded here.
            "calibration_dtype": resolve_calibration_dtype(
                None, calibration_dtype
            ),
            # The requested backend through the shared resolution rule plus
            # what this host actually ran (probe fallback recorded, never
            # silent) - per-record fields repeat this per benchmark.
            "backend": resolve_backend(None, backend),
            "backend_effective": compute_backends.probe_backend(backend)[0],
            "backends_available": list(compute_backends.available_backends()),
        },
        "benchmarks": results,
    }
    if baseline_s is not None:
        headline = names[0]
        cold = results[headline]["cold_total_s"]
        payload["baseline"] = {
            "ref": baseline_ref or "previous mainline commit",
            "benchmark": headline,
            "cold_total_s": baseline_s,
            "speedup": round(baseline_s / cold, 3) if cold else None,
        }
    if out_path:
        Path(out_path).write_text(json.dumps(payload, indent=1) + "\n")
    return payload
