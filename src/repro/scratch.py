"""Per-thread reusable scratch buffers for hot-path intermediates.

The instrumentation pipeline (quantized layers, bit-width classification,
im2col padding) produces large, short-lived temporaries at a high rate; on
the hot path every one of them would otherwise be a fresh multi-hundred-KB
allocation.  This pool hands out reusable arrays keyed by ``(tag, shape,
dtype)``.

Buffers are thread-local - layer execution and trace recording are
thread-scoped already - so concurrent engine runs in different threads never
alias.  Contents are undefined between uses (except where a caller's
contract, like :func:`repro.nn.functional.im2col`'s zero pad border, says
otherwise): callers must fully overwrite and consume a buffer before the
next call that could reuse its key.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np

__all__ = ["scratch_buffer", "clear_scratch", "scratch_pool_bytes"]

_SCRATCH = threading.local()


def clear_scratch() -> None:
    """Drop this thread's pooled buffers.

    The pool never evicts on its own, so a long-lived process that runs many
    differently-shaped models serially (a whole-suite sweep or bench)
    accumulates the union of their large temporaries.  Call this between
    models to return peak memory to one model's working set.
    """
    buffers = getattr(_SCRATCH, "buffers", None)
    if buffers is not None:
        buffers.clear()


def scratch_pool_bytes() -> int:
    """Total bytes currently held by this thread's pooled buffers.

    The serving runtime uses this (together with per-layer state bytes) to
    measure one batch row's scratch footprint and derive the batch-size cap
    implied by a ``--pool-budget-mb`` memory budget.
    """
    buffers = getattr(_SCRATCH, "buffers", None)
    if not buffers:
        return 0
    return sum(buf.nbytes for buf in buffers.values())


def scratch_buffer(tag: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
    """A reusable per-thread array for transient intermediates."""
    buffers: Dict[tuple, np.ndarray] = getattr(_SCRATCH, "buffers", None)
    if buffers is None:
        buffers = {}
        _SCRATCH.buffers = buffers
    key = (tag, shape, dtype if isinstance(dtype, np.dtype) else np.dtype(dtype))
    buf = buffers.get(key)
    if buf is None:
        buf = np.zeros(shape, dtype=dtype)
        buffers[key] = buf
    return buf
