"""Ambient per-phase profiler behind the ``repro bench`` phase breakdown.

The bench needs to attribute cold-path wall clock to phases (calibration /
trajectory / quantize) and to the two hot kernels inside them (GroupNorm /
LayerNorm reductions under ``norm``, the im2col gather under ``im2col``)
without threading a timings object through every call signature.  This
module provides that ambiently: :func:`profile` installs a thread-local
:class:`PhaseProfiler`, and instrumented code paths call :func:`active` /
:func:`record` to accumulate into named buckets.

When no profiler is installed the hot-path cost is one ``getattr`` plus a
``None`` check per instrumented call - a few tens of nanoseconds against
kernels that take tens of microseconds - so the instrumentation can stay on
permanently instead of forking the hot loops into timed/untimed variants.

Buckets are flat ``name -> accumulated seconds``; nesting is expressed by
measuring at different granularities (``calibration`` contains
``trajectory`` contains ``norm``/``im2col`` time) and documented in the
bench record schema rather than encoded in the keys.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Optional

__all__ = ["PhaseProfiler", "profile", "phase", "active", "record"]

_TLS = threading.local()


class PhaseProfiler:
    """Accumulates wall-clock seconds into named phase buckets."""

    def __init__(self) -> None:
        self.buckets: Dict[str, float] = {}

    def add(self, name: str, seconds: float) -> None:
        self.buckets[name] = self.buckets.get(name, 0.0) + seconds

    def snapshot(self, ndigits: int = 4) -> Dict[str, float]:
        """JSON-ready copy of the buckets (rounded, insertion-ordered)."""
        return {name: round(value, ndigits) for name, value in self.buckets.items()}


def active() -> Optional[PhaseProfiler]:
    """The profiler installed on this thread, or ``None``."""
    return getattr(_TLS, "profiler", None)


def record(name: str, seconds: float) -> None:
    """Accumulate into ``name`` if a profiler is active (no-op otherwise)."""
    profiler = getattr(_TLS, "profiler", None)
    if profiler is not None:
        profiler.add(name, seconds)


@contextmanager
def profile():
    """Install a fresh :class:`PhaseProfiler` on this thread.

    Nesting restores the previous profiler on exit, so a bench that wraps
    build and run separately never double-counts.
    """
    profiler = PhaseProfiler()
    previous = getattr(_TLS, "profiler", None)
    _TLS.profiler = profiler
    try:
        yield profiler
    finally:
        _TLS.profiler = previous


@contextmanager
def phase(name: str):
    """Time the enclosed block into bucket ``name`` when a profiler is active."""
    profiler = getattr(_TLS, "profiler", None)
    if profiler is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        profiler.add(name, time.perf_counter() - t0)
