"""End-to-end reverse-diffusion driver.

:class:`GenerationPipeline` owns the denoising model, the sampler, and the
conditioning, and walks the reverse process from pure noise to a sample.  It
is deliberately model-agnostic: every benchmark in Table I - pixel-space
DDPM, latent-space LDMs, Stable-Diffusion-style text conditioning, DiT and
Latte transformers - runs through this one loop, which is exactly the setting
in which the Ditto observation (adjacent time steps see nearly identical
layer inputs) arises.

Step callbacks receive ``(step_index, timestep, x)`` *before* the denoiser is
invoked; the Ditto engine uses them to advance its per-layer temporal state,
and the analysis tooling uses layer forward hooks to capture activations.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..nn.module import Module
from .samplers import PLMSSampler, Sampler
from .schedule import DiffusionSchedule

__all__ = ["GenerationPipeline", "PerElementRNG"]

StepCallback = Callable[[int, int, np.ndarray], None]


class PerElementRNG:
    """Per-batch-element noise streams behind a Generator-like facade.

    Stochastic samplers (DDPM ancestral, DDIM with eta > 0) call
    ``rng.standard_normal(x.shape)`` once per step.  Drawing that from a
    single stream entangles the batch rows: batch-N noise differs from the
    noise N batch-1 runs would draw, breaking the bit-exact serving
    contract.  This adapter holds one independent stream per row (spawned
    via ``np.random.SeedSequence``) and draws each row's slab from its own
    stream - exactly what a batch-1 run seeded with that stream draws - so
    the invariance contract extends to stochastic samplers.
    """

    def __init__(self, streams: Sequence[np.random.Generator]) -> None:
        if not streams:
            raise ValueError("need at least one per-element rng stream")
        self.streams = list(streams)

    def standard_normal(self, shape) -> np.ndarray:
        shape = tuple(shape)
        if shape[0] != len(self.streams):
            raise ValueError(
                f"batch {shape[0]} != {len(self.streams)} rng streams"
            )
        return np.concatenate(
            [g.standard_normal((1,) + shape[1:]) for g in self.streams],
            axis=0,
        )


class GenerationPipeline:
    """Drives ``sampler`` over ``model`` to generate samples.

    Parameters
    ----------
    model:
        A denoising module whose ``forward(x, t, **cond)`` returns the
        predicted noise ``eps``.
    sampler:
        One of the samplers from :mod:`repro.diffusion.samplers`.
    sample_shape:
        Shape of a single sample *without* the batch dimension, e.g.
        ``(3, 16, 16)`` for pixel space or ``(4, 8, 8)`` for latents.
    conditioning:
        Extra keyword arguments forwarded to the model on every call (class
        labels, text context, ...).  Constant across time steps - the property
        Ditto exploits for cross-attention K'/V'.
    """

    def __init__(
        self,
        model: Module,
        sampler: Sampler,
        sample_shape,
        conditioning: Optional[Dict[str, np.ndarray]] = None,
        guidance_scale: Optional[float] = None,
        uncond_conditioning: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        self.model = model
        self.sampler = sampler
        self.schedule: DiffusionSchedule = sampler.schedule
        self.sample_shape = tuple(sample_shape)
        self.conditioning = dict(conditioning or {})
        if guidance_scale is not None and uncond_conditioning is None:
            raise ValueError(
                "classifier-free guidance needs uncond_conditioning "
                "(e.g. the empty-prompt embedding or the null class)"
            )
        self.guidance_scale = guidance_scale
        self.uncond_conditioning = dict(uncond_conditioning or {})
        if guidance_scale is not None:
            # The CFG merge concatenates cond[key] with uncond[key] per key:
            # a key missing from one dict would either be silently dropped or
            # blow up deep inside the step loop, so mismatches fail here.
            cond_keys = set(self.conditioning)
            uncond_keys = set(self.uncond_conditioning)
            if cond_keys != uncond_keys:
                missing = sorted(cond_keys - uncond_keys)
                extra = sorted(uncond_keys - cond_keys)
                raise ValueError(
                    "conditioning and uncond_conditioning must have identical "
                    f"keys for classifier-free guidance; missing from uncond: "
                    f"{missing or 'none'}, only in uncond: {extra or 'none'}"
                )
        # Tiled / CFG-merged conditioning per batch size.  Memoized so every
        # time step hands the model the *same array objects*: cross-attention
        # caches the constant K'/V' projections keyed by context identity, and
        # rebuilding the tiles each step would silently defeat that cache for
        # batch > 1 and for every CFG run.
        self._cond_cache: Dict[tuple, Dict[str, np.ndarray]] = {}

    @staticmethod
    def _tile_cond(cond: Dict[str, np.ndarray], batch: int) -> Dict[str, np.ndarray]:
        """Broadcast batch-1 conditioning tensors to the sample batch."""
        tiled = {}
        for key, value in cond.items():
            value = np.asarray(value)
            if value.ndim == 0:
                raise ValueError(
                    f"conditioning {key!r} is 0-d; conditioning tensors need "
                    "a leading batch dimension (reshape scalars to (1, ...))"
                )
            if value.shape[0] == 1 and batch > 1:
                value = np.repeat(value, batch, axis=0)
            elif value.shape[0] != batch:
                raise ValueError(
                    f"conditioning {key!r} has batch dimension "
                    f"{value.shape[0]} (shape {value.shape}); expected 1 or "
                    f"the sample batch size {batch}"
                )
            tiled[key] = value
        return tiled

    def _cached_cond(self, which: str, batch: int) -> Dict[str, np.ndarray]:
        """Memoized tiled (or CFG-stacked) conditioning for ``batch``."""
        key = (which, batch)
        cached = self._cond_cache.get(key)
        if cached is not None:
            return cached
        if which == "cond":
            built = self._tile_cond(self.conditioning, batch)
        elif which == "uncond":
            built = self._tile_cond(self.uncond_conditioning, batch)
        else:  # "merged": the [cond; uncond] stacked-batch layout
            cond = self._cached_cond("cond", batch)
            uncond = self._cached_cond("uncond", batch)
            built = {
                name: np.concatenate([cond[name], uncond[name]], axis=0)
                for name in cond
            }
        self._cond_cache[key] = built
        return built

    # -- model invocation -----------------------------------------------
    def predict_noise(self, x: np.ndarray, t: int) -> np.ndarray:
        """One denoiser evaluation; applies classifier-free guidance if set.

        CFG runs the conditional and unconditional branches as one stacked
        batch (``[cond; uncond]``).  The stacking is what lets the Ditto
        temporal state stay valid: every time step sees the same layout, so
        each batch element differences against its own previous-step value.
        """
        return self.predict_noise_rows(
            x, np.full(x.shape[0], t, dtype=np.float64)
        )

    def predict_noise_rows(self, x: np.ndarray, t_rows: np.ndarray) -> np.ndarray:
        """One denoiser evaluation with a *per-row* timestep vector.

        The continuous-batching path: every batch row may sit at its own
        timestep (the time embedding is computed per element anyway, and all
        layer arithmetic is row-independent).  ``predict_noise`` is the
        lockstep special case.
        """
        batch = x.shape[0]
        t_array = np.asarray(t_rows, dtype=np.float64)
        if t_array.shape != (batch,):
            raise ValueError(
                f"t_rows must have shape ({batch},), got {t_array.shape}"
            )
        if self.guidance_scale is None or self.guidance_scale == 1.0:
            return self.model(x, t_array, **self._cached_cond("cond", batch))
        stacked = np.concatenate([x, x], axis=0)
        merged = self._cached_cond("merged", batch)
        t_stacked = np.concatenate([t_array, t_array])
        eps = self.model(stacked, t_stacked, **merged)
        eps_cond, eps_uncond = eps[:batch], eps[batch:]
        return eps_uncond + self.guidance_scale * (eps_cond - eps_uncond)

    def num_model_calls(self) -> int:
        """Total denoiser evaluations for one trajectory (PLMS warmup incl.)."""
        return sum(
            self.sampler.model_calls_for_step(i)
            for i in range(len(self.sampler.timesteps))
        )

    # -- generation -------------------------------------------------------
    def generate(
        self,
        batch_size: int = 1,
        rng: Optional[np.random.Generator] = None,
        step_callback: Optional[StepCallback] = None,
        x_init: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run the full reverse process and return the generated batch."""
        rng = rng or np.random.default_rng(0)
        if x_init is None:
            x = rng.standard_normal((batch_size,) + self.sample_shape)
        else:
            x = np.array(x_init, dtype=np.float64)
            if x.shape[1:] != self.sample_shape:
                raise ValueError(
                    f"x_init shape {x.shape[1:]} != sample shape {self.sample_shape}"
                )
        self.sampler.reset()
        if isinstance(self.sampler, PLMSSampler):
            self.sampler.model_fn = self.predict_noise
        for index, t in enumerate(self.sampler.timesteps):
            t = int(t)
            if step_callback is not None:
                step_callback(index, t, x)
            eps = self.predict_noise(x, t)
            x = self.sampler.step(eps, index, x, rng=rng)
        return x
