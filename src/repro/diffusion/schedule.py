"""Noise schedules and the forward diffusion process.

The reverse-process samplers in :mod:`repro.diffusion.samplers` consume a
:class:`DiffusionSchedule`; the forward process is provided for completeness
(it is what the paper's Fig. 1 calls the Forward Diffusion Process) and for
building calibration trajectories with known ground truth.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = ["DiffusionSchedule"]


class DiffusionSchedule:
    """Variance schedule ``beta_1..beta_T`` plus derived quantities.

    Supports the two schedules used by the Table I benchmarks: the linear
    schedule of DDPM/LDM and the squared-cosine schedule used by improved
    DDPM-style models.
    """

    def __init__(
        self,
        num_train_steps: int = 1000,
        beta_start: float = 1e-4,
        beta_end: float = 2e-2,
        kind: str = "linear",
    ) -> None:
        if num_train_steps < 2:
            raise ValueError("schedule needs at least 2 training steps")
        self.num_train_steps = num_train_steps
        self.kind = kind
        if kind == "linear":
            self.betas = np.linspace(beta_start, beta_end, num_train_steps)
        elif kind == "cosine":
            steps = np.arange(num_train_steps + 1) / num_train_steps
            f = np.cos((steps + 0.008) / 1.008 * np.pi / 2) ** 2
            self.betas = np.clip(1.0 - f[1:] / f[:-1], 0.0, 0.999)
        else:
            raise ValueError(f"unknown schedule kind {kind!r}")
        self.alphas = 1.0 - self.betas
        self.alphas_cumprod = np.cumprod(self.alphas)

    def alpha_bar(self, t: int) -> float:
        """``prod_{s<=t} alpha_s``; ``t=-1`` denotes the clean-image limit."""
        if t < 0:
            return 1.0
        return float(self.alphas_cumprod[t])

    def add_noise(
        self, x0: np.ndarray, t: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Forward process: sample ``x_t ~ q(x_t | x_0)``; returns (x_t, eps)."""
        eps = rng.standard_normal(x0.shape).astype(x0.dtype, copy=False)
        a_bar = self.alpha_bar(t)
        # math.sqrt keeps the scalars weak (NEP 50) so a float32 x0 stays
        # float32; bit-identical to np.sqrt on the float64 path.
        return math.sqrt(a_bar) * x0 + math.sqrt(1.0 - a_bar) * eps, eps

    def spaced_timesteps(self, num_steps: int) -> np.ndarray:
        """Evenly spaced inference timesteps, descending (T-1 ... 0)."""
        if not 1 <= num_steps <= self.num_train_steps:
            raise ValueError(
                f"num_steps must be in [1, {self.num_train_steps}], got {num_steps}"
            )
        stride = self.num_train_steps // num_steps
        steps = np.arange(0, num_steps) * stride
        return steps[::-1].copy()
