"""Reverse-process samplers: DDPM (ancestral), DDIM, and PLMS.

These implement the samplers in Table I of the paper.  The property Ditto
exploits - gradual drift of the latent across steps and therefore high
temporal similarity of every layer's activations - is produced by these
update rules, so they are implemented faithfully (DDIM from Song et al.,
PLMS from Liu et al. including the pseudo-improved-Euler warmup step, which
is the "extra step 50'" visible in the paper's Fig. 4a).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Sequence

import numpy as np

from .schedule import DiffusionSchedule

__all__ = ["Sampler", "DDPMSampler", "DDIMSampler", "PLMSSampler", "DPMSolverPlusPlusSampler", "make_sampler"]


class Sampler:
    """Base class: maps (x_t, eps_hat) -> x_{t-1} along spaced timesteps."""

    name = "base"
    # Whether ``step`` is pure per row (no cross-step history shared across
    # the batch), i.e. whether a continuous-batching session may drive each
    # batch row at its own step index via :meth:`step_rows`.  Multi-step
    # samplers (PLMS, DPM-Solver++) keep whole-batch history and must stay
    # lockstep.
    row_stepping = True

    def __init__(self, schedule: DiffusionSchedule, num_steps: int) -> None:
        self.schedule = schedule
        self.num_steps = num_steps
        self.timesteps = schedule.spaced_timesteps(num_steps)

    def prev_timestep(self, index: int) -> int:
        """Training timestep the sampler jumps to from ``timesteps[index]``."""
        if index + 1 < len(self.timesteps):
            return int(self.timesteps[index + 1])
        return -1

    def reset(self) -> None:
        """Clear multi-step history (PLMS); no-op for single-step samplers."""

    @property
    def needs_rng(self) -> bool:
        """Whether :meth:`step` draws noise (stochastic posterior sampling)."""
        return False

    def model_calls_for_step(self, index: int) -> int:
        """Number of denoiser evaluations the sampler makes at ``index``."""
        return 1

    def step(
        self,
        eps: np.ndarray,
        index: int,
        x: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        raise NotImplementedError

    def step_rows(
        self,
        eps: np.ndarray,
        indices: np.ndarray,
        x: np.ndarray,
        rngs: Optional[Sequence[Optional[np.random.Generator]]] = None,
    ) -> np.ndarray:
        """Advance each batch row at its *own* step index.

        Row ``r`` of ``x``/``eps`` sits at trajectory index ``indices[r]``
        and, for stochastic samplers, draws its posterior noise from its own
        ``rngs[r]`` stream.  Implemented as per-row invocations of the scalar
        :meth:`step` - the update rules are elementwise per sample, so this
        is trivially bit-exact with the batch-1 run each row is replaying,
        which is the whole point: continuous batching must not perturb any
        request's result.
        """
        if not self.row_stepping:
            raise ValueError(
                f"sampler {self.name!r} keeps cross-step history shared "
                "across the batch and cannot advance rows at different steps"
            )
        # Validate every row's stream BEFORE drawing from any: a mid-batch
        # failure after partial draws would silently desynchronize the
        # earlier rows' streams from their batch-1 references on retry.
        if self.needs_rng:
            bad = (
                list(range(x.shape[0]))
                if rngs is None
                else [r for r in range(x.shape[0]) if rngs[r] is None]
            )
            if bad:
                raise ValueError(
                    f"sampler {self.name!r} needs an rng stream per row; "
                    f"row(s) {bad} have none"
                )
        rows = [
            self.step(
                eps[r : r + 1],
                int(indices[r]),
                x[r : r + 1],
                rng=None if rngs is None else rngs[r],
            )
            for r in range(x.shape[0])
        ]
        return np.concatenate(rows, axis=0)

    def _predict_x0(self, x: np.ndarray, eps: np.ndarray, a_bar: float) -> np.ndarray:
        # math.sqrt returns a weak Python float (NEP 50): identical bits to
        # np.sqrt on the float64 path, but it cannot promote a float32 x/eps.
        return (x - math.sqrt(1.0 - a_bar) * eps) / math.sqrt(a_bar)


class DDIMSampler(Sampler):
    """Deterministic DDIM (eta = 0 unless specified)."""

    name = "ddim"

    def __init__(
        self, schedule: DiffusionSchedule, num_steps: int, eta: float = 0.0
    ) -> None:
        super().__init__(schedule, num_steps)
        self.eta = eta

    @property
    def needs_rng(self) -> bool:
        return self.eta > 0.0

    def step(
        self,
        eps: np.ndarray,
        index: int,
        x: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        t = int(self.timesteps[index])
        a_bar = self.schedule.alpha_bar(t)
        a_bar_prev = self.schedule.alpha_bar(self.prev_timestep(index))
        x0 = self._predict_x0(x, eps, a_bar)
        sigma = self.eta * math.sqrt(
            (1.0 - a_bar_prev) / (1.0 - a_bar) * (1.0 - a_bar / a_bar_prev)
        )
        direction = math.sqrt(max(1.0 - a_bar_prev - sigma ** 2, 0.0)) * eps
        x_prev = math.sqrt(a_bar_prev) * x0 + direction
        if sigma > 0.0:
            if rng is None:
                raise ValueError("stochastic DDIM (eta>0) needs an rng")
            noise = rng.standard_normal(x.shape).astype(x.dtype, copy=False)
            x_prev = x_prev + sigma * noise
        return x_prev


class DDPMSampler(Sampler):
    """Ancestral sampler of Ho et al. (stochastic posterior sampling)."""

    name = "ddpm"

    @property
    def needs_rng(self) -> bool:
        return True

    def step(
        self,
        eps: np.ndarray,
        index: int,
        x: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        if rng is None:
            raise ValueError("DDPM ancestral sampling needs an rng")
        t = int(self.timesteps[index])
        beta = float(self.schedule.betas[t])
        alpha = 1.0 - beta
        a_bar = self.schedule.alpha_bar(t)
        mean = (x - beta / math.sqrt(1.0 - a_bar) * eps) / math.sqrt(alpha)
        if self.prev_timestep(index) < 0:
            return mean
        noise = rng.standard_normal(x.shape).astype(x.dtype, copy=False)
        return mean + math.sqrt(beta) * noise


class PLMSSampler(Sampler):
    """Pseudo Linear Multi-Step sampler (Liu et al.), used by SDM in Table I.

    Keeps a window of the last four noise predictions and applies the
    4th-order Adams-Bashforth combination once warm; the very first step uses
    the pseudo improved-Euler correction, which costs one extra denoiser
    evaluation (the paper's "extra step").
    """

    name = "plms"
    row_stepping = False  # 4-step Adams-Bashforth history is whole-batch

    def __init__(self, schedule: DiffusionSchedule, num_steps: int) -> None:
        super().__init__(schedule, num_steps)
        self._history: Deque[np.ndarray] = deque(maxlen=4)
        # Filled by the pipeline: callable that re-evaluates the denoiser,
        # needed for the improved-Euler warmup.
        self.model_fn = None

    def reset(self) -> None:
        self._history.clear()

    def model_calls_for_step(self, index: int) -> int:
        return 2 if index == 0 else 1

    def _transfer(self, x: np.ndarray, eps: np.ndarray, index: int) -> np.ndarray:
        t = int(self.timesteps[index])
        a_bar = self.schedule.alpha_bar(t)
        a_bar_prev = self.schedule.alpha_bar(self.prev_timestep(index))
        x0 = self._predict_x0(x, eps, a_bar)
        return math.sqrt(a_bar_prev) * x0 + math.sqrt(1.0 - a_bar_prev) * eps

    def step(
        self,
        eps: np.ndarray,
        index: int,
        x: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        history = self._history
        if len(history) == 0:
            # Pseudo improved Euler: evaluate at the naive x_{t-1} and average.
            x_prev_naive = self._transfer(x, eps, index)
            if self.model_fn is not None and index + 1 <= len(self.timesteps):
                t_prev = self.prev_timestep(index)
                eps_next = self.model_fn(x_prev_naive, max(t_prev, 0))
                eps_prime = 0.5 * (eps + eps_next)
            else:
                eps_prime = eps
        elif len(history) == 1:
            eps_prime = (3.0 * eps - history[-1]) / 2.0
        elif len(history) == 2:
            eps_prime = (23.0 * eps - 16.0 * history[-1] + 5.0 * history[-2]) / 12.0
        else:
            eps_prime = (
                55.0 * eps
                - 59.0 * history[-1]
                + 37.0 * history[-2]
                - 9.0 * history[-3]
            ) / 24.0
        history.append(eps)
        return self._transfer(x, eps_prime, index)


class DPMSolverPlusPlusSampler(Sampler):
    """DPM-Solver++(2M): second-order multistep solver in lambda-space.

    Not used by the paper's Table I, but the de-facto fast sampler of modern
    diffusion deployments; provided so Ditto can be studied under very short
    trajectories (fewer, larger steps -> weaker temporal similarity, the
    stress case for difference processing).
    """

    name = "dpmpp"
    row_stepping = False  # 2M extrapolation state is whole-batch

    def __init__(self, schedule: DiffusionSchedule, num_steps: int) -> None:
        super().__init__(schedule, num_steps)
        self._prev_x0: Optional[np.ndarray] = None
        self._prev_h: Optional[float] = None

    def reset(self) -> None:
        self._prev_x0 = None
        self._prev_h = None

    def _coeffs(self, t: int):
        a_bar = self.schedule.alpha_bar(t)
        alpha = math.sqrt(a_bar)
        sigma = math.sqrt(max(1.0 - a_bar, 1e-12))
        return alpha, sigma, math.log(alpha / sigma)

    def step(
        self,
        eps: np.ndarray,
        index: int,
        x: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        t = int(self.timesteps[index])
        s = self.prev_timestep(index)
        alpha_t, sigma_t, lam_t = self._coeffs(t)
        x0 = (x - sigma_t * eps) / alpha_t
        if self._prev_x0 is not None and self._prev_h is not None:
            # 2M correction: extrapolate the data prediction.
            alpha_s, sigma_s, lam_s = self._coeffs(max(s, -1))
            h = lam_s - lam_t
            r = self._prev_h / h if h != 0.0 else 1.0
            data = (1.0 + 1.0 / (2.0 * r)) * x0 - (1.0 / (2.0 * r)) * self._prev_x0
        else:
            data = x0
        if s < 0:
            # Final jump to the clean-data limit.
            x_next = data
            h = float("inf")
        else:
            alpha_s, sigma_s, lam_s = self._coeffs(s)
            h = lam_s - lam_t
            x_next = (sigma_s / sigma_t) * x - alpha_s * math.expm1(-h) * data
        self._prev_x0 = x0
        self._prev_h = h if np.isfinite(h) else None
        return x_next


def make_sampler(
    name: str,
    schedule: DiffusionSchedule,
    num_steps: int,
    eta: Optional[float] = None,
) -> Sampler:
    """Factory mapping sampler names to implementations.

    ``eta`` selects stochastic DDIM (posterior noise of scale ``eta``); it is
    only meaningful for the ``ddim`` sampler.
    """
    table = {
        "ddim": DDIMSampler,
        "ddpm": DDPMSampler,
        "plms": PLMSSampler,
        "dpmpp": DPMSolverPlusPlusSampler,
    }
    if name not in table:
        raise ValueError(f"unknown sampler {name!r}; choose from {sorted(table)}")
    if eta is not None:
        if name != "ddim":
            raise ValueError(f"eta only applies to the ddim sampler, not {name!r}")
        return DDIMSampler(schedule, num_steps, eta=eta)
    return table[name](schedule, num_steps)
