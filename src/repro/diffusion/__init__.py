"""Diffusion processes: schedules, samplers, and the generation pipeline."""

from .pipeline import GenerationPipeline
from .samplers import (
    DDIMSampler,
    DDPMSampler,
    DPMSolverPlusPlusSampler,
    PLMSSampler,
    Sampler,
    make_sampler,
)
from .schedule import DiffusionSchedule

__all__ = [
    "DiffusionSchedule",
    "Sampler",
    "DDPMSampler",
    "DDIMSampler",
    "PLMSSampler",
    "DPMSolverPlusPlusSampler",
    "make_sampler",
    "GenerationPipeline",
]
