"""Model builders for the seven Table I benchmarks (scaled-down).

Each builder returns a freshly-initialized denoising model whose *structure*
matches the corresponding paper benchmark: same block families, same
non-linear function mix, same conditioning mechanism.  Channel counts, depths
and resolutions are scaled so the whole suite runs on a laptop in pure numpy;
see DESIGN.md for why random weights preserve the temporal-similarity
behaviour the paper measures.
"""

from __future__ import annotations

import numpy as np

from .dit import DiT
from .latte import Latte
from .text_encoder import ToyTextEncoder
from .unet import UNet
from .vae import ToyVAE

__all__ = [
    "build_ddpm_unet",
    "build_latent_unet",
    "build_conditional_unet",
    "build_dit",
    "build_latte",
    "build_vae",
    "build_text_encoder",
    "NUM_CLASSES",
    "CONTEXT_DIM",
    "CONTEXT_TOKENS",
]

NUM_CLASSES = 10
CONTEXT_DIM = 16
CONTEXT_TOKENS = 8


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def build_ddpm_unet(seed: int = 1) -> UNet:
    """DDPM: pixel-space UNet with ResNet + Attention blocks (CIFAR-scale)."""
    return UNet(
        in_channels=3,
        base_channels=16,
        channel_mults=(1, 2),
        num_res_blocks=1,
        attention_levels=(1,),
        block_type="attention",
        rng=_rng(seed),
    )


def build_latent_unet(seed: int = 2, base_channels: int = 16) -> UNet:
    """BED / CHUR: unconditional latent-space UNet (LSUN-scale)."""
    return UNet(
        in_channels=4,
        base_channels=base_channels,
        channel_mults=(1, 2),
        num_res_blocks=1,
        attention_levels=(1,),
        block_type="attention",
        rng=_rng(seed),
    )


def build_conditional_unet(seed: int = 3) -> UNet:
    """IMG / SDM: latent UNet with conditional transformer blocks.

    Cross attention consumes a constant ``context`` sequence (class embedding
    for IMG, text embedding for SDM), matching Fig. 2's conditional block.
    """
    return UNet(
        in_channels=4,
        base_channels=16,
        channel_mults=(1, 2),
        num_res_blocks=1,
        attention_levels=(0, 1),
        block_type="transformer",
        context_dim=CONTEXT_DIM,
        rng=_rng(seed),
    )


def build_dit(seed: int = 4) -> DiT:
    """DiT-XL/2 analogue: pure transformer denoiser with adaLN blocks."""
    return DiT(
        in_channels=4,
        input_size=16,
        patch=2,
        dim=256,
        depth=3,
        num_heads=4,
        num_classes=NUM_CLASSES,
        rng=_rng(seed),
    )


def build_latte(seed: int = 5) -> Latte:
    """Latte-XL/2 analogue: factorized spatio-temporal video transformer."""
    return Latte(
        in_channels=4,
        input_size=16,
        num_frames=4,
        patch=2,
        dim=192,
        depth=2,
        num_heads=4,
        num_classes=NUM_CLASSES,
        rng=_rng(seed),
    )


def build_vae(seed: int = 6) -> ToyVAE:
    return ToyVAE(image_channels=3, latent_channels=4, hidden=16, rng=_rng(seed))


def build_text_encoder(seed: int = 7) -> ToyTextEncoder:
    return ToyTextEncoder(dim=CONTEXT_DIM, max_tokens=CONTEXT_TOKENS, rng=_rng(seed))
