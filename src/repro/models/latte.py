"""Latte - latent diffusion transformer for video (Latte-XL/2, scaled).

Latte factorizes video attention into alternating *spatial* blocks (tokens
within a frame attend to each other) and *temporal* blocks (the same patch
position attends across frames).  Frames of a short clip are strongly
correlated, which is why the paper's Fig. 17 finds Latte to be the one
benchmark where Defo+ flips most layers (81.6%) to *spatial* difference
processing - reproducing that behaviour requires this factorized structure,
so we implement it rather than reusing DiT.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import (
    LabelEmbedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    PatchEmbed,
    SiLU,
    TimestepEmbedding,
)
from ..nn.functional import sinusoidal_embedding
from .blocks import DiTBlock

__all__ = ["Latte"]


class Latte(Module):
    """``forward(x, t, y) -> eps`` for video latents ``(N, F, C, H, W)``."""

    def __init__(
        self,
        in_channels: int = 4,
        input_size: int = 8,
        num_frames: int = 4,
        patch: int = 2,
        dim: int = 32,
        depth: int = 2,
        num_heads: int = 2,
        num_classes: int = 10,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if depth % 2:
            raise ValueError("Latte depth must be even (spatial/temporal pairs)")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.input_size = input_size
        self.num_frames = num_frames
        self.patch = patch
        self.dim = dim
        self.grid = input_size // patch
        self.tokens_per_frame = self.grid * self.grid
        self.patch_embed = PatchEmbed(in_channels, dim, patch, rng=rng)
        self.pos_spatial = sinusoidal_embedding(np.arange(self.tokens_per_frame), dim)
        self.pos_temporal = sinusoidal_embedding(np.arange(num_frames), dim)
        self.time_embed = TimestepEmbedding(dim, dim, rng=rng)
        self.label_embed = LabelEmbedding(num_classes, dim, rng=rng)
        self.spatial_blocks = ModuleList(
            DiTBlock(dim, num_heads=num_heads, rng=rng) for _ in range(depth // 2)
        )
        self.temporal_blocks = ModuleList(
            DiTBlock(dim, num_heads=num_heads, rng=rng) for _ in range(depth // 2)
        )
        self.final_norm = LayerNorm(dim, affine=False)
        self.final_act = SiLU()
        self.final_ada = Linear(dim, 2 * dim, rng=rng)
        self.final_proj = Linear(dim, patch * patch * in_channels, rng=rng)

    def unpatchify(self, tokens: np.ndarray, batch: int) -> np.ndarray:
        p, g, c, f = self.patch, self.grid, self.in_channels, self.num_frames
        x = tokens.reshape(batch, f, g, g, p, p, c)
        return x.transpose(0, 1, 6, 2, 4, 3, 5).reshape(batch, f, c, g * p, g * p)

    def forward(self, x: np.ndarray, t: np.ndarray, y: np.ndarray) -> np.ndarray:
        n, f, c, h, w = x.shape
        if f != self.num_frames:
            raise ValueError(f"expected {self.num_frames} frames, got {f}")
        frames = x.reshape(n * f, c, h, w)
        tokens = self.patch_embed(frames) + self.pos_spatial[None, :, :]
        s = self.tokens_per_frame
        cond = self.time_embed(t) + self.label_embed(y)  # (N, dim)
        cond_sp = np.repeat(cond, f, axis=0)  # (N*F, dim)
        cond_tp = np.repeat(cond, s, axis=0)  # (N*S, dim)
        for spatial, temporal in zip(self.spatial_blocks, self.temporal_blocks):
            tokens = spatial(tokens, cond_sp)  # (N*F, S, dim)
            # (N*F, S, dim) -> (N*S, F, dim): attend across frames per position.
            tokens = (
                tokens.reshape(n, f, s, self.dim)
                .transpose(0, 2, 1, 3)
                .reshape(n * s, f, self.dim)
            )
            tokens = temporal(tokens + self.pos_temporal[None, :, :], cond_tp)
            tokens = (
                tokens.reshape(n, s, f, self.dim)
                .transpose(0, 2, 1, 3)
                .reshape(n * f, s, self.dim)
            )
        shift, scale = np.split(self.final_ada(self.final_act(cond_sp)), 2, axis=-1)
        tokens = self.final_norm(tokens) * (1.0 + scale[:, None, :]) + shift[:, None, :]
        return self.unpatchify(self.final_proj(tokens), n)
