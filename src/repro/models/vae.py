"""Toy VAE for latent-space benchmarks (BED, CHUR, IMG, SDM, DiT, Latte).

The paper's latent-diffusion benchmarks denoise in a VAE latent space and
decode the final latent to pixels only once, so the autoencoder contributes
negligibly to the accelerator study.  We therefore provide a small
convolutional encoder/decoder pair: it gives the metrics pipeline
(Table II proxies) real pixel-space outputs and gives the examples an
end-to-end text-to-image-like flow, without pretending to be a trained KL-VAE.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Conv2d, GroupNorm, Module, SiLU, Upsample

__all__ = ["ToyVAE"]


class ToyVAE(Module):
    """4x-downsampling convolutional autoencoder."""

    def __init__(
        self,
        image_channels: int = 3,
        latent_channels: int = 4,
        hidden: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.image_channels = image_channels
        self.latent_channels = latent_channels
        self.enc1 = Conv2d(image_channels, hidden, 3, stride=2, padding=1, rng=rng)
        self.enc_act = SiLU()
        self.enc2 = Conv2d(hidden, latent_channels, 3, stride=2, padding=1, rng=rng)
        self.dec1 = Conv2d(latent_channels, hidden, 3, padding=1, rng=rng)
        self.dec_norm = GroupNorm(4, hidden)
        self.dec_act = SiLU()
        self.up1 = Upsample(hidden, rng=rng)
        self.up2 = Upsample(hidden, rng=rng)
        self.dec_out = Conv2d(hidden, image_channels, 3, padding=1, rng=rng)

    def encode(self, images: np.ndarray) -> np.ndarray:
        return self.enc2(self.enc_act(self.enc1(images)))

    def decode(self, latents: np.ndarray) -> np.ndarray:
        h = self.dec_act(self.dec_norm(self.dec1(latents)))
        h = self.up2(self.up1(h))
        return np.tanh(self.dec_out(h))

    def forward(self, images: np.ndarray) -> np.ndarray:
        return self.decode(self.encode(images))
