"""Denoising models for the Table I benchmark suite."""

from .blocks import AttentionBlock, DiTBlock, ResNetBlock, TransformerBlock
from .dit import DiT
from .latte import Latte
from .text_encoder import ToyTextEncoder
from .unet import SpatialTransformer, UNet
from .vae import ToyVAE
from .zoo import (
    CONTEXT_DIM,
    CONTEXT_TOKENS,
    NUM_CLASSES,
    build_conditional_unet,
    build_ddpm_unet,
    build_dit,
    build_latent_unet,
    build_latte,
    build_text_encoder,
    build_vae,
)

__all__ = [
    "ResNetBlock",
    "AttentionBlock",
    "TransformerBlock",
    "DiTBlock",
    "UNet",
    "SpatialTransformer",
    "DiT",
    "Latte",
    "ToyVAE",
    "ToyTextEncoder",
    "build_ddpm_unet",
    "build_latent_unet",
    "build_conditional_unet",
    "build_dit",
    "build_latte",
    "build_vae",
    "build_text_encoder",
    "NUM_CLASSES",
    "CONTEXT_DIM",
    "CONTEXT_TOKENS",
]
