"""Building blocks of the Table I denoising models (paper Fig. 2).

Four block families appear across the seven benchmarks:

* :class:`ResNetBlock` - GN / SiLU / Conv with a timestep-embedding branch
  (DDPM and all LDM UNets).
* :class:`AttentionBlock` - GN + self attention over spatial tokens (DDPM,
  unconditional LDMs).
* :class:`TransformerBlock` - LN / self-attn / cross-attn / GeLU-MLP, the
  "Conditional Latent Diffusion Transformer Block" used by IMG and SDM; the
  cross-attention context is constant across time steps, which Ditto exploits.
* :class:`DiTBlock` - adaLN-modulated transformer block (DiT, Latte) whose
  scale/shift/gate parameters come from a SiLU+FC over the conditioning
  embedding.

Each block family deliberately mixes *different* non-linear functions (SiLU +
GroupNorm vs GeLU + LayerNorm + Softmax) because Defo's advantage over
Cambricon-D's sign-mask dataflow (which only handles SiLU/GN) depends on this
diversity - see paper Sections IV-B and VI-B.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import (
    Attention,
    Conv2d,
    GELU,
    GroupNorm,
    Identity,
    LayerNorm,
    Linear,
    Module,
    SiLU,
)

__all__ = ["ResNetBlock", "AttentionBlock", "TransformerBlock", "DiTBlock"]


def _groups_for(channels: int) -> int:
    """Largest group count <= 8 that divides ``channels``."""
    for groups in (8, 4, 2, 1):
        if channels % groups == 0:
            return groups
    return 1


class ResNetBlock(Module):
    """DDPM/LDM residual block with timestep conditioning."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        emb_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.norm1 = GroupNorm(_groups_for(in_channels), in_channels)
        self.act1 = SiLU()
        self.conv1 = Conv2d(in_channels, out_channels, 3, padding=1, rng=rng)
        self.emb_act = SiLU()
        self.emb_proj = Linear(emb_dim, out_channels, rng=rng)
        self.norm2 = GroupNorm(_groups_for(out_channels), out_channels)
        self.act2 = SiLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, padding=1, rng=rng)
        if in_channels != out_channels:
            self.skip = Conv2d(in_channels, out_channels, 1, rng=rng)
        else:
            self.skip = Identity()

    def forward(self, x: np.ndarray, emb: np.ndarray) -> np.ndarray:
        h = self.conv1(self.act1(self.norm1(x)))
        h = h + self.emb_proj(self.emb_act(emb))[:, :, None, None]
        h = self.conv2(self.act2(self.norm2(h)))
        return h + self.skip(x)


class AttentionBlock(Module):
    """GroupNorm + self attention over flattened spatial positions."""

    def __init__(
        self,
        channels: int,
        num_heads: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.channels = channels
        self.norm = GroupNorm(_groups_for(channels), channels)
        self.attn = Attention(channels, num_heads=num_heads, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        tokens = self.norm(x).reshape(n, c, h * w).transpose(0, 2, 1)
        out = self.attn(tokens)
        return x + out.transpose(0, 2, 1).reshape(n, c, h, w)


class TransformerBlock(Module):
    """Conditional latent-diffusion transformer block (Fig. 2, 3rd column).

    ``context=None`` downgrades the cross-attention to a second
    self-attention, which lets the same block serve unconditional models.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int = 2,
        context_dim: Optional[int] = None,
        mlp_ratio: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.norm1 = LayerNorm(dim)
        self.attn1 = Attention(dim, num_heads=num_heads, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.attn2 = Attention(dim, num_heads=num_heads, context_dim=context_dim, rng=rng)
        self.norm3 = LayerNorm(dim)
        self.ff1 = Linear(dim, dim * mlp_ratio, rng=rng)
        self.ff_act = GELU()
        self.ff2 = Linear(dim * mlp_ratio, dim, rng=rng)

    def forward(self, x: np.ndarray, context: Optional[np.ndarray] = None) -> np.ndarray:
        x = x + self.attn1(self.norm1(x))
        x = x + self.attn2(self.norm2(x), context=context)
        return x + self.ff2(self.ff_act(self.ff1(self.norm3(x))))


class DiTBlock(Module):
    """adaLN-Zero transformer block of DiT / Latte (Fig. 2, right column)."""

    def __init__(
        self,
        dim: int,
        num_heads: int = 2,
        mlp_ratio: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.ada_act = SiLU()
        # Produces shift/scale/gate for both the attention and MLP branches.
        self.ada_proj = Linear(dim, 6 * dim, rng=rng)
        self.norm1 = LayerNorm(dim, affine=False)
        self.attn = Attention(dim, num_heads=num_heads, rng=rng)
        self.norm2 = LayerNorm(dim, affine=False)
        self.mlp1 = Linear(dim, dim * mlp_ratio, rng=rng)
        self.mlp_act = GELU()
        self.mlp2 = Linear(dim * mlp_ratio, dim, rng=rng)

    @staticmethod
    def _modulate(x: np.ndarray, shift: np.ndarray, scale: np.ndarray) -> np.ndarray:
        return x * (1.0 + scale[:, None, :]) + shift[:, None, :]

    def forward(self, x: np.ndarray, cond: np.ndarray) -> np.ndarray:
        params = self.ada_proj(self.ada_act(cond))
        (
            shift_msa,
            scale_msa,
            gate_msa,
            shift_mlp,
            scale_mlp,
            gate_mlp,
        ) = np.split(params, 6, axis=-1)
        h = self._modulate(self.norm1(x), shift_msa, scale_msa)
        x = x + gate_msa[:, None, :] * self.attn(h)
        h = self._modulate(self.norm2(x), shift_mlp, scale_mlp)
        return x + gate_mlp[:, None, :] * self.mlp2(self.mlp_act(self.mlp1(h)))
