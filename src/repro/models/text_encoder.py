"""Toy text encoder providing cross-attention context for SDM.

Stable Diffusion conditions on frozen CLIP text embeddings; only two of their
properties matter to Ditto: (1) the context is a ``(tokens, dim)`` sequence
consumed by cross attention, and (2) it is *constant across time steps*, so
the projected K'/V' behave like weights (paper Section IV-A).  A hash-based
tokenizer plus one transformer encoder block reproduces both properties.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import LayerNorm, Module, Parameter
from ..nn.functional import sinusoidal_embedding
from .blocks import TransformerBlock

__all__ = ["ToyTextEncoder"]


class ToyTextEncoder(Module):
    """Deterministic prompt -> ``(batch, max_tokens, dim)`` context encoder."""

    def __init__(
        self,
        dim: int = 16,
        vocab_size: int = 256,
        max_tokens: int = 8,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.vocab_size = vocab_size
        self.max_tokens = max_tokens
        self.table = Parameter(rng.normal(0.0, 0.5, size=(vocab_size, dim)))
        self.pos = sinusoidal_embedding(np.arange(max_tokens), dim)
        self.block = TransformerBlock(dim, num_heads=2, rng=rng)
        self.final_norm = LayerNorm(dim)

    def tokenize(self, prompt: str) -> np.ndarray:
        """Stable hash-based tokenization, padded/truncated to max_tokens."""
        words = prompt.lower().split()
        ids = [(sum(ord(ch) * (i + 1) for i, ch in enumerate(w)) % (self.vocab_size - 1)) + 1
               for w in words]
        ids = ids[: self.max_tokens]
        ids += [0] * (self.max_tokens - len(ids))
        return np.asarray(ids, dtype=np.int64)

    def encode(self, prompts: Sequence[str]) -> np.ndarray:
        token_ids = np.stack([self.tokenize(p) for p in prompts])
        emb = self.table.data[token_ids] + self.pos[None, :, :]
        return self.final_norm(self.block(emb))

    def forward(self, prompts: Sequence[str]) -> np.ndarray:
        return self.encode(prompts)
