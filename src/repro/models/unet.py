"""Configurable UNet denoiser covering DDPM, BED/CHUR, IMG and SDM.

One parameterized implementation covers the four UNet-family benchmarks of
Table I:

* ``block_type='attention'`` + pixel input -> DDPM (ResNet + Attention
  blocks, Fig. 2 left).
* ``block_type='attention'`` + latent input -> BED / CHUR (unconditional
  latent diffusion).
* ``block_type='transformer'`` + ``context_dim`` -> IMG / SDM (conditional
  latent diffusion with cross attention; the Fig. 2 third-column block).

Layer names follow the paper's figures: the stem conv is ``conv_in`` and the
decoder skip-merge convs appear as ``up.<level>.<block>.skip`` in the module
tree, matching the ``conv-in`` / ``up.0.0.skip`` layers analysed in Fig. 3/4.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import (
    Conv2d,
    Downsample,
    GroupNorm,
    LabelEmbedding,
    Module,
    ModuleList,
    SiLU,
    TimestepEmbedding,
    Upsample,
)
from .blocks import AttentionBlock, ResNetBlock, TransformerBlock, _groups_for

__all__ = ["SpatialTransformer", "UNet"]


class SpatialTransformer(Module):
    """LDM-style wrapper: GN + 1x1 in/out projections around token blocks."""

    def __init__(
        self,
        channels: int,
        num_heads: int = 2,
        depth: int = 1,
        context_dim: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.channels = channels
        self.norm = GroupNorm(_groups_for(channels), channels)
        self.proj_in = Conv2d(channels, channels, 1, rng=rng)
        self.blocks = ModuleList(
            TransformerBlock(channels, num_heads=num_heads, context_dim=context_dim, rng=rng)
            for _ in range(depth)
        )
        self.proj_out = Conv2d(channels, channels, 1, rng=rng)

    def forward(self, x: np.ndarray, context: Optional[np.ndarray] = None) -> np.ndarray:
        n, c, h, w = x.shape
        tokens = self.proj_in(self.norm(x)).reshape(n, c, h * w).transpose(0, 2, 1)
        for block in self.blocks:
            tokens = block(tokens, context=context)
        out = tokens.transpose(0, 2, 1).reshape(n, c, h, w)
        return x + self.proj_out(out)


class _DownLevel(Module):
    def __init__(self) -> None:
        super().__init__()
        self.res = ModuleList()
        self.attn = ModuleList()
        self.downsample = None


class _UpLevel(Module):
    def __init__(self) -> None:
        super().__init__()
        self.res = ModuleList()
        self.attn = ModuleList()
        self.upsample = None


class UNet(Module):
    """Denoising UNet; ``forward(x, t, context=None, y=None) -> eps``."""

    def __init__(
        self,
        in_channels: int = 3,
        base_channels: int = 16,
        channel_mults: Sequence[int] = (1, 2),
        num_res_blocks: int = 1,
        attention_levels: Sequence[int] = (1,),
        block_type: str = "attention",
        context_dim: Optional[int] = None,
        num_classes: Optional[int] = None,
        num_heads: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if block_type not in ("attention", "transformer", "none"):
            raise ValueError(f"unknown block_type {block_type!r}")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.base_channels = base_channels
        self.block_type = block_type
        self.context_dim = context_dim
        emb_dim = base_channels * 2
        self.time_embed = TimestepEmbedding(base_channels, emb_dim, rng=rng)
        self.label_embed = (
            LabelEmbedding(num_classes, emb_dim, rng=rng) if num_classes else None
        )
        self.conv_in = Conv2d(in_channels, base_channels, 3, padding=1, rng=rng)

        def make_attn(channels: int) -> Module:
            if block_type == "transformer":
                return SpatialTransformer(
                    channels, num_heads=num_heads, context_dim=context_dim, rng=rng
                )
            return AttentionBlock(channels, num_heads=num_heads, rng=rng)

        attention_levels = set(attention_levels)
        channels = [base_channels * m for m in channel_mults]

        # -- encoder --------------------------------------------------------
        self.down = ModuleList()
        skip_channels = [base_channels]
        current = base_channels
        for level, out_ch in enumerate(channels):
            stage = _DownLevel()
            for _ in range(num_res_blocks):
                stage.res.append(ResNetBlock(current, out_ch, emb_dim, rng=rng))
                current = out_ch
                if level in attention_levels and block_type != "none":
                    stage.attn.append(make_attn(current))
                skip_channels.append(current)
            if level != len(channels) - 1:
                stage.downsample = Downsample(current, rng=rng)
                skip_channels.append(current)
            self.down.append(stage)

        # -- bottleneck -------------------------------------------------------
        self.mid_res1 = ResNetBlock(current, current, emb_dim, rng=rng)
        self.mid_attn = make_attn(current) if block_type != "none" else None
        self.mid_res2 = ResNetBlock(current, current, emb_dim, rng=rng)

        # -- decoder ----------------------------------------------------------
        self.up = ModuleList()
        for level in reversed(range(len(channels))):
            stage = _UpLevel()
            out_ch = channels[level]
            for _ in range(num_res_blocks + 1):
                skip = skip_channels.pop()
                stage.res.append(ResNetBlock(current + skip, out_ch, emb_dim, rng=rng))
                current = out_ch
                if level in attention_levels and block_type != "none":
                    stage.attn.append(make_attn(current))
            if level != 0:
                stage.upsample = Upsample(current, rng=rng)
            self.up.append(stage)

        self.out_norm = GroupNorm(_groups_for(current), current)
        self.out_act = SiLU()
        self.conv_out = Conv2d(current, in_channels, 3, padding=1, rng=rng)

    # ------------------------------------------------------------------
    def _embedding(self, t: np.ndarray, y: Optional[np.ndarray]) -> np.ndarray:
        emb = self.time_embed(t)
        if self.label_embed is not None:
            if y is None:
                raise ValueError("class-conditional UNet requires labels y")
            emb = emb + self.label_embed(y)
        return emb

    def forward(
        self,
        x: np.ndarray,
        t: np.ndarray,
        context: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        emb = self._embedding(t, y)
        h = self.conv_in(x)
        skips = [h]
        for stage in self.down:
            attn_iter = iter(stage.attn)
            for res in stage.res:
                h = res(h, emb)
                if len(stage.attn):
                    h = self._apply_attn(next(attn_iter), h, context)
                skips.append(h)
            if stage.downsample is not None:
                h = stage.downsample(h)
                skips.append(h)
        h = self.mid_res1(h, emb)
        if self.mid_attn is not None:
            h = self._apply_attn(self.mid_attn, h, context)
        h = self.mid_res2(h, emb)
        for stage in self.up:
            attn_iter = iter(stage.attn)
            for res in stage.res:
                h = res(np.concatenate([h, skips.pop()], axis=1), emb)
                if len(stage.attn):
                    h = self._apply_attn(next(attn_iter), h, context)
            if stage.upsample is not None:
                h = stage.upsample(h)
        return self.conv_out(self.out_act(self.out_norm(h)))

    def _apply_attn(
        self, block: Module, h: np.ndarray, context: Optional[np.ndarray]
    ) -> np.ndarray:
        if isinstance(block, SpatialTransformer):
            return block(h, context=context)
        return block(h)
