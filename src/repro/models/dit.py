"""Diffusion Transformer (DiT) denoiser - the DiT-XL/2 benchmark, scaled.

A faithful miniature of Peebles & Xie's DiT: patchify -> fixed sin/cos
positional embedding -> stack of adaLN-Zero :class:`DiTBlock`s -> adaLN final
layer -> unpatchify.  Unlike the UNets there are *no* ResNet blocks and no
SiLU/GroupNorm in the token path - the non-linearities are LayerNorm, GeLU
and Softmax, which is precisely why Cambricon-D's sign-mask dataflow cannot
remove the temporal-difference memory overhead here while Defo can
(paper Sections IV-B, VI-B).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import (
    LabelEmbedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    PatchEmbed,
    SiLU,
    TimestepEmbedding,
)
from ..nn.functional import sinusoidal_embedding
from .blocks import DiTBlock

__all__ = ["DiT"]


def _positional_grid(num_tokens: int, dim: int) -> np.ndarray:
    """Fixed sinusoidal position table for a flattened patch grid."""
    return sinusoidal_embedding(np.arange(num_tokens), dim)


class DiT(Module):
    """``forward(x, t, y) -> eps`` for latent inputs ``(N, C, H, W)``."""

    def __init__(
        self,
        in_channels: int = 4,
        input_size: int = 8,
        patch: int = 2,
        dim: int = 32,
        depth: int = 2,
        num_heads: int = 2,
        num_classes: int = 10,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if input_size % patch:
            raise ValueError(f"input_size {input_size} not divisible by patch {patch}")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.input_size = input_size
        self.patch = patch
        self.dim = dim
        self.grid = input_size // patch
        self.num_tokens = self.grid * self.grid
        self.patch_embed = PatchEmbed(in_channels, dim, patch, rng=rng)
        self.pos_embed = _positional_grid(self.num_tokens, dim)
        self.time_embed = TimestepEmbedding(dim, dim, rng=rng)
        self.label_embed = LabelEmbedding(num_classes, dim, rng=rng)
        self.blocks = ModuleList(
            DiTBlock(dim, num_heads=num_heads, rng=rng) for _ in range(depth)
        )
        self.final_norm = LayerNorm(dim, affine=False)
        self.final_act = SiLU()
        self.final_ada = Linear(dim, 2 * dim, rng=rng)
        self.final_proj = Linear(dim, patch * patch * in_channels, rng=rng)

    def unpatchify(self, tokens: np.ndarray) -> np.ndarray:
        n = tokens.shape[0]
        p, g, c = self.patch, self.grid, self.in_channels
        x = tokens.reshape(n, g, g, p, p, c)
        return x.transpose(0, 5, 1, 3, 2, 4).reshape(n, c, g * p, g * p)

    def forward(self, x: np.ndarray, t: np.ndarray, y: np.ndarray) -> np.ndarray:
        tokens = self.patch_embed(x) + self.pos_embed[None, :, :]
        cond = self.time_embed(t) + self.label_embed(y)
        for block in self.blocks:
            tokens = block(tokens, cond)
        shift, scale = np.split(self.final_ada(self.final_act(cond)), 2, axis=-1)
        tokens = self.final_norm(tokens) * (1.0 + scale[:, None, :]) + shift[:, None, :]
        return self.unpatchify(self.final_proj(tokens))
