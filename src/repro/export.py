"""JSON export of traces, Defo reports, and hardware reports.

Gives studies durable, diffable artifacts: a rich trace collapses to
per-layer-step operand statistics, a hardware report to its cycle/energy
breakdown.  Everything is plain JSON-serializable dicts, so results can be
archived, compared across runs, or post-processed outside this library.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Union

from .core.bitwidth import BitWidthStats
from .core.defo import DefoReport
from .core.trace import RichLayerStep, RichTrace
from .hw.report import HardwareReport

__all__ = [
    "stats_to_dict",
    "rich_step_to_dict",
    "trace_to_dict",
    "hardware_report_to_dict",
    "defo_report_to_dict",
    "dump_json",
    "dump_pickle",
    "load_pickle",
]

PathLike = Union[str, Path]


def stats_to_dict(stats: BitWidthStats) -> Dict[str, int]:
    return {
        "total": stats.total,
        "zero": stats.zero,
        "low": stats.low,
        "high": stats.high,
    }


def rich_step_to_dict(step: RichLayerStep) -> Dict[str, object]:
    return {
        "step_index": step.step_index,
        "layer_name": step.layer_name,
        "kind": step.kind,
        "macs": step.macs,
        "in_elems": step.in_elems,
        "out_elems": step.out_elems,
        "weight_elems": step.weight_elems,
        "data_elems": step.data_elems,
        "stats_dense": stats_to_dict(step.stats_dense),
        "stats_spatial": stats_to_dict(step.stats_spatial),
        "stats_temporal": (
            None if step.stats_temporal is None else stats_to_dict(step.stats_temporal)
        ),
        "sub_ops_temporal": step.sub_ops_temporal,
        "vpu_elems": step.vpu_elems,
        "nonlinear_after": step.nonlinear_after,
        "chained_input": step.chained_input,
        "producer_kind": step.producer_kind,
        "executed_mode": str(step.executed_mode),
    }


def trace_to_dict(trace: RichTrace) -> Dict[str, object]:
    return {
        "num_steps": trace.num_steps(),
        "num_records": len(trace),
        "total_macs": trace.total_macs(),
        "records": [rich_step_to_dict(step) for step in trace],
    }


def hardware_report_to_dict(report: HardwareReport) -> Dict[str, object]:
    return {
        "hardware": report.hardware,
        "total_cycles": report.total_cycles,
        "compute_cycles": report.compute_cycles,
        "stall_cycles": report.stall_cycles,
        "total_energy_pj": report.total_energy_pj,
        "energy_breakdown_pj": report.energy_breakdown_pj(),
        "total_bytes": report.total_bytes,
        "cycles_by_step": {
            str(step): cycles for step, cycles in report.cycles_by_step().items()
        },
    }


def defo_report_to_dict(report: DefoReport) -> Dict[str, object]:
    return {
        "plus": report.plus,
        "dynamic": report.dynamic,
        "accuracy": report.accuracy,
        "changed_fraction": report.changed_fraction,
        "decisions": {name: str(mode) for name, mode in report.decisions.items()},
        "cycle_act": dict(report.cycle_act),
        "cycle_diff": dict(report.cycle_diff),
        "changed_layers": list(report.changed_layers),
    }


def dump_json(payload: Dict[str, object], path: PathLike) -> None:
    """Write a payload produced by the ``*_to_dict`` helpers to disk."""
    with open(str(path), "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def dump_pickle(obj: object, path: PathLike) -> None:
    """Atomically pickle ``obj`` to ``path`` (parent dirs created).

    Used by the runtime result cache: write-to-temp + ``os.replace`` means a
    concurrent reader never observes a half-written entry, and two writers
    racing on the same key both leave a complete pickle behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, str(path))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_pickle(path: PathLike) -> object:
    """Load a pickle written by :func:`dump_pickle`."""
    with open(str(path), "rb") as fh:
        return pickle.load(fh)
