"""Layer-step execution traces - the interface between algorithm and hardware.

When a quantized model runs under the Ditto engine, every linear-layer
execution at every time step appends one :class:`RichLayerStep` to the active
:class:`TraceRecorder`.  Because every Ditto execution mode (dense, temporal
difference, spatial difference) reconstructs the *identical* quantized
result, a single instrumented generation run can record the operand
composition of all three modes at once; policies (Defo, Defo+, ideal oracle,
Cambricon-D software, ...) and hardware models are then evaluated as pure
post-processing over the rich trace.  This mirrors the paper's methodology of
hooking PyTorch layers and feeding observed value statistics into the
Sparse-DySta simulator.

Storage is columnar (structure-of-arrays): every trace keeps one numpy-backed
column per scalar field plus interned string tables for layer / kind /
producer names, so post-processing (BOPs, Defo, the hardware cycle models)
runs as vectorized column arithmetic instead of per-record Python loops, and
pickled traces are a handful of flat arrays instead of tens of thousands of
dataclass objects.  The original record dataclasses survive as *views*:
``trace[i]``, ``trace.steps`` and iteration materialize real
:class:`RichLayerStep` / :class:`LayerStep` instances on demand, so existing
record-at-a-time consumers keep working unchanged.

:class:`LayerStep` is the narrow, hardware-facing view: one chosen mode, its
operand stats, and its byte traffic.  :func:`derive_layer_step` lowers a rich
record into it; :meth:`RichTrace.lower_modes` is the vectorized equivalent
over a whole trace.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .bitwidth import BitWidthStats
from .modes import ExecutionMode

__all__ = [
    "ACT_BYTES",
    "STATE_BYTES",
    "SIGN_MASK_KINDS",
    "LayerStep",
    "RichLayerStep",
    "derive_layer_step",
    "Trace",
    "RichTrace",
    "TraceRecorder",
    "record_step",
]

# Byte widths used by the traffic model: activations and weights travel as
# 8-bit quantized values.  The carried-over output state of temporal
# difference processing is held as requantized 8-bit values in the activation
# buffers (partial sums stay 32-bit only inside the PE accumulation buffer,
# paper Section V-C), so it streams at 1 byte per element like activations.
ACT_BYTES = 1
STATE_BYTES = 1

# Stable integer ids for ExecutionMode columns (DENSE=0, TEMPORAL=1,
# SPATIAL=2 - the enum declaration order).
MODES: Tuple[ExecutionMode, ...] = tuple(ExecutionMode)
MODE_ID: Dict[ExecutionMode, int] = {mode: i for i, mode in enumerate(MODES)}
DENSE_ID = MODE_ID[ExecutionMode.DENSE]
TEMPORAL_ID = MODE_ID[ExecutionMode.TEMPORAL]
SPATIAL_ID = MODE_ID[ExecutionMode.SPATIAL]


@dataclass
class LayerStep:
    """One linear-layer execution at one time step, in one chosen mode."""

    step_index: int
    layer_name: str
    kind: str  # 'conv' | 'fc' | 'attn_qk' | 'attn_pv'
    mode: ExecutionMode
    macs: int  # multiply-accumulates of the layer operation
    data_elems: int  # multiplier-operand elements (stats domain)
    stats: BitWidthStats  # composition of those elements
    bytes_in: int  # current-step input activation traffic
    bytes_weight: int  # weight traffic
    bytes_out: int  # output activation traffic
    bytes_extra: int  # prev-step input/output traffic added by temporal mode
    vpu_elems: int  # elements the Vector Processing Unit touches afterwards
    sub_ops: int = 1  # attention temporal mode runs 2 sub-operations
    nonlinear_after: bool = True
    chained_input: bool = False  # producer is linear -> difference reusable

    @property
    def bytes_total(self) -> int:
        return self.bytes_in + self.bytes_weight + self.bytes_out + self.bytes_extra

    def with_mode(self, mode: ExecutionMode, **changes) -> "LayerStep":
        return replace(self, mode=mode, **changes)


@dataclass
class RichLayerStep:
    """One linear-layer execution with the operand stats of *every* mode."""

    step_index: int
    layer_name: str
    kind: str
    macs: int
    in_elems: int  # true input-tensor elements (traffic domain)
    out_elems: int
    weight_elems: int
    data_elems: int  # stats-domain elements
    stats_dense: BitWidthStats
    stats_spatial: BitWidthStats
    stats_temporal: Optional[BitWidthStats]  # None on the first step
    sub_ops_temporal: int = 1
    vpu_elems: int = 0
    nonlinear_after: bool = True
    chained_input: bool = False
    producer_kind: str = "other"  # 'linear' | 'silu' | 'groupnorm' | ...
    executed_mode: ExecutionMode = ExecutionMode.DENSE

    @property
    def has_temporal(self) -> bool:
        return self.stats_temporal is not None


# Non-linearities whose difference can be reconstructed by Cambricon-D's
# sign-mask dataflow without re-reading the previous step's input.
SIGN_MASK_KINDS = ("silu", "groupnorm")


def _bypasses_prev_input(rich: RichLayerStep, bypass_style: str) -> bool:
    """Whether the previous-step input reload can be skipped.

    * ``'chained'`` - Defo's static dependency analysis: the producer is a
      linear layer, so its difference output feeds this layer directly.
    * ``'sign_mask'`` - Cambricon-D: only SiLU / GroupNorm producers qualify.
    * ``'both'`` - hardware applying both techniques (paper Fig. 15).
    * ``'none'`` - naive temporal difference processing.
    """
    if bypass_style == "chained":
        return rich.chained_input
    if bypass_style == "sign_mask":
        return rich.producer_kind in SIGN_MASK_KINDS
    if bypass_style == "both":
        return rich.chained_input or rich.producer_kind in SIGN_MASK_KINDS
    if bypass_style == "none":
        return False
    raise ValueError(f"unknown bypass style {bypass_style!r}")


def derive_layer_step(
    rich: RichLayerStep,
    mode: ExecutionMode,
    bypass_style: str = "chained",
) -> LayerStep:
    """Lower a rich record to the hardware-facing view for ``mode``.

    Falls back to DENSE when temporal stats do not exist yet (first step).
    The byte-traffic model charges temporal mode for loading the previous
    step's input (skipped when the bypass style applies), storing the
    current input for the next step, and a load + store of the partial-sum
    state.
    """
    if mode is ExecutionMode.TEMPORAL and not rich.has_temporal:
        mode = ExecutionMode.DENSE
    bytes_in = rich.in_elems * ACT_BYTES
    bytes_weight = rich.weight_elems * ACT_BYTES
    bytes_out = rich.out_elems * ACT_BYTES
    if mode is ExecutionMode.TEMPORAL:
        stats = rich.stats_temporal
        sub_ops = rich.sub_ops_temporal
        prev_in = (
            0
            if _bypasses_prev_input(rich, bypass_style)
            else rich.in_elems * ACT_BYTES
        )
        bytes_extra = (
            prev_in
            + rich.in_elems * ACT_BYTES  # store current input for next step
            + 2 * rich.out_elems * STATE_BYTES  # load + store partial state
        )
    elif mode is ExecutionMode.SPATIAL:
        stats = rich.stats_spatial
        sub_ops = 1
        bytes_extra = 0
    else:
        stats = rich.stats_dense
        sub_ops = 1
        bytes_extra = 0
    return LayerStep(
        step_index=rich.step_index,
        layer_name=rich.layer_name,
        kind=rich.kind,
        mode=mode,
        macs=rich.macs,
        data_elems=rich.data_elems,
        stats=stats,
        bytes_in=bytes_in,
        bytes_weight=bytes_weight,
        bytes_out=bytes_out,
        bytes_extra=bytes_extra,
        vpu_elems=rich.vpu_elems,
        sub_ops=sub_ops,
        nonlinear_after=rich.nonlinear_after,
        chained_input=rich.chained_input,
    )


class _ColumnarTrace:
    """Structure-of-arrays base shared by :class:`Trace` and :class:`RichTrace`.

    Columns live as plain Python lists while recording (cheap appends) and
    are sealed into flat numpy arrays on first vectorized access or when
    pickled; ``col(name)`` returns the cached array form.  Layer / kind /
    producer names are interned into per-trace string tables, so every
    per-record field is a scalar.
    """

    _INT_FIELDS: Tuple[str, ...] = ()
    _BOOL_FIELDS: Tuple[str, ...] = ()

    def __init__(self, steps: Optional[Sequence] = None) -> None:
        self._cols: Dict[str, list] = {
            name: [] for name in self._INT_FIELDS + self._BOOL_FIELDS
        }
        self._sealed = False
        self._names: List[str] = []
        self._name_ids: Dict[str, int] = {}
        self._kinds: List[str] = []
        self._kind_ids: Dict[str, int] = {}
        self._array_cache: Dict[str, np.ndarray] = {}
        self._view_cache: Optional[list] = None
        if steps:
            for step in steps:
                self.append(step)

    # -- column access ------------------------------------------------------
    def col(self, name: str) -> np.ndarray:
        """The sealed numpy column for ``name`` (int64, bool for flags)."""
        arr = self._array_cache.get(name)
        if arr is None:
            dtype = np.bool_ if name in self._BOOL_FIELDS else np.int64
            arr = np.asarray(self._cols[name], dtype=dtype)
            self._array_cache[name] = arr
        return arr

    def _invalidate(self) -> None:
        self._array_cache.clear()
        self._view_cache = None

    def _ensure_mutable(self) -> None:
        """Convert sealed (array-backed) columns back to appendable lists."""
        if not self._sealed:
            return
        for name, values in self._cols.items():
            if isinstance(values, np.ndarray):
                self._cols[name] = values.tolist()
        self._sealed = False

    def _intern(self, table: List[str], ids: Dict[str, int], value: str) -> int:
        idx = ids.get(value)
        if idx is None:
            idx = len(table)
            ids[value] = idx
            table.append(value)
        return idx

    def _intern_name(self, value: str) -> int:
        return self._intern(self._names, self._name_ids, value)

    def _intern_kind(self, value: str) -> int:
        return self._intern(self._kinds, self._kind_ids, value)

    # -- sequence protocol ---------------------------------------------------
    def __len__(self) -> int:
        values = self._cols["step_index"]
        return len(values)

    def __iter__(self) -> Iterator:
        return iter(self.steps)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.steps[index]
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        return self._view(index)

    @property
    def steps(self) -> list:
        """All records materialized as dataclass views (cached)."""
        if self._view_cache is None:
            self._view_cache = [self._view(i) for i in range(len(self))]
        return self._view_cache

    def _view(self, index: int):
        raise NotImplementedError

    # -- grouping helpers ----------------------------------------------------
    def layer_names(self) -> List[str]:
        """Distinct layer names in first-appearance order."""
        return list(self._names)

    def by_step(self) -> Dict[int, List]:
        grouped: Dict[int, List] = {}
        step_col = self.col("step_index")
        views = self.steps
        for i, view in enumerate(views):
            grouped.setdefault(int(step_col[i]), []).append(view)
        return grouped

    def by_layer(self) -> Dict[str, List]:
        grouped: Dict[str, List] = {}
        layer_col = self.col("layer_id")
        views = self.steps
        for i, view in enumerate(views):
            grouped.setdefault(self._names[layer_col[i]], []).append(view)
        return grouped

    def num_steps(self) -> int:
        if not len(self):
            return 0
        return int(np.unique(self.col("step_index")).size)

    def total_macs(self) -> int:
        return int(self.col("macs").sum())

    # -- persistence ---------------------------------------------------------
    def seal(self) -> None:
        """Seal every column into its compact numpy array form in place.

        Idempotent; called before pickling (and by the result cache) so
        persisted traces are a handful of flat arrays rather than one object
        graph per record.
        """
        for name in self._cols:
            self._cols[name] = self.col(name)
        self._sealed = True

    def __getstate__(self) -> dict:
        self.seal()
        state = dict(self.__dict__)
        state["_array_cache"] = {}
        state["_view_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._array_cache = {}
        self._view_cache = None

    @classmethod
    def _from_columns(
        cls,
        columns: Dict[str, np.ndarray],
        names: List[str],
        kinds: List[str],
    ) -> "_ColumnarTrace":
        trace = cls()
        trace._cols = dict(columns)
        trace._sealed = True
        trace._names = list(names)
        trace._name_ids = {name: i for i, name in enumerate(names)}
        trace._kinds = list(kinds)
        trace._kind_ids = {kind: i for i, kind in enumerate(kinds)}
        return trace


_TRACE_INT_FIELDS = (
    "step_index",
    "layer_id",
    "kind_id",
    "mode",
    "macs",
    "data_elems",
    "st_total",
    "st_zero",
    "st_low",
    "st_high",
    "bytes_in",
    "bytes_weight",
    "bytes_out",
    "bytes_extra",
    "vpu_elems",
    "sub_ops",
)
_TRACE_BOOL_FIELDS = ("nonlinear_after", "chained_input")


class Trace(_ColumnarTrace):
    """Hardware-facing trace: columnar storage of :class:`LayerStep` records."""

    _INT_FIELDS = _TRACE_INT_FIELDS
    _BOOL_FIELDS = _TRACE_BOOL_FIELDS

    def append(self, step: LayerStep) -> None:
        self._ensure_mutable()
        c = self._cols
        c["step_index"].append(step.step_index)
        c["layer_id"].append(self._intern_name(step.layer_name))
        c["kind_id"].append(self._intern_kind(step.kind))
        c["mode"].append(MODE_ID[step.mode])
        c["macs"].append(step.macs)
        c["data_elems"].append(step.data_elems)
        stats = step.stats
        c["st_total"].append(stats.total)
        c["st_zero"].append(stats.zero)
        c["st_low"].append(stats.low)
        c["st_high"].append(stats.high)
        c["bytes_in"].append(step.bytes_in)
        c["bytes_weight"].append(step.bytes_weight)
        c["bytes_out"].append(step.bytes_out)
        c["bytes_extra"].append(step.bytes_extra)
        c["vpu_elems"].append(step.vpu_elems)
        c["sub_ops"].append(step.sub_ops)
        c["nonlinear_after"].append(step.nonlinear_after)
        c["chained_input"].append(step.chained_input)
        self._invalidate()

    def _view(self, index: int) -> LayerStep:
        c = self._cols
        return LayerStep(
            step_index=int(c["step_index"][index]),
            layer_name=self._names[int(c["layer_id"][index])],
            kind=self._kinds[int(c["kind_id"][index])],
            mode=MODES[int(c["mode"][index])],
            macs=int(c["macs"][index]),
            data_elems=int(c["data_elems"][index]),
            stats=BitWidthStats(
                total=int(c["st_total"][index]),
                zero=int(c["st_zero"][index]),
                low=int(c["st_low"][index]),
                high=int(c["st_high"][index]),
            ),
            bytes_in=int(c["bytes_in"][index]),
            bytes_weight=int(c["bytes_weight"][index]),
            bytes_out=int(c["bytes_out"][index]),
            bytes_extra=int(c["bytes_extra"][index]),
            vpu_elems=int(c["vpu_elems"][index]),
            sub_ops=int(c["sub_ops"][index]),
            nonlinear_after=bool(c["nonlinear_after"][index]),
            chained_input=bool(c["chained_input"][index]),
        )

    def modes(self) -> np.ndarray:
        """Per-record execution-mode ids (see :data:`MODE_ID`)."""
        return self.col("mode")

    def bytes_total(self) -> np.ndarray:
        """Per-record total byte traffic as one vectorized column."""
        return (
            self.col("bytes_in")
            + self.col("bytes_weight")
            + self.col("bytes_out")
            + self.col("bytes_extra")
        )

    def total_bytes(self) -> int:
        return int(self.bytes_total().sum())


_RICH_INT_FIELDS = (
    "step_index",
    "layer_id",
    "kind_id",
    "macs",
    "in_elems",
    "out_elems",
    "weight_elems",
    "data_elems",
    "d_total",
    "d_zero",
    "d_low",
    "d_high",
    "s_total",
    "s_zero",
    "s_low",
    "s_high",
    "t_total",
    "t_zero",
    "t_low",
    "t_high",
    "sub_ops_temporal",
    "vpu_elems",
    "producer_id",
    "executed_mode",
)
_RICH_BOOL_FIELDS = ("has_temporal", "nonlinear_after", "chained_input")


class RichTrace(_ColumnarTrace):
    """Algorithm-level trace: columnar storage of :class:`RichLayerStep`."""

    _INT_FIELDS = _RICH_INT_FIELDS
    _BOOL_FIELDS = _RICH_BOOL_FIELDS

    def __init__(self, steps: Optional[Sequence[RichLayerStep]] = None) -> None:
        self._producers: List[str] = []
        self._producer_ids: Dict[str, int] = {}
        super().__init__(steps)

    def append(self, rich: RichLayerStep) -> None:
        self._ensure_mutable()
        c = self._cols
        c["step_index"].append(rich.step_index)
        c["layer_id"].append(self._intern_name(rich.layer_name))
        c["kind_id"].append(self._intern_kind(rich.kind))
        c["macs"].append(rich.macs)
        c["in_elems"].append(rich.in_elems)
        c["out_elems"].append(rich.out_elems)
        c["weight_elems"].append(rich.weight_elems)
        c["data_elems"].append(rich.data_elems)
        dense = rich.stats_dense
        c["d_total"].append(dense.total)
        c["d_zero"].append(dense.zero)
        c["d_low"].append(dense.low)
        c["d_high"].append(dense.high)
        spatial = rich.stats_spatial
        c["s_total"].append(spatial.total)
        c["s_zero"].append(spatial.zero)
        c["s_low"].append(spatial.low)
        c["s_high"].append(spatial.high)
        temporal = rich.stats_temporal
        c["has_temporal"].append(temporal is not None)
        c["t_total"].append(0 if temporal is None else temporal.total)
        c["t_zero"].append(0 if temporal is None else temporal.zero)
        c["t_low"].append(0 if temporal is None else temporal.low)
        c["t_high"].append(0 if temporal is None else temporal.high)
        c["sub_ops_temporal"].append(rich.sub_ops_temporal)
        c["vpu_elems"].append(rich.vpu_elems)
        c["nonlinear_after"].append(rich.nonlinear_after)
        c["chained_input"].append(rich.chained_input)
        c["producer_id"].append(
            self._intern(self._producers, self._producer_ids, rich.producer_kind)
        )
        c["executed_mode"].append(MODE_ID[rich.executed_mode])
        self._invalidate()

    def _view(self, index: int) -> RichLayerStep:
        c = self._cols
        temporal = None
        if c["has_temporal"][index]:
            temporal = BitWidthStats(
                total=int(c["t_total"][index]),
                zero=int(c["t_zero"][index]),
                low=int(c["t_low"][index]),
                high=int(c["t_high"][index]),
            )
        return RichLayerStep(
            step_index=int(c["step_index"][index]),
            layer_name=self._names[int(c["layer_id"][index])],
            kind=self._kinds[int(c["kind_id"][index])],
            macs=int(c["macs"][index]),
            in_elems=int(c["in_elems"][index]),
            out_elems=int(c["out_elems"][index]),
            weight_elems=int(c["weight_elems"][index]),
            data_elems=int(c["data_elems"][index]),
            stats_dense=BitWidthStats(
                total=int(c["d_total"][index]),
                zero=int(c["d_zero"][index]),
                low=int(c["d_low"][index]),
                high=int(c["d_high"][index]),
            ),
            stats_spatial=BitWidthStats(
                total=int(c["s_total"][index]),
                zero=int(c["s_zero"][index]),
                low=int(c["s_low"][index]),
                high=int(c["s_high"][index]),
            ),
            stats_temporal=temporal,
            sub_ops_temporal=int(c["sub_ops_temporal"][index]),
            vpu_elems=int(c["vpu_elems"][index]),
            nonlinear_after=bool(c["nonlinear_after"][index]),
            chained_input=bool(c["chained_input"][index]),
            producer_kind=self._producers[int(c["producer_id"][index])],
            executed_mode=MODES[int(c["executed_mode"][index])],
        )

    # -- lowering ------------------------------------------------------------
    def attention_mask(self) -> np.ndarray:
        """Boolean column: records whose kind is an attention matmul."""
        attn_ids = [
            i for i, kind in enumerate(self._kinds) if kind.startswith("attn")
        ]
        if not attn_ids:
            return np.zeros(len(self), dtype=bool)
        return np.isin(self.col("kind_id"), np.asarray(attn_ids, dtype=np.int64))

    def bypass_mask(self, bypass_style: str) -> np.ndarray:
        """Boolean column: records whose prev-input reload can be skipped."""
        if bypass_style == "none":
            return np.zeros(len(self), dtype=bool)
        if bypass_style == "chained":
            return self.col("chained_input")
        sign_ids = [
            self._producer_ids[kind]
            for kind in SIGN_MASK_KINDS
            if kind in self._producer_ids
        ]
        sign = (
            np.isin(self.col("producer_id"), np.asarray(sign_ids, dtype=np.int64))
            if sign_ids
            else np.zeros(len(self), dtype=bool)
        )
        if bypass_style == "sign_mask":
            return sign
        if bypass_style == "both":
            return self.col("chained_input") | sign
        raise ValueError(f"unknown bypass style {bypass_style!r}")

    def lower_modes(
        self, modes: np.ndarray, bypass_style: str = "chained"
    ) -> Trace:
        """Vectorized lowering: one mode id per record (see :data:`MODE_ID`).

        This is :func:`derive_layer_step` applied to the whole trace as
        column arithmetic; records asked for TEMPORAL without temporal stats
        fall back to DENSE exactly like the scalar path.
        """
        modes = np.asarray(modes, dtype=np.int64)
        bypass = self.bypass_mask(bypass_style)  # validates the style
        effective = np.where(
            (modes == TEMPORAL_ID) & ~self.col("has_temporal"), DENSE_ID, modes
        )
        is_temporal = effective == TEMPORAL_ID
        is_spatial = effective == SPATIAL_ID
        in_elems = self.col("in_elems")
        out_elems = self.col("out_elems")
        bytes_in = in_elems * ACT_BYTES
        prev_in = np.where(bypass, 0, bytes_in)
        bytes_extra = np.where(
            is_temporal,
            prev_in + bytes_in + 2 * out_elems * STATE_BYTES,
            0,
        )

        def pick(suffix: str) -> np.ndarray:
            return np.where(
                is_temporal,
                self.col("t_" + suffix),
                np.where(is_spatial, self.col("s_" + suffix), self.col("d_" + suffix)),
            )

        columns = {
            "step_index": self.col("step_index"),
            "layer_id": self.col("layer_id"),
            "kind_id": self.col("kind_id"),
            "mode": effective,
            "macs": self.col("macs"),
            "data_elems": self.col("data_elems"),
            "st_total": pick("total"),
            "st_zero": pick("zero"),
            "st_low": pick("low"),
            "st_high": pick("high"),
            "bytes_in": bytes_in,
            "bytes_weight": self.col("weight_elems") * ACT_BYTES,
            "bytes_out": out_elems * ACT_BYTES,
            "bytes_extra": bytes_extra,
            "vpu_elems": self.col("vpu_elems"),
            "sub_ops": np.where(is_temporal, self.col("sub_ops_temporal"), 1),
            "nonlinear_after": self.col("nonlinear_after"),
            "chained_input": self.col("chained_input"),
        }
        return Trace._from_columns(columns, self._names, self._kinds)

    def lower(self, mode_for, bypass_style: str = "chained") -> Trace:
        """Produce a :class:`Trace` choosing a mode per record.

        ``mode_for(rich) -> ExecutionMode`` decides each record's mode; pass
        e.g. ``lambda r: ExecutionMode.DENSE`` for the ITC baseline or a Defo
        decision table lookup.  The callback sees dataclass views; the actual
        lowering runs vectorized through :meth:`lower_modes`.
        """
        modes = np.fromiter(
            (MODE_ID[mode_for(view)] for view in self.steps),
            dtype=np.int64,
            count=len(self),
        )
        return self.lower_modes(modes, bypass_style=bypass_style)


class TraceRecorder:
    """Thread-local registry collecting :class:`RichLayerStep` records.

    The quantized layers call :func:`record_step`; whoever drives the model
    (the Ditto engine, a test) activates a recorder with
    ``with TraceRecorder() as rec: ...`` and advances ``set_step`` once per
    denoiser invocation.
    """

    _local = threading.local()

    def __init__(self) -> None:
        self.trace = RichTrace()
        self.step_index = 0

    # -- context management ------------------------------------------------
    def __enter__(self) -> "TraceRecorder":
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        self._local.stack.pop()

    @classmethod
    def current(cls) -> Optional["TraceRecorder"]:
        stack = getattr(cls._local, "stack", None)
        return stack[-1] if stack else None

    # -- recording ----------------------------------------------------------
    def set_step(self, step_index: int) -> None:
        self.step_index = step_index

    def record(self, step: RichLayerStep) -> None:
        self.trace.append(step)


def record_step(step: RichLayerStep) -> None:
    """Append ``step`` to the active recorder, if any."""
    recorder = TraceRecorder.current()
    if recorder is not None:
        recorder.record(step)
