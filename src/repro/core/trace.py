"""Layer-step execution traces - the interface between algorithm and hardware.

When a quantized model runs under the Ditto engine, every linear-layer
execution at every time step appends one :class:`RichLayerStep` to the active
:class:`TraceRecorder`.  Because every Ditto execution mode (dense, temporal
difference, spatial difference) reconstructs the *identical* quantized
result, a single instrumented generation run can record the operand
composition of all three modes at once; policies (Defo, Defo+, ideal oracle,
Cambricon-D software, ...) and hardware models are then evaluated as pure
post-processing over the rich trace.  This mirrors the paper's methodology of
hooking PyTorch layers and feeding observed value statistics into the
Sparse-DySta simulator.

:class:`LayerStep` is the narrow, hardware-facing view: one chosen mode, its
operand stats, and its byte traffic.  :func:`derive_layer_step` lowers a rich
record into it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional

from .bitwidth import BitWidthStats
from .modes import ExecutionMode

__all__ = [
    "ACT_BYTES",
    "STATE_BYTES",
    "SIGN_MASK_KINDS",
    "LayerStep",
    "RichLayerStep",
    "derive_layer_step",
    "Trace",
    "RichTrace",
    "TraceRecorder",
    "record_step",
]

# Byte widths used by the traffic model: activations and weights travel as
# 8-bit quantized values.  The carried-over output state of temporal
# difference processing is held as requantized 8-bit values in the activation
# buffers (partial sums stay 32-bit only inside the PE accumulation buffer,
# paper Section V-C), so it streams at 1 byte per element like activations.
ACT_BYTES = 1
STATE_BYTES = 1


@dataclass
class LayerStep:
    """One linear-layer execution at one time step, in one chosen mode."""

    step_index: int
    layer_name: str
    kind: str  # 'conv' | 'fc' | 'attn_qk' | 'attn_pv'
    mode: ExecutionMode
    macs: int  # multiply-accumulates of the layer operation
    data_elems: int  # multiplier-operand elements (stats domain)
    stats: BitWidthStats  # composition of those elements
    bytes_in: int  # current-step input activation traffic
    bytes_weight: int  # weight traffic
    bytes_out: int  # output activation traffic
    bytes_extra: int  # prev-step input/output traffic added by temporal mode
    vpu_elems: int  # elements the Vector Processing Unit touches afterwards
    sub_ops: int = 1  # attention temporal mode runs 2 sub-operations
    nonlinear_after: bool = True
    chained_input: bool = False  # producer is linear -> difference reusable

    @property
    def bytes_total(self) -> int:
        return self.bytes_in + self.bytes_weight + self.bytes_out + self.bytes_extra

    def with_mode(self, mode: ExecutionMode, **changes) -> "LayerStep":
        return replace(self, mode=mode, **changes)


@dataclass
class RichLayerStep:
    """One linear-layer execution with the operand stats of *every* mode."""

    step_index: int
    layer_name: str
    kind: str
    macs: int
    in_elems: int  # true input-tensor elements (traffic domain)
    out_elems: int
    weight_elems: int
    data_elems: int  # stats-domain elements
    stats_dense: BitWidthStats
    stats_spatial: BitWidthStats
    stats_temporal: Optional[BitWidthStats]  # None on the first step
    sub_ops_temporal: int = 1
    vpu_elems: int = 0
    nonlinear_after: bool = True
    chained_input: bool = False
    producer_kind: str = "other"  # 'linear' | 'silu' | 'groupnorm' | ...
    executed_mode: ExecutionMode = ExecutionMode.DENSE

    @property
    def has_temporal(self) -> bool:
        return self.stats_temporal is not None


# Non-linearities whose difference can be reconstructed by Cambricon-D's
# sign-mask dataflow without re-reading the previous step's input.
SIGN_MASK_KINDS = ("silu", "groupnorm")


def _bypasses_prev_input(rich: RichLayerStep, bypass_style: str) -> bool:
    """Whether the previous-step input reload can be skipped.

    * ``'chained'`` - Defo's static dependency analysis: the producer is a
      linear layer, so its difference output feeds this layer directly.
    * ``'sign_mask'`` - Cambricon-D: only SiLU / GroupNorm producers qualify.
    * ``'both'`` - hardware applying both techniques (paper Fig. 15).
    * ``'none'`` - naive temporal difference processing.
    """
    if bypass_style == "chained":
        return rich.chained_input
    if bypass_style == "sign_mask":
        return rich.producer_kind in SIGN_MASK_KINDS
    if bypass_style == "both":
        return rich.chained_input or rich.producer_kind in SIGN_MASK_KINDS
    if bypass_style == "none":
        return False
    raise ValueError(f"unknown bypass style {bypass_style!r}")


def derive_layer_step(
    rich: RichLayerStep,
    mode: ExecutionMode,
    bypass_style: str = "chained",
) -> LayerStep:
    """Lower a rich record to the hardware-facing view for ``mode``.

    Falls back to DENSE when temporal stats do not exist yet (first step).
    The byte-traffic model charges temporal mode for loading the previous
    step's input (skipped when the bypass style applies), storing the
    current input for the next step, and a load + store of the partial-sum
    state.
    """
    if mode is ExecutionMode.TEMPORAL and not rich.has_temporal:
        mode = ExecutionMode.DENSE
    bytes_in = rich.in_elems * ACT_BYTES
    bytes_weight = rich.weight_elems * ACT_BYTES
    bytes_out = rich.out_elems * ACT_BYTES
    if mode is ExecutionMode.TEMPORAL:
        stats = rich.stats_temporal
        sub_ops = rich.sub_ops_temporal
        prev_in = (
            0
            if _bypasses_prev_input(rich, bypass_style)
            else rich.in_elems * ACT_BYTES
        )
        bytes_extra = (
            prev_in
            + rich.in_elems * ACT_BYTES  # store current input for next step
            + 2 * rich.out_elems * STATE_BYTES  # load + store partial state
        )
    elif mode is ExecutionMode.SPATIAL:
        stats = rich.stats_spatial
        sub_ops = 1
        bytes_extra = 0
    else:
        stats = rich.stats_dense
        sub_ops = 1
        bytes_extra = 0
    return LayerStep(
        step_index=rich.step_index,
        layer_name=rich.layer_name,
        kind=rich.kind,
        mode=mode,
        macs=rich.macs,
        data_elems=rich.data_elems,
        stats=stats,
        bytes_in=bytes_in,
        bytes_weight=bytes_weight,
        bytes_out=bytes_out,
        bytes_extra=bytes_extra,
        vpu_elems=rich.vpu_elems,
        sub_ops=sub_ops,
        nonlinear_after=rich.nonlinear_after,
        chained_input=rich.chained_input,
    )


class _TraceBase:
    """Grouping helpers shared by :class:`Trace` and :class:`RichTrace`."""

    steps: List

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator:
        return iter(self.steps)

    def append(self, step) -> None:
        self.steps.append(step)

    def layer_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for step in self.steps:
            seen.setdefault(step.layer_name, None)
        return list(seen)

    def by_step(self) -> Dict[int, List]:
        grouped: Dict[int, List] = {}
        for step in self.steps:
            grouped.setdefault(step.step_index, []).append(step)
        return grouped

    def by_layer(self) -> Dict[str, List]:
        grouped: Dict[str, List] = {}
        for step in self.steps:
            grouped.setdefault(step.layer_name, []).append(step)
        return grouped

    def num_steps(self) -> int:
        return len({step.step_index for step in self.steps})

    def total_macs(self) -> int:
        return sum(step.macs for step in self.steps)


@dataclass
class Trace(_TraceBase):
    """Hardware-facing trace: a list of :class:`LayerStep`."""

    steps: List[LayerStep] = field(default_factory=list)

    def total_bytes(self) -> int:
        return sum(step.bytes_total for step in self.steps)


@dataclass
class RichTrace(_TraceBase):
    """Algorithm-level trace: a list of :class:`RichLayerStep`."""

    steps: List[RichLayerStep] = field(default_factory=list)

    def lower(self, mode_for, bypass_style: str = "chained") -> Trace:
        """Produce a :class:`Trace` choosing a mode per record.

        ``mode_for(rich) -> ExecutionMode`` decides each record's mode; pass
        e.g. ``lambda r: ExecutionMode.DENSE`` for the ITC baseline or a Defo
        decision table lookup.
        """
        trace = Trace()
        for rich in self.steps:
            trace.append(derive_layer_step(rich, mode_for(rich), bypass_style))
        return trace


class TraceRecorder:
    """Thread-local registry collecting :class:`RichLayerStep` records.

    The quantized layers call :func:`record_step`; whoever drives the model
    (the Ditto engine, a test) activates a recorder with
    ``with TraceRecorder() as rec: ...`` and advances ``set_step`` once per
    denoiser invocation.
    """

    _local = threading.local()

    def __init__(self) -> None:
        self.trace = RichTrace()
        self.step_index = 0

    # -- context management ------------------------------------------------
    def __enter__(self) -> "TraceRecorder":
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        self._local.stack.pop()

    @classmethod
    def current(cls) -> Optional["TraceRecorder"]:
        stack = getattr(cls._local, "stack", None)
        return stack[-1] if stack else None

    # -- recording ----------------------------------------------------------
    def set_step(self, step_index: int) -> None:
        self.step_index = step_index

    def record(self, step: RichLayerStep) -> None:
        self.trace.append(step)


def record_step(step: RichLayerStep) -> None:
    """Append ``step`` to the active recorder, if any."""
    recorder = TraceRecorder.current()
    if recorder is not None:
        recorder.record(step)
