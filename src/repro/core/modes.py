"""Execution modes for linear layers under the Ditto algorithm."""

from __future__ import annotations

from enum import Enum

__all__ = ["ExecutionMode"]


class ExecutionMode(str, Enum):
    """How a linear layer executes at a given time step.

    * ``DENSE`` - original (quantized) activations, full bit-width.
    * ``TEMPORAL`` - difference vs the same layer's input at the previous
      time step (the Ditto algorithm's default for steps >= 2).
    * ``SPATIAL`` - difference vs the neighbouring row/window inside the
      current tensor (Diffy-style; used by Defo+ where temporal processing
      loses).
    """

    DENSE = "dense"
    TEMPORAL = "temporal"
    SPATIAL = "spatial"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
