"""DittoEngine - one-stop driver producing rich traces and samples.

The engine wires everything together for a benchmark:

1. quantize the FP32 denoiser (optionally with trajectory calibration),
2. run Defo's static graph analysis (annotating chained inputs / producer
   non-linearities),
3. generate a trajectory with the quantized model under a
   :class:`~repro.core.trace.TraceRecorder`, advancing the step index once
   per denoiser invocation (PLMS's warmup call counts as the paper's "extra
   step"),
4. return an :class:`EngineResult` bundling the rich trace, the generated
   samples, and the static info.

Because every execution mode reconstructs the identical quantized values,
one engine run supports every downstream analysis: BOPs, Defo decisions on
any hardware, and all hardware comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..diffusion.pipeline import GenerationPipeline
from ..diffusion.samplers import make_sampler
from ..diffusion.schedule import DiffusionSchedule
from ..nn.module import Module
from ..quant.calibration import calibrate_model
from ..quant.tdq import set_active_step
from ..quant.qlayers import (
    quantize_model,
    reset_model_state,
    set_model_mode,
)
from .graphinfo import GraphAnalyzer, LayerStaticInfo
from .modes import ExecutionMode
from .trace import RichTrace, TraceRecorder

__all__ = ["EngineResult", "DittoEngine"]


@dataclass
class EngineResult:
    """Everything one instrumented generation run produced."""

    benchmark: str
    rich_trace: RichTrace
    samples: np.ndarray
    static_info: Dict[str, LayerStaticInfo] = field(default_factory=dict)
    num_model_calls: int = 0

    def summary(self) -> str:
        return (
            f"{self.benchmark}: {self.num_model_calls} denoiser calls, "
            f"{len(self.rich_trace)} layer records over "
            f"{self.rich_trace.num_steps()} steps, "
            f"{self.rich_trace.total_macs():,} MACs"
        )


class DittoEngine:
    """Runs a quantized diffusion model and records the Ditto-rich trace."""

    def __init__(
        self,
        qmodel: Module,
        pipeline: GenerationPipeline,
        benchmark: str = "custom",
    ) -> None:
        self.qmodel = qmodel
        self.pipeline = pipeline
        self.benchmark = benchmark
        self.step_clusters = 1

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_model(
        cls,
        fp_model: Module,
        sampler_name: str,
        num_steps: int,
        sample_shape,
        conditioning: Optional[dict] = None,
        num_train_steps: int = 1000,
        calibrate: bool = True,
        benchmark: str = "custom",
        calibration_seed: int = 11,
        step_clusters: int = 1,
    ) -> "DittoEngine":
        """Quantize ``fp_model`` (optionally trajectory-calibrated) and wrap it.

        ``calibrate=True`` runs one FP32 trajectory first (Q-Diffusion-style
        offline calibration) so input scales cover the whole value drift.
        ``step_clusters > 1`` switches to timestep-clustered quantization
        (TDQ synergy, see :mod:`repro.quant.tdq`): each cluster of steps gets
        its own, tighter scale, and the engine re-runs one dense step at each
        cluster boundary.  The model is quantized *in place*.
        """
        schedule = DiffusionSchedule(num_train_steps)
        sampler = make_sampler(sampler_name, schedule, num_steps)
        pipeline = GenerationPipeline(fp_model, sampler, sample_shape, conditioning)
        rng = np.random.default_rng(calibration_seed)
        if step_clusters > 1:
            from ..quant.calibration import calibrate_model_clustered

            calls = [0]
            original_predict = pipeline.predict_noise

            def stepped_predict(x: np.ndarray, t: int) -> np.ndarray:
                set_active_step(calls[0])
                calls[0] += 1
                return original_predict(x, t)

            pipeline.predict_noise = stepped_predict
            try:
                quantizers = calibrate_model_clustered(
                    fp_model,
                    lambda: pipeline.generate(1, rng),
                    num_steps=pipeline.num_model_calls(),
                    num_clusters=step_clusters,
                )
            finally:
                pipeline.predict_noise = original_predict
                set_active_step(None)
            qmodel = quantize_model(fp_model, input_quantizers=quantizers)
        else:
            if calibrate:
                scales = calibrate_model(
                    fp_model, lambda: pipeline.generate(1, rng)
                )
            else:
                scales = None
            qmodel = quantize_model(fp_model, calibration=scales)
        pipeline.model = qmodel
        engine = cls(qmodel, pipeline, benchmark=benchmark)
        engine.step_clusters = step_clusters
        return engine

    @classmethod
    def from_benchmark(
        cls,
        spec,
        num_steps: Optional[int] = None,
        calibrate: bool = True,
        calibration_seed: int = 11,
        step_clusters: int = 1,
    ) -> "DittoEngine":
        """Build an engine from a Table I :class:`BenchmarkSpec`."""
        fp_model = spec.build_model()
        conditioning = spec.build_conditioning()
        return cls.from_model(
            fp_model,
            sampler_name=spec.sampler,
            num_steps=num_steps or spec.num_steps,
            sample_shape=spec.sample_shape,
            conditioning=conditioning,
            calibrate=calibrate,
            benchmark=spec.name,
            calibration_seed=calibration_seed,
            step_clusters=step_clusters,
        )

    # -- static analysis -----------------------------------------------------
    def analyze_graph(self, batch_size: int = 1) -> Dict[str, LayerStaticInfo]:
        """Defo static pass: annotate layers via one probe invocation."""
        reset_model_state(self.qmodel)
        set_model_mode(self.qmodel, ExecutionMode.DENSE)
        shape = (batch_size,) + self.pipeline.sample_shape
        probe = np.random.default_rng(0).standard_normal(shape)
        t_first = int(self.pipeline.sampler.timesteps[0])
        info = GraphAnalyzer(self.qmodel).analyze(
            lambda: self.pipeline.predict_noise(probe, t_first)
        )
        reset_model_state(self.qmodel)
        return info

    # -- instrumented generation --------------------------------------------
    def run(self, batch_size: int = 1, seed: int = 0) -> EngineResult:
        """Generate one batch while recording the rich trace."""
        static_info = self.analyze_graph(batch_size)
        reset_model_state(self.qmodel)
        recorder = TraceRecorder()
        calls = [0]
        original_predict = self.pipeline.predict_noise
        # Resolve the quantized layers once; setting the mode per denoiser
        # call must not re-walk the whole module tree.
        from ..quant.qlayers import iter_qlayers

        qlayers = [qlayer for _, qlayer in iter_qlayers(self.qmodel)]

        active_mode = [None]

        def counted_predict(x: np.ndarray, t: int) -> np.ndarray:
            mode = (
                ExecutionMode.DENSE if calls[0] == 0 else ExecutionMode.TEMPORAL
            )
            if mode is not active_mode[0]:  # only flips after the first call
                for qlayer in qlayers:
                    qlayer.mode = mode
                active_mode[0] = mode
            recorder.set_step(calls[0])
            set_active_step(calls[0])
            calls[0] += 1
            return original_predict(x, t)

        self.pipeline.predict_noise = counted_predict
        try:
            with recorder:
                samples = self.pipeline.generate(
                    batch_size, np.random.default_rng(seed)
                )
        finally:
            self.pipeline.predict_noise = original_predict
            set_active_step(None)
        return EngineResult(
            benchmark=self.benchmark,
            rich_trace=recorder.trace,
            samples=samples,
            static_info=static_info,
            num_model_calls=calls[0],
        )
