"""DittoEngine - one-stop driver producing rich traces and samples.

The engine wires everything together for a benchmark:

1. quantize the FP32 denoiser (optionally with trajectory calibration),
2. run Defo's static graph analysis (annotating chained inputs / producer
   non-linearities),
3. generate a trajectory with the quantized model under a
   :class:`~repro.core.trace.TraceRecorder`, advancing the step index once
   per denoiser invocation (PLMS's warmup call counts as the paper's "extra
   step"),
4. return an :class:`EngineResult` bundling the rich trace, the generated
   samples, and the static info.

Because every execution mode reconstructs the identical quantized values,
one engine run supports every downstream analysis: BOPs, Defo decisions on
any hardware, and all hardware comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from .. import profiling
from ..defaults import resolve_backend
from ..diffusion.pipeline import GenerationPipeline, PerElementRNG
from ..nn import backends
from ..diffusion.samplers import make_sampler
from ..diffusion.schedule import DiffusionSchedule
from ..nn.module import Module

# NOTE: repro.quant imports are deliberately deferred to call time.  The
# quantized layers import repro.core.bitwidth, which initializes this
# package, which imports this module - a module-level import of
# repro.quant here therefore breaks ``import repro.quant`` whenever quant
# is the first repro package touched (partially-initialized-module
# ImportError).  Every method below needs them only at execution time.
from .graphinfo import GraphAnalyzer, LayerStaticInfo
from .modes import ExecutionMode
from .trace import RichTrace, TraceRecorder

__all__ = ["EngineResult", "DittoEngine"]


@dataclass
class EngineResult:
    """Everything one instrumented generation run produced."""

    benchmark: str
    rich_trace: RichTrace
    samples: np.ndarray
    static_info: Dict[str, LayerStaticInfo] = field(default_factory=dict)
    num_model_calls: int = 0

    def summary(self) -> str:
        return (
            f"{self.benchmark}: {self.num_model_calls} denoiser calls, "
            f"{len(self.rich_trace)} layer records over "
            f"{self.rich_trace.num_steps()} steps, "
            f"{self.rich_trace.total_macs():,} MACs"
        )


class DittoEngine:
    """Runs a quantized diffusion model and records the Ditto-rich trace."""

    def __init__(
        self,
        qmodel: Module,
        pipeline: GenerationPipeline,
        benchmark: str = "custom",
        backend: Optional[str] = None,
    ) -> None:
        self.qmodel = qmodel
        self.pipeline = pipeline
        self.benchmark = benchmark
        self.step_clusters = 1
        # The *requested* compute backend name - what the cache keys embed.
        # Availability fallback (recorded in backend_fallback_reason) happens
        # per-process at dispatch time; a pickled engine carries only the
        # name, so an engine cached on a BLAS-capable host degrades cleanly
        # when reloaded somewhere poorer.
        self.backend = resolve_backend(None, backend)

    @property
    def effective_backend(self) -> str:
        """The backend this process actually dispatches to (after fallback)."""
        effective, _ = backends.probe_backend(self.backend)
        return effective

    @property
    def backend_fallback_reason(self) -> Optional[str]:
        """Why the requested backend degraded here, or ``None`` if native.

        A property, not a stored field: an engine unpickled from the result
        cache re-probes on the *current* host, so the reason reflects this
        process rather than the one that built the engine.
        """
        _, reason = backends.probe_backend(self.backend)
        return reason

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_model(
        cls,
        fp_model: Module,
        sampler_name: str,
        num_steps: int,
        sample_shape,
        conditioning: Optional[dict] = None,
        num_train_steps: int = 1000,
        calibrate: bool = True,
        benchmark: str = "custom",
        calibration_seed: int = 11,
        step_clusters: int = 1,
        guidance_scale: Optional[float] = None,
        uncond_conditioning: Optional[dict] = None,
        sampler_eta: Optional[float] = None,
        calibration_dtype: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> "DittoEngine":
        """Quantize ``fp_model`` (optionally trajectory-calibrated) and wrap it.

        ``calibrate=True`` runs one FP32 trajectory first (Q-Diffusion-style
        offline calibration) so input scales cover the whole value drift.
        ``step_clusters > 1`` switches to timestep-clustered quantization
        (TDQ synergy, see :mod:`repro.quant.tdq`): each cluster of steps gets
        its own, tighter scale, and the engine re-runs one dense step at each
        cluster boundary.  ``guidance_scale`` enables classifier-free
        guidance (the calibration trajectory then covers the stacked
        [cond; uncond] layout the serving run uses).  ``sampler_eta``
        selects stochastic DDIM (eta > 0 posterior noise).  The model is
        quantized *in place*.

        ``calibration_dtype`` selects the precision of the calibration
        trajectory: ``"float32"`` (the default fast path - the observed
        peaks move by ulps, far below quantization resolution; see
        :func:`repro.quant.calibration.calibration_precision`) or
        ``"float64"`` for the legacy exact trajectory.

        ``backend`` selects the compute backend (see
        :mod:`repro.nn.backends`); the calibration trajectory runs under it
        too, so an engine's scales are wholly a product of one backend.
        """
        schedule = DiffusionSchedule(num_train_steps)
        sampler = make_sampler(sampler_name, schedule, num_steps, eta=sampler_eta)
        pipeline = GenerationPipeline(
            fp_model,
            sampler,
            sample_shape,
            conditioning,
            guidance_scale=guidance_scale,
            uncond_conditioning=uncond_conditioning,
        )
        from ..defaults import resolve_calibration_dtype
        from ..quant.calibration import calibrate_model, calibration_precision
        from ..quant.qlayers import quantize_model
        from ..quant.tdq import set_active_step

        rng = np.random.default_rng(calibration_seed)
        cal_dtype = resolve_calibration_dtype(None, calibration_dtype)
        backend = resolve_backend(None, backend)

        def run_trajectory():
            with profiling.phase("trajectory"):
                with backends.use_backend(backend):
                    return pipeline.generate(1, rng)

        if step_clusters > 1:
            from ..quant.calibration import calibrate_model_clustered

            # Enter the precision context *before* capturing predict_noise:
            # the stepped wrapper then wraps the dtype-casting wrapper, so
            # every clustered calibration forward also runs the fast path.
            with calibration_precision(fp_model, pipeline, cal_dtype):
                calls = [0]
                original_predict = pipeline.predict_noise

                def stepped_predict(x: np.ndarray, t: int) -> np.ndarray:
                    set_active_step(calls[0])
                    calls[0] += 1
                    return original_predict(x, t)

                pipeline.predict_noise = stepped_predict
                try:
                    with profiling.phase("calibration"):
                        quantizers = calibrate_model_clustered(
                            fp_model,
                            run_trajectory,
                            num_steps=pipeline.num_model_calls(),
                            num_clusters=step_clusters,
                        )
                finally:
                    pipeline.predict_noise = original_predict
                    set_active_step(None)
            with profiling.phase("quantize"):
                qmodel = quantize_model(fp_model, input_quantizers=quantizers)
        else:
            if calibrate:
                with calibration_precision(fp_model, pipeline, cal_dtype):
                    with profiling.phase("calibration"):
                        scales = calibrate_model(fp_model, run_trajectory)
            else:
                scales = None
            with profiling.phase("quantize"):
                qmodel = quantize_model(fp_model, calibration=scales)
        pipeline.model = qmodel
        engine = cls(qmodel, pipeline, benchmark=benchmark, backend=backend)
        engine.step_clusters = step_clusters
        return engine

    @classmethod
    def from_benchmark(
        cls,
        spec,
        num_steps: Optional[int] = None,
        calibrate: bool = True,
        calibration_seed: int = 11,
        step_clusters: int = 1,
        guidance_scale: Optional[float] = None,
        sampler: Optional[str] = None,
        sampler_eta: Optional[float] = None,
        calibration_dtype: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> "DittoEngine":
        """Build an engine from a Table I :class:`BenchmarkSpec`.

        ``guidance_scale`` overrides the spec's default guidance; passing a
        value requires the spec to provide ``build_uncond_conditioning``
        (e.g. the empty-prompt embedding for text-conditional benchmarks).
        ``sampler`` / ``sampler_eta`` override the spec's sampler (e.g. to
        serve a benchmark under stochastic DDPM ancestral sampling).
        ``calibration_dtype`` overrides the spec's calibration-trajectory
        precision (default: the float32 fast path; ``"float64"`` is the
        escape hatch - see :meth:`from_model`).  ``backend`` overrides the
        spec's compute-backend pin (resolution:
        :func:`repro.defaults.resolve_backend`).
        """
        from ..defaults import resolve_calibration_dtype

        fp_model = spec.build_model()
        conditioning = spec.build_conditioning()
        calibration_dtype = resolve_calibration_dtype(spec, calibration_dtype)
        backend = resolve_backend(spec, backend)
        if guidance_scale is None:
            guidance_scale = getattr(spec, "guidance_scale", None)
        uncond_conditioning = None
        if guidance_scale is not None:
            build_uncond = getattr(spec, "build_uncond_conditioning", None)
            if build_uncond is None:
                raise ValueError(
                    f"benchmark {spec.name!r} has no build_uncond_conditioning; "
                    "classifier-free guidance needs an unconditional branch"
                )
            uncond_conditioning = build_uncond()
        return cls.from_model(
            fp_model,
            sampler_name=sampler or spec.sampler,
            sampler_eta=sampler_eta,
            num_steps=num_steps or spec.num_steps,
            sample_shape=spec.sample_shape,
            conditioning=conditioning,
            calibrate=calibrate,
            benchmark=spec.name,
            calibration_seed=calibration_seed,
            step_clusters=step_clusters,
            guidance_scale=guidance_scale,
            uncond_conditioning=uncond_conditioning,
            calibration_dtype=calibration_dtype,
            backend=backend,
        )

    # -- static analysis -----------------------------------------------------
    def analyze_graph(self, batch_size: int = 1) -> Dict[str, LayerStaticInfo]:
        """Defo static pass: annotate layers via one probe invocation.

        The probe draws *one* sample and tiles it along the batch axis.  This
        matters beyond graph analysis: quantizers still uncalibrated at this
        point (attention's internal Q/K/V quantizers, every layer when
        ``calibrate=False``) freeze their scale on the first tensor they see -
        the probe.  Identical rows make the frozen scales independent of the
        batch size, which is what lets a batch-N run reproduce N batch-1 runs
        bit-exactly (the serving contract pinned by the batched-state tests).
        """
        from ..quant.qlayers import reset_model_state, set_model_mode

        reset_model_state(self.qmodel)
        set_model_mode(self.qmodel, ExecutionMode.DENSE)
        probe_fn = self._probe_fn(batch_size)
        with backends.use_backend(self.backend):
            info = GraphAnalyzer(self.qmodel).analyze(probe_fn)
        reset_model_state(self.qmodel)
        return info

    def _probe_fn(self, batch_size: int):
        """One dense probe invocation over a single sample tiled to batch."""
        shape = (1,) + self.pipeline.sample_shape
        probe = np.random.default_rng(0).standard_normal(shape)
        if batch_size > 1:
            probe = np.repeat(probe, batch_size, axis=0)
        t_first = int(self.pipeline.sampler.timesteps[0])
        return lambda: self.pipeline.predict_noise(probe, t_first)

    def _freeze_scales(self, batch_size: int) -> None:
        """The probe forward alone (no graph hooks): freezes every sticky
        quantizer scale exactly as :meth:`analyze_graph` would, without
        paying for static-info construction the caller will discard.

        Skipped entirely once every sticky quantizer is calibrated - scales
        survive ``reset_state`` across runs, so in a serving loop only the
        first uninstrumented run pays for the probe forward.
        """
        if self._scales_frozen():
            return
        from ..quant.qlayers import reset_model_state, set_model_mode

        reset_model_state(self.qmodel)
        set_model_mode(self.qmodel, ExecutionMode.DENSE)
        with backends.use_backend(self.backend):
            self._probe_fn(batch_size)()
        reset_model_state(self.qmodel)

    def _scales_frozen(self) -> bool:
        from ..quant.qlayers import QAttention, iter_qlayers

        for _, qlayer in iter_qlayers(self.qmodel):
            if isinstance(qlayer, QAttention):
                # The attention wrapper's own input_quant is never exercised
                # (the projections quantize); requiring it would force the
                # probe forward on every uninstrumented run forever.
                if not all(
                    q.calibrated
                    for q in (
                        qlayer.q_quant, qlayer.k_quant,
                        qlayer.v_quant, qlayer.p_quant,
                    )
                ):
                    return False
            elif not qlayer.input_quant.calibrated:
                return False
        return True

    # -- plan derivation -----------------------------------------------------
    def derive_plan(
        self,
        seed: int = 0,
        batch_size: int = 1,
        hardware: str = "Ditto",
    ):
        """Run one instrumented pass and extract its :class:`ExecutionPlan`.

        The plan-then-execute split (see ``docs/plan-cache.md``): this is the
        *only* instrumented run a plan-mode serve performs; every later run
        replays with ``record_trace=False`` and reports the plan's derived
        bitwidth/Defo numbers.  Deterministic - the same engine, seed, and
        batch size always derive the identical plan (digest included), which
        is what the serving drift check relies on.

        Parameters
        ----------
        seed, batch_size:
            The derivation run's parameters; recorded in the plan so the
            drift check can replay them exactly.
        hardware:
            Accelerator name for the Defo cycle model.

        Returns
        -------
        repro.core.plan.ExecutionPlan
        """
        from .plan import extract_plan

        result = self.run(batch_size=batch_size, seed=seed)
        return extract_plan(
            result,
            hardware=hardware,
            derivation_seed=seed,
            derivation_batch_size=batch_size,
        )

    # -- row-granular serving ------------------------------------------------
    def open_session(self, capacity: Optional[int] = None, plan=None):
        """Open a continuous-batching session over this engine.

        The session owns the model's temporal state until closed: rows are
        admitted/evicted at step boundaries and each advances at its own
        timestep, bit-exact with its seeded batch-1 reference run.  See
        :class:`repro.core.session.EngineSession`.  ``plan`` attaches a
        pre-derived :class:`~repro.core.plan.ExecutionPlan` (plan-replay
        mode - the session never instruments, so the plan is where its
        bitwidth/Defo numbers come from).
        """
        from .session import EngineSession

        return EngineSession(self, capacity=capacity, plan=plan)

    # -- instrumented generation --------------------------------------------
    def run(
        self,
        batch_size: int = 1,
        seed: int = 0,
        x_init: Optional[np.ndarray] = None,
        record_trace: bool = True,
        rngs: Optional[Sequence[np.random.Generator]] = None,
    ) -> EngineResult:
        """Generate one batch while recording the rich trace.

        ``x_init`` seeds the trajectory with explicit initial noise of shape
        ``(batch, *sample_shape)`` instead of drawing from ``seed``; the
        serving runtime uses it to stack independently-seeded requests into
        one micro-batch.  ``rngs`` supplies one independent noise stream per
        batch element (``SeedSequence.spawn``-style) for the sampler's
        stochastic draws, extending the batch-invariance contract to
        ddpm/eta>0: a batch-N run over streams ``[g_0..g_{N-1}]`` is
        bit-exact with N batch-1 runs each passed its own ``g_i``.
        ``record_trace=False`` skips all bit-width instrumentation (the rich
        trace comes back empty) - the throughput configuration, since stats
        scans dominate the instrumented run.
        """
        if x_init is not None:
            x_init = np.asarray(x_init)
            expected_ndim = 1 + len(self.pipeline.sample_shape)
            if x_init.ndim != expected_ndim:
                raise ValueError(
                    f"x_init must be (batch, *sample_shape), i.e. "
                    f"{expected_ndim}-d with trailing shape "
                    f"{self.pipeline.sample_shape}; got shape {x_init.shape}"
                )
            if batch_size not in (1, x_init.shape[0]):
                raise ValueError(
                    f"batch_size={batch_size} conflicts with x_init batch "
                    f"dimension {x_init.shape[0]}; pass one or the other"
                )
            batch_size = x_init.shape[0]
        if rngs is not None and len(rngs) != batch_size:
            raise ValueError(
                f"rngs supplies {len(rngs)} per-element streams for a batch "
                f"of {batch_size}; need exactly one stream per element"
            )
        if record_trace:
            static_info = self.analyze_graph(batch_size)
        else:
            # Serving path: the probe must still run (sticky scales freeze
            # from it, batch-independently), but the static-info hooks and
            # dataclasses would be discarded - skip them.
            self._freeze_scales(batch_size)
            static_info = {}
        # Resolve the quantized layers once; setting the mode per denoiser
        # call must not re-walk the whole module tree.
        from ..quant.qlayers import iter_qlayers, reset_model_state
        from ..quant.tdq import set_active_step

        reset_model_state(self.qmodel)
        recorder = TraceRecorder()
        calls = [0]
        original_predict = self.pipeline.predict_noise
        qlayers = [qlayer for _, qlayer in iter_qlayers(self.qmodel)]

        active_mode = [None]

        def counted_predict(x: np.ndarray, t: int) -> np.ndarray:
            mode = (
                ExecutionMode.DENSE if calls[0] == 0 else ExecutionMode.TEMPORAL
            )
            if mode is not active_mode[0]:  # only flips after the first call
                for qlayer in qlayers:
                    qlayer.mode = mode
                active_mode[0] = mode
            recorder.set_step(calls[0])
            set_active_step(calls[0])
            calls[0] += 1
            return original_predict(x, t)

        if rngs is not None:
            rng = PerElementRNG(rngs)
        else:
            rng = np.random.default_rng(seed)
        self.pipeline.predict_noise = counted_predict
        try:
            if record_trace:
                with recorder, backends.use_backend(self.backend):
                    samples = self.pipeline.generate(
                        batch_size, rng, x_init=x_init
                    )
            else:
                with backends.use_backend(self.backend):
                    samples = self.pipeline.generate(
                        batch_size, rng, x_init=x_init
                    )
        finally:
            self.pipeline.predict_noise = original_predict
            set_active_step(None)
        return EngineResult(
            benchmark=self.benchmark,
            rich_trace=recorder.trace,
            samples=samples,
            static_info=static_info,
            num_model_calls=calls[0],
        )
