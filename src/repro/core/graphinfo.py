"""Static computing-graph analysis for Defo (paper Section IV-B).

"In static time, Defo applies a computing graph analysis to find all
non-linear functions and check the dependency of layers."  This module
reproduces that pass: it hooks every leaf module of the (quantized) model,
runs one denoiser invocation, and reconstructs producer/consumer
relationships by tensor identity.  The analysis annotates each quantized
layer with:

* ``producer_kind`` - what produced its input ('linear', 'silu',
  'groupnorm', 'layernorm', 'gelu', 'softmax', or 'other').  Determines
  whether Cambricon-D's sign-mask dataflow could bypass the prev-input
  reload (only SiLU/GroupNorm) and whether Defo's dependency bypass applies
  (linear producers).
* ``chained_input`` - producer is itself a linear layer, so its difference
  output can feed this layer directly without re-reading the previous step.
* ``nonlinear_after`` - some consumer needs the original-domain output, so
  the summation + Vector Processing Unit pass cannot be skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..nn.layers import GELU, GroupNorm, LayerNorm, SiLU, Softmax
from ..nn.module import Module

# repro.quant imports are deferred to call time: the quantized layers import
# repro.core.bitwidth, which initializes this package, which imports this
# module - a module-level quant import here would therefore break
# ``import repro.quant`` whenever quant is the first repro package touched.

__all__ = ["LayerStaticInfo", "GraphAnalyzer", "analyze_model"]


_NONLINEAR_KINDS = {
    SiLU: "silu",
    GELU: "gelu",
    Softmax: "softmax",
    GroupNorm: "groupnorm",
    LayerNorm: "layernorm",
}


def _module_kind(module: Module) -> str:
    from ..quant.qlayers import QLayerBase

    if isinstance(module, QLayerBase):
        return "linear"
    for cls, kind in _NONLINEAR_KINDS.items():
        if isinstance(module, cls):
            return kind
    return "other"


@dataclass
class LayerStaticInfo:
    """Static-analysis verdict for one quantized layer."""

    layer_name: str
    producer_kind: str = "other"
    chained_input: bool = False
    nonlinear_after: bool = True


class GraphAnalyzer:
    """Tensor-identity-based producer/consumer analysis."""

    def __init__(self, model: Module) -> None:
        self.model = model

    def analyze(self, run_fn: Callable[[], None]) -> Dict[str, LayerStaticInfo]:
        """Run ``run_fn`` once under hooks and return per-layer static info.

        The verdicts are also written onto the quantized layers themselves
        (``producer_kind`` / ``chained_input`` / ``nonlinear_after``) so that
        subsequent trace records carry them.
        """
        from ..quant.qlayers import QLayerBase, iter_qlayers

        # id(array) -> (kind, array ref to pin identity for the run duration)
        producers: Dict[int, Tuple[str, np.ndarray]] = {}
        # layer name -> producer kind of its observed input
        input_producer: Dict[str, str] = {}
        # id(array) -> producing qlayer name (for consumer analysis)
        output_owner: Dict[int, str] = {}
        # layer name -> kinds of consumers observed for its output
        consumers: Dict[str, List[str]] = {}
        removers = []

        def make_hook(name: str, module: Module):
            kind = _module_kind(module)

            def hook(_module, inputs, output) -> None:
                if inputs and isinstance(inputs[0], np.ndarray):
                    src = inputs[0]
                    produced = producers.get(id(src))
                    if isinstance(module, QLayerBase):
                        input_producer[name] = (
                            produced[0] if produced is not None else "other"
                        )
                    owner = output_owner.get(id(src))
                    if owner is not None:
                        consumers.setdefault(owner, []).append(kind)
                if isinstance(output, np.ndarray):
                    producers[id(output)] = (kind, output)
                    if isinstance(module, QLayerBase):
                        output_owner[id(output)] = name

            return hook

        for name, module in self.model.named_modules():
            is_leaf = not module._modules
            if is_leaf or isinstance(module, QLayerBase):
                if isinstance(module, QLayerBase) and module._modules:
                    # QAttention: analysed through its child projections.
                    continue
                removers.append(module.register_forward_hook(make_hook(name, module)))
        try:
            run_fn()
        finally:
            for remove in removers:
                remove()

        infos: Dict[str, LayerStaticInfo] = {}
        for name, qlayer in iter_qlayers(self.model):
            if qlayer._modules:
                continue  # container (QAttention); children handled below
            producer = input_producer.get(name, "other")
            consumer_kinds = consumers.get(name)
            if consumer_kinds is None:
                nonlinear_after = True  # unobserved (residual adds, output)
            else:
                nonlinear_after = any(k != "linear" for k in consumer_kinds)
            info = LayerStaticInfo(
                layer_name=name,
                producer_kind=producer,
                chained_input=(producer == "linear") or qlayer.chained_input,
                nonlinear_after=nonlinear_after,
            )
            qlayer.producer_kind = info.producer_kind
            qlayer.chained_input = info.chained_input
            qlayer.nonlinear_after = info.nonlinear_after
            infos[name] = info
        return infos


def analyze_model(
    model: Module, run_fn: Callable[[], None]
) -> Dict[str, LayerStaticInfo]:
    """Convenience wrapper around :class:`GraphAnalyzer`."""
    return GraphAnalyzer(model).analyze(run_fn)
