"""Synthetic trace transformations for design-space exploration (Fig. 19).

The paper probes Defo's robustness against *future* models whose temporal
similarity varies across the time domain: "we adjust the value distribution
of our benchmark to make the execution type threshold dynamic".  This module
reproduces that adjustment: it rewrites the temporal bit-width statistics of
a recorded rich trace with a periodic drift that moves mass from the
zero/low buckets into the full-bit-width bucket on some steps, flipping the
temporal-vs-fallback decision back and forth ("Ditto-like" benchmarks in
Fig. 19).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable

from .bitwidth import BitWidthStats
from .trace import RichTrace

__all__ = ["degrade_stats", "apply_similarity_drift"]


def degrade_stats(stats: BitWidthStats, severity: float) -> BitWidthStats:
    """Move ``severity`` in [0, 1] of the zero/low mass into the high bucket.

    ``severity=0`` returns the stats unchanged; ``severity=1`` makes every
    element full bit-width (similarity fully collapsed).
    """
    if not 0.0 <= severity <= 1.0:
        raise ValueError(f"severity must be in [0, 1], got {severity}")
    moved_zero = int(round(stats.zero * severity))
    moved_low = int(round(stats.low * severity))
    return BitWidthStats(
        total=stats.total,
        zero=stats.zero - moved_zero,
        low=stats.low - moved_low,
        high=stats.high + moved_zero + moved_low,
    )


def apply_similarity_drift(
    rich_trace: RichTrace,
    period: int = 8,
    strength: float = 0.9,
    phase_fn: Callable[[int], float] = None,
) -> RichTrace:
    """Return a copy of ``rich_trace`` with periodically collapsing similarity.

    By default the drift severity follows ``strength * sin^2(pi * step /
    period)``: similarity is intact at the start of each period and collapses
    mid-period, exactly the "dynamic temporal similarity across the time
    domain" scenario of the paper's Fig. 19.
    """
    if period < 2:
        raise ValueError("period must be >= 2")

    def default_phase(step: int) -> float:
        return strength * math.sin(math.pi * step / period) ** 2

    severity_at = phase_fn or default_phase
    drifted = RichTrace()
    for rich in rich_trace:
        if rich.stats_temporal is None:
            drifted.append(rich)
            continue
        severity = float(min(max(severity_at(rich.step_index), 0.0), 1.0))
        drifted.append(
            replace(rich, stats_temporal=degrade_stats(rich.stats_temporal, severity))
        )
    return drifted
