"""Bit-Operations (BOPs) accounting (paper Section III-B, Fig. 6).

Following the paper's references [5], [50], a multiply of an ``a``-bit
activation by a ``w``-bit weight costs ``a * w`` bit operations.  With
operands bucketed by :mod:`repro.core.bitwidth`, a layer's BOPs are::

    BOPs = macs * (zero_frac * 0 + low_frac * 4*8 + high_frac * 8*8)

normalized against ``macs * 8*8`` for the dense quantized baseline.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .bitwidth import BitWidthStats, FULL_BITS, LOW_BITS
from .modes import ExecutionMode
from .trace import DENSE_ID, LayerStep, Trace

__all__ = [
    "bops_per_mac",
    "layer_bops",
    "trace_bops",
    "relative_bops",
    "per_step_relative_bops",
]

_DENSE_COST = FULL_BITS * FULL_BITS  # 8b activation x 8b weight
_LOW_COST = LOW_BITS * FULL_BITS  # 4b difference x 8b weight


def bops_per_mac(stats: BitWidthStats, zero_skipping: bool = True) -> float:
    """Average bit-operations per MAC given operand composition.

    Without zero skipping (e.g. pure dynamic-bit-width hardware), zero
    elements still cost a low-bit operation.
    """
    zero_cost = 0.0 if zero_skipping else float(_LOW_COST)
    return (
        stats.zero_frac * zero_cost
        + stats.low_frac * _LOW_COST
        + stats.high_frac * _DENSE_COST
    )


def layer_bops(step: LayerStep, zero_skipping: bool = True) -> float:
    """Total BOPs of one layer-step record (sub-operations included).

    Dense execution runs every operand as a full 8-bit multiply, so its cost
    is exactly ``macs * 64`` - the Fig. 6a "Activation" baseline of 1.0.
    """
    if step.mode is ExecutionMode.DENSE:
        return float(step.macs * step.sub_ops * _DENSE_COST)
    return step.macs * step.sub_ops * bops_per_mac(step.stats, zero_skipping)


def _layer_bops_column(trace: Trace, zero_skipping: bool) -> np.ndarray:
    """Per-record BOPs as one vectorized column (see :func:`layer_bops`)."""
    total = (trace.col("macs") * trace.col("sub_ops")).astype(np.float64)
    dense = trace.col("mode") == DENSE_ID
    elems = trace.col("st_total").astype(np.float64)
    safe = np.where(elems > 0.0, elems, 1.0)
    zero_cost = 0.0 if zero_skipping else float(_LOW_COST)
    per_mac = (
        (trace.col("st_zero") / safe) * zero_cost
        + (trace.col("st_low") / safe) * _LOW_COST
        + (trace.col("st_high") / safe) * _DENSE_COST
    )
    return np.where(dense, total * _DENSE_COST, total * per_mac)


def trace_bops(trace: Trace, zero_skipping: bool = True) -> float:
    if hasattr(trace, "col"):
        return float(_layer_bops_column(trace, zero_skipping).sum())
    return sum(layer_bops(s, zero_skipping) for s in trace)


def dense_bops(trace: Trace) -> float:
    """BOPs the same trace would cost with original 8-bit activations."""
    if hasattr(trace, "col"):
        return float(int((trace.col("macs") * trace.col("sub_ops")).sum()) * _DENSE_COST)
    return float(sum(s.macs * s.sub_ops for s in trace) * _DENSE_COST)


def relative_bops(trace: Trace, zero_skipping: bool = True) -> float:
    """Trace BOPs normalized to the dense 8-bit baseline (Fig. 6a)."""
    baseline = dense_bops_reference(trace)
    if baseline == 0:
        return 0.0
    return trace_bops(trace, zero_skipping) / baseline


def dense_bops_reference(trace: Trace) -> float:
    """Dense baseline counts each layer *once* (no difference sub-ops)."""
    if hasattr(trace, "col"):
        return float(int(trace.col("macs").sum()) * _DENSE_COST)
    return float(sum(s.macs for s in trace) * _DENSE_COST)


def per_step_relative_bops(
    trace: Trace, zero_skipping: bool = True
) -> Dict[int, float]:
    """Per-time-step relative BOPs (Fig. 6b)."""
    if hasattr(trace, "col"):
        step_col = trace.col("step_index")
        steps, inverse = np.unique(step_col, return_inverse=True)
        dense = np.bincount(inverse, weights=trace.col("macs")) * _DENSE_COST
        actual = np.bincount(
            inverse, weights=_layer_bops_column(trace, zero_skipping)
        )
        return {
            int(step): float(actual[i] / dense[i]) if dense[i] else 0.0
            for i, step in enumerate(steps)
        }
    result: Dict[int, float] = {}
    for step_index, steps in trace.by_step().items():
        dense = sum(s.macs for s in steps) * _DENSE_COST
        actual = sum(layer_bops(s, zero_skipping) for s in steps)
        result[step_index] = actual / dense if dense else 0.0
    return result
