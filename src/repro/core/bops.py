"""Bit-Operations (BOPs) accounting (paper Section III-B, Fig. 6).

Following the paper's references [5], [50], a multiply of an ``a``-bit
activation by a ``w``-bit weight costs ``a * w`` bit operations.  With
operands bucketed by :mod:`repro.core.bitwidth`, a layer's BOPs are::

    BOPs = macs * (zero_frac * 0 + low_frac * 4*8 + high_frac * 8*8)

normalized against ``macs * 8*8`` for the dense quantized baseline.
"""

from __future__ import annotations

from typing import Dict

from .bitwidth import BitWidthStats, FULL_BITS, LOW_BITS
from .modes import ExecutionMode
from .trace import LayerStep, Trace

__all__ = [
    "bops_per_mac",
    "layer_bops",
    "trace_bops",
    "relative_bops",
    "per_step_relative_bops",
]

_DENSE_COST = FULL_BITS * FULL_BITS  # 8b activation x 8b weight
_LOW_COST = LOW_BITS * FULL_BITS  # 4b difference x 8b weight


def bops_per_mac(stats: BitWidthStats, zero_skipping: bool = True) -> float:
    """Average bit-operations per MAC given operand composition.

    Without zero skipping (e.g. pure dynamic-bit-width hardware), zero
    elements still cost a low-bit operation.
    """
    zero_cost = 0.0 if zero_skipping else float(_LOW_COST)
    return (
        stats.zero_frac * zero_cost
        + stats.low_frac * _LOW_COST
        + stats.high_frac * _DENSE_COST
    )


def layer_bops(step: LayerStep, zero_skipping: bool = True) -> float:
    """Total BOPs of one layer-step record (sub-operations included).

    Dense execution runs every operand as a full 8-bit multiply, so its cost
    is exactly ``macs * 64`` - the Fig. 6a "Activation" baseline of 1.0.
    """
    if step.mode is ExecutionMode.DENSE:
        return float(step.macs * step.sub_ops * _DENSE_COST)
    return step.macs * step.sub_ops * bops_per_mac(step.stats, zero_skipping)


def trace_bops(trace: Trace, zero_skipping: bool = True) -> float:
    return sum(layer_bops(s, zero_skipping) for s in trace)


def dense_bops(trace: Trace) -> float:
    """BOPs the same trace would cost with original 8-bit activations."""
    return float(sum(s.macs * s.sub_ops for s in trace) * _DENSE_COST)


def relative_bops(trace: Trace, zero_skipping: bool = True) -> float:
    """Trace BOPs normalized to the dense 8-bit baseline (Fig. 6a)."""
    baseline = dense_bops_reference(trace)
    if baseline == 0:
        return 0.0
    return trace_bops(trace, zero_skipping) / baseline


def dense_bops_reference(trace: Trace) -> float:
    """Dense baseline counts each layer *once* (no difference sub-ops)."""
    return float(sum(s.macs for s in trace) * _DENSE_COST)


def per_step_relative_bops(
    trace: Trace, zero_skipping: bool = True
) -> Dict[int, float]:
    """Per-time-step relative BOPs (Fig. 6b)."""
    result: Dict[int, float] = {}
    for step_index, steps in trace.by_step().items():
        dense = sum(s.macs for s in steps) * _DENSE_COST
        actual = sum(layer_bops(s, zero_skipping) for s in steps)
        result[step_index] = actual / dense if dense else 0.0
    return result
