"""The Ditto algorithm: difference processing, Defo, traces, analytics."""

from .bitwidth import BitWidthStats, classify, required_bits, stats_from_counts
from .bops import (
    bops_per_mac,
    layer_bops,
    per_step_relative_bops,
    relative_bops,
    trace_bops,
)
from .defo import DefoReport, run_defo, run_ideal
from .engine import DittoEngine, EngineResult
from .session import EngineSession
from .graphinfo import GraphAnalyzer, LayerStaticInfo, analyze_model
from .modes import ExecutionMode
from .plan import ExecutionPlan, compare_plans, extract_plan
from .policy import lower_dense, lower_spatial, lower_temporal
from .similarity import (
    ActivationCapture,
    SimilarityReport,
    cosine,
    similarity_report,
    spatial_similarity,
    temporal_similarity,
    value_ranges,
)
from .trace import (
    LayerStep,
    RichLayerStep,
    RichTrace,
    Trace,
    TraceRecorder,
    derive_layer_step,
)

__all__ = [
    "ExecutionMode",
    "BitWidthStats",
    "classify",
    "required_bits",
    "stats_from_counts",
    "ExecutionPlan",
    "extract_plan",
    "compare_plans",
    "LayerStep",
    "RichLayerStep",
    "Trace",
    "RichTrace",
    "TraceRecorder",
    "derive_layer_step",
    "bops_per_mac",
    "layer_bops",
    "trace_bops",
    "relative_bops",
    "per_step_relative_bops",
    "lower_dense",
    "lower_spatial",
    "lower_temporal",
    "DefoReport",
    "run_defo",
    "run_ideal",
    "GraphAnalyzer",
    "LayerStaticInfo",
    "analyze_model",
    "DittoEngine",
    "EngineResult",
    "EngineSession",
    "ActivationCapture",
    "SimilarityReport",
    "cosine",
    "similarity_report",
    "temporal_similarity",
    "spatial_similarity",
    "value_ranges",
]
