"""Execution plans - the persisted output of one instrumented analysis run.

Ditto's instrumentation (``classify_many`` bucketing inside ``QLayer._record``)
exists to *derive* decisions: the bit-width composition that prices BOPs and
the Defo per-layer mode table.  Neither changes between serving runs of the
same engine - they are functions of the spec, the quantization scales, and
the derivation seed.  So the serving tier derives them **once**, persists the
result as an :class:`ExecutionPlan` in the content-addressed cache (keyed by
:func:`repro.runtime.hashing.plan_key`, invalidated by the same package
source fingerprint as every other entry), and replays every later run with
``record_trace=False`` - zero classify/record cost, samples bit-identical to
the instrumented path (pinned by ``tests/test_plan.py`` and
``tests/test_batched_state.py::test_run_without_trace_matches_instrumented``).

See ``docs/plan-cache.md`` for the artifact format, key derivation, and the
drift-check semantics.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .bitwidth import BitWidthStats, stats_from_counts
from .bops import relative_bops
from .defo import run_defo
from .policy import lower_temporal

__all__ = ["ExecutionPlan", "extract_plan", "compare_plans", "PLAN_FORMAT"]

# Bump when the payload layout below changes; part of the digest, so a
# format change can never alias two plans that happen to share field values.
PLAN_FORMAT = 1


@dataclass(frozen=True)
class ExecutionPlan:
    """Bitwidth plan + Defo decisions derived from one instrumented run.

    Everything a ``record_trace=False`` serving run needs to report (and a
    future fleet worker needs to execute) without re-instrumenting:

    * ``temporal_stats`` - the aggregate zero / 4-bit / over-4-bit operand
      composition of the temporal-difference lowering, rebuilt from the
      trace's summed bucket columns via
      :func:`repro.core.bitwidth.stats_from_counts`.
    * ``temporal_relative_bops`` - BOPs of that lowering relative to the
      dense 8-bit baseline (the serve report's MAC-savings headline).
    * ``decisions`` - the Defo per-layer mode table (layer name ->
      ``ExecutionMode`` name), empty for single-step traces where Defo has
      no second step to compare against.
    * the derivation parameters (``derivation_seed`` /
      ``derivation_batch_size``), so a drift check can replay the *exact*
      instrumented run the plan came from and demand a bit-identical digest.
    """

    benchmark: str
    num_steps: int
    num_model_calls: int
    num_records: int
    total_macs: int
    temporal_relative_bops: float
    temporal_stats: BitWidthStats
    decisions: Dict[str, str] = field(default_factory=dict)
    changed_layers: Tuple[str, ...] = ()
    hardware: str = "Ditto"
    derivation_seed: int = 0
    derivation_batch_size: int = 1
    format: int = PLAN_FORMAT

    @property
    def mac_savings_pct(self) -> float:
        """Percent of dense-baseline BOPs removed by the temporal lowering."""
        return 100.0 * (1.0 - self.temporal_relative_bops)

    def to_payload(self) -> Dict[str, object]:
        """Canonical JSON-ready rendering (the digest input and report form)."""
        return {
            "format": self.format,
            "benchmark": self.benchmark,
            "num_steps": self.num_steps,
            "num_model_calls": self.num_model_calls,
            "num_records": self.num_records,
            "total_macs": self.total_macs,
            "temporal_relative_bops": self.temporal_relative_bops,
            "temporal_stats": {
                "total": self.temporal_stats.total,
                "zero": self.temporal_stats.zero,
                "low": self.temporal_stats.low,
                "high": self.temporal_stats.high,
            },
            "decisions": dict(sorted(self.decisions.items())),
            "changed_layers": sorted(self.changed_layers),
            "hardware": self.hardware,
            "derivation_seed": self.derivation_seed,
            "derivation_batch_size": self.derivation_batch_size,
        }

    @property
    def digest(self) -> str:
        """SHA-256 over the canonical payload - the drift-check identity."""
        payload = json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary(self) -> str:
        """One human line for serve reports and logs."""
        return (
            f"plan {self.benchmark}: {self.num_records} records / "
            f"{self.num_steps} steps, temporal rel-BOPs "
            f"{self.temporal_relative_bops:.4f} "
            f"({self.mac_savings_pct:.1f}% MAC savings), "
            f"{len(self.decisions)} Defo decisions [{self.digest[:12]}]"
        )


def extract_plan(
    result,
    hardware: str = "Ditto",
    derivation_seed: int = 0,
    derivation_batch_size: int = 1,
) -> ExecutionPlan:
    """Derive the :class:`ExecutionPlan` from one instrumented run's result.

    Parameters
    ----------
    result:
        An :class:`~repro.core.engine.EngineResult` whose ``rich_trace``
        carries per-mode operand stats (i.e. produced with
        ``record_trace=True``, the default).
    hardware:
        Accelerator name for the Defo cycle model
        (:func:`repro.hw.build_accelerator`); decisions are skipped -- not
        failed -- for single-step traces, where Defo has no second step.
    derivation_seed, derivation_batch_size:
        The run parameters that produced ``result``; recorded so the drift
        check can replay the identical derivation.

    Returns
    -------
    ExecutionPlan
        The persisted-plan artifact; see the class docstring for fields.

    Raises
    ------
    ValueError
        If ``result`` has an empty trace (nothing to plan from - typically a
        ``record_trace=False`` run).
    """
    trace = result.rich_trace
    if not len(trace):
        raise ValueError(
            "cannot extract a plan from an empty trace; derive plans from an "
            "instrumented run (record_trace=True)"
        )
    temporal = lower_temporal(trace)
    stats = stats_from_counts(
        int(temporal.col("st_total").sum()),
        int(temporal.col("st_zero").sum()),
        int((temporal.col("st_zero") + temporal.col("st_low")).sum()),
    )
    decisions: Dict[str, str] = {}
    changed: Tuple[str, ...] = ()
    if trace.num_steps() >= 2:
        # Deferred import: repro.hw imports repro.core, so a module-level
        # import here would make the core package depend on its consumer.
        from ..hw import build_accelerator

        report = run_defo(trace, build_accelerator(hardware))
        decisions = {name: mode.name for name, mode in report.decisions.items()}
        changed = tuple(report.changed_layers)
    return ExecutionPlan(
        benchmark=result.benchmark,
        num_steps=trace.num_steps(),
        num_model_calls=result.num_model_calls,
        num_records=len(trace),
        total_macs=trace.total_macs(),
        temporal_relative_bops=float(relative_bops(temporal)),
        temporal_stats=stats,
        decisions=decisions,
        changed_layers=changed,
        hardware=hardware,
        derivation_seed=derivation_seed,
        derivation_batch_size=derivation_batch_size,
    )


def compare_plans(cached: ExecutionPlan, fresh: ExecutionPlan) -> List[str]:
    """Field-level differences between two plans (empty list = identical).

    Used by the serving drift check: ``fresh`` is re-derived by replaying
    ``cached``'s exact derivation run, so any difference means the cached
    artifact no longer matches what the current engine actually computes
    (a stale-cache bug, manual tampering, or nondeterminism - all worth
    reporting, none worth crashing a serve over).
    """
    if cached.digest == fresh.digest:
        return []
    diffs: List[str] = []
    for name, a, b in (
        ("format", cached.format, fresh.format),
        ("benchmark", cached.benchmark, fresh.benchmark),
        ("num_steps", cached.num_steps, fresh.num_steps),
        ("num_model_calls", cached.num_model_calls, fresh.num_model_calls),
        ("num_records", cached.num_records, fresh.num_records),
        ("total_macs", cached.total_macs, fresh.total_macs),
        (
            "temporal_relative_bops",
            cached.temporal_relative_bops,
            fresh.temporal_relative_bops,
        ),
        ("temporal_stats", cached.temporal_stats, fresh.temporal_stats),
        ("hardware", cached.hardware, fresh.hardware),
        ("derivation_seed", cached.derivation_seed, fresh.derivation_seed),
        (
            "derivation_batch_size",
            cached.derivation_batch_size,
            fresh.derivation_batch_size,
        ),
    ):
        if a != b:
            diffs.append(f"{name}: cached {a!r} != fresh {b!r}")
    if cached.decisions != fresh.decisions:
        moved = sorted(
            name
            for name in set(cached.decisions) | set(fresh.decisions)
            if cached.decisions.get(name) != fresh.decisions.get(name)
        )
        diffs.append(f"decisions differ for {len(moved)} layer(s): {moved[:5]}")
    if set(cached.changed_layers) != set(fresh.changed_layers):
        diffs.append("changed_layers differ")
    if not diffs:  # digest caught something the field walk cannot see
        diffs.append("digest mismatch")
    return diffs
