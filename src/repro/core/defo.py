"""Defo - Ditto execution flow optimization (paper Sections IV-B, VI-C).

Defo decides, per linear layer, whether temporal difference processing
actually wins on the target hardware:

1. **First time step** runs with original activations (Defo+ runs it with
   spatial differences) and the per-layer cycle count is stored
   (``Cycle_act``).
2. **Second time step** runs every layer with temporal differences and the
   cycle count is stored (``Cycle_diff``).
3. Layers with ``Cycle_act > Cycle_diff`` keep temporal difference
   processing for all later steps; the rest fall back to original-activation
   execution (Defo) or spatial difference processing (Defo+).

``Dynamic-Ditto`` (Fig. 19) re-evaluates the comparison every step and may
switch a layer from difference processing back to the fallback (never the
other direction - the hardware cannot observe difference cycles while
running dense).  ``ideal`` is the oracle that picks the per-layer, per-step
argmin; Fig. 17/18 measure how close Defo gets to it.

The hardware model is a parameter (anything exposing
``layer_cycles(LayerStep) -> LayerCycles``), so Defo decisions can be studied
on Ditto hardware, Cambricon-D, or the DS/DB ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .modes import ExecutionMode
from .trace import (
    DENSE_ID,
    MODE_ID,
    MODES,
    SPATIAL_ID,
    TEMPORAL_ID,
    RichLayerStep,
    RichTrace,
    Trace,
    derive_layer_step,
)

__all__ = ["DefoReport", "run_defo", "run_ideal"]


@dataclass
class DefoReport:
    """Outcome of a Defo-governed lowering."""

    trace: Trace
    decisions: Dict[str, ExecutionMode]
    cycle_act: Dict[str, float]
    cycle_diff: Dict[str, float]
    changed_layers: List[str]
    accuracy: float
    plus: bool
    dynamic: bool
    # mode actually used per (layer, step) for steps >= 2 (analysis aid)
    assigned: Dict[Tuple[str, int], ExecutionMode] = field(default_factory=dict)

    @property
    def changed_fraction(self) -> float:
        if not self.decisions:
            return 0.0
        return len(self.changed_layers) / len(self.decisions)

    def summary(self) -> str:
        kind = "Defo+" if self.plus else "Defo"
        if self.dynamic:
            kind = "Dynamic-" + kind
        return (
            f"{kind}: {len(self.changed_layers)}/{len(self.decisions)} layers "
            f"changed ({100 * self.changed_fraction:.1f}%), "
            f"decision accuracy {100 * self.accuracy:.1f}%"
        )


def _cycles(hardware, rich: RichLayerStep, mode: ExecutionMode, bypass: str) -> float:
    return hardware.layer_cycles(derive_layer_step(rich, mode, bypass)).cycles


def _ordered_steps(rich_trace: RichTrace) -> List[int]:
    return sorted(rich_trace.by_step())


def _allowed_mode_ids(rich_trace: RichTrace, attention_diff: bool) -> np.ndarray:
    """Per-record mode id of "temporal processing as allowed by the policy"."""
    if attention_diff:
        return np.full(len(rich_trace), TEMPORAL_ID, dtype=np.int64)
    return np.where(rich_trace.attention_mask(), DENSE_ID, TEMPORAL_ID)


def _cycles_for_modes(
    rich_trace: RichTrace, hardware, mode_ids: np.ndarray, bypass: str
) -> np.ndarray:
    """Per-record cycle counts under a hypothetical per-record mode choice.

    Uses the hardware model's vectorized column path when it has one;
    falls back to scalar ``layer_cycles`` calls for custom/stub models.
    """
    if hasattr(hardware, "cycles_array"):
        return np.asarray(
            hardware.cycles_array(rich_trace.lower_modes(mode_ids, bypass)),
            dtype=np.float64,
        )
    return np.array(
        [
            _cycles(hardware, view, MODES[mode_ids[i]], bypass)
            for i, view in enumerate(rich_trace.steps)
        ],
        dtype=np.float64,
    )


def run_defo(
    rich_trace: RichTrace,
    hardware,
    plus: bool = False,
    dynamic: bool = False,
    bypass_style: str = "chained",
    attention_diff: bool = True,
) -> DefoReport:
    """Lower ``rich_trace`` under Defo (or Defo+/Dynamic-Ditto) decisions.

    The hypothetical per-record cycle counts (temporal-as-allowed vs
    fallback) are produced by two vectorized lowerings up front; the
    decision walk itself is then pure array/dict bookkeeping - no hardware
    model calls inside the loop.
    """
    n = len(rich_trace)
    step_col = rich_trace.col("step_index")
    steps = [int(s) for s in np.unique(step_col)]
    if len(steps) < 2:
        raise ValueError("Defo needs at least two time steps to decide")
    fallback = ExecutionMode.SPATIAL if plus else ExecutionMode.DENSE
    fallback_id = MODE_ID[fallback]

    allowed_ids = _allowed_mode_ids(rich_trace, attention_diff)
    t_cycles = _cycles_for_modes(rich_trace, hardware, allowed_ids, bypass_style)
    f_cycles = _cycles_for_modes(
        rich_trace, hardware, np.full(n, fallback_id, dtype=np.int64), bypass_style
    )

    names = rich_trace.layer_names()
    layer_col = rich_trace.col("layer_id")
    # Records in by-step order (stable within a step = original record order).
    order = np.argsort(step_col, kind="stable")

    # -- step 1: store Cycle_act (fallback-mode cycles) ---------------------
    cycle_act: Dict[str, float] = {}
    for i in order[step_col[order] == steps[0]]:
        cycle_act[names[layer_col[i]]] = float(f_cycles[i])

    # -- step 2: store Cycle_diff and decide --------------------------------
    cycle_diff: Dict[str, float] = {}
    decisions: Dict[str, ExecutionMode] = {}
    for i in order[step_col[order] == steps[1]]:
        name = names[layer_col[i]]
        cycle_diff[name] = float(t_cycles[i])
        act = cycle_act.get(name)
        if act is None or allowed_ids[i] != TEMPORAL_ID:
            decisions[name] = fallback
        else:
            decisions[name] = (
                ExecutionMode.TEMPORAL if act > cycle_diff[name] else fallback
            )

    # -- later steps: assign modes (static Defo or Dynamic-Ditto) ----------
    assigned: Dict[Tuple[str, int], ExecutionMode] = {}
    current = dict(decisions)
    correct = 0
    total = 0
    for i in order[step_col[order] > steps[1]]:
        name = names[layer_col[i]]
        step_id = int(step_col[i])
        allowed = MODES[allowed_ids[i]]
        mode = current.get(name, allowed)
        assigned[(name, step_id)] = mode
        # Oracle for accuracy accounting (Fig. 17): per-step argmin.
        tc = float(t_cycles[i])
        oracle = allowed if tc < float(f_cycles[i]) else fallback
        total += 1
        if oracle is mode or (
            oracle is not ExecutionMode.TEMPORAL
            and mode is not ExecutionMode.TEMPORAL
        ):
            correct += 1
        if dynamic and mode is ExecutionMode.TEMPORAL:
            act = cycle_act.get(name)
            if act is not None and tc > act:
                current[name] = fallback

    # -- lower the full trace ------------------------------------------------
    first_mode_id = SPATIAL_ID if plus else DENSE_ID
    mode_ids = np.empty(n, dtype=np.int64)
    first_mask = step_col == steps[0]
    second_mask = step_col == steps[1]
    mode_ids[first_mask] = first_mode_id
    mode_ids[second_mask] = allowed_ids[second_mask]
    for i in np.flatnonzero(~(first_mask | second_mask)):
        mode = assigned.get(
            (names[layer_col[i]], int(step_col[i])), MODES[allowed_ids[i]]
        )
        mode_ids[i] = MODE_ID[mode]

    trace = rich_trace.lower_modes(mode_ids, bypass_style=bypass_style)
    changed = [
        name
        for name, mode in decisions.items()
        if mode is not ExecutionMode.TEMPORAL
    ]
    return DefoReport(
        trace=trace,
        decisions=decisions,
        cycle_act=cycle_act,
        cycle_diff=cycle_diff,
        changed_layers=changed,
        accuracy=correct / total if total else 1.0,
        plus=plus,
        dynamic=dynamic,
        assigned=assigned,
    )


def run_ideal(
    rich_trace: RichTrace,
    hardware,
    plus: bool = False,
    bypass_style: str = "chained",
    attention_diff: bool = True,
) -> Trace:
    """Oracle lowering: per-layer, per-step argmin of the mode cycle costs.

    The first step still runs dense/spatial (there is nothing to difference
    against), matching the paper's Ideal-Ditto definition.
    """
    step_col = rich_trace.col("step_index")
    first_step = int(step_col.min()) if len(rich_trace) else 0
    fallback = ExecutionMode.SPATIAL if plus else ExecutionMode.DENSE
    fallback_id = MODE_ID[fallback]

    allowed_ids = _allowed_mode_ids(rich_trace, attention_diff)
    t_cycles = _cycles_for_modes(rich_trace, hardware, allowed_ids, bypass_style)
    f_cycles = _cycles_for_modes(
        rich_trace,
        hardware,
        np.full(len(rich_trace), fallback_id, dtype=np.int64),
        bypass_style,
    )
    temporal_wins = (
        (step_col != first_step)
        & rich_trace.col("has_temporal")
        & (allowed_ids == TEMPORAL_ID)
        & (t_cycles < f_cycles)
    )
    mode_ids = np.where(temporal_wins, TEMPORAL_ID, fallback_id)
    return rich_trace.lower_modes(mode_ids, bypass_style=bypass_style)
