"""Defo - Ditto execution flow optimization (paper Sections IV-B, VI-C).

Defo decides, per linear layer, whether temporal difference processing
actually wins on the target hardware:

1. **First time step** runs with original activations (Defo+ runs it with
   spatial differences) and the per-layer cycle count is stored
   (``Cycle_act``).
2. **Second time step** runs every layer with temporal differences and the
   cycle count is stored (``Cycle_diff``).
3. Layers with ``Cycle_act > Cycle_diff`` keep temporal difference
   processing for all later steps; the rest fall back to original-activation
   execution (Defo) or spatial difference processing (Defo+).

``Dynamic-Ditto`` (Fig. 19) re-evaluates the comparison every step and may
switch a layer from difference processing back to the fallback (never the
other direction - the hardware cannot observe difference cycles while
running dense).  ``ideal`` is the oracle that picks the per-layer, per-step
argmin; Fig. 17/18 measure how close Defo gets to it.

The hardware model is a parameter (anything exposing
``layer_cycles(LayerStep) -> LayerCycles``), so Defo decisions can be studied
on Ditto hardware, Cambricon-D, or the DS/DB ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .modes import ExecutionMode
from .policy import is_attention
from .trace import RichLayerStep, RichTrace, Trace, derive_layer_step

__all__ = ["DefoReport", "run_defo", "run_ideal"]


@dataclass
class DefoReport:
    """Outcome of a Defo-governed lowering."""

    trace: Trace
    decisions: Dict[str, ExecutionMode]
    cycle_act: Dict[str, float]
    cycle_diff: Dict[str, float]
    changed_layers: List[str]
    accuracy: float
    plus: bool
    dynamic: bool
    # mode actually used per (layer, step) for steps >= 2 (analysis aid)
    assigned: Dict[Tuple[str, int], ExecutionMode] = field(default_factory=dict)

    @property
    def changed_fraction(self) -> float:
        if not self.decisions:
            return 0.0
        return len(self.changed_layers) / len(self.decisions)

    def summary(self) -> str:
        kind = "Defo+" if self.plus else "Defo"
        if self.dynamic:
            kind = "Dynamic-" + kind
        return (
            f"{kind}: {len(self.changed_layers)}/{len(self.decisions)} layers "
            f"changed ({100 * self.changed_fraction:.1f}%), "
            f"decision accuracy {100 * self.accuracy:.1f}%"
        )


def _cycles(hardware, rich: RichLayerStep, mode: ExecutionMode, bypass: str) -> float:
    return hardware.layer_cycles(derive_layer_step(rich, mode, bypass)).cycles


def _ordered_steps(rich_trace: RichTrace) -> List[int]:
    return sorted(rich_trace.by_step())


def run_defo(
    rich_trace: RichTrace,
    hardware,
    plus: bool = False,
    dynamic: bool = False,
    bypass_style: str = "chained",
    attention_diff: bool = True,
) -> DefoReport:
    """Lower ``rich_trace`` under Defo (or Defo+/Dynamic-Ditto) decisions."""
    steps = _ordered_steps(rich_trace)
    if len(steps) < 2:
        raise ValueError("Defo needs at least two time steps to decide")
    by_step = rich_trace.by_step()
    fallback = ExecutionMode.SPATIAL if plus else ExecutionMode.DENSE

    def allowed_temporal(rich: RichLayerStep) -> ExecutionMode:
        if not attention_diff and is_attention(rich):
            return ExecutionMode.DENSE
        return ExecutionMode.TEMPORAL

    # -- step 1: store Cycle_act (fallback-mode cycles) ---------------------
    cycle_act: Dict[str, float] = {}
    for rich in by_step[steps[0]]:
        cycle_act[rich.layer_name] = _cycles(hardware, rich, fallback, bypass_style)

    # -- step 2: store Cycle_diff and decide --------------------------------
    cycle_diff: Dict[str, float] = {}
    decisions: Dict[str, ExecutionMode] = {}
    for rich in by_step[steps[1]]:
        name = rich.layer_name
        mode = allowed_temporal(rich)
        cycle_diff[name] = _cycles(hardware, rich, mode, bypass_style)
        act = cycle_act.get(name)
        if act is None or mode is not ExecutionMode.TEMPORAL:
            decisions[name] = fallback
        else:
            decisions[name] = (
                ExecutionMode.TEMPORAL if act > cycle_diff[name] else fallback
            )

    # -- later steps: assign modes (static Defo or Dynamic-Ditto) ----------
    assigned: Dict[Tuple[str, int], ExecutionMode] = {}
    current = dict(decisions)
    correct = 0
    total = 0
    for step_id in steps[2:]:
        for rich in by_step[step_id]:
            name = rich.layer_name
            mode = current.get(name, allowed_temporal(rich))
            assigned[(name, step_id)] = mode
            # Oracle for accuracy accounting (Fig. 17): per-step argmin.
            t_cycles = _cycles(
                hardware, rich, allowed_temporal(rich), bypass_style
            )
            f_cycles = _cycles(hardware, rich, fallback, bypass_style)
            oracle = (
                allowed_temporal(rich) if t_cycles < f_cycles else fallback
            )
            total += 1
            if oracle is mode or (
                oracle is not ExecutionMode.TEMPORAL
                and mode is not ExecutionMode.TEMPORAL
            ):
                correct += 1
            if dynamic and mode is ExecutionMode.TEMPORAL:
                act = cycle_act.get(name)
                if act is not None and t_cycles > act:
                    current[name] = fallback

    # -- lower the full trace ------------------------------------------------
    first_mode = ExecutionMode.SPATIAL if plus else ExecutionMode.DENSE

    def mode_for(rich: RichLayerStep) -> ExecutionMode:
        if rich.step_index == steps[0]:
            return first_mode
        if rich.step_index == steps[1]:
            return allowed_temporal(rich)
        return assigned.get(
            (rich.layer_name, rich.step_index), allowed_temporal(rich)
        )

    trace = rich_trace.lower(mode_for, bypass_style=bypass_style)
    changed = [
        name
        for name, mode in decisions.items()
        if mode is not ExecutionMode.TEMPORAL
    ]
    return DefoReport(
        trace=trace,
        decisions=decisions,
        cycle_act=cycle_act,
        cycle_diff=cycle_diff,
        changed_layers=changed,
        accuracy=correct / total if total else 1.0,
        plus=plus,
        dynamic=dynamic,
        assigned=assigned,
    )


def run_ideal(
    rich_trace: RichTrace,
    hardware,
    plus: bool = False,
    bypass_style: str = "chained",
    attention_diff: bool = True,
) -> Trace:
    """Oracle lowering: per-layer, per-step argmin of the mode cycle costs.

    The first step still runs dense/spatial (there is nothing to difference
    against), matching the paper's Ideal-Ditto definition.
    """
    steps = _ordered_steps(rich_trace)
    fallback = ExecutionMode.SPATIAL if plus else ExecutionMode.DENSE

    def mode_for(rich: RichLayerStep) -> ExecutionMode:
        if rich.step_index == steps[0] or not rich.has_temporal:
            return fallback
        temporal = ExecutionMode.TEMPORAL
        if not attention_diff and is_attention(rich):
            return fallback
        t_cycles = _cycles(hardware, rich, temporal, bypass_style)
        f_cycles = _cycles(hardware, rich, fallback, bypass_style)
        return temporal if t_cycles < f_cycles else fallback

    return rich_trace.lower(mode_for, bypass_style=bypass_style)
