"""Execution-flow policies: lowering rich traces to hardware traces.

Each policy maps every :class:`~repro.core.trace.RichLayerStep` to an
execution mode, producing the hardware-facing :class:`~repro.core.trace.Trace`
a cycle model consumes:

* ``dense`` - original quantized activations everywhere (ITC / GPU).
* ``spatial`` - Diffy: intra-tensor differences at every step.
* ``temporal`` - the naive Ditto algorithm / Cambricon-D software: first
  step dense, every later step temporal differences.
* Defo / Defo+ / ideal / dynamic policies live in :mod:`repro.core.defo`.

``attention_diff=False`` forces the attention matmuls to dense, reproducing
the original Cambricon-D behaviour that "processes attention layers with
full bit-width operations" (paper Section VI-A).
"""

from __future__ import annotations

import numpy as np

from .trace import DENSE_ID, SPATIAL_ID, TEMPORAL_ID, RichLayerStep, RichTrace, Trace

__all__ = [
    "lower_dense",
    "lower_spatial",
    "lower_temporal",
    "is_attention",
]


def is_attention(rich: RichLayerStep) -> bool:
    return rich.kind.startswith("attn")


def _constant_modes(
    rich_trace: RichTrace, mode_id: int, attention_diff: bool
) -> np.ndarray:
    """One mode everywhere, except attention forced dense when restricted."""
    if attention_diff:
        return np.full(len(rich_trace), mode_id, dtype=np.int64)
    return np.where(rich_trace.attention_mask(), DENSE_ID, mode_id)


def lower_dense(rich_trace: RichTrace) -> Trace:
    """Every layer at every step with original 8-bit activations."""
    return rich_trace.lower_modes(
        _constant_modes(rich_trace, DENSE_ID, True), bypass_style="none"
    )


def lower_spatial(rich_trace: RichTrace, attention_diff: bool = True) -> Trace:
    """Diffy: spatial (intra-tensor) differences at every step."""
    return rich_trace.lower_modes(
        _constant_modes(rich_trace, SPATIAL_ID, attention_diff), bypass_style="none"
    )


def lower_temporal(
    rich_trace: RichTrace,
    bypass_style: str = "chained",
    attention_diff: bool = True,
) -> Trace:
    """Naive temporal difference processing: dense first step, diffs after.

    (Records without temporal stats - the first step - fall back to dense
    inside the lowering automatically.)
    """
    return rich_trace.lower_modes(
        _constant_modes(rich_trace, TEMPORAL_ID, attention_diff),
        bypass_style=bypass_style,
    )
