"""Execution-flow policies: lowering rich traces to hardware traces.

Each policy maps every :class:`~repro.core.trace.RichLayerStep` to an
execution mode, producing the hardware-facing :class:`~repro.core.trace.Trace`
a cycle model consumes:

* ``dense`` - original quantized activations everywhere (ITC / GPU).
* ``spatial`` - Diffy: intra-tensor differences at every step.
* ``temporal`` - the naive Ditto algorithm / Cambricon-D software: first
  step dense, every later step temporal differences.
* Defo / Defo+ / ideal / dynamic policies live in :mod:`repro.core.defo`.

``attention_diff=False`` forces the attention matmuls to dense, reproducing
the original Cambricon-D behaviour that "processes attention layers with
full bit-width operations" (paper Section VI-A).
"""

from __future__ import annotations

from typing import Callable

from .modes import ExecutionMode
from .trace import RichLayerStep, RichTrace, Trace

__all__ = [
    "lower_dense",
    "lower_spatial",
    "lower_temporal",
    "is_attention",
]


def is_attention(rich: RichLayerStep) -> bool:
    return rich.kind.startswith("attn")


def _guard_attention(
    mode_for: Callable[[RichLayerStep], ExecutionMode], attention_diff: bool
) -> Callable[[RichLayerStep], ExecutionMode]:
    if attention_diff:
        return mode_for

    def guarded(rich: RichLayerStep) -> ExecutionMode:
        if is_attention(rich):
            return ExecutionMode.DENSE
        return mode_for(rich)

    return guarded


def lower_dense(rich_trace: RichTrace) -> Trace:
    """Every layer at every step with original 8-bit activations."""
    return rich_trace.lower(lambda _rich: ExecutionMode.DENSE, bypass_style="none")


def lower_spatial(rich_trace: RichTrace, attention_diff: bool = True) -> Trace:
    """Diffy: spatial (intra-tensor) differences at every step."""
    mode_for = _guard_attention(lambda _rich: ExecutionMode.SPATIAL, attention_diff)
    return rich_trace.lower(mode_for, bypass_style="none")


def lower_temporal(
    rich_trace: RichTrace,
    bypass_style: str = "chained",
    attention_diff: bool = True,
) -> Trace:
    """Naive temporal difference processing: dense first step, diffs after.

    (Records without temporal stats - the first step - fall back to dense
    inside the lowering automatically.)
    """
    mode_for = _guard_attention(lambda _rich: ExecutionMode.TEMPORAL, attention_diff)
    return rich_trace.lower(mode_for, bypass_style=bypass_style)
