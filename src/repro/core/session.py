"""Continuous-batching sessions: row-granular stepping over a DittoEngine.

The micro-batcher of :mod:`repro.runtime.serving` launches *lockstep*
batches: every row enters at step 0 and leaves at step N together, so the
engine drains between batches and late arrivals wait a full trajectory.
Iteration-level (Orca-style) scheduling removes the drain: the engine keeps
one persistent batch whose rows each carry their *own* step index; finished
rows are evicted at step boundaries and queued requests admitted into the
freed rows, so the denoiser never runs below the achievable occupancy.

:class:`EngineSession` is that persistent batch.  Its correctness contract
is the serving invariance contract extended to arbitrary interleavings:

* every layer's temporal state differences per batch element, so a
  continuing row is unaffected by its neighbours being swapped;
* an admitted row starts from *zero* state, and the difference algebra
  (``0 + (q - 0) @ W == q @ W``, likewise for both attention identities)
  makes its first "temporal" step compute bit-exactly the dense result;
* per-row step indices feed the TDQ clustered quantizers
  (:func:`repro.quant.tdq.set_active_step` with a step vector), so each row
  quantizes under exactly the cluster scale its batch-1 replay would use,
  and a row crossing a cluster boundary falls back to dense *alone*;
* each row draws sampler noise from its own rng stream, so stochastic
  samplers (ddpm, ddim eta>0) replay their batch-1 reference exactly.

Together: any interleaving of admissions and evictions is bit-exact with N
seeded batch-1 runs (pinned by ``tests/test_batched_state.py``).

The same algebra is what makes the fault-tolerance contract
(:mod:`repro.runtime.faults`) provable rather than best-effort:

* a failed :meth:`EngineSession.step` leaves the session exactly where it
  was - the composition was committed *before* the forward (retried
  forwards see a zero temporal diff), the latents are only assigned on
  success, and every row's rng stream is rewound to its pre-step position -
  so a retry is an exact replay;
* :meth:`EngineSession.admit` accepts a ``step`` offset: a row re-admitted
  into a *fresh* session at trajectory step k starts from zero state, and
  the difference algebra makes its first step compute the dense result -
  bit-exactly what the dead session would have computed.  Crash recovery is
  therefore ``snapshot()`` + rebuild + re-admit, with no state migration;
* an injected :class:`~repro.runtime.faults.SessionKilled` marks the
  session unhealthy before propagating; an unhealthy session refuses
  further admissions and steps, forcing the driver through the recovery
  path instead of silently continuing on corrupt state.

Sessions never record traces - they are the throughput path.  Multi-step
samplers (PLMS, DPM-Solver++) keep whole-batch history and are rejected at
session open.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

# repro.quant imports are deferred to call time: the quantized layers import
# repro.core.bitwidth, which initializes this package, which imports this
# module - a module-level quant import here would therefore break
# ``import repro.quant`` whenever quant is the first repro package touched.
from ..nn import backends
from ..scratch import clear_scratch
from .modes import ExecutionMode

__all__ = ["EngineSession"]


@dataclass
class _SessionRow:
    """One in-flight request: identity, trajectory position, noise stream."""

    tag: object
    step: int  # next denoiser-call index for this row
    rng: Optional[np.random.Generator]


class EngineSession:
    """A persistent batch whose rows each advance at their own timestep.

    Use as a context manager (or call :meth:`close`): the session owns the
    engine's model state - interleaving ``engine.run`` calls with an open
    session corrupts the per-row temporal caches.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.engine.DittoEngine` to serve.
    capacity:
        Maximum concurrent rows (``None`` = unbounded).  The serving driver
        derives this from the micro-batch size sweep and, optionally, from a
        scratch-pool memory budget.
    plan:
        Optional pre-derived :class:`~repro.core.plan.ExecutionPlan`
        (plan-replay mode).  Sessions never instrument, so an attached plan
        is where the serving tier reads bitwidth/Defo numbers from; it must
        describe this engine (benchmark and step count are validated).

    Raises
    ------
    ValueError
        If the sampler is not row-steppable, ``capacity < 1``, or ``plan``
        describes a different engine.
    """

    def __init__(self, engine, capacity: Optional[int] = None, plan=None) -> None:
        sampler = engine.pipeline.sampler
        if not getattr(sampler, "row_stepping", False):
            raise ValueError(
                f"sampler {sampler.name!r} keeps cross-step history shared "
                "across the batch; continuous batching needs a row-steppable "
                "sampler (ddim/ddpm)"
            )
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if plan is not None:
            if plan.benchmark != engine.benchmark:
                raise ValueError(
                    f"plan was derived for benchmark {plan.benchmark!r}; "
                    f"this engine serves {engine.benchmark!r}"
                )
            if plan.num_model_calls != engine.pipeline.num_model_calls():
                raise ValueError(
                    f"plan covers {plan.num_model_calls} denoiser calls; "
                    f"this engine makes {engine.pipeline.num_model_calls()}"
                )
        self.engine = engine
        self.capacity = capacity
        self.plan = plan
        self.num_steps = len(sampler.timesteps)
        self._sample_shape = tuple(engine.pipeline.sample_shape)
        self._rows: List[_SessionRow] = []
        self._x = np.zeros((0,) + self._sample_shape)
        # Composition bookkeeping: the model state is shaped for
        # ``_state_batch`` rows; ``_mapping[new_pos]`` is the state row that
        # position continues (None = freshly admitted, zero state).
        self._state_batch = 0
        self._mapping: List[Optional[int]] = []
        self._tags = itertools.count()
        self._closed = False
        self._healthy = True
        self._unhealthy_reason = ""
        from ..quant.qlayers import reset_model_state, set_model_mode

        # Sticky scales must freeze batch-independently before any serving
        # row runs; a no-op once the engine has served anything.
        engine._freeze_scales(1)
        reset_model_state(engine.qmodel)
        set_model_mode(engine.qmodel, ExecutionMode.TEMPORAL)

    # -- introspection ----------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of in-flight rows."""
        return len(self._rows)

    @property
    def tags(self) -> List[object]:
        """Each in-flight row's tag, in row order."""
        return [row.tag for row in self._rows]

    @property
    def row_steps(self) -> List[int]:
        """Each in-flight row's next step index, in row order."""
        return [row.step for row in self._rows]

    @property
    def healthy(self) -> bool:
        """Whether the session still accepts admissions and steps."""
        return self._healthy

    @property
    def unhealthy_reason(self) -> str:
        """Why the session was marked unhealthy (empty while healthy)."""
        return self._unhealthy_reason

    def mark_unhealthy(self, reason: str) -> None:
        """Declare the session failed: no more admissions or steps.

        The rows (latents, step indices, rewound rng streams) stay readable
        via :meth:`snapshot` so the driver can re-admit them into a fresh
        session; only forward progress is refused.
        """
        self._healthy = False
        self._unhealthy_reason = reason

    def snapshot(self) -> List[Tuple[object, int, np.ndarray]]:
        """Checkpoint every in-flight row: ``[(tag, next_step, x), ...]``.

        The returned latents are copies, valid after :meth:`close`.  A
        snapshotted row re-admitted at its recorded step into a fresh
        session (same engine build) continues bit-exactly: admission starts
        from zero temporal state and the difference algebra makes the first
        step compute the dense result.
        """
        return [
            (row.tag, row.step, self._x[pos : pos + 1].copy())
            for pos, row in enumerate(self._rows)
        ]

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- admission / eviction ---------------------------------------------
    def admit(
        self,
        x_init: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        tag: Optional[object] = None,
        step: int = 0,
    ) -> object:
        """Queue one request into the batch, starting at step ``step``.

        ``x_init`` is the request's initial noise, shape ``sample_shape`` or
        ``(1, *sample_shape)``.  ``rng`` is the request's private sampler
        noise stream (required for stochastic samplers).  Returns the row's
        ``tag`` (auto-assigned if not given).  Takes effect at the next
        :meth:`step`.

        ``step > 0`` is the crash-recovery path: ``x_init`` is then the
        row's :meth:`snapshot` latent and ``rng`` its stream fast-forwarded
        past the draws already spent.  Mid-trajectory admission is bit-exact
        for the same reason step-0 admission is - the row starts from zero
        temporal state and its first step computes the dense result.
        """
        self._check_open()
        self._check_healthy()
        if not 0 <= step < self.num_steps:
            raise ValueError(
                f"admission step must be in [0, {self.num_steps}), got {step}"
            )
        if self.capacity is not None and len(self._rows) >= self.capacity:
            raise RuntimeError(
                f"session is at capacity ({self.capacity} rows); evict or "
                "step before admitting"
            )
        x = np.asarray(x_init, dtype=np.float64)
        if x.shape == self._sample_shape:
            x = x[None]
        if x.shape != (1,) + self._sample_shape:
            raise ValueError(
                f"x_init must have shape {self._sample_shape} or "
                f"(1, {', '.join(map(str, self._sample_shape))}); "
                f"got {x.shape}"
            )
        sampler = self.engine.pipeline.sampler
        if rng is None and getattr(sampler, "needs_rng", False):
            raise ValueError(
                f"sampler {sampler.name!r} draws posterior noise; admit() "
                "needs the request's private rng stream"
            )
        if tag is None:
            tag = next(self._tags)
        elif any(row.tag == tag for row in self._rows):
            raise ValueError(f"tag {tag!r} is already in flight")
        self._rows.append(_SessionRow(tag=tag, step=step, rng=rng))
        self._x = np.concatenate([self._x, x], axis=0)
        self._mapping.append(None)
        return tag

    def evict(self, tag: object) -> np.ndarray:
        """Remove an in-flight row (cancellation); returns its current x."""
        self._check_open()
        for pos, row in enumerate(self._rows):
            if row.tag == tag:
                x_row = self._x[pos : pos + 1].copy()
                self._drop(pos)
                return x_row
        raise KeyError(f"no in-flight row tagged {tag!r}")

    def _drop(self, pos: int) -> None:
        del self._rows[pos]
        del self._mapping[pos]
        self._x = np.delete(self._x, pos, axis=0)

    # -- stepping ----------------------------------------------------------
    def step(self) -> List[Tuple[object, np.ndarray]]:
        """Advance every in-flight row by one step; one denoiser call.

        Applies any pending composition change (admissions/evictions since
        the previous step) to the layer state, runs the denoiser once with
        the per-row timestep vector, advances each row with its own sampler
        step and noise stream, and auto-evicts rows that completed their
        trajectory.  Returns ``[(tag, sample), ...]`` for the completed rows
        (sample shape ``(1, *sample_shape)``).

        On failure the step is an exact no-op: the composition stays
        committed (retried forwards are idempotent - zero temporal diff),
        latents are untouched, and every row's rng stream is rewound past
        any partial draws, so a retry replays the step bit-exactly.  An
        ambient :class:`~repro.runtime.faults.FaultPlan` may inject an
        error or a kill here; a kill marks the session unhealthy before
        propagating.
        """
        from ..quant.qlayers import remap_model_rows, reset_model_state
        from ..quant.tdq import set_active_step
        from ..runtime import faults

        self._check_open()
        self._check_healthy()
        if not self._rows:
            raise RuntimeError("no in-flight rows; admit before stepping")
        engine = self.engine
        pipeline = engine.pipeline
        sampler = pipeline.sampler
        batch = len(self._rows)
        if self._mapping != list(range(self._state_batch)):
            if self._state_batch == 0:
                reset_model_state(engine.qmodel)
            else:
                remap_model_rows(engine.qmodel, self._mapping, self._state_batch)
            # The scratch pool keys buffers by (tag, shape) and never
            # evicts; occupancy churn would otherwise accumulate one buffer
            # set per distinct batch size (~capacity^2/2 rows at peak,
            # breaking the linear-growth assumption the --pool-budget-mb
            # cap relies on).  Dropping the pool at composition changes
            # costs one buffer-set reallocation per admission/eviction -
            # negligible against a denoiser step - and pins peak scratch to
            # the current batch size.
            clear_scratch()
        # Commit the composition as soon as the layer state matches it -
        # NOT after the forward.  If the forward or sampler raises (e.g. a
        # stochastic row admitted without an rng stream), a retried step
        # must see an identity mapping: re-applying the old mapping to the
        # already-remapped state would hand surviving rows another row's
        # temporal caches.  (A retried forward itself is safe: layers that
        # already advanced see a zero temporal diff and reproduce their
        # output bit-exactly.)
        self._state_batch = batch
        self._mapping = list(range(batch))
        steps = np.array([row.step for row in self._rows])
        t_rows = sampler.timesteps[steps].astype(np.float64)
        # Snapshot every row's stream position before any draw: a failure
        # after partial per-row draws (the sampler advances rows one at a
        # time) must not leave the earlier rows' streams ahead of their
        # batch-1 references on retry.
        rng_states = [faults.capture_rng_state(row.rng) for row in self._rows]
        set_active_step(steps)
        try:
            plan = faults.active()
            if plan is not None:
                plan.on_step_attempt([row.tag for row in self._rows], steps)
            # The forward dispatches on the engine's backend, exactly like
            # DittoEngine.run - a session must reproduce its engine's
            # batch-1 references whatever backend the engine was built for.
            with backends.use_backend(engine.backend):
                eps = pipeline.predict_noise_rows(self._x, t_rows)
            x_new = sampler.step_rows(
                eps, steps, self._x, [row.rng for row in self._rows]
            )
        except BaseException as exc:
            for row, state in zip(self._rows, rng_states):
                faults.restore_rng_state(row.rng, state)
            if isinstance(exc, faults.SessionKilled):
                self.mark_unhealthy(str(exc) or "session killed")
            raise
        finally:
            set_active_step(None)
        self._x = x_new
        finished: List[Tuple[object, np.ndarray]] = []
        for pos in range(batch - 1, -1, -1):
            row = self._rows[pos]
            row.step += 1
            if row.step >= self.num_steps:
                finished.append((row.tag, self._x[pos : pos + 1].copy()))
                self._drop(pos)
        finished.reverse()  # report in row order
        return finished

    def run_to_completion(self) -> Dict[object, np.ndarray]:
        """Step until the batch drains; returns ``{tag: sample}``."""
        samples: Dict[object, np.ndarray] = {}
        while self._rows:
            for tag, sample in self.step():
                samples[tag] = sample
        return samples

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release the engine: drop temporal state, clear the step vector."""
        from ..quant.qlayers import reset_model_state
        from ..quant.tdq import set_active_step

        if self._closed:
            return
        self._closed = True
        self._rows = []
        self._x = np.zeros((0,) + self._sample_shape)
        set_active_step(None)
        reset_model_state(self.engine.qmodel)
        clear_scratch()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    def _check_healthy(self) -> None:
        if not self._healthy:
            raise RuntimeError(
                f"session is unhealthy ({self._unhealthy_reason}); snapshot "
                "the rows, rebuild the engine, and re-admit"
            )
