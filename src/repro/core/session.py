"""Continuous-batching sessions: row-granular stepping over a DittoEngine.

The micro-batcher of :mod:`repro.runtime.serving` launches *lockstep*
batches: every row enters at step 0 and leaves at step N together, so the
engine drains between batches and late arrivals wait a full trajectory.
Iteration-level (Orca-style) scheduling removes the drain: the engine keeps
one persistent batch whose rows each carry their *own* step index; finished
rows are evicted at step boundaries and queued requests admitted into the
freed rows, so the denoiser never runs below the achievable occupancy.

:class:`EngineSession` is that persistent batch.  Its correctness contract
is the serving invariance contract extended to arbitrary interleavings:

* every layer's temporal state differences per batch element, so a
  continuing row is unaffected by its neighbours being swapped;
* an admitted row starts from *zero* state, and the difference algebra
  (``0 + (q - 0) @ W == q @ W``, likewise for both attention identities)
  makes its first "temporal" step compute bit-exactly the dense result;
* per-row step indices feed the TDQ clustered quantizers
  (:func:`repro.quant.tdq.set_active_step` with a step vector), so each row
  quantizes under exactly the cluster scale its batch-1 replay would use,
  and a row crossing a cluster boundary falls back to dense *alone*;
* each row draws sampler noise from its own rng stream, so stochastic
  samplers (ddpm, ddim eta>0) replay their batch-1 reference exactly.

Together: any interleaving of admissions and evictions is bit-exact with N
seeded batch-1 runs (pinned by ``tests/test_batched_state.py``).

Sessions never record traces - they are the throughput path.  Multi-step
samplers (PLMS, DPM-Solver++) keep whole-batch history and are rejected at
session open.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

# repro.quant imports are deferred to call time: the quantized layers import
# repro.core.bitwidth, which initializes this package, which imports this
# module - a module-level quant import here would therefore break
# ``import repro.quant`` whenever quant is the first repro package touched.
from ..scratch import clear_scratch
from .modes import ExecutionMode

__all__ = ["EngineSession"]


@dataclass
class _SessionRow:
    """One in-flight request: identity, trajectory position, noise stream."""

    tag: object
    step: int  # next denoiser-call index for this row
    rng: Optional[np.random.Generator]


class EngineSession:
    """A persistent batch whose rows each advance at their own timestep.

    Use as a context manager (or call :meth:`close`): the session owns the
    engine's model state - interleaving ``engine.run`` calls with an open
    session corrupts the per-row temporal caches.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.engine.DittoEngine` to serve.
    capacity:
        Maximum concurrent rows (``None`` = unbounded).  The serving driver
        derives this from the micro-batch size sweep and, optionally, from a
        scratch-pool memory budget.
    """

    def __init__(self, engine, capacity: Optional[int] = None) -> None:
        sampler = engine.pipeline.sampler
        if not getattr(sampler, "row_stepping", False):
            raise ValueError(
                f"sampler {sampler.name!r} keeps cross-step history shared "
                "across the batch; continuous batching needs a row-steppable "
                "sampler (ddim/ddpm)"
            )
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.num_steps = len(sampler.timesteps)
        self._sample_shape = tuple(engine.pipeline.sample_shape)
        self._rows: List[_SessionRow] = []
        self._x = np.zeros((0,) + self._sample_shape)
        # Composition bookkeeping: the model state is shaped for
        # ``_state_batch`` rows; ``_mapping[new_pos]`` is the state row that
        # position continues (None = freshly admitted, zero state).
        self._state_batch = 0
        self._mapping: List[Optional[int]] = []
        self._tags = itertools.count()
        self._closed = False
        from ..quant.qlayers import reset_model_state, set_model_mode

        # Sticky scales must freeze batch-independently before any serving
        # row runs; a no-op once the engine has served anything.
        engine._freeze_scales(1)
        reset_model_state(engine.qmodel)
        set_model_mode(engine.qmodel, ExecutionMode.TEMPORAL)

    # -- introspection ----------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of in-flight rows."""
        return len(self._rows)

    @property
    def tags(self) -> List[object]:
        return [row.tag for row in self._rows]

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- admission / eviction ---------------------------------------------
    def admit(
        self,
        x_init: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        tag: Optional[object] = None,
    ) -> object:
        """Queue one request into the batch, starting at step 0.

        ``x_init`` is the request's initial noise, shape ``sample_shape`` or
        ``(1, *sample_shape)``.  ``rng`` is the request's private sampler
        noise stream (required for stochastic samplers).  Returns the row's
        ``tag`` (auto-assigned if not given).  Takes effect at the next
        :meth:`step`.
        """
        self._check_open()
        if self.capacity is not None and len(self._rows) >= self.capacity:
            raise RuntimeError(
                f"session is at capacity ({self.capacity} rows); evict or "
                "step before admitting"
            )
        x = np.asarray(x_init, dtype=np.float64)
        if x.shape == self._sample_shape:
            x = x[None]
        if x.shape != (1,) + self._sample_shape:
            raise ValueError(
                f"x_init must have shape {self._sample_shape} or "
                f"(1, {', '.join(map(str, self._sample_shape))}); "
                f"got {x.shape}"
            )
        sampler = self.engine.pipeline.sampler
        if rng is None and getattr(sampler, "needs_rng", False):
            raise ValueError(
                f"sampler {sampler.name!r} draws posterior noise; admit() "
                "needs the request's private rng stream"
            )
        if tag is None:
            tag = next(self._tags)
        elif any(row.tag == tag for row in self._rows):
            raise ValueError(f"tag {tag!r} is already in flight")
        self._rows.append(_SessionRow(tag=tag, step=0, rng=rng))
        self._x = np.concatenate([self._x, x], axis=0)
        self._mapping.append(None)
        return tag

    def evict(self, tag: object) -> np.ndarray:
        """Remove an in-flight row (cancellation); returns its current x."""
        self._check_open()
        for pos, row in enumerate(self._rows):
            if row.tag == tag:
                x_row = self._x[pos : pos + 1].copy()
                self._drop(pos)
                return x_row
        raise KeyError(f"no in-flight row tagged {tag!r}")

    def _drop(self, pos: int) -> None:
        del self._rows[pos]
        del self._mapping[pos]
        self._x = np.delete(self._x, pos, axis=0)

    # -- stepping ----------------------------------------------------------
    def step(self) -> List[Tuple[object, np.ndarray]]:
        """Advance every in-flight row by one step; one denoiser call.

        Applies any pending composition change (admissions/evictions since
        the previous step) to the layer state, runs the denoiser once with
        the per-row timestep vector, advances each row with its own sampler
        step and noise stream, and auto-evicts rows that completed their
        trajectory.  Returns ``[(tag, sample), ...]`` for the completed rows
        (sample shape ``(1, *sample_shape)``).
        """
        from ..quant.qlayers import remap_model_rows, reset_model_state
        from ..quant.tdq import set_active_step

        self._check_open()
        if not self._rows:
            raise RuntimeError("no in-flight rows; admit before stepping")
        engine = self.engine
        pipeline = engine.pipeline
        sampler = pipeline.sampler
        batch = len(self._rows)
        if self._mapping != list(range(self._state_batch)):
            if self._state_batch == 0:
                reset_model_state(engine.qmodel)
            else:
                remap_model_rows(engine.qmodel, self._mapping, self._state_batch)
            # The scratch pool keys buffers by (tag, shape) and never
            # evicts; occupancy churn would otherwise accumulate one buffer
            # set per distinct batch size (~capacity^2/2 rows at peak,
            # breaking the linear-growth assumption the --pool-budget-mb
            # cap relies on).  Dropping the pool at composition changes
            # costs one buffer-set reallocation per admission/eviction -
            # negligible against a denoiser step - and pins peak scratch to
            # the current batch size.
            clear_scratch()
        # Commit the composition as soon as the layer state matches it -
        # NOT after the forward.  If the forward or sampler raises (e.g. a
        # stochastic row admitted without an rng stream), a retried step
        # must see an identity mapping: re-applying the old mapping to the
        # already-remapped state would hand surviving rows another row's
        # temporal caches.  (A retried forward itself is safe: layers that
        # already advanced see a zero temporal diff and reproduce their
        # output bit-exactly.)
        self._state_batch = batch
        self._mapping = list(range(batch))
        steps = np.array([row.step for row in self._rows])
        t_rows = sampler.timesteps[steps].astype(np.float64)
        set_active_step(steps)
        try:
            eps = pipeline.predict_noise_rows(self._x, t_rows)
            x_new = sampler.step_rows(
                eps, steps, self._x, [row.rng for row in self._rows]
            )
        finally:
            set_active_step(None)
        self._x = x_new
        finished: List[Tuple[object, np.ndarray]] = []
        for pos in range(batch - 1, -1, -1):
            row = self._rows[pos]
            row.step += 1
            if row.step >= self.num_steps:
                finished.append((row.tag, self._x[pos : pos + 1].copy()))
                self._drop(pos)
        finished.reverse()  # report in row order
        return finished

    def run_to_completion(self) -> Dict[object, np.ndarray]:
        """Step until the batch drains; returns ``{tag: sample}``."""
        samples: Dict[object, np.ndarray] = {}
        while self._rows:
            for tag, sample in self.step():
                samples[tag] = sample
        return samples

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release the engine: drop temporal state, clear the step vector."""
        from ..quant.qlayers import reset_model_state
        from ..quant.tdq import set_active_step

        if self._closed:
            return
        self._closed = True
        self._rows = []
        self._x = np.zeros((0,) + self._sample_shape)
        set_active_step(None)
        reset_model_state(self.engine.qmodel)
        clear_scratch()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")
