"""Bit-width requirement analysis (paper Section III-B, Fig. 5).

The paper defines the *bit-width requirement* of a quantized value as the
minimum number of bits needed to represent it, and buckets values into
``zero`` / ``<=4-bit`` / ``over-4-bit``.  These buckets drive everything
downstream: BOPs accounting, the Encoding Unit's 2-bit control signal, and
the Compute Unit's 1-vs-2-multiplier scheduling.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BitWidthStats",
    "classify",
    "classify_many",
    "clear_classification_pool",
    "required_bits",
    "stats_from_counts",
    "LOW_BITS",
    "FULL_BITS",
]

LOW_BITS = 4
FULL_BITS = 8

# Two's-complement range of a signed LOW_BITS integer.
_LOW_MIN = -(1 << (LOW_BITS - 1))
_LOW_MAX = (1 << (LOW_BITS - 1)) - 1


@dataclass(frozen=True)
class BitWidthStats:
    """Fractions of elements per bit-width bucket; fractions sum to 1."""

    total: int
    zero: int
    low: int
    high: int

    @property
    def zero_frac(self) -> float:
        return self.zero / self.total if self.total else 0.0

    @property
    def low_frac(self) -> float:
        return self.low / self.total if self.total else 0.0

    @property
    def high_frac(self) -> float:
        return self.high / self.total if self.total else 0.0

    @property
    def low_or_zero_frac(self) -> float:
        return self.zero_frac + self.low_frac

    def merge(self, other: "BitWidthStats") -> "BitWidthStats":
        return BitWidthStats(
            total=self.total + other.total,
            zero=self.zero + other.zero,
            low=self.low + other.low,
            high=self.high + other.high,
        )

    @staticmethod
    def empty() -> "BitWidthStats":
        return BitWidthStats(0, 0, 0, 0)


# |v + _BAND_SHIFT| <= _BAND_HALF  <=>  _LOW_MIN <= v <= _LOW_MAX for
# integer-valued v: one absolute-value band test instead of two comparisons
# plus an AND, i.e. one boolean temporary instead of three.
_BAND_SHIFT = -(_LOW_MIN + _LOW_MAX) / 2.0
_BAND_HALF = (_LOW_MAX - _LOW_MIN) / 2.0

# Per-thread (shape, dtype) -> (shift buffer, band buffer) pool.  The band
# test touches multi-MB operands (im2col patch matrices) thousands of times
# per run; reusing both temporaries per shape keeps the classification pass
# allocation-free on the hot path.  Deliberately NOT routed through
# repro.scratch.scratch_buffer: classification runs ~20k times per engine
# run and fetching the pair with a single dict lookup measurably beats two
# generic pool lookups.
_POOL = threading.local()


def clear_classification_pool() -> None:
    """Drop this thread's pooled band-test buffers (see repro.scratch)."""
    buffers = getattr(_POOL, "buffers", None)
    if buffers is not None:
        buffers.clear()


def _band_buffers(shape: tuple, dtype: np.dtype) -> tuple:
    buffers = getattr(_POOL, "buffers", None)
    if buffers is None:
        buffers = {}
        _POOL.buffers = buffers
    key = (shape, dtype)
    pair = buffers.get(key)
    if pair is None:
        pair = (np.empty(shape, dtype=dtype), np.empty(shape, dtype=np.bool_))
        buffers[key] = pair
    return pair


def _bucket_counts(values: np.ndarray) -> tuple:
    """``(total, zero, low_or_zero)`` of one array in two reductions.

    This is the single pass behind :func:`classify` / :func:`classify_many`:
    zeros are counted directly off the numeric array (no boolean temporary
    at all) and the low-or-zero band needs a single shifted absolute-value
    test; the ``low`` and ``high`` buckets fall out by subtraction, so no
    intermediate is ever re-scanned.

    int16 operands (the layers' narrow spatial-difference scratch, values
    well inside ±2^14) take a 2-byte fast path: shift so the band starts at
    zero, reinterpret as unsigned, and a single compare classifies the band
    - half the memory traffic of the float route.
    """
    v = values if isinstance(values, np.ndarray) else np.asarray(values)
    total = v.size
    zero = total - int(np.count_nonzero(v))
    if v.dtype == np.int16:
        shift_buf, band_buf = _band_buffers(v.shape, v.dtype)
        shifted = np.subtract(v, np.int16(_LOW_MIN), out=shift_buf)
        band = np.less_equal(
            shifted.view(np.uint16), np.uint16(_LOW_MAX - _LOW_MIN), out=band_buf
        )
        return total, zero, int(np.count_nonzero(band))
    out_dtype = v.dtype if v.dtype.kind == "f" else np.dtype(np.float64)
    shift_buf, band_buf = _band_buffers(v.shape, out_dtype)
    shifted = np.add(v, _BAND_SHIFT, out=shift_buf)
    np.abs(shifted, out=shifted)
    band = np.less_equal(shifted, _BAND_HALF, out=band_buf)
    low_or_zero = int(np.count_nonzero(band))
    return total, zero, low_or_zero


def stats_from_counts(total: int, zero: int, low_or_zero: int) -> BitWidthStats:
    """Rebuild :class:`BitWidthStats` from raw band-test counts.

    ``(total, zero, low_or_zero)`` is the accumulator triple the fused
    classification pass carries (see :func:`_bucket_counts`): the ``low`` and
    ``high`` buckets fall out by subtraction.  Plan extraction
    (:func:`repro.core.plan.extract_plan`) uses the same identity to rebuild
    an aggregate from a trace's summed bucket columns without touching any
    operand array.
    """
    return BitWidthStats(
        total=total, zero=zero, low=low_or_zero - zero, high=total - low_or_zero
    )


def classify(values: np.ndarray) -> BitWidthStats:
    """Bucket integer-valued ``values`` into zero / 4-bit / over-4-bit.

    ``values`` must already be in the quantized integer domain (the output of
    :meth:`repro.quant.SymmetricQuantizer.quantize` or a difference thereof).
    """
    return stats_from_counts(*_bucket_counts(values))


def classify_many(*arrays: np.ndarray) -> BitWidthStats:
    """Fused :func:`classify` over several operand arrays.

    Equivalent to merging per-array :func:`classify` results but accumulates
    the raw counts directly, so a layer step's dense / spatial / temporal
    operands (or the pieces of a spatial-difference view) are bucketed in
    one pass without intermediate :class:`BitWidthStats` objects.
    """
    total = zero = low_or_zero = 0
    for arr in arrays:
        t, z, lz = _bucket_counts(arr)
        total += t
        zero += z
        low_or_zero += lz
    return stats_from_counts(total, zero, low_or_zero)


def required_bits(values: np.ndarray) -> np.ndarray:
    """Per-element minimum signed bit-width (0 for zeros).

    A signed integer ``v != 0`` needs ``bit_length(v if v >= 0 else -v-1) + 1``
    bits; e.g. -8..7 fit in 4 bits.  Computed with exact integer arithmetic
    (a vectorized binary-search bit-length), so large power-of-two magnitudes
    near the float53 precision cliff classify correctly - ``2**53`` needs 55
    bits, which ``ceil(log2(float(2**53 + 1)))`` gets wrong.
    """
    v = np.asarray(values, dtype=np.int64)
    flat = v.reshape(-1)
    # Two's complement: ~x == -x - 1, so the non-negative magnitude whose
    # bit-length decides the width is reachable without overflow even for
    # the most negative int64.
    mag = np.where(flat < 0, ~flat, flat).astype(np.uint64)
    bits = np.zeros(flat.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        big = mag >= (np.uint64(1) << np.uint64(shift))
        bits[big] += shift
        mag[big] >>= np.uint64(shift)
    bits += mag.astype(np.int64)  # remaining 0/1 top bit
    bits = np.where(flat == 0, 0, bits + 1)
    return bits.reshape(v.shape)
