"""Bit-width requirement analysis (paper Section III-B, Fig. 5).

The paper defines the *bit-width requirement* of a quantized value as the
minimum number of bits needed to represent it, and buckets values into
``zero`` / ``<=4-bit`` / ``over-4-bit``.  These buckets drive everything
downstream: BOPs accounting, the Encoding Unit's 2-bit control signal, and
the Compute Unit's 1-vs-2-multiplier scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BitWidthStats", "classify", "required_bits", "LOW_BITS", "FULL_BITS"]

LOW_BITS = 4
FULL_BITS = 8

# Two's-complement range of a signed LOW_BITS integer.
_LOW_MIN = -(1 << (LOW_BITS - 1))
_LOW_MAX = (1 << (LOW_BITS - 1)) - 1


@dataclass(frozen=True)
class BitWidthStats:
    """Fractions of elements per bit-width bucket; fractions sum to 1."""

    total: int
    zero: int
    low: int
    high: int

    @property
    def zero_frac(self) -> float:
        return self.zero / self.total if self.total else 0.0

    @property
    def low_frac(self) -> float:
        return self.low / self.total if self.total else 0.0

    @property
    def high_frac(self) -> float:
        return self.high / self.total if self.total else 0.0

    @property
    def low_or_zero_frac(self) -> float:
        return self.zero_frac + self.low_frac

    def merge(self, other: "BitWidthStats") -> "BitWidthStats":
        return BitWidthStats(
            total=self.total + other.total,
            zero=self.zero + other.zero,
            low=self.low + other.low,
            high=self.high + other.high,
        )

    @staticmethod
    def empty() -> "BitWidthStats":
        return BitWidthStats(0, 0, 0, 0)


def classify(values: np.ndarray) -> BitWidthStats:
    """Bucket integer-valued ``values`` into zero / 4-bit / over-4-bit.

    ``values`` must already be in the quantized integer domain (the output of
    :meth:`repro.quant.SymmetricQuantizer.quantize` or a difference thereof).
    """
    v = np.asarray(values)
    total = int(v.size)
    zero = int(np.count_nonzero(v == 0))
    low_or_zero = int(np.count_nonzero((v >= _LOW_MIN) & (v <= _LOW_MAX)))
    low = low_or_zero - zero
    high = total - low_or_zero
    return BitWidthStats(total=total, zero=zero, low=low, high=high)


def required_bits(values: np.ndarray) -> np.ndarray:
    """Per-element minimum signed bit-width (0 for zeros).

    A signed integer ``v != 0`` needs ``ceil(log2(max(v+1, -v))) + 1`` bits;
    e.g. -8..7 fit in 4 bits.
    """
    v = np.asarray(values, dtype=np.int64)
    magnitude = np.where(v >= 0, v + 1, -v).astype(np.float64)
    bits = np.ceil(np.log2(np.maximum(magnitude, 1.0))) + 1.0
    return np.where(v == 0, 0, bits.astype(np.int64))
