"""Temporal / spatial value-similarity analytics (paper Figs. 3 and 4).

These run on the FP32 models: forward hooks capture every linear layer's
input activation at every denoiser invocation, then we measure

* **temporal cosine similarity** between the same layer's activations at
  adjacent time steps (paper: avg 0.983, always > 0.94),
* **spatial cosine similarity** between neighbouring positions inside one
  activation (paper: avg 0.31) - neighbouring channel vectors along the
  trailing spatial/token axis,
* **value ranges** of activations vs temporal differences (paper: diffs are
  8.96x narrower on average).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from ..nn.layers import Conv2d, Linear
from ..nn.module import Module

__all__ = [
    "ActivationCapture",
    "cosine",
    "SimilarityReport",
    "temporal_similarity",
    "spatial_similarity",
    "value_ranges",
    "similarity_report",
]


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two tensors, flattened."""
    a = a.ravel()
    b = b.ravel()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0.0:
        return 1.0 if np.array_equal(a, b) else 0.0
    return float(np.dot(a, b) / denom)


class ActivationCapture:
    """Context manager capturing linear-layer inputs across denoiser calls.

    Usage::

        with ActivationCapture(fp_model) as capture:
            pipeline.generate(1, rng)
        sims = temporal_similarity(capture.activations)
    """

    def __init__(self, model: Module, dtype=np.float32) -> None:
        self.model = model
        self.dtype = dtype
        self.activations: Dict[str, List[np.ndarray]] = {}
        self._removers: List[Callable[[], None]] = []

    def __enter__(self) -> "ActivationCapture":
        for name, module in self.model.named_modules():
            if isinstance(module, (Linear, Conv2d)):
                self._removers.append(
                    module.register_forward_hook(self._make_hook(name))
                )
        return self

    def __exit__(self, *exc_info) -> None:
        for remove in self._removers:
            remove()
        del self._removers[:]

    def _make_hook(self, name: str):
        def hook(_module, inputs, _output) -> None:
            if inputs and isinstance(inputs[0], np.ndarray):
                self.activations.setdefault(name, []).append(
                    inputs[0].astype(self.dtype)
                )

        return hook


def temporal_similarity(
    activations: Dict[str, List[np.ndarray]]
) -> Dict[str, List[float]]:
    """Per-layer cosine similarities between adjacent time-step inputs."""
    result: Dict[str, List[float]] = {}
    for name, history in activations.items():
        sims = [
            cosine(prev, cur)
            for prev, cur in zip(history, history[1:])
            if prev.shape == cur.shape
        ]
        if sims:
            result[name] = sims
    return result


def _spatial_pairs(x: np.ndarray) -> float:
    """Mean cosine between neighbouring positions along the last axis-but-one.

    For image activations ``(N, C, H, W)`` this compares the channel vectors
    of horizontally adjacent pixels; for token activations ``(B, T, D)``
    adjacent tokens; 2-D inputs compare adjacent rows.
    """
    if x.ndim == 4:
        a = x[:, :, :, :-1]
        b = x[:, :, :, 1:]
        axis = 1
    elif x.ndim >= 2 and x.shape[-2] > 1:
        a = np.moveaxis(x, -2, 0)[:-1]
        b = np.moveaxis(x, -2, 0)[1:]
        axis = -1
    else:
        return float("nan")
    dot = np.sum(a * b, axis=axis)
    norms = np.linalg.norm(a, axis=axis) * np.linalg.norm(b, axis=axis)
    valid = norms > 0
    if not np.any(valid):
        return float("nan")
    return float(np.mean(dot[valid] / norms[valid]))


def spatial_similarity(
    activations: Dict[str, List[np.ndarray]]
) -> Dict[str, float]:
    """Per-layer average spatial cosine similarity over all captured steps."""
    result: Dict[str, float] = {}
    for name, history in activations.items():
        values = [_spatial_pairs(x) for x in history]
        values = [v for v in values if not np.isnan(v)]
        if values:
            result[name] = float(np.mean(values))
    return result


def value_ranges(
    activations: Dict[str, List[np.ndarray]]
) -> Dict[str, Dict[str, float]]:
    """Per-layer mean value range of activations and temporal differences."""
    result: Dict[str, Dict[str, float]] = {}
    for name, history in activations.items():
        act_ranges = [float(np.ptp(x)) for x in history]
        diff_ranges = [
            float(np.ptp(cur.astype(np.float64) - prev))
            for prev, cur in zip(history, history[1:])
            if prev.shape == cur.shape
        ]
        if not diff_ranges:
            continue
        act_range = float(np.mean(act_ranges))
        diff_range = float(np.mean(diff_ranges))
        result[name] = {
            "activation_range": act_range,
            "difference_range": diff_range,
            "ratio": act_range / diff_range if diff_range else float("inf"),
        }
    return result


@dataclass
class SimilarityReport:
    """Aggregated Fig. 3 / Fig. 4 style metrics for one model run."""

    benchmark: str
    temporal: Dict[str, List[float]] = field(default_factory=dict)
    spatial: Dict[str, float] = field(default_factory=dict)
    ranges: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def avg_temporal(self) -> float:
        values = [np.mean(v) for v in self.temporal.values()]
        return float(np.mean(values)) if values else float("nan")

    @property
    def avg_spatial(self) -> float:
        values = list(self.spatial.values())
        return float(np.mean(values)) if values else float("nan")

    @property
    def avg_range_ratio(self) -> float:
        ratios = [
            entry["ratio"]
            for entry in self.ranges.values()
            if np.isfinite(entry["ratio"])
        ]
        return float(np.mean(ratios)) if ratios else float("nan")

    def summary(self) -> str:
        return (
            f"{self.benchmark}: temporal sim {self.avg_temporal:.3f}, "
            f"spatial sim {self.avg_spatial:.3f}, "
            f"range ratio {self.avg_range_ratio:.2f}x"
        )


def similarity_report(
    benchmark: str,
    model: Module,
    run_fn: Callable[[], None],
) -> SimilarityReport:
    """Capture activations while ``run_fn`` executes and aggregate metrics."""
    with ActivationCapture(model) as capture:
        run_fn()
    return SimilarityReport(
        benchmark=benchmark,
        temporal=temporal_similarity(capture.activations),
        spatial=spatial_similarity(capture.activations),
        ranges=value_ranges(capture.activations),
    )
