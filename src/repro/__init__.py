"""Ditto: Accelerating Diffusion Model via Temporal Value Similarity.

Full reproduction of the HPCA 2025 paper: a pure-numpy diffusion-model stack
(models, samplers, quantization), the Ditto temporal-difference algorithm
with Defo execution-flow optimization, and an analytic cycle/energy simulator
for the Ditto hardware and its baselines (GPU, ITC, Diffy, Cambricon-D).

Quick start::

    from repro.workloads import get_benchmark
    from repro.core import DittoEngine

    spec = get_benchmark("DDPM")
    engine = DittoEngine.from_benchmark(spec, num_steps=10)
    result = engine.run()
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = [
    "nn",
    "models",
    "diffusion",
    "quant",
    "core",
    "hw",
    "metrics",
    "workloads",
    "analysis",
    "export",
    "runtime",
    "cli",
]
