"""Cross-layer engine defaults that MUST resolve identically everywhere.

The calibration-trajectory precision is consumed in four places that can
never be allowed to drift apart: ``DittoEngine.from_benchmark`` (what
actually runs), ``BenchmarkSpec.signature`` and
``repro.runtime.hashing.spec_signature`` (spec identity in cache keys), and
``repro.runtime.hashing.engine_key`` (result identity).  If one site
resolved the default differently, a float64-calibrated result could be
served from a float32 cache entry or equivalent runs would stop sharing
entries.  The compute-backend selection (PR 10) has the same shape: the
backend an engine runs on and the backend its cache keys record must come
from one rule, or a ``blas-batched`` result could be served from a
``reference`` entry.  This module is import-cycle-free (no repro imports),
so every layer can use the one resolution rule.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "DEFAULT_BACKEND",
    "DEFAULT_CALIBRATION_DTYPE",
    "resolve_backend",
    "resolve_calibration_dtype",
]

DEFAULT_CALIBRATION_DTYPE = "float32"

DEFAULT_BACKEND = "reference"


def resolve_calibration_dtype(spec=None, override: Optional[str] = None) -> str:
    """The calibration dtype a run will actually use.

    Resolution order: explicit ``override`` argument, else the spec's
    ``calibration_dtype`` pin, else :data:`DEFAULT_CALIBRATION_DTYPE` - the
    exact rule ``DittoEngine.from_benchmark`` applies.
    """
    if override is not None:
        return str(override)
    pinned = getattr(spec, "calibration_dtype", None)
    if pinned is not None:
        return str(pinned)
    return DEFAULT_CALIBRATION_DTYPE


def resolve_backend(spec=None, override: Optional[str] = None) -> str:
    """The compute backend a run *requests* (by name).

    Resolution order: explicit ``override`` argument, else the spec's
    ``backend`` pin, else the ``REPRO_BACKEND`` environment variable (how
    the CI backend matrix leg steers a whole test run), else
    :data:`DEFAULT_BACKEND`.

    The result is the *requested* backend name.  Availability fallback (an
    unavailable backend degrading to ``reference`` with a recorded reason)
    happens inside :mod:`repro.nn.backends` and deliberately does NOT
    collapse this name: cache keys embed the requested backend, so a
    degraded run never aliases a native ``reference`` entry.
    """
    if override is not None:
        return str(override)
    pinned = getattr(spec, "backend", None)
    if pinned is not None:
        return str(pinned)
    env = os.environ.get("REPRO_BACKEND")
    if env:
        return env
    return DEFAULT_BACKEND
