"""Cross-layer engine defaults that MUST resolve identically everywhere.

The calibration-trajectory precision is consumed in four places that can
never be allowed to drift apart: ``DittoEngine.from_benchmark`` (what
actually runs), ``BenchmarkSpec.signature`` and
``repro.runtime.hashing.spec_signature`` (spec identity in cache keys), and
``repro.runtime.hashing.engine_key`` (result identity).  If one site
resolved the default differently, a float64-calibrated result could be
served from a float32 cache entry or equivalent runs would stop sharing
entries.  This module is import-cycle-free (no repro imports), so every
layer can use the one resolution rule.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["DEFAULT_CALIBRATION_DTYPE", "resolve_calibration_dtype"]

DEFAULT_CALIBRATION_DTYPE = "float32"


def resolve_calibration_dtype(spec=None, override: Optional[str] = None) -> str:
    """The calibration dtype a run will actually use.

    Resolution order: explicit ``override`` argument, else the spec's
    ``calibration_dtype`` pin, else :data:`DEFAULT_CALIBRATION_DTYPE` - the
    exact rule ``DittoEngine.from_benchmark`` applies.
    """
    if override is not None:
        return str(override)
    pinned = getattr(spec, "calibration_dtype", None)
    if pinned is not None:
        return str(pinned)
    return DEFAULT_CALIBRATION_DTYPE
