"""Timestep-clustered quantization (Q-Diffusion / TDQ synergy).

The paper's Related Work section notes that Ditto composes with
timestep-specific quantization schemes: Q-Diffusion [50] and TDQ [80]
observe that activation ranges drift across the reverse process and assign
*different scaling factors to clusters of time steps*.  Ditto only needs
the scale to be shared *within* a cluster for its integer differences to be
exact; at a cluster boundary the layer falls back to one dense step (the
temporal state is invalidated because the integer grids differ).

:class:`TimestepClusteredQuantizer` implements exactly that contract:

* ``calibrate_clusters`` segments the trajectory into ``num_clusters``
  contiguous windows and fits one symmetric scale per window per layer
  (contiguous segmentation follows TDQ - ranges drift monotonically-ish,
  so k-means over time collapses to windows anyway);
* at run time the engine announces the step index via
  :func:`set_active_step`; each quantizer serves the scale of the active
  cluster; crossing a boundary changes the scale, which the Q-layers detect
  (the cached previous input was produced under another grid) and handle by
  re-running dense - no approximation anywhere.

The accuracy/efficiency trade-off this buys (tighter scales per window vs
extra dense steps) is measured in ``benchmarks/test_ablation_tdq.py``.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from .quantizer import SymmetricQuantizer, quantize

__all__ = [
    "TimestepClusteredQuantizer",
    "cluster_bounds",
    "set_active_step",
    "active_step",
]

_step_state = threading.local()


def set_active_step(step_index) -> None:
    """Announce the current denoiser call index to clustered quantizers.

    ``step_index`` is an ``int`` (the whole batch sits at one step - the
    lockstep serving and instrumentation paths), ``None`` (no trajectory is
    active), or an integer array of per-row step indices (a continuous
    batching session whose rows each carry their own timestep, see
    :class:`repro.core.session.EngineSession`).
    """
    _step_state.value = step_index


def active_step():
    return getattr(_step_state, "value", None)


def cluster_bounds(num_steps: int, num_clusters: int) -> List[int]:
    """Start indices of ``num_clusters`` contiguous step windows.

    Windows are as even as possible with the *larger* windows first
    (ceil-style edges): ``10`` steps over ``3`` clusters gives windows of
    4, 3 and 3 steps.  ``num_clusters`` is capped at ``num_steps`` so no
    window is ever empty.

    >>> cluster_bounds(10, 3)
    [0, 4, 7]
    """
    if num_clusters < 1:
        raise ValueError("need at least one cluster")
    num_clusters = min(num_clusters, num_steps)
    return [
        (i * num_steps + num_clusters - 1) // num_clusters
        for i in range(num_clusters)
    ]


class TimestepClusteredQuantizer(SymmetricQuantizer):
    """Symmetric quantizer whose scale depends on the active step cluster."""

    def __init__(self, bits: int = 8, num_clusters: int = 1) -> None:
        super().__init__(bits)
        if num_clusters < 1:
            raise ValueError("need at least one cluster")
        self.num_clusters = num_clusters
        self._bounds: List[int] = [0]
        self._cluster_scales: List[Optional[float]] = [None] * num_clusters
        self._observed: List[float] = [0.0] * num_clusters

    # -- calibration ---------------------------------------------------------
    def configure(self, num_steps: int) -> None:
        """Fix the step -> cluster mapping for a trajectory length."""
        self._bounds = cluster_bounds(num_steps, self.num_clusters)

    def cluster_of(self, step_index: int) -> int:
        cluster = 0
        for i, start in enumerate(self._bounds):
            if step_index >= start:
                cluster = i
        return cluster

    def observe_step(self, x: np.ndarray, step_index: int) -> None:
        cluster = self.cluster_of(step_index)
        peak = float(np.max(np.abs(x))) if x.size else 0.0
        self._observed[cluster] = max(self._observed[cluster], peak)

    def freeze_clusters(self) -> List[float]:
        """Fix every cluster's scale from its observed range."""
        scales = []
        for cluster in range(self.num_clusters):
            peak = self._observed[cluster]
            if peak <= 0.0:
                # Fall back to the widest observed range (or unit scale).
                peak = max(self._observed) or 1.0
            scales.append(peak / self.qmax)
        self._cluster_scales = scales
        self.scale = scales[0]
        return scales

    # -- runtime ----------------------------------------------------------
    @property
    def calibrated(self) -> bool:
        return all(s is not None for s in self._cluster_scales)

    def scale_for_step(self, step_index: Optional[int]) -> float:
        if step_index is None:
            step_index = 0
        cluster = self.cluster_of(step_index)
        scale = self._cluster_scales[cluster]
        if scale is None:
            raise RuntimeError("clustered quantizer used before calibration")
        return scale

    def scales_for_rows(self, steps: np.ndarray, x: np.ndarray):
        """Per-row scales for a batch whose rows sit at different steps.

        ``steps`` holds one step index per *pipeline* row; when the layer
        sees a stacked multiple of that batch (classifier-free guidance runs
        ``[cond; uncond]``) the row scales tile accordingly.  Collapses to a
        scalar when every row lands in the same cluster, which keeps lockstep
        batches on the exact arithmetic (and fast path) they always used.
        """
        clusters = np.searchsorted(self._bounds, steps, side="right") - 1
        batch = x.shape[0]
        if batch != clusters.shape[0]:
            if clusters.shape[0] == 0 or batch % clusters.shape[0]:
                raise RuntimeError(
                    f"per-row step vector of length {clusters.shape[0]} does "
                    f"not tile the layer batch {batch}"
                )
            clusters = np.tile(clusters, batch // clusters.shape[0])
        if np.all(clusters == clusters[0]):
            return self.scale_for_step(int(steps.reshape(-1)[0]))
        scales = np.asarray(self._cluster_scales, dtype=np.float64)[clusters]
        return scales.reshape((batch,) + (1,) * (x.ndim - 1))

    def ensure_scale(self, x: np.ndarray):
        step = active_step()
        if self.calibrated:
            if isinstance(step, np.ndarray):
                self.scale = self.scales_for_rows(step, x)
            else:
                self.scale = self.scale_for_step(step)
            return self.scale
        # Uncalibrated fallback: behave like the sticky base quantizer.
        return super().ensure_scale(x)

    def quantize(self, x: np.ndarray, out_dtype=None) -> np.ndarray:
        return quantize(x, self.ensure_scale(x), self.bits, out_dtype=out_dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimestepClusteredQuantizer(bits={self.bits}, "
            f"clusters={self.num_clusters}, scales={self._cluster_scales})"
        )
