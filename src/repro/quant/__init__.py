"""Quantization substrate: fake-quant primitives, calibration, Q-layers."""

from .calibration import (
    CalibrationCollector,
    ClusteredCalibrationCollector,
    calibrate_model,
    calibrate_model_clustered,
)
from .tdq import TimestepClusteredQuantizer, active_step, cluster_bounds, set_active_step
from .qlayers import (
    QAttention,
    QConv2d,
    QLayerBase,
    QLinear,
    iter_qlayers,
    quantize_model,
    reset_model_state,
    set_model_mode,
)
from .quantizer import SymmetricQuantizer, dequantize, qrange, quantize

__all__ = [
    "SymmetricQuantizer",
    "quantize",
    "dequantize",
    "qrange",
    "QLayerBase",
    "QLinear",
    "QConv2d",
    "QAttention",
    "quantize_model",
    "iter_qlayers",
    "reset_model_state",
    "set_model_mode",
    "CalibrationCollector",
    "ClusteredCalibrationCollector",
    "calibrate_model",
    "calibrate_model_clustered",
    "TimestepClusteredQuantizer",
    "cluster_bounds",
    "set_active_step",
    "active_step",
]
