"""Offline calibration of input scales (Q-Diffusion-style).

Q-Diffusion calibrates scaling factors offline by running the FP32 model
over representative reverse trajectories.  What Ditto needs from that
procedure is a per-layer scale *shared by adjacent time steps*, so that the
quantized temporal difference ``q_t - q_{t+1}`` is an exact integer.  This
module reproduces that: it hooks every linear layer of the FP32 model, runs
one or more short trajectories, records per-layer input ranges, and emits a
``{layer_name: scale}`` table consumable by
:func:`repro.quant.qlayers.quantize_model`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List

import numpy as np

from ..lint import runtime as sanitizer
from ..nn import functional as F
from ..nn.attention import Attention
from ..nn.layers import Conv2d, Linear
from ..nn.module import Module
from .quantizer import SymmetricQuantizer

__all__ = [
    "CalibrationCollector",
    "calibrate_model",
    "calibration_precision",
]


@contextmanager
def calibration_precision(model: Module, pipeline, dtype):
    """Run the calibration trajectory in ``dtype`` (the float32 fast path).

    The FP32 calibration trajectory only exists to observe per-layer
    activation peaks; it does not feed samples to anyone.  Running it in
    float32 instead of float64 halves the memory traffic of every kernel in
    the trajectory - the dominant cold-build cost - while moving the
    observed peaks (and therefore the quantization scales) by at most a few
    ulps of float32, orders of magnitude below quantization resolution
    (bounds pinned per benchmark in ``tests/test_hotloop_numerics.py``).

    Within the context:

    * every :class:`~repro.nn.module.Parameter` and every plain float64
      ``ndarray`` module attribute (DiT/Latte positional tables) is swapped
      for a float32 copy,
    * the pipeline's conditioning tensors are cast (and the tiled-cond
      memo cleared, both on entry and exit, so no float32 tile leaks into
      the quantized run),
    * ``pipeline.predict_noise`` casts the sampler's float64 state to
      ``dtype`` at the model boundary, and
    * sinusoidal embeddings emit ``dtype`` (the one in-model float64
      source), via :func:`repro.nn.functional.set_embedding_dtype`.

    Everything is restored on exit - the original float64 weights are kept
    by reference, so quantization afterwards sees bit-identical parameters.
    ``dtype=float64`` makes the context a no-op (the escape hatch).
    """
    dt = np.dtype(dtype)
    if dt == np.float64:
        yield
        return
    if dt != np.float32:
        raise ValueError(
            f"calibration dtype must be float32 or float64, got {dt}"
        )
    # The save lists build incrementally INSIDE the try block: if any cast
    # raises mid-setup (e.g. MemoryError on a large positional table), the
    # finally still restores everything swapped so far - a user-owned model
    # must never come back half-cast to float32.
    saved_params: List[tuple] = []
    seen_params = set()
    saved_attrs: List[tuple] = []
    saved_cond: List[tuple] = []
    prev_predict = pipeline.__dict__.get("predict_noise")
    prev_embed = F.embedding_dtype()
    try:
        for _, param in model.named_parameters():
            if id(param) in seen_params:
                continue
            seen_params.add(id(param))
            if param.data.dtype == np.float64:
                saved_params.append((param, param.data))
                param.data = param.data.astype(dt)
        for _, module in model.named_modules():
            for key, value in list(vars(module).items()):
                if isinstance(value, np.ndarray) and value.dtype == np.float64:
                    saved_attrs.append((module, key, value))
                    # Bypass Module.__setattr__'s registration bookkeeping.
                    module.__dict__[key] = value.astype(dt)
        for cond in (pipeline.conditioning, pipeline.uncond_conditioning):
            for key, value in cond.items():
                if isinstance(value, np.ndarray) and value.dtype == np.float64:
                    saved_cond.append((cond, key, value))
                    cond[key] = value.astype(dt)
        pipeline._cond_cache.clear()
        original_predict = pipeline.predict_noise

        def cast_predict(x: np.ndarray, t) -> np.ndarray:
            return original_predict(np.asarray(x, dtype=dt), t)

        pipeline.predict_noise = cast_predict
        F.set_embedding_dtype(dt)
        # Mark the dynamic extent for the opt-in runtime sanitizer
        # (repro.lint.runtime): under REPRO_SANITIZE=1 any float64 array
        # reaching a kernel in here is a promotion leak and raises.
        with sanitizer.calibration_region(dt):
            yield
    finally:
        F.set_embedding_dtype(prev_embed)
        if prev_predict is None:
            pipeline.__dict__.pop("predict_noise", None)
        else:
            pipeline.predict_noise = prev_predict
        for cond, key, value in saved_cond:
            cond[key] = value
        for module, key, value in saved_attrs:
            module.__dict__[key] = value
        for param, data in saved_params:
            param.data = data
        pipeline._cond_cache.clear()


class CalibrationCollector:
    """Hooks a float model and accumulates per-layer input ranges."""

    def __init__(self, model: Module, bits: int = 8) -> None:
        self.model = model
        self.bits = bits
        self._quantizers: Dict[str, SymmetricQuantizer] = {}
        self._removers: List[Callable[[], None]] = []

    def __enter__(self) -> "CalibrationCollector":
        for name, module in self.model.named_modules():
            if isinstance(module, (Linear, Conv2d)) or (
                isinstance(module, Attention) and not module._modules
            ):
                self._removers.append(
                    module.register_forward_hook(self._make_hook(name))
                )
        return self

    def __exit__(self, *exc_info) -> None:
        for remove in self._removers:
            remove()
        del self._removers[:]

    def _make_hook(self, name: str):
        def hook(_module, inputs, _output) -> None:
            if not inputs:
                return
            x = inputs[0]
            if not isinstance(x, np.ndarray):
                return
            quantizer = self._quantizers.setdefault(
                name, SymmetricQuantizer(self.bits)
            )
            quantizer.observe(x)

        return hook

    def scales(self) -> Dict[str, float]:
        return {
            name: quantizer.freeze()
            for name, quantizer in self._quantizers.items()
        }


def calibrate_model(
    model: Module,
    run_fn: Callable[[], None],
    bits: int = 8,
) -> Dict[str, float]:
    """Run ``run_fn`` (e.g. a short FP32 trajectory) and return input scales.

    Example::

        scales = calibrate_model(fp32_unet, lambda: pipeline.generate(1, rng))
        qmodel = quantize_model(fp32_unet, calibration=scales)
    """
    with CalibrationCollector(model, bits) as collector:
        run_fn()
    return collector.scales()


class ClusteredCalibrationCollector:
    """Per-timestep-cluster calibration (Q-Diffusion / TDQ synergy).

    Hooks the FP32 model like :class:`CalibrationCollector`, but buckets the
    observed ranges by the *active step* announced through
    :func:`repro.quant.tdq.set_active_step`, producing one
    :class:`~repro.quant.tdq.TimestepClusteredQuantizer` per layer.
    """

    def __init__(
        self,
        model: Module,
        num_steps: int,
        num_clusters: int,
        bits: int = 8,
    ) -> None:
        from .tdq import TimestepClusteredQuantizer

        self.model = model
        self.num_steps = num_steps
        self.num_clusters = num_clusters
        self.bits = bits
        self._quantizer_cls = TimestepClusteredQuantizer
        self._quantizers: Dict[str, "TimestepClusteredQuantizer"] = {}
        self._removers: List[Callable[[], None]] = []

    def __enter__(self) -> "ClusteredCalibrationCollector":
        for name, module in self.model.named_modules():
            if isinstance(module, (Linear, Conv2d)):
                self._removers.append(
                    module.register_forward_hook(self._make_hook(name))
                )
        return self

    def __exit__(self, *exc_info) -> None:
        for remove in self._removers:
            remove()
        del self._removers[:]

    def _get(self, name: str):
        quantizer = self._quantizers.get(name)
        if quantizer is None:
            quantizer = self._quantizer_cls(self.bits, self.num_clusters)
            quantizer.configure(self.num_steps)
            self._quantizers[name] = quantizer
        return quantizer

    def _make_hook(self, name: str):
        from .tdq import active_step

        def hook(_module, inputs, _output) -> None:
            if not inputs or not isinstance(inputs[0], np.ndarray):
                return
            step = active_step() or 0
            self._get(name).observe_step(inputs[0], step)

        return hook

    def quantizers(self) -> Dict[str, "SymmetricQuantizer"]:
        """Freeze and return the per-layer clustered quantizers."""
        for quantizer in self._quantizers.values():
            quantizer.freeze_clusters()
        return dict(self._quantizers)


def calibrate_model_clustered(
    model: Module,
    run_fn: Callable[[], None],
    num_steps: int,
    num_clusters: int,
    bits: int = 8,
) -> Dict[str, "SymmetricQuantizer"]:
    """Clustered counterpart of :func:`calibrate_model`.

    ``run_fn`` must announce steps via ``repro.quant.tdq.set_active_step``
    (``DittoEngine`` does this automatically when ``step_clusters > 1``).
    """
    with ClusteredCalibrationCollector(model, num_steps, num_clusters, bits) as c:
        run_fn()
    return c.quantizers()
