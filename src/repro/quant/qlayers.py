"""Quantized layers implementing the Ditto difference-processing algorithm.

Each quantized layer supports three execution paths (paper Section IV):

* **dense** - quantize the input, run the full-bit-width integer operation.
* **temporal** - subtract the previous time step's quantized input, run the
  layer only on the integer difference, and add the previous step's integer
  output back (distributive property; *bit-exact* with the dense path).
* **spatial** - Diffy-style intra-tensor differences between consecutive
  sliding windows / token rows; also bit-exact.

Every forward records a :class:`~repro.core.trace.RichLayerStep` carrying the
operand composition (zero / 4-bit / 8-bit) of *all three* paths, so the
hardware models and Defo can be evaluated post-hoc on a single run.

Attention gets the paper's two algebraic tricks: self-attention temporal
processing uses ``Q_t K_t = Q_{t+1} K_{t+1} + Q_t dK + dQ K_{t+1}`` (two
sub-operations instead of three), and cross-attention treats the constant
context projections K'/V' as weights.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.bitwidth import BitWidthStats, classify
from ..core.modes import ExecutionMode
from ..core.trace import RichLayerStep, record_step
from ..nn import functional as F
from ..nn.attention import Attention
from ..nn.layers import Conv2d, Linear
from ..nn.module import Module
from .quantizer import SymmetricQuantizer, qrange

__all__ = [
    "QLayerBase",
    "QLinear",
    "QConv2d",
    "QAttention",
    "quantize_model",
    "iter_qlayers",
    "reset_model_state",
    "set_model_mode",
]


def _flatten_rows(x: np.ndarray) -> np.ndarray:
    """View ``x`` as ``(rows, features)`` over the trailing dimension."""
    return x.reshape(-1, x.shape[-1])


def _spatial_diff_rows(mat: np.ndarray) -> np.ndarray:
    """Difference consecutive rows; the first row stays original (dense)."""
    d = mat.copy()
    if mat.shape[0] > 1:
        d[1:] -= mat[:-1]
    return d


def _merge_classify(*arrays: np.ndarray) -> BitWidthStats:
    stats = BitWidthStats.empty()
    for arr in arrays:
        stats = stats.merge(classify(arr))
    return stats


class QLayerBase(Module):
    """Shared machinery: mode flag, input quantizer, temporal state."""

    is_linear_op = True
    kind = "fc"

    def __init__(self, bits: int = 8) -> None:
        super().__init__()
        self.layer_name = ""
        self.mode = ExecutionMode.DENSE
        self.bits = bits
        self.input_quant = SymmetricQuantizer(bits)
        self.nonlinear_after = True
        self.chained_input = False
        self.producer_kind = "other"
        self._prev_q_in: Optional[np.ndarray] = None
        self._prev_out_int: Optional[np.ndarray] = None
        self._prev_scale: Optional[float] = None

    def reset_state(self) -> None:
        self._prev_q_in = None
        self._prev_out_int = None
        self._prev_scale = None

    def _temporal_diff(self, q_in: np.ndarray) -> Optional[np.ndarray]:
        prev = self._prev_q_in
        if prev is None or prev.shape != q_in.shape:
            return None
        # Timestep-clustered quantization (repro.quant.tdq) changes the
        # integer grid at cluster boundaries: the cached state was produced
        # under another scale, so differencing against it would be wrong.
        # Ditto then re-runs one dense step, exactly as the paper's synergy
        # with Q-Diffusion/TDQ requires.
        if self._prev_scale is not None and self._prev_scale != self.input_quant.scale:
            return None
        return q_in - prev

    def _effective_mode(self, diff: Optional[np.ndarray]) -> ExecutionMode:
        if self.mode is ExecutionMode.TEMPORAL and diff is None:
            return ExecutionMode.DENSE
        return self.mode


def _quantize_weight(weight: np.ndarray, bits: int, per_channel: bool):
    """Weight quantization: per-tensor or per-output-channel scales.

    Q-Diffusion quantizes weights per output channel; Ditto is agnostic
    because weights are static - only the *activation* grid must be shared
    across steps.  Per-channel scales tighten the weight grid and therefore
    the end accuracy, at zero cost to difference processing.
    """
    qmin, qmax = qrange(bits)
    if per_channel:
        flat = weight.reshape(weight.shape[0], -1)
        peaks = np.max(np.abs(flat), axis=1)
        scales = np.where(peaks > 0.0, peaks, 1.0) / qmax
        shaped = scales.reshape((-1,) + (1,) * (weight.ndim - 1))
        q_weight = np.clip(np.rint(weight / shaped), qmin, qmax)
        return q_weight, scales
    quantizer = SymmetricQuantizer(bits)
    quantizer.observe(weight)
    quantizer.freeze()
    return quantizer.quantize(weight), quantizer.scale


class QLinear(QLayerBase):
    """Quantized fully-connected layer with difference processing."""

    kind = "fc"

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        bits: int = 8,
        per_channel: bool = False,
    ) -> None:
        super().__init__(bits)
        self.out_features, self.in_features = weight.shape
        self.per_channel = per_channel
        self.q_weight, self.weight_scale = _quantize_weight(
            weight, bits, per_channel
        )
        self.bias = None if bias is None else np.array(bias, dtype=np.float64)

    @classmethod
    def from_float(
        cls, layer: Linear, bits: int = 8, per_channel: bool = False
    ) -> "QLinear":
        bias = layer.bias.data if layer.bias is not None else None
        return cls(layer.weight.data, bias, bits, per_channel)

    def forward(self, x: np.ndarray) -> np.ndarray:
        q_in = self.input_quant.quantize(x)
        diff = self._temporal_diff(q_in)
        mode = self._effective_mode(diff)
        if mode is ExecutionMode.TEMPORAL:
            out_int = self._prev_out_int + diff @ self.q_weight.T
        else:
            # Dense and spatial paths share arithmetic: the spatial path's
            # row-cumulative reconstruction telescopes to the plain matmul.
            out_int = q_in @ self.q_weight.T
        # weight_scale is a scalar (per-tensor) or an (out,) vector
        # (per-channel); both broadcast over the trailing output dim.
        out = out_int * (self.input_quant.scale * self.weight_scale)
        if self.bias is not None:
            out = out + self.bias
        self._record(q_in, diff, out_int)
        self._prev_q_in = q_in
        self._prev_out_int = out_int
        self._prev_scale = self.input_quant.scale
        return out

    def _record(
        self, q_in: np.ndarray, diff: Optional[np.ndarray], out_int: np.ndarray
    ) -> None:
        rows = _flatten_rows(q_in)
        macs = rows.shape[0] * self.in_features * self.out_features
        record_step(
            RichLayerStep(
                step_index=_current_step(),
                layer_name=self.layer_name,
                kind=self.kind,
                macs=int(macs),
                in_elems=int(q_in.size),
                out_elems=int(out_int.size),
                weight_elems=int(self.q_weight.size),
                data_elems=int(q_in.size),
                stats_dense=classify(q_in),
                stats_spatial=classify(_spatial_diff_rows(rows)),
                stats_temporal=None if diff is None else classify(diff),
                sub_ops_temporal=1,
                vpu_elems=int(out_int.size) if self.nonlinear_after else 0,
                nonlinear_after=self.nonlinear_after,
                chained_input=self.chained_input,
                producer_kind=self.producer_kind,
                executed_mode=self._effective_mode(diff),
            )
        )

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}, mode={self.mode}"


class QConv2d(QLayerBase):
    """Quantized 2-D convolution with difference processing."""

    kind = "conv"

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int = 1,
        padding: int = 0,
        bits: int = 8,
        per_channel: bool = False,
    ) -> None:
        super().__init__(bits)
        self.out_channels, self.in_channels, self.kernel_size, _ = weight.shape
        self.stride = stride
        self.padding = padding
        self.per_channel = per_channel
        self.q_weight, self.weight_scale = _quantize_weight(
            weight, bits, per_channel
        )
        self.bias = None if bias is None else np.array(bias, dtype=np.float64)

    @classmethod
    def from_float(
        cls, layer: Conv2d, bits: int = 8, per_channel: bool = False
    ) -> "QConv2d":
        bias = layer.bias.data if layer.bias is not None else None
        return cls(
            layer.weight.data, bias, layer.stride, layer.padding, bits, per_channel
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        q_in = self.input_quant.quantize(x)
        diff = self._temporal_diff(q_in)
        mode = self._effective_mode(diff)
        if mode is ExecutionMode.TEMPORAL:
            out_int = self._prev_out_int + F.conv2d(
                diff, self.q_weight, None, self.stride, self.padding
            )
        else:
            out_int = F.conv2d(q_in, self.q_weight, None, self.stride, self.padding)
        w_scale = self.weight_scale
        if self.per_channel:
            w_scale = np.asarray(w_scale).reshape(1, -1, 1, 1)
        out = out_int * (self.input_quant.scale * w_scale)
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        self._record(q_in, diff, out_int)
        self._prev_q_in = q_in
        self._prev_out_int = out_int
        self._prev_scale = self.input_quant.scale
        return out

    def _record(
        self, q_in: np.ndarray, diff: Optional[np.ndarray], out_int: np.ndarray
    ) -> None:
        # Spatial (Diffy) differences live between consecutive sliding
        # windows, i.e. consecutive rows of the im2col matrix.
        cols, _ = F.im2col(q_in, self.kernel_size, self.stride, self.padding)
        spatial = np.concatenate([_spatial_diff_rows(batch) for batch in cols])
        dot_len = self.in_channels * self.kernel_size * self.kernel_size
        macs = (out_int.size // self.out_channels) * dot_len * self.out_channels
        record_step(
            RichLayerStep(
                step_index=_current_step(),
                layer_name=self.layer_name,
                kind=self.kind,
                macs=int(macs),
                in_elems=int(q_in.size),
                out_elems=int(out_int.size),
                weight_elems=int(self.q_weight.size),
                data_elems=int(q_in.size),
                stats_dense=classify(q_in),
                stats_spatial=classify(spatial),
                stats_temporal=None if diff is None else classify(diff),
                sub_ops_temporal=1,
                vpu_elems=int(out_int.size) if self.nonlinear_after else 0,
                nonlinear_after=self.nonlinear_after,
                chained_input=self.chained_input,
                producer_kind=self.producer_kind,
                executed_mode=self._effective_mode(diff),
            )
        )

    def extra_repr(self) -> str:
        return (
            f"in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, mode={self.mode}"
        )


class QAttention(QLayerBase):
    """Quantized multi-head attention with temporal difference processing.

    The projection layers become independent :class:`QLinear` children; this
    class handles the two activation-by-activation matmuls.  For cross
    attention the context projections are computed once and cached - K'/V'
    are constant across time steps (paper Section IV-A).
    """

    kind = "attn"

    def __init__(
        self, attn: Attention, bits: int = 8, per_channel: bool = False
    ) -> None:
        super().__init__(bits)
        self.dim = attn.dim
        self.num_heads = attn.num_heads
        self.head_dim = attn.head_dim
        self.is_cross = attn.is_cross
        self.to_q = QLinear.from_float(attn.to_q, bits, per_channel)
        self.to_k = QLinear.from_float(attn.to_k, bits, per_channel)
        self.to_v = QLinear.from_float(attn.to_v, bits, per_channel)
        self.to_out = QLinear.from_float(attn.to_out, bits, per_channel)
        # The P x V product feeds the linear output projection directly.
        self.to_out.chained_input = True
        self.q_quant = SymmetricQuantizer(bits)
        self.k_quant = SymmetricQuantizer(bits)
        self.v_quant = SymmetricQuantizer(bits)
        # Softmax probabilities live in [0, 1]; fix the scale accordingly.
        self.p_quant = SymmetricQuantizer(bits, scale=1.0 / 127.0)
        self._context_cache: Optional[Tuple[int, np.ndarray, np.ndarray]] = None
        self._prev: Dict[str, np.ndarray] = {}
        self.layer_name = ""  # re-assign now that the projections exist

    @property
    def layer_name(self) -> str:
        return self._layer_name

    @layer_name.setter
    def layer_name(self, value: str) -> None:
        object.__setattr__(self, "_layer_name", value)
        # Keep the projection layers' qualified names in sync so their trace
        # records are attributable even outside quantize_model.
        if hasattr(self, "to_q"):
            self.to_q.layer_name = f"{value}.to_q"
            self.to_k.layer_name = f"{value}.to_k"
            self.to_v.layer_name = f"{value}.to_v"
            self.to_out.layer_name = f"{value}.to_out"

    @classmethod
    def from_float(
        cls, attn: Attention, bits: int = 8, per_channel: bool = False
    ) -> "QAttention":
        return cls(attn, bits, per_channel)

    # -- state -----------------------------------------------------------
    def reset_state(self) -> None:
        super().reset_state()
        self._prev.clear()
        self._context_cache = None
        for child in (self.to_q, self.to_k, self.to_v, self.to_out):
            child.reset_state()

    def _split(self, x: np.ndarray) -> np.ndarray:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    # -- forward -----------------------------------------------------------
    def forward(self, x: np.ndarray, context: Optional[np.ndarray] = None) -> np.ndarray:
        if self.is_cross and context is None:
            raise ValueError(f"cross attention {self.layer_name!r} needs context")
        q_full = self.to_q(x)
        if self.is_cross:
            k_full, v_full = self._context_kv(context)
        else:
            k_full = self.to_k(x)
            v_full = self.to_v(x)
        q = self._split(q_full)
        k = self._split(k_full)
        v = self._split(v_full)
        qq = self.q_quant.quantize(q)
        qk = self.k_quant.quantize(k)
        qv = self.v_quant.quantize(v)
        s_int = self._qk_matmul(qq, qk)
        scores = s_int * (self.q_quant.scale * self.k_quant.scale) / np.sqrt(self.head_dim)
        probs = F.softmax(scores, axis=-1)
        qp = self.p_quant.quantize(probs)
        o_int = self._pv_matmul(qp, qv)
        out = o_int * (self.p_quant.scale * self.v_quant.scale)
        b, h, t, d = out.shape
        merged = out.transpose(0, 2, 1, 3).reshape(b, t, h * d)
        return self.to_out(merged)

    def _context_kv(self, context: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        key = id(context)
        if self._context_cache is not None and self._context_cache[0] == key:
            return self._context_cache[1], self._context_cache[2]
        k_full = self.to_k(context)
        v_full = self.to_v(context)
        self._context_cache = (key, k_full, v_full)
        return k_full, v_full

    # -- the two activation x activation matmuls ---------------------------
    def _qk_matmul(self, qq: np.ndarray, qk: np.ndarray) -> np.ndarray:
        prev_q = self._prev.get("q")
        prev_k = self._prev.get("k")
        prev_s = self._prev.get("s")
        dq = qq - prev_q if prev_q is not None and prev_q.shape == qq.shape else None
        dk = qk - prev_k if prev_k is not None and prev_k.shape == qk.shape else None
        have_state = prev_s is not None and dq is not None and (self.is_cross or dk is not None)
        mode = self.mode
        if mode is ExecutionMode.TEMPORAL and not have_state:
            mode = ExecutionMode.DENSE
        kt = qk.transpose(0, 1, 3, 2)
        if mode is ExecutionMode.TEMPORAL:
            if self.is_cross:
                s_int = prev_s + dq @ kt
            else:
                # Q_t K_t^T = S_{t+1} + Q_t dK^T + dQ K_{t+1}^T
                s_int = prev_s + qq @ (dk.transpose(0, 1, 3, 2)) + dq @ prev_k.transpose(0, 1, 3, 2)
        else:
            s_int = qq @ kt
        self._record_matmul(
            suffix="qk",
            data=qq,
            other=qk,
            out_int=s_int,
            d_data=dq,
            d_other=dk,
            other_is_weight=self.is_cross,
            vpu_out=True,  # softmax + requantization follow
        )
        self._prev["q"] = qq
        self._prev["k"] = qk
        self._prev["s"] = s_int
        return s_int

    def _pv_matmul(self, qp: np.ndarray, qv: np.ndarray) -> np.ndarray:
        prev_p = self._prev.get("p")
        prev_v = self._prev.get("v")
        prev_o = self._prev.get("o")
        dp = qp - prev_p if prev_p is not None and prev_p.shape == qp.shape else None
        dv = qv - prev_v if prev_v is not None and prev_v.shape == qv.shape else None
        have_state = prev_o is not None and dp is not None and (self.is_cross or dv is not None)
        mode = self.mode
        if mode is ExecutionMode.TEMPORAL and not have_state:
            mode = ExecutionMode.DENSE
        if mode is ExecutionMode.TEMPORAL:
            if self.is_cross:
                o_int = prev_o + dp @ qv
            else:
                # P_t V_t = O_{t+1} + P_t dV + dP V_{t+1}
                o_int = prev_o + qp @ dv + dp @ prev_v
        else:
            o_int = qp @ qv
        self._record_matmul(
            suffix="pv",
            data=qp,
            other=qv,
            out_int=o_int,
            d_data=dp,
            d_other=dv,
            other_is_weight=self.is_cross,
            vpu_out=False,  # output feeds the linear projection directly
        )
        self._prev["p"] = qp
        self._prev["v"] = qv
        self._prev["o"] = o_int
        return o_int

    def _record_matmul(
        self,
        suffix: str,
        data: np.ndarray,
        other: np.ndarray,
        out_int: np.ndarray,
        d_data: Optional[np.ndarray],
        d_other: Optional[np.ndarray],
        other_is_weight: bool,
        vpu_out: bool,
    ) -> None:
        b, h, t_data, inner = data.shape
        t_other = other.shape[2]
        macs = b * h * t_data * t_other * inner
        if other_is_weight:
            stats_dense = classify(data)
            stats_temporal = None if d_data is None else classify(d_data)
            sub_ops = 1
            in_elems = data.size
            weight_elems = other.size
        else:
            stats_dense = _merge_classify(data, other)
            if d_data is None or d_other is None:
                stats_temporal = None
            else:
                stats_temporal = _merge_classify(d_data, d_other)
            sub_ops = 2
            in_elems = data.size + other.size
            weight_elems = 0
        token_rows = data.reshape(-1, data.shape[-1])
        stats_spatial = classify(_spatial_diff_rows(token_rows))
        if not other_is_weight:
            stats_spatial = stats_spatial.merge(classify(other))
        record_step(
            RichLayerStep(
                step_index=_current_step(),
                layer_name=f"{self.layer_name}.{suffix}",
                kind=f"attn_{suffix}",
                macs=int(macs),
                in_elems=int(in_elems),
                out_elems=int(out_int.size),
                weight_elems=int(weight_elems),
                data_elems=int(data.size + (0 if other_is_weight else other.size)),
                stats_dense=stats_dense,
                stats_spatial=stats_spatial,
                stats_temporal=stats_temporal,
                sub_ops_temporal=sub_ops,
                vpu_elems=int(out_int.size) if vpu_out else 0,
                nonlinear_after=vpu_out,
                chained_input=False,
                producer_kind="other",
                executed_mode=self.mode,
            )
        )

    def extra_repr(self) -> str:
        kind = "cross" if self.is_cross else "self"
        return f"dim={self.dim}, heads={self.num_heads}, kind={kind}, mode={self.mode}"


def _current_step() -> int:
    from ..core.trace import TraceRecorder

    recorder = TraceRecorder.current()
    return recorder.step_index if recorder is not None else 0


# ---------------------------------------------------------------------------
# model-level utilities
# ---------------------------------------------------------------------------

def quantize_model(
    model: Module,
    bits: int = 8,
    calibration: Optional[Dict[str, float]] = None,
    input_quantizers: Optional[Dict[str, "SymmetricQuantizer"]] = None,
    per_channel_weights: bool = False,
) -> Module:
    """Swap every linear layer / attention for its quantized counterpart.

    ``calibration`` maps qualified layer names to pre-computed input scales
    (see :mod:`repro.quant.calibration`); ``input_quantizers`` maps layer
    names to fully-constructed quantizer objects (e.g. the timestep-clustered
    quantizers of :mod:`repro.quant.tdq`) and takes precedence.  Uncalibrated
    layers freeze their scale on first use (hardware-style "dynamic"
    quantization).  The swap happens in place and ``model`` is returned for
    chaining.
    """

    def swap(module: Module) -> None:
        for name, child in list(module._modules.items()):
            if isinstance(child, QLayerBase):
                continue
            if isinstance(child, Attention):
                module.register_module(
                    name, QAttention.from_float(child, bits, per_channel_weights)
                )
            elif isinstance(child, Linear):
                module.register_module(
                    name, QLinear.from_float(child, bits, per_channel_weights)
                )
            elif isinstance(child, Conv2d):
                module.register_module(
                    name, QConv2d.from_float(child, bits, per_channel_weights)
                )
            else:
                swap(child)

    swap(model)
    calibration = calibration or {}
    input_quantizers = input_quantizers or {}
    for name, module in model.named_modules():
        if isinstance(module, QLayerBase):
            module.layer_name = name
            quantizer = input_quantizers.get(name)
            if quantizer is not None:
                module.input_quant = quantizer
                continue
            scale = calibration.get(name)
            if scale is not None:
                module.input_quant.scale = float(scale)
    return model


def iter_qlayers(model: Module):
    """Yield ``(name, qlayer)`` for every quantized layer in the tree."""
    for name, module in model.named_modules():
        if isinstance(module, QLayerBase):
            yield name, module


def reset_model_state(model: Module) -> None:
    """Drop all temporal state (start of a new trajectory)."""
    for _, qlayer in iter_qlayers(model):
        qlayer.reset_state()


def set_model_mode(model: Module, mode: ExecutionMode) -> None:
    """Set the execution mode of every quantized layer."""
    for _, qlayer in iter_qlayers(model):
        qlayer.mode = mode
