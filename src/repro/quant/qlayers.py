"""Quantized layers implementing the Ditto difference-processing algorithm.

Each quantized layer supports three execution paths (paper Section IV):

* **dense** - quantize the input, run the full-bit-width integer operation.
* **temporal** - subtract the previous time step's quantized input, run the
  layer only on the integer difference, and add the previous step's integer
  output back (distributive property; *bit-exact* with the dense path).
* **spatial** - Diffy-style intra-tensor differences between consecutive
  sliding windows / token rows; also bit-exact.

Every forward records a :class:`~repro.core.trace.RichLayerStep` carrying the
operand composition (zero / 4-bit / 8-bit) of *all three* paths, so the
hardware models and Defo can be evaluated post-hoc on a single run.

Attention gets the paper's two algebraic tricks: self-attention temporal
processing uses ``Q_t K_t = Q_{t+1} K_{t+1} + Q_t dK + dQ K_{t+1}`` (two
sub-operations instead of three), and cross-attention treats the constant
context projections K'/V' as weights.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.bitwidth import BitWidthStats, classify, classify_many
from ..core.modes import ExecutionMode
from ..core.trace import RichLayerStep, TraceRecorder, record_step
from ..nn import backends
from ..nn import functional as F
from ..nn.attention import Attention
from ..nn.layers import Conv2d, Linear
from ..nn.module import Module
from .quantizer import SymmetricQuantizer, qrange

__all__ = [
    "QLayerBase",
    "QLinear",
    "QConv2d",
    "QAttention",
    "quantize_model",
    "iter_qlayers",
    "reset_model_state",
    "set_model_mode",
    "remap_model_rows",
    "model_state_nbytes",
]


def _flatten_rows(x: np.ndarray) -> np.ndarray:
    """View ``x`` as ``(rows, features)`` over the trailing dimension."""
    return x.reshape(-1, x.shape[-1])


def _max_product(bits: int) -> int:
    """Worst-case magnitude of one multiply in the difference algebra.

    Quantized values are clipped to |q| <= 2^(bits-1), but *temporal and
    spatial differences* of two such values span up to 2^bits - 1.  Every
    GEMM in the Ditto paths multiplies at most (difference x quantized
    value), so the per-term bound that the float32 exactness gate must
    honour is 2^(2*bits - 1), not 2^(2*(bits-1)).
    """
    return 1 << (2 * bits - 1)


def _remap_rows_array(
    arr: Optional[np.ndarray],
    mapping,
    old_batch: int,
    fill: float = 0.0,
) -> Optional[np.ndarray]:
    """Re-align a cached per-batch-element state array to a new composition.

    ``mapping[new_pos]`` is the old row index that moved to ``new_pos``, or
    ``None`` for a freshly admitted row.  Fresh rows are filled with
    ``fill`` - zero state, by the distributive property the temporal path
    computes exactly the dense result for an all-zero previous step, so an
    admitted row's first "temporal" step is bit-exact with a dense one.

    The leading dimension may be any multiple of ``old_batch`` (classifier-
    free guidance stacks ``[cond; uncond]``); the mapping is applied per
    block.  State whose leading dimension does not tile is dropped (``None``
    - the layer then falls back to one dense step, which is always sound).
    """
    if arr is None:
        return None
    lead = arr.shape[0]
    if old_batch <= 0 or lead % old_batch:
        return None
    reps = lead // old_batch
    new_batch = len(mapping)
    out = np.full((reps * new_batch,) + arr.shape[1:], fill, dtype=arr.dtype)
    for block in range(reps):
        src_base = block * old_batch
        dst_base = block * new_batch
        for pos, src in enumerate(mapping):
            if src is not None:
                out[dst_base + pos] = arr[src_base + src]
    return out


def _nbytes(*arrays) -> int:
    """Total bytes of the given arrays, deduped by identity.

    State fields may alias each other (``QConv2d._prev_cols`` IS one of the
    ping-pong ``_cols_bufs`` after a forward); counting an aliased buffer
    twice would inflate the measured per-row footprint and make the serving
    pool budget refuse batch sizes that actually fit.
    """
    seen = {}
    for a in arrays:
        if isinstance(a, np.ndarray):
            seen[id(a)] = a.nbytes
    return sum(seen.values())


def _spatial_diff_rows(mat: np.ndarray) -> np.ndarray:
    """Difference consecutive rows; the first row stays original (dense)."""
    d = mat.copy()
    if mat.shape[0] > 1:
        d[1:] -= mat[:-1]
    return d


def _diff_scratch_dtype(src_dtype: np.dtype):
    """Storage dtype for spatial-difference scratch buffers.

    Layers on the provably-exact float32 path carry quantized values of at
    most ~2^13 magnitude, so their row differences fit int16 exactly - and
    the bit-width classifier has a 2-byte fast path for that dtype.  The
    float64 route keeps float scratch (values there may come from wider
    quantizers).
    """
    return np.int16 if src_dtype == np.float32 else src_dtype


def _row_diff_stats(mat: np.ndarray) -> BitWidthStats:
    """Stats of Diffy row differencing, ``classify(_spatial_diff_rows(mat))``.

    The token-row matrices this sees (linear / attention operands) are small,
    so one fused scan of a scratch-buffered difference image beats scanning
    the first row and the differences separately.
    """
    if mat.shape[0] <= 1:
        return classify(mat)
    buf = F.scratch_buffer("rowdiff", mat.shape, _diff_scratch_dtype(mat.dtype))
    buf[:1] = mat[:1]  # exact: values are small integers
    np.subtract(mat[1:], mat[:-1], out=buf[1:], casting="unsafe")
    return classify(buf)


def _cols_spatial_stats_t(cols_t: np.ndarray) -> BitWidthStats:
    """Diffy stats over transposed ``(N, dot, P)`` im2col columns.

    Equivalent to classifying, per batch image, the first sliding window
    dense plus the differences of consecutive windows - which here are
    consecutive entries of the trailing *positions* axis.  The differenced
    value multiset (and therefore the classification histogram) is
    identical to the old row-major formulation, in one fused pass.
    """
    if cols_t.shape[2] <= 1:
        return classify_many(cols_t)
    diff_shape = (cols_t.shape[0], cols_t.shape[1], cols_t.shape[2] - 1)
    diff = np.subtract(
        cols_t[:, :, 1:],
        cols_t[:, :, :-1],
        out=F.scratch_buffer(
            "coldiff", diff_shape, _diff_scratch_dtype(cols_t.dtype)
        ),
        casting="unsafe",
    )
    return classify_many(cols_t[:, :, :1], diff)


class QLayerBase(Module):
    """Shared machinery: mode flag, input quantizer, temporal state."""

    is_linear_op = True
    kind = "fc"

    def __init__(self, bits: int = 8) -> None:
        super().__init__()
        self.layer_name = ""
        self.mode = ExecutionMode.DENSE
        self.bits = bits
        self.input_quant = SymmetricQuantizer(bits)
        self.nonlinear_after = True
        self.chained_input = False
        self.producer_kind = "other"
        self._prev_q_in: Optional[np.ndarray] = None
        self._prev_out_int: Optional[np.ndarray] = None
        self._prev_scale: Optional[float] = None

    def reset_state(self) -> None:
        self._prev_q_in = None
        self._prev_out_int = None
        self._prev_scale = None

    def _changed_grid_rows(self, q_in: np.ndarray):
        """Which rows' integer grid moved since the cached state was written.

        Returns ``None`` (no change), ``"all"`` (whole-batch change - the
        lockstep TDQ cluster boundary, handled by one dense step exactly as
        before), or a boolean per-row mask (rows at their own timesteps, some
        of which just crossed a cluster boundary - only those rows fall back,
        via zeroed state).
        """
        prev, cur = self._prev_scale, self.input_quant.scale
        if prev is None:
            return None
        prev_arr = isinstance(prev, np.ndarray)
        cur_arr = isinstance(cur, np.ndarray)
        if not prev_arr and not cur_arr:
            return "all" if prev != cur else None
        batch = q_in.shape[0]
        p = prev.reshape(batch) if prev_arr else np.full(batch, prev)
        c = cur.reshape(batch) if cur_arr else np.full(batch, cur)
        mask = p != c  # NaN-filled fresh rows always flag as changed
        if not mask.any():
            return None
        if mask.all():
            return "all"
        return mask

    def _invalidate_rows(self, mask: np.ndarray) -> None:
        """Zero the cached state of ``mask``-ed rows (per-row dense fallback).

        Zero previous input and zero previous output make the temporal path
        compute ``0 + (q_in - 0) @ W`` - bit-exact with the dense product -
        so invalidation never needs a whole-batch mode switch.
        """
        self._prev_q_in[mask] = 0
        self._prev_out_int[mask] = 0

    def _temporal_diff(self, q_in: np.ndarray) -> Optional[np.ndarray]:
        prev = self._prev_q_in
        if prev is None or prev.shape != q_in.shape:
            return None
        # Timestep-clustered quantization (repro.quant.tdq) changes the
        # integer grid at cluster boundaries: the cached state was produced
        # under another scale, so differencing against it would be wrong.
        # Ditto then re-runs one dense step, exactly as the paper's synergy
        # with Q-Diffusion/TDQ requires.  With per-row step indices only the
        # rows that crossed a boundary are invalidated (zeroed state).
        changed = self._changed_grid_rows(q_in)
        if changed is not None:
            if isinstance(changed, str):  # "all"
                return None
            self._invalidate_rows(changed)
        # The difference is consumed within this forward (matmul operand
        # and/or classification) before any other layer runs, so it can live
        # in the shared per-thread scratch pool.
        return np.subtract(
            q_in, prev, out=F.scratch_buffer("temporal-diff", q_in.shape, q_in.dtype)
        )

    def _effective_mode(self, diff: Optional[np.ndarray]) -> ExecutionMode:
        if self.mode is ExecutionMode.TEMPORAL and diff is None:
            return ExecutionMode.DENSE
        return self.mode

    def remap_rows(self, mapping, old_batch: int) -> None:
        """Re-align cached temporal state to a new batch composition.

        See :func:`remap_model_rows`.  Fresh rows (``None`` entries) get zero
        state; a fresh row's ``_prev_scale`` is NaN so any grid comparison
        flags it (harmlessly re-zeroing already-zero rows).
        """
        d = self.__dict__
        d["_prev_q_in"] = _remap_rows_array(self._prev_q_in, mapping, old_batch)
        d["_prev_out_int"] = _remap_rows_array(
            self._prev_out_int, mapping, old_batch
        )
        if isinstance(self._prev_scale, np.ndarray):
            d["_prev_scale"] = _remap_rows_array(
                self._prev_scale, mapping, old_batch, fill=np.nan
            )

    def state_nbytes(self) -> int:
        """Bytes of per-batch-element temporal state currently held.

        ``_prev_scale`` is a scalar for lockstep batches but becomes a
        per-row float64 array under continuous batching; ``_nbytes``
        ignores the scalar form, so counting it here is free in lockstep
        mode and keeps the serving pool budget honest per row.
        """
        return _nbytes(self._prev_q_in, self._prev_out_int, self._prev_scale)


def _quantize_weight(weight: np.ndarray, bits: int, per_channel: bool):
    """Weight quantization: per-tensor or per-output-channel scales.

    Q-Diffusion quantizes weights per output channel; Ditto is agnostic
    because weights are static - only the *activation* grid must be shared
    across steps.  Per-channel scales tighten the weight grid and therefore
    the end accuracy, at zero cost to difference processing.
    """
    qmin, qmax = qrange(bits)
    if per_channel:
        flat = weight.reshape(weight.shape[0], -1)
        peaks = np.max(np.abs(flat), axis=1)
        scales = np.where(peaks > 0.0, peaks, 1.0) / qmax
        shaped = scales.reshape((-1,) + (1,) * (weight.ndim - 1))
        q_weight = np.clip(np.rint(weight / shaped), qmin, qmax)
        return q_weight, scales
    quantizer = SymmetricQuantizer(bits)
    quantizer.observe(weight)
    quantizer.freeze()
    return quantizer.quantize(weight), quantizer.scale


class QLinear(QLayerBase):
    """Quantized fully-connected layer with difference processing."""

    kind = "fc"

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        bits: int = 8,
        per_channel: bool = False,
    ) -> None:
        super().__init__(bits)
        self.out_features, self.in_features = weight.shape
        self.per_channel = per_channel
        self.q_weight, self.weight_scale = _quantize_weight(
            weight, bits, per_channel
        )
        self.bias = None if bias is None else np.array(bias, dtype=np.float64)
        # See QConv2d: the f32 integer GEMM is exact while every partial dot
        # product stays inside float32's 2^24 exact-integer range.
        self._use_f32 = self.in_features * _max_product(bits) < (1 << 24)
        self._q_weight_f32 = (
            self.q_weight.astype(np.float32) if self._use_f32 else None
        )

    @classmethod
    def from_float(
        cls, layer: Linear, bits: int = 8, per_channel: bool = False
    ) -> "QLinear":
        bias = layer.bias.data if layer.bias is not None else None
        return cls(layer.weight.data, bias, bits, per_channel)

    def forward(self, x: np.ndarray) -> np.ndarray:
        q_in = self.input_quant.quantize(
            x, out_dtype=np.float32 if self._use_f32 else None
        )
        diff = self._temporal_diff(q_in)
        mode = self._effective_mode(diff)
        q_weight = self._q_weight_f32 if self._use_f32 else self.q_weight
        bk = backends.active()
        if mode is ExecutionMode.TEMPORAL:
            # float64 + float32 upcasts exactly; the sum runs in float64.
            out_int = self._prev_out_int + bk.linear(diff, q_weight)
        else:
            # Dense and spatial paths share arithmetic: the spatial path's
            # row-cumulative reconstruction telescopes to the plain matmul.
            out_int = bk.linear(q_in, q_weight)
            if out_int.dtype != np.float64:
                out_int = out_int.astype(np.float64)
        # weight_scale is a scalar (per-tensor) or an (out,) vector
        # (per-channel); both broadcast over the trailing output dim.
        out = out_int * (self.input_quant.scale * self.weight_scale)
        if self.bias is not None:
            out += self.bias
        self._record(q_in, diff, out_int)
        # Plain state fields: skip Module.__setattr__'s registration checks.
        d = self.__dict__
        d["_prev_q_in"] = q_in
        d["_prev_out_int"] = out_int
        d["_prev_scale"] = self.input_quant.scale
        return out

    def _record(
        self, q_in: np.ndarray, diff: Optional[np.ndarray], out_int: np.ndarray
    ) -> None:
        if TraceRecorder.current() is None:
            return  # nobody is listening; skip the stats passes entirely
        rows = _flatten_rows(q_in)
        macs = rows.shape[0] * self.in_features * self.out_features
        record_step(
            RichLayerStep(
                step_index=_current_step(),
                layer_name=self.layer_name,
                kind=self.kind,
                macs=int(macs),
                in_elems=int(q_in.size),
                out_elems=int(out_int.size),
                weight_elems=int(self.q_weight.size),
                data_elems=int(q_in.size),
                stats_dense=classify(q_in),
                stats_spatial=_row_diff_stats(rows),
                stats_temporal=None if diff is None else classify(diff),
                sub_ops_temporal=1,
                vpu_elems=int(out_int.size) if self.nonlinear_after else 0,
                nonlinear_after=self.nonlinear_after,
                chained_input=self.chained_input,
                producer_kind=self.producer_kind,
                executed_mode=self._effective_mode(diff),
            )
        )

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}, mode={self.mode}"


class QConv2d(QLayerBase):
    """Quantized 2-D convolution with difference processing."""

    kind = "conv"

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int = 1,
        padding: int = 0,
        bits: int = 8,
        per_channel: bool = False,
    ) -> None:
        super().__init__(bits)
        self.out_channels, self.in_channels, self.kernel_size, _ = weight.shape
        self.stride = stride
        self.padding = padding
        self.per_channel = per_channel
        self.q_weight, self.weight_scale = _quantize_weight(
            weight, bits, per_channel
        )
        self.bias = None if bias is None else np.array(bias, dtype=np.float64)
        # Previous-step im2col columns in the transposed (N, C*k*k, P)
        # layout of :func:`repro.nn.functional.im2col_t`.
        self._prev_cols: Optional[np.ndarray] = None
        # Ping-pong pair of per-layer im2col buffers: the forward pass
        # unfolds into one while the other still holds the previous step's
        # cols (the temporal-difference operand), avoiding a multi-hundred-KB
        # allocation per conv execution.
        self._cols_bufs: list = [None, None]
        self._cols_flip = 0
        # Single-precision integer GEMM, used only when provably exact: every
        # partial dot product must stay inside float32's 2^24 exact-integer
        # range for the worst-case operands (see _max_product - temporal
        # *differences* span twice the quantized range).  Then the f32 kernel
        # is bit-exact while halving unfold/stat memory traffic and doubling
        # GEMM rate.
        dot_len = self.in_channels * self.kernel_size * self.kernel_size
        self._use_f32 = dot_len * _max_product(bits) < (1 << 24)
        self._q_weight_f32 = (
            self.q_weight.astype(np.float32) if self._use_f32 else None
        )
        self._cols_dtype = np.dtype(np.float32 if self._use_f32 else np.float64)

    def _cols_buffer(self, shape: Tuple[int, int, int]) -> np.ndarray:
        self._cols_flip ^= 1
        buf = self._cols_bufs[self._cols_flip]
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=self._cols_dtype)
            self._cols_bufs[self._cols_flip] = buf
        return buf

    @classmethod
    def from_float(
        cls, layer: Conv2d, bits: int = 8, per_channel: bool = False
    ) -> "QConv2d":
        bias = layer.bias.data if layer.bias is not None else None
        return cls(
            layer.weight.data, bias, layer.stride, layer.padding, bits, per_channel
        )

    def reset_state(self) -> None:
        super().reset_state()
        self._prev_cols = None

    def _invalidate_rows(self, mask: np.ndarray) -> None:
        super()._invalidate_rows(mask)
        prev_cols = self._prev_cols
        if prev_cols is not None and prev_cols.shape[0] == mask.shape[0]:
            prev_cols[mask] = 0

    def remap_rows(self, mapping, old_batch: int) -> None:
        super().remap_rows(mapping, old_batch)
        self.__dict__["_prev_cols"] = _remap_rows_array(
            self._prev_cols, mapping, old_batch
        )

    def state_nbytes(self) -> int:
        return super().state_nbytes() + _nbytes(
            self._prev_cols, *self._cols_bufs
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Values are exact small integers; float32 halves the memory traffic
        # of every downstream scan (diff, stats, unfold).
        q_in = self.input_quant.quantize(
            x, out_dtype=np.float32 if self._use_f32 else None
        )
        diff = self._temporal_diff(q_in)
        mode = self._effective_mode(diff)
        # Single-pass instrumentation: unfold once (blocked transposed
        # im2col - k*k shifted contiguous block copies for stride 1), share
        # the patch columns between the integer matmul and the
        # spatial-difference stats (and, via the cached previous-step cols,
        # the temporal-difference matmul: im2col is linear, so
        # im2col_t(q_in - prev) == cols_t - prev_cols_t).
        n, _, h, w = q_in.shape
        out_h = (h + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (w + 2 * self.padding - self.kernel_size) // self.stride + 1
        dot_len = self.in_channels * self.kernel_size * self.kernel_size
        bk = backends.active()
        cols, out_hw = bk.im2col_t(
            q_in,
            self.kernel_size,
            self.stride,
            self.padding,
            out=self._cols_buffer((n, dot_len, out_h * out_w)),
        )
        prev_cols = getattr(self, "_prev_cols", None)
        q_weight = self._q_weight_f32 if self._use_f32 else self.q_weight
        if mode is ExecutionMode.TEMPORAL:
            if prev_cols is not None and prev_cols.shape == cols.shape:
                diff_cols = np.subtract(
                    cols,
                    prev_cols,
                    out=F.scratch_buffer("tdiff", cols.shape, cols.dtype),
                )
                conv = bk.conv2d_from_cols_t(diff_cols, q_weight, out_hw)
            else:  # state predates the cols cache (defensive)
                conv = bk.conv2d(diff, self.q_weight, None, self.stride, self.padding)
            # float64 + float32 upcasts exactly; the sum runs in float64.
            out_int = self._prev_out_int + conv
        else:
            out_int = bk.conv2d_from_cols_t(cols, q_weight, out_hw)
            if out_int.dtype != np.float64:
                out_int = out_int.astype(np.float64)
        w_scale = self.weight_scale
        if self.per_channel:
            w_scale = np.asarray(w_scale).reshape(1, -1, 1, 1)
        out = out_int * (self.input_quant.scale * w_scale)
        if self.bias is not None:
            out += self.bias.reshape(1, -1, 1, 1)
        self._record(q_in, diff, out_int, cols)
        # Plain state fields: skip Module.__setattr__'s registration checks.
        d = self.__dict__
        d["_prev_q_in"] = q_in
        d["_prev_out_int"] = out_int
        d["_prev_scale"] = self.input_quant.scale
        d["_prev_cols"] = cols
        return out

    def _record(
        self,
        q_in: np.ndarray,
        diff: Optional[np.ndarray],
        out_int: np.ndarray,
        cols: np.ndarray,
    ) -> None:
        if TraceRecorder.current() is None:
            return  # nobody is listening; skip the stats passes entirely
        # Spatial (Diffy) differences live between consecutive sliding
        # windows, i.e. consecutive *positions* of the transposed im2col
        # matrix - reused from the forward pass instead of unfolding again.
        dot_len = self.in_channels * self.kernel_size * self.kernel_size
        macs = (out_int.size // self.out_channels) * dot_len * self.out_channels
        record_step(
            RichLayerStep(
                step_index=_current_step(),
                layer_name=self.layer_name,
                kind=self.kind,
                macs=int(macs),
                in_elems=int(q_in.size),
                out_elems=int(out_int.size),
                weight_elems=int(self.q_weight.size),
                data_elems=int(q_in.size),
                stats_dense=classify(q_in),
                stats_spatial=_cols_spatial_stats_t(cols),
                stats_temporal=None if diff is None else classify(diff),
                sub_ops_temporal=1,
                vpu_elems=int(out_int.size) if self.nonlinear_after else 0,
                nonlinear_after=self.nonlinear_after,
                chained_input=self.chained_input,
                producer_kind=self.producer_kind,
                executed_mode=self._effective_mode(diff),
            )
        )

    def extra_repr(self) -> str:
        return (
            f"in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, mode={self.mode}"
        )


class QAttention(QLayerBase):
    """Quantized multi-head attention with temporal difference processing.

    The projection layers become independent :class:`QLinear` children; this
    class handles the two activation-by-activation matmuls.  For cross
    attention the context projections are computed once and cached - K'/V'
    are constant across time steps (paper Section IV-A).
    """

    kind = "attn"

    def __init__(
        self, attn: Attention, bits: int = 8, per_channel: bool = False
    ) -> None:
        super().__init__(bits)
        self.dim = attn.dim
        self.num_heads = attn.num_heads
        self.head_dim = attn.head_dim
        self.is_cross = attn.is_cross
        self.to_q = QLinear.from_float(attn.to_q, bits, per_channel)
        self.to_k = QLinear.from_float(attn.to_k, bits, per_channel)
        self.to_v = QLinear.from_float(attn.to_v, bits, per_channel)
        self.to_out = QLinear.from_float(attn.to_out, bits, per_channel)
        # The P x V product feeds the linear output projection directly.
        self.to_out.chained_input = True
        self.q_quant = SymmetricQuantizer(bits)
        self.k_quant = SymmetricQuantizer(bits)
        self.v_quant = SymmetricQuantizer(bits)
        # Softmax probabilities live in [0, 1]; fix the scale accordingly.
        self.p_quant = SymmetricQuantizer(bits, scale=1.0 / 127.0)
        # K'/V' projections per context object: keyed by id, holding a
        # strong reference to the context so the id cannot be recycled.
        # Multi-entry because the continuous scheduler alternates batch
        # sizes (the pipeline memoizes one context object per size) - a
        # single-entry cache would re-project K'/V' on every occupancy
        # change.
        self._context_cache: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._prev: Dict[str, np.ndarray] = {}
        self.layer_name = ""  # re-assign now that the projections exist

    @property
    def layer_name(self) -> str:
        return self._layer_name

    @layer_name.setter
    def layer_name(self, value: str) -> None:
        object.__setattr__(self, "_layer_name", value)
        # Keep the projection layers' qualified names in sync so their trace
        # records are attributable even outside quantize_model.
        if hasattr(self, "to_q"):
            self.to_q.layer_name = f"{value}.to_q"
            self.to_k.layer_name = f"{value}.to_k"
            self.to_v.layer_name = f"{value}.to_v"
            self.to_out.layer_name = f"{value}.to_out"

    @classmethod
    def from_float(
        cls, attn: Attention, bits: int = 8, per_channel: bool = False
    ) -> "QAttention":
        return cls(attn, bits, per_channel)

    # -- state -----------------------------------------------------------
    def reset_state(self) -> None:
        super().reset_state()
        self._prev.clear()
        self._context_cache.clear()
        for child in (self.to_q, self.to_k, self.to_v, self.to_out):
            child.reset_state()

    def remap_rows(self, mapping, old_batch: int) -> None:
        # The projection QLinears are remapped by the model-level walk (they
        # are registered child modules); only the attention-matmul state and
        # the context K'/V' cache are handled here.  Cached K'/V' rows are
        # all identical (conditioning is tiled from one sample), so the cache
        # stays valid whenever the context object - keyed by identity and
        # memoized per batch size in the pipeline - is reused.
        super().remap_rows(mapping, old_batch)
        for key in list(self._prev):
            remapped = _remap_rows_array(self._prev[key], mapping, old_batch)
            if remapped is None:
                del self._prev[key]
            else:
                self._prev[key] = remapped

    def state_nbytes(self) -> int:
        total = super().state_nbytes() + _nbytes(*self._prev.values())
        for _, k_full, v_full in self._context_cache.values():
            total += _nbytes(k_full, v_full)
        return total

    def _split(self, x: np.ndarray) -> np.ndarray:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    # -- forward -----------------------------------------------------------
    def forward(self, x: np.ndarray, context: Optional[np.ndarray] = None) -> np.ndarray:
        if self.is_cross and context is None:
            raise ValueError(f"cross attention {self.layer_name!r} needs context")
        q_full = self.to_q(x)
        if self.is_cross:
            k_full, v_full = self._context_kv(context)
        else:
            k_full = self.to_k(x)
            v_full = self.to_v(x)
        q = self._split(q_full)
        k = self._split(k_full)
        v = self._split(v_full)
        # Exact-f32 gating for the activation x activation matmuls: the
        # longest dot product runs over max(head_dim, token count) operands.
        inner = max(self.head_dim, k.shape[2])
        f32_ok = inner * _max_product(self.bits) < (1 << 24)
        dtype = np.float32 if f32_ok else None
        qq = self.q_quant.quantize(q, out_dtype=dtype)
        qk = self.k_quant.quantize(k, out_dtype=dtype)
        qv = self.v_quant.quantize(v, out_dtype=dtype)
        s_int = self._qk_matmul(qq, qk)
        # float(...) keeps the divisor weak (NEP 50) so a float32 s_int stays
        # float32 on the exact-f32 path; bit-identical arithmetic otherwise.
        scores = (
            s_int * (self.q_quant.scale * self.k_quant.scale) / float(np.sqrt(self.head_dim))
        )
        probs = F.softmax(scores, axis=-1)
        qp = self.p_quant.quantize(
            probs, out_dtype=np.float32 if qv.dtype == np.float32 else None
        )
        o_int = self._pv_matmul(qp, qv)
        out = o_int * (self.p_quant.scale * self.v_quant.scale)
        b, h, t, d = out.shape
        merged = out.transpose(0, 2, 1, 3).reshape(b, t, h * d)
        return self.to_out(merged)

    def _context_kv(self, context: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        cached = self._context_cache.get(id(context))
        if cached is not None:
            return cached[1], cached[2]
        k_full = self.to_k(context)
        v_full = self.to_v(context)
        self._context_cache[id(context)] = (context, k_full, v_full)
        return k_full, v_full

    # -- the two activation x activation matmuls ---------------------------
    def _qk_matmul(self, qq: np.ndarray, qk: np.ndarray) -> np.ndarray:
        prev_q = self._prev.get("q")
        prev_k = self._prev.get("k")
        prev_s = self._prev.get("s")
        dq = qq - prev_q if prev_q is not None and prev_q.shape == qq.shape else None
        dk = qk - prev_k if prev_k is not None and prev_k.shape == qk.shape else None
        have_state = prev_s is not None and dq is not None and (self.is_cross or dk is not None)
        mode = self.mode
        if mode is ExecutionMode.TEMPORAL and not have_state:
            mode = ExecutionMode.DENSE
        bk = backends.active()
        kt = qk.transpose(0, 1, 3, 2)
        # The transposed-K views below are intentional: batched matmul eats
        # the stride-swapped trailing axes copy-free, and the backend owns
        # any materialization its blocking wants.
        if mode is ExecutionMode.TEMPORAL:
            if self.is_cross:
                s_int = prev_s + bk.matmul(dq, kt)
            else:
                # Q_t K_t^T = S_{t+1} + Q_t dK^T + dQ K_{t+1}^T
                s_int = (
                    prev_s
                    + bk.matmul(qq, dk.transpose(0, 1, 3, 2))
                    + bk.matmul(dq, prev_k.transpose(0, 1, 3, 2))
                )
        else:
            s_int = bk.matmul(qq, kt)
        if s_int.dtype != np.float64:  # exact-f32 GEMM, f64 state downstream
            s_int = s_int.astype(np.float64)
        self._record_matmul(
            suffix="qk",
            data=qq,
            other=qk,
            out_int=s_int,
            d_data=dq,
            d_other=dk,
            other_is_weight=self.is_cross,
            vpu_out=True,  # softmax + requantization follow
        )
        self._prev["q"] = qq
        self._prev["k"] = qk
        self._prev["s"] = s_int
        return s_int

    def _pv_matmul(self, qp: np.ndarray, qv: np.ndarray) -> np.ndarray:
        prev_p = self._prev.get("p")
        prev_v = self._prev.get("v")
        prev_o = self._prev.get("o")
        dp = qp - prev_p if prev_p is not None and prev_p.shape == qp.shape else None
        dv = qv - prev_v if prev_v is not None and prev_v.shape == qv.shape else None
        have_state = prev_o is not None and dp is not None and (self.is_cross or dv is not None)
        mode = self.mode
        if mode is ExecutionMode.TEMPORAL and not have_state:
            mode = ExecutionMode.DENSE
        bk = backends.active()
        if mode is ExecutionMode.TEMPORAL:
            if self.is_cross:
                o_int = prev_o + bk.matmul(dp, qv)
            else:
                # P_t V_t = O_{t+1} + P_t dV + dP V_{t+1}
                o_int = prev_o + bk.matmul(qp, dv) + bk.matmul(dp, prev_v)
        else:
            o_int = bk.matmul(qp, qv)
        if o_int.dtype != np.float64:  # exact-f32 GEMM, f64 state downstream
            o_int = o_int.astype(np.float64)
        self._record_matmul(
            suffix="pv",
            data=qp,
            other=qv,
            out_int=o_int,
            d_data=dp,
            d_other=dv,
            other_is_weight=self.is_cross,
            vpu_out=False,  # output feeds the linear projection directly
        )
        self._prev["p"] = qp
        self._prev["v"] = qv
        self._prev["o"] = o_int
        return o_int

    def _record_matmul(
        self,
        suffix: str,
        data: np.ndarray,
        other: np.ndarray,
        out_int: np.ndarray,
        d_data: Optional[np.ndarray],
        d_other: Optional[np.ndarray],
        other_is_weight: bool,
        vpu_out: bool,
    ) -> None:
        if TraceRecorder.current() is None:
            return  # nobody is listening; skip the stats passes entirely
        b, h, t_data, inner = data.shape
        t_other = other.shape[2]
        macs = b * h * t_data * t_other * inner
        if other_is_weight:
            stats_dense = classify(data)
            stats_temporal = None if d_data is None else classify(d_data)
            sub_ops = 1
            in_elems = data.size
            weight_elems = other.size
        else:
            stats_dense = classify_many(data, other)
            if d_data is None or d_other is None:
                stats_temporal = None
            else:
                stats_temporal = classify_many(d_data, d_other)
            sub_ops = 2
            in_elems = data.size + other.size
            weight_elems = 0
        token_rows = data.reshape(-1, data.shape[-1])
        stats_spatial = _row_diff_stats(token_rows)
        if not other_is_weight:
            stats_spatial = stats_spatial.merge(classify(other))
        record_step(
            RichLayerStep(
                step_index=_current_step(),
                layer_name=f"{self.layer_name}.{suffix}",
                kind=f"attn_{suffix}",
                macs=int(macs),
                in_elems=int(in_elems),
                out_elems=int(out_int.size),
                weight_elems=int(weight_elems),
                data_elems=int(data.size + (0 if other_is_weight else other.size)),
                stats_dense=stats_dense,
                stats_spatial=stats_spatial,
                stats_temporal=stats_temporal,
                sub_ops_temporal=sub_ops,
                vpu_elems=int(out_int.size) if vpu_out else 0,
                nonlinear_after=vpu_out,
                chained_input=False,
                producer_kind="other",
                executed_mode=self.mode,
            )
        )

    def extra_repr(self) -> str:
        kind = "cross" if self.is_cross else "self"
        return f"dim={self.dim}, heads={self.num_heads}, kind={kind}, mode={self.mode}"


def _current_step() -> int:
    recorder = TraceRecorder.current()
    return recorder.step_index if recorder is not None else 0


# ---------------------------------------------------------------------------
# model-level utilities
# ---------------------------------------------------------------------------

def quantize_model(
    model: Module,
    bits: int = 8,
    calibration: Optional[Dict[str, float]] = None,
    input_quantizers: Optional[Dict[str, "SymmetricQuantizer"]] = None,
    per_channel_weights: bool = False,
) -> Module:
    """Swap every linear layer / attention for its quantized counterpart.

    ``calibration`` maps qualified layer names to pre-computed input scales
    (see :mod:`repro.quant.calibration`); ``input_quantizers`` maps layer
    names to fully-constructed quantizer objects (e.g. the timestep-clustered
    quantizers of :mod:`repro.quant.tdq`) and takes precedence.  Uncalibrated
    layers freeze their scale on first use (hardware-style "dynamic"
    quantization).  The swap happens in place and ``model`` is returned for
    chaining.
    """

    def swap(module: Module) -> None:
        for name, child in list(module._modules.items()):
            if isinstance(child, QLayerBase):
                continue
            if isinstance(child, Attention):
                module.register_module(
                    name, QAttention.from_float(child, bits, per_channel_weights)
                )
            elif isinstance(child, Linear):
                module.register_module(
                    name, QLinear.from_float(child, bits, per_channel_weights)
                )
            elif isinstance(child, Conv2d):
                module.register_module(
                    name, QConv2d.from_float(child, bits, per_channel_weights)
                )
            else:
                swap(child)

    swap(model)
    calibration = calibration or {}
    input_quantizers = input_quantizers or {}
    for name, module in model.named_modules():
        if isinstance(module, QLayerBase):
            module.layer_name = name
            quantizer = input_quantizers.get(name)
            if quantizer is not None:
                module.input_quant = quantizer
                continue
            scale = calibration.get(name)
            if scale is not None:
                module.input_quant.scale = float(scale)
    return model


def iter_qlayers(model: Module):
    """Yield ``(name, qlayer)`` for every quantized layer in the tree."""
    for name, module in model.named_modules():
        if isinstance(module, QLayerBase):
            yield name, module


def reset_model_state(model: Module) -> None:
    """Drop all temporal state (start of a new trajectory)."""
    for _, qlayer in iter_qlayers(model):
        qlayer.reset_state()


def set_model_mode(model: Module, mode: ExecutionMode) -> None:
    """Set the execution mode of every quantized layer."""
    for _, qlayer in iter_qlayers(model):
        qlayer.mode = mode


def remap_model_rows(model: Module, mapping, old_batch: int) -> None:
    """Re-align every layer's temporal state to a new batch composition.

    ``mapping`` lists, for each row of the *new* batch, the old row index it
    continues (or ``None`` for a freshly admitted row).  Continuing rows keep
    their cached ``_prev_*`` state - their next temporal step differences
    against exactly the tensors their own previous step produced - while
    fresh rows start from zero state, which the difference algebra turns
    into a bit-exact dense first step.  This is the swap primitive behind
    continuous batching (:class:`repro.core.session.EngineSession`).
    """
    for _, qlayer in iter_qlayers(model):
        qlayer.remap_rows(mapping, old_batch)


def model_state_nbytes(model: Module) -> int:
    """Total bytes of cached temporal state across all quantized layers."""
    return sum(qlayer.state_nbytes() for _, qlayer in iter_qlayers(model))
