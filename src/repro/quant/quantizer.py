"""Symmetric fixed-point quantization primitives.

The paper evaluates A8W8 models quantized with Q-Diffusion (UNets) or simple
dynamic quantization (diffusion transformers).  What the Ditto algorithm
actually requires from the quantizer is narrower than either method: for
temporal differences ``q_t - q_{t+1}`` to be exact integers, adjacent steps
must share one scaling factor per layer.  :class:`SymmetricQuantizer`
provides that: a per-tensor symmetric scale, calibrated offline from a short
FP32 trajectory (static mode) or frozen on first use (the "dynamic" mode used
for DiT/Latte - hardware determines the scale at the first time step and
keeps it, exactly like the accelerator would).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..scratch import scratch_buffer

__all__ = ["SymmetricQuantizer", "quantize", "dequantize", "qrange"]


def qrange(bits: int) -> tuple:
    """(qmin, qmax) of a signed two's-complement integer of ``bits`` bits."""
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


def quantize(
    x: np.ndarray, scale: float, bits: int = 8, out_dtype=None
) -> np.ndarray:
    """Round-to-nearest symmetric quantization to signed integers.

    Returns float arrays holding exact integer values: integer arithmetic on
    them (matmuls, subtraction) is exact well inside the float precision any
    of our layer shapes can reach, while staying on numpy's fast BLAS path.
    The division and rounding always run in the input precision (float64 for
    float64 inputs - the rounding decision must not change); ``out_dtype``
    only selects the storage dtype of the (exact-integer) result, letting
    layers on the provably-exact float32 path skip a separate cast pass.

    ``scale`` is a positive scalar or an array broadcastable against ``x``
    (the per-row scale vectors of timestep-clustered quantizers when batch
    rows sit in different step clusters, see :mod:`repro.quant.tdq`).
    """
    if isinstance(scale, np.ndarray):
        if scale.size == 0 or np.any(scale <= 0.0):
            raise ValueError("per-row scales must all be positive")
    elif scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale}")
    qmin, qmax = qrange(bits)
    if not isinstance(x, np.ndarray):
        return np.clip(np.rint(x / scale), qmin, qmax)
    if out_dtype is not None and np.dtype(out_dtype) != x.dtype:
        # The full-precision quotient is a transient here: rint computes in
        # the input precision and cast-stores the exact integer result
        # directly into the (fresh) target buffer.
        q = np.divide(x, scale, out=scratch_buffer("quantize-div", x.shape, x.dtype))
        q = np.rint(q, out=np.empty(q.shape, dtype=out_dtype), casting="same_kind")
    else:
        # One temporary instead of three: divide, then round/clip in place.
        q = x / scale
        q = np.rint(q, out=q)
    return np.clip(q, qmin, qmax, out=q)


def dequantize(q: np.ndarray, scale: float) -> np.ndarray:
    return q * scale


class SymmetricQuantizer:
    """Per-tensor symmetric quantizer with observe/freeze calibration."""

    def __init__(self, bits: int = 8, scale: Optional[float] = None) -> None:
        if bits < 2:
            raise ValueError("need at least 2 bits for signed quantization")
        self.bits = bits
        self.qmin, self.qmax = qrange(bits)
        self.scale = scale
        self._observed_max = 0.0

    # -- calibration -------------------------------------------------------
    def observe(self, x: np.ndarray) -> None:
        """Accumulate the dynamic range of calibration tensors.

        Raises on non-finite values: a NaN/inf reaching the quantizer means
        the model diverged, and silently clipping it would corrupt every
        downstream difference statistic.
        """
        if x.size == 0:
            return
        # max(|x|) without materializing |x|: two allocation-free reductions.
        peak = float(max(np.max(x), -np.min(x)))
        if not np.isfinite(peak):
            raise ValueError("non-finite values reached the quantizer")
        self._observed_max = max(self._observed_max, peak)

    def freeze(self) -> float:
        """Fix the scale from observed ranges; returns the chosen scale."""
        peak = self._observed_max if self._observed_max > 0.0 else 1.0
        self.scale = peak / self.qmax
        return self.scale

    @property
    def calibrated(self) -> bool:
        return self.scale is not None

    def ensure_scale(self, x: np.ndarray) -> float:
        """Dynamic-but-sticky calibration: freeze on first tensor seen."""
        if self.scale is None:
            self.observe(x)
            self.freeze()
        return self.scale

    # -- conversion -----------------------------------------------------------
    def quantize(self, x: np.ndarray, out_dtype=None) -> np.ndarray:
        scale = self.ensure_scale(x)
        return quantize(x, scale, self.bits, out_dtype=out_dtype)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        if self.scale is None:
            raise RuntimeError("quantizer used before calibration")
        return dequantize(q, self.scale)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SymmetricQuantizer(bits={self.bits}, scale={self.scale})"
