"""High-level analysis helpers: one-call studies and text tables.

These compose the engine, policies, and hardware models into the studies a
user actually wants to run ("how does Ditto do on this benchmark?"), and
render aligned text tables for terminals / logs.  The CLI (`python -m
repro`) is a thin wrapper over this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .core import DittoEngine, lower_dense, lower_spatial, lower_temporal, relative_bops
from .core.bitwidth import BitWidthStats
from .core.engine import EngineResult
from .hw import FIG13_DESIGNS, DesignPoint, evaluate_designs
from .workloads import get_benchmark

__all__ = ["format_table", "BenchmarkStudy", "run_study"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned plain-text table."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    cells = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class BenchmarkStudy:
    """Everything one benchmark study produced, with render helpers."""

    benchmark: str
    engine_result: EngineResult
    design_results: Dict[str, object] = field(default_factory=dict)

    # -- algorithm-level findings ------------------------------------------
    def temporal_stats(self) -> BitWidthStats:
        trace = self.engine_result.rich_trace
        if hasattr(trace, "col"):
            mask = trace.col("has_temporal")
            return BitWidthStats(
                total=int(trace.col("t_total")[mask].sum()),
                zero=int(trace.col("t_zero")[mask].sum()),
                low=int(trace.col("t_low")[mask].sum()),
                high=int(trace.col("t_high")[mask].sum()),
            )
        total = BitWidthStats.empty()
        for step in trace:
            if step.stats_temporal is not None:
                total = total.merge(step.stats_temporal)
        return total

    def bops_table(self) -> str:
        trace = self.engine_result.rich_trace
        rows = [
            ["activation", relative_bops(lower_dense(trace))],
            ["spatial diff", relative_bops(lower_spatial(trace), zero_skipping=False)],
            ["temporal diff", relative_bops(lower_temporal(trace))],
        ]
        return format_table(["method", "relative BOPs"], rows)

    # -- hardware-level findings --------------------------------------------
    def hardware_table(self) -> str:
        itc = self.design_results["ITC"].report
        rows = []
        for name, result in self.design_results.items():
            report = result.report
            rows.append(
                [
                    name,
                    itc.total_cycles / report.total_cycles,
                    report.total_energy_pj / itc.total_energy_pj,
                    report.total_bytes / itc.total_bytes,
                    100.0 * report.stall_cycles / max(report.total_cycles, 1.0),
                ]
            )
        return format_table(
            ["design", "speedup", "rel.energy", "rel.mem", "stall%"], rows
        )

    def summary(self) -> str:
        stats = self.temporal_stats()
        parts = [
            self.engine_result.summary(),
            (
                f"temporal diffs: {100 * stats.zero_frac:.1f}% zero, "
                f"{100 * stats.low_or_zero_frac:.1f}% <=4-bit"
            ),
        ]
        defo = self.design_results.get("Ditto")
        if defo is not None and defo.defo is not None:
            parts.append(defo.defo.summary())
        return "\n".join(parts)


def run_study(
    benchmark: str,
    num_steps: Optional[int] = None,
    designs: Optional[List[DesignPoint]] = None,
    seed: int = 0,
    step_clusters: int = 1,
    batch_size: int = 1,
    engine_result: Optional[EngineResult] = None,
) -> BenchmarkStudy:
    """Run one benchmark end to end and evaluate the hardware designs.

    ``engine_result`` short-circuits the expensive engine construction and
    instrumented run: pass a result produced (and possibly cached) by
    :class:`repro.runtime.EngineRunner` and only the hardware-design
    post-processing is performed.  ``batch_size`` sizes the generated batch
    of a fresh run (per-batch-element temporal state keeps the Ditto
    statistics valid at any batch size).
    """
    spec = get_benchmark(benchmark)
    if engine_result is not None:
        result = engine_result
    else:
        engine = DittoEngine.from_benchmark(
            spec, num_steps=num_steps, step_clusters=step_clusters
        )
        result = engine.run(batch_size=batch_size, seed=seed)
    design_results = evaluate_designs(designs or FIG13_DESIGNS, result.rich_trace)
    return BenchmarkStudy(
        benchmark=spec.name,
        engine_result=result,
        design_results=design_results,
    )
