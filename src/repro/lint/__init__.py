"""``repro lint``: AST invariant checkers + runtime numeric sanitizer.

Static side (``repro lint`` / ``python -m repro.lint``): eleven repo-specific
rules over ``src/repro`` (plus ``scripts/`` and the lintable test helpers) -
RPL001-RPL006 and RPL011 are syntactic (see :mod:`repro.lint.checkers`),
RPL007-RPL010 ride the interprocedural dataflow engine
(:mod:`repro.lint.dataflow`).  See
README "Invariants & static checks" for the rule table.  Exit status is 0
when the repo is clean (modulo baseline), 1 otherwise.

Runtime side: :mod:`repro.lint.runtime`, an opt-in (``REPRO_SANITIZE=1``)
kernel-wrapping sanitizer that the test suite installs from conftest; its
static twin is RPL007 (the two share one kernel/region model).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from .checkers import default_checkers
from .framework import (
    ALL_SCOPES,
    Finding,
    Project,
    SourceFile,
    load_baseline,
    load_project,
    run_checkers,
    run_lint,
    write_baseline,
)

__all__ = [
    "Finding",
    "Project",
    "SourceFile",
    "default_checkers",
    "load_project",
    "run_checkers",
    "run_lint",
    "main",
]


def _default_root() -> Path:
    """The repo root: the directory holding ``src/repro`` (this package)."""
    return Path(__file__).resolve().parents[3]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Run the repo's AST invariant checkers (RPL001-RPL011).",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root to lint (default: the checkout this package lives in)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write all findings (including baselined) as JSON",
    )
    parser.add_argument(
        "--sarif",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write all findings as SARIF 2.1.0 (CI inline annotations)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="stdout format for new findings (default: text)",
    )
    parser.add_argument(
        "--scope",
        default=",".join(ALL_SCOPES),
        metavar="SCOPES",
        help=(
            "comma-separated source scopes to lint: src, scripts, tests "
            "(default: all three; rules still only fire in scopes they declare)"
        ),
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "fail (exit 3) if the whole lint run - including the dataflow "
            "fixed point - exceeds this wall-clock budget"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="JSON baseline of accepted findings; only new findings fail",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the active rules and exit",
    )
    args = parser.parse_args(argv)

    checkers = default_checkers()
    if args.list_rules:
        for checker in checkers:
            scopes = ",".join(sorted(checker.scopes))
            print(f"{checker.rule}  [{scopes}]  {checker.title}")
        return 0

    scopes = [part.strip() for part in args.scope.split(",") if part.strip()]
    for scope in scopes:
        if scope not in ALL_SCOPES:
            print(f"unknown scope {scope!r} (choose from {', '.join(ALL_SCOPES)})", file=sys.stderr)
            return 2

    root = args.root if args.root is not None else _default_root()
    baseline = None
    if args.baseline is not None and args.baseline.exists() and not args.write_baseline:
        baseline = load_baseline(args.baseline)
    started = time.perf_counter()
    findings, new = run_lint(root, checkers, baseline, scopes=scopes)
    elapsed = time.perf_counter() - started

    if args.json is not None:
        args.json.write_text(
            json.dumps([f.to_json() for f in findings], indent=2) + "\n"
        )
    if args.sarif is not None:
        from .sarif import write_sarif

        write_sarif(args.sarif, findings, checkers, baseline)
    if args.write_baseline:
        if args.baseline is None:
            print("--write-baseline requires --baseline PATH", file=sys.stderr)
            return 2
        write_baseline(findings, args.baseline)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    if args.format == "sarif":
        from .sarif import findings_to_sarif

        print(json.dumps(findings_to_sarif(findings, checkers, baseline), indent=2))
    else:
        for finding in new:
            print(finding)
        suppressed = len(findings) - len(new)
        tail = f" ({suppressed} baselined)" if suppressed else ""
        print(
            f"repro lint: {len(new)} finding(s){tail}, {len(checkers)} checkers, "
            f"{elapsed:.2f}s"
        )
    if args.time_budget is not None and elapsed > args.time_budget:
        print(
            f"repro lint: time budget exceeded ({elapsed:.2f}s > "
            f"{args.time_budget:.2f}s) - the dataflow fixed point is too slow",
            file=sys.stderr,
        )
        return 3
    return 1 if new else 0
