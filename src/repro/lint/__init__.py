"""``repro lint``: AST invariant checkers + runtime numeric sanitizer.

Static side (``repro lint`` / ``python -m repro.lint``): six repo-specific
rules over ``src/repro`` - see :mod:`repro.lint.checkers` for the contracts
and README "Invariants & static checks" for the rule table.  Exit status is
0 when the repo is clean (modulo baseline), 1 otherwise.

Runtime side: :mod:`repro.lint.runtime`, an opt-in (``REPRO_SANITIZE=1``)
kernel-wrapping sanitizer that the test suite installs from conftest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .checkers import default_checkers
from .framework import (
    Finding,
    Project,
    SourceFile,
    load_baseline,
    load_project,
    run_checkers,
    run_lint,
    write_baseline,
)

__all__ = [
    "Finding",
    "Project",
    "SourceFile",
    "default_checkers",
    "load_project",
    "run_checkers",
    "run_lint",
    "main",
]


def _default_root() -> Path:
    """The repo root: the directory holding ``src/repro`` (this package)."""
    return Path(__file__).resolve().parents[3]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Run the repo's AST invariant checkers (RPL001-RPL006).",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root to lint (default: the checkout this package lives in)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write all findings (including baselined) as JSON",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="JSON baseline of accepted findings; only new findings fail",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the active rules and exit",
    )
    args = parser.parse_args(argv)

    checkers = default_checkers()
    if args.list_rules:
        for checker in checkers:
            print(f"{checker.rule}  {checker.title}")
        return 0

    root = args.root if args.root is not None else _default_root()
    baseline = None
    if args.baseline is not None and args.baseline.exists() and not args.write_baseline:
        baseline = load_baseline(args.baseline)
    findings, new = run_lint(root, checkers, baseline)

    if args.json is not None:
        args.json.write_text(
            json.dumps([f.to_json() for f in findings], indent=2) + "\n"
        )
    if args.write_baseline:
        if args.baseline is None:
            print("--write-baseline requires --baseline PATH", file=sys.stderr)
            return 2
        write_baseline(findings, args.baseline)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    for finding in new:
        print(finding)
    suppressed = len(findings) - len(new)
    tail = f" ({suppressed} baselined)" if suppressed else ""
    print(f"repro lint: {len(new)} finding(s){tail}, {len(checkers)} checkers")
    return 1 if new else 0
