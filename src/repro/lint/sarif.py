"""SARIF 2.1.0 output for ``repro lint --format sarif`` / ``--sarif PATH``.

SARIF is the interchange format CI code-scanning UIs ingest to annotate pull
requests inline.  The document is deliberately minimal: one run, one tool
(``repro-lint``), one rule entry per active checker, one ``result`` per
finding with a physical location.  Baselined findings are emitted with
``"baselineState": "unchanged"`` so scanners can hide them while new
findings surface as ``"new"``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Sequence, Set

from .framework import Checker, Finding

__all__ = ["findings_to_sarif", "write_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def findings_to_sarif(
    findings: Sequence[Finding],
    checkers: Sequence[Checker],
    baseline: Optional[Set[str]] = None,
) -> Dict:
    rules = [
        {
            "id": checker.rule,
            "name": checker.__class__.__name__,
            "shortDescription": {"text": checker.title or checker.rule},
            "defaultConfiguration": {"level": "error"},
        }
        for checker in checkers
    ]
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    baseline = baseline or set()
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "baselineState": "unchanged" if finding.key in baseline else "new",
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {"startLine": finding.line},
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def write_sarif(
    path: Path,
    findings: Sequence[Finding],
    checkers: Sequence[Checker],
    baseline: Optional[Set[str]] = None,
) -> None:
    document = findings_to_sarif(findings, checkers, baseline)
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
