"""``python -m repro.lint`` entry point."""

import sys

from . import main

sys.exit(main())
