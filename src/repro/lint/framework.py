"""Tiny AST-lint framework for the repo's own serving-stack invariants.

``repro lint`` is not a general-purpose linter: every rule encodes a contract
this codebase has already been bitten by (NEP-50 scalar promotion, the
temporal-state registry, cache-key coverage, profiler-phase coverage, GEMM
layout discipline).  The framework keeps the moving parts small:

* :class:`SourceFile` - one parsed ``.py`` file plus its per-line suppression
  table (``# repro-lint: ignore[RULE]``).
* :class:`Project` - every source file under ``src/repro`` plus auxiliary
  texts (``scripts/check_bench.py``) that cross-file rules need to read.
* :class:`Checker` - a rule.  Per-file rules implement :meth:`~Checker.check_file`;
  cross-file rules implement :meth:`~Checker.check_project`.
* :func:`run_lint` - load, check, filter suppressions, apply the optional
  JSON baseline, and return findings sorted by location.

Suppression semantics: a ``# repro-lint: ignore[RPL001]`` comment suppresses
matching findings anchored on its own line; when the comment sits alone on a
line it applies to the next *code* line instead - blank lines and further
comments are skipped, and when that code line is a decorator the suppression
extends through the decorated ``def``/``class`` statement.  ``ignore[*]``
suppresses every rule.  ``# repro-lint: assume[...]`` comments carry dataflow
facts (``f32``, ``c-contiguous``, ``row-shape``, ...) with the same
line-targeting rules; the abstract interpreter and the RPL007-RPL010 rules
consume them.  Baselines are JSON files listing finding keys (rule + path +
message, deliberately line-number free so unrelated edits don't churn them).

Scopes: every :class:`SourceFile` carries a ``scope`` - ``"src"`` for the
package, ``"scripts"`` for ``scripts/*.py``, ``"tests"`` for the lintable
test helpers.  Checkers declare which scopes they apply to via
:attr:`Checker.scopes`, so test-only idioms don't trip production rules.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "SourceFile",
    "Project",
    "Checker",
    "load_project",
    "run_checkers",
    "run_lint",
    "load_baseline",
    "write_baseline",
]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_*,\s]+)\]")
_ASSUME_RE = re.compile(r"#\s*repro-lint:\s*assume\[([A-Za-z0-9_\-*,\s]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored at ``path:line``."""

    path: str  # repo-relative posix path
    line: int
    rule: str
    message: str

    @property
    def key(self) -> str:
        """Baseline identity: line-free so edits above a finding don't churn it."""
        return f"{self.rule}:{self.path}:{self.message}"

    def to_json(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line, "message": self.message}

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


class SourceFile:
    """A parsed source file plus its suppression/assumption tables."""

    def __init__(self, rel_path: str, source: str, scope: str = "src") -> None:
        self.rel_path = rel_path.replace("\\", "/")
        self.source = source
        self.scope = scope
        self.tree = ast.parse(source, filename=rel_path)
        lines = source.splitlines()
        self._suppressions: Dict[int, Set[str]] = {}
        self._assumptions: Dict[int, Set[str]] = {}
        for lineno, text in enumerate(lines, start=1):
            for regex, table in ((_SUPPRESS_RE, self._suppressions), (_ASSUME_RE, self._assumptions)):
                match = regex.search(text)
                if not match:
                    continue
                rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
                # A comment-only line shields the code below it.
                if text[: match.start()].strip() == "":
                    for target in self._comment_targets(lines, lineno):
                        table.setdefault(target, set()).update(rules)
                else:
                    table.setdefault(lineno, set()).update(rules)

    @staticmethod
    def _comment_targets(lines: List[str], comment_line: int) -> List[int]:
        """Lines a standalone comment applies to.

        Skips blank lines and further comments to find the next code line;
        when that line opens a decorator chain, the suppression extends to
        every decorator line and the decorated ``def``/``class`` line (rule
        anchors may sit on either).
        """
        index = comment_line  # 0-based index of the line *after* the comment
        while index < len(lines) and (
            not lines[index].strip() or lines[index].lstrip().startswith("#")
        ):
            index += 1
        if index >= len(lines):
            return []
        targets = [index + 1]
        if lines[index].lstrip().startswith("@"):
            while index + 1 < len(lines):
                index += 1
                stripped = lines[index].lstrip()
                if not stripped or stripped.startswith("#"):
                    continue
                targets.append(index + 1)
                if not stripped.startswith("@"):
                    break
        return targets

    def suppressed(self, line: int, rule: str) -> bool:
        rules = self._suppressions.get(line, ())
        return rule in rules or "*" in rules

    def assumptions(self, line: int) -> Set[str]:
        """Dataflow facts asserted for ``line`` via ``assume[...]`` comments."""
        return self._assumptions.get(line, set())


class Project:
    """All lintable sources plus auxiliary raw texts cross-file rules read."""

    def __init__(self, files: Mapping[str, SourceFile], aux: Optional[Mapping[str, str]] = None):
        self.files: Dict[str, SourceFile] = dict(files)
        self.aux: Dict[str, str] = dict(aux or {})

    @classmethod
    def from_sources(
        cls, sources: Mapping[str, str], aux: Optional[Mapping[str, str]] = None
    ) -> "Project":
        """Build an in-memory project (used by the checker fixture tests)."""
        return cls(
            {path: SourceFile(path, text, scope=_scope_of(path)) for path, text in sources.items()},
            aux,
        )

    def find(self, suffix: str) -> Optional[SourceFile]:
        """The unique source file whose path ends with ``suffix`` (if any)."""
        for path, handle in self.files.items():
            if path.endswith(suffix):
                return handle
        return None

    def text(self, suffix: str) -> Optional[str]:
        """Raw text of a source or auxiliary file by path suffix."""
        handle = self.find(suffix)
        if handle is not None:
            return handle.source
        for path, text in self.aux.items():
            if path.replace("\\", "/").endswith(suffix):
                return text
        return None


class Checker:
    """Base class: subclasses set ``rule``/``title`` and override one hook.

    ``scopes`` declares which source scopes the rule applies to; per-file
    hooks are only invoked for in-scope files, and project-level rules are
    expected to consult ``handle.scope`` (the dataflow rules do).
    """

    rule: str = "RPL000"
    title: str = ""
    scopes: FrozenSet[str] = frozenset({"src"})

    def check_file(self, handle: SourceFile) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


ALL_SCOPES = ("src", "scripts", "tests")


def _scope_of(rel_path: str) -> str:
    path = rel_path.replace("\\", "/")
    if path.startswith("scripts/") or "/scripts/" in path:
        return "scripts"
    if path.startswith("tests/") or "/tests/" in path:
        return "tests"
    return "src"


def load_project(root: Path, scopes: Optional[Sequence[str]] = None) -> Project:
    """Load the lintable sources and the aux texts the project rules need.

    ``scopes`` selects which source trees are loaded: ``src`` is
    ``src/repro/**``, ``scripts`` is ``scripts/*.py``, and ``tests`` is the
    importable test helpers (``tests/helpers.py``) - not the test modules
    themselves, whose fixture code intentionally violates the rules.
    """
    root = Path(root)
    selected = set(scopes if scopes is not None else ALL_SCOPES)
    files: Dict[str, SourceFile] = {}

    def load(path: Path, scope: str) -> None:
        rel = path.relative_to(root).as_posix()
        files[rel] = SourceFile(rel, path.read_text(), scope=scope)

    if "src" in selected:
        package = root / "src" / "repro"
        for path in sorted(package.rglob("*.py")):
            if "__pycache__" not in path.parts:
                load(path, "src")
    if "scripts" in selected:
        for path in sorted((root / "scripts").glob("*.py")):
            load(path, "scripts")
    if "tests" in selected:
        helpers = root / "tests" / "helpers.py"
        if helpers.exists():
            load(helpers, "tests")
    aux: Dict[str, str] = {}
    check_bench = root / "scripts" / "check_bench.py"
    if check_bench.exists():
        aux["scripts/check_bench.py"] = check_bench.read_text()
    return Project(files, aux)


def run_checkers(project: Project, checkers: Sequence[Checker]) -> List[Finding]:
    """Run every checker over the project and filter suppressed findings."""
    findings: List[Finding] = []
    for checker in checkers:
        for handle in project.files.values():
            if handle.scope in checker.scopes:
                findings.extend(checker.check_file(handle))
        findings.extend(checker.check_project(project))
    kept = []
    for finding in findings:
        handle = project.files.get(finding.path)
        if handle is not None and handle.suppressed(finding.line, finding.rule):
            continue
        kept.append(finding)
    return sorted(set(kept))


def load_baseline(path: Path) -> Set[str]:
    payload = json.loads(Path(path).read_text())
    return set(payload.get("suppressed", []))


def write_baseline(findings: Sequence[Finding], path: Path) -> None:
    payload = {"version": 1, "suppressed": sorted({f.key for f in findings})}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def run_lint(
    root: Path,
    checkers: Optional[Sequence[Checker]] = None,
    baseline: Optional[Set[str]] = None,
    scopes: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint the repo at ``root``.

    Returns ``(all_findings, new_findings)`` where ``new_findings`` excludes
    anything covered by the baseline.  CI fails on ``new_findings`` only.
    """
    if checkers is None:
        from .checkers import default_checkers

        checkers = default_checkers()
    findings = run_checkers(load_project(root, scopes=scopes), checkers)
    baseline = baseline or set()
    new = [f for f in findings if f.key not in baseline]
    return findings, new
