"""Flow-sensitive abstract interpreter + interprocedural fixed point.

One :class:`DataflowEngine` analyzes every function the
:class:`~repro.lint.dataflow.callgraph.CallGraph` knows about:

* per function, a flow-sensitive walk over the statement list propagates
  :class:`~repro.lint.dataflow.lattice.AbstractValue` through assignments,
  attribute stores, branches (join), loops (bounded iteration to a fixed
  point - the conservative widening), ``with`` blocks and ``try`` handlers;
* across functions, a context-insensitive fixed point: parameter values are
  the join of every *observed* call-site binding, return summaries feed call
  expression evaluation, and calibration-region taint propagates caller to
  callee.  Entry points nobody calls internally keep bottom parameters, so
  unknown external inputs produce no evidence and no findings.

The engine records *facts* (calls, RNG draws, attribute stores) plus an
expression evaluation cache; the rules in
:mod:`repro.lint.dataflow.rules` and the dataflow-backed RPL001/RPL005
upgrades consume those instead of re-walking the AST.

``# repro-lint: assume[...]`` comments are the escape hatch: ``f32``/``f64``/
``int`` pin dtype evidence, ``c-contiguous``/``view`` pin layout evidence,
``not-rng`` / ``healthy`` strip provenance tags, and ``row-shape`` marks an
RNG draw whose shape discipline the author vouches for.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..framework import Project, SourceFile
from .callgraph import CallGraph, FunctionInfo
from .lattice import (
    DT_F32,
    DT_F64,
    DT_INT,
    DT_OTHER,
    LAY_CONTIG,
    LAY_VIEW,
    TAG_RNG_DRAW,
    TAG_RNG_STREAM,
    TAG_SESSION,
    TAG_UNHEALTHY,
    TOP,
    AbstractValue,
    array_value,
    join,
    join_envs,
    scalar_value,
)

__all__ = ["CallFact", "DrawFact", "AttrStoreFact", "Summary", "DataflowEngine"]

_MAX_PASSES = 8
_LOOP_ITERATIONS = 3

# numpy constructors whose default dtype is float64 (fresh C-contiguous)
_DEFAULT_F64_FNS = {"zeros", "ones", "empty", "full", "linspace"}
# numpy functions that allocate fresh arrays and inherit input dtype
_PROPAGATE_FNS = {
    "concatenate", "stack", "where", "pad", "cumprod", "cumsum",
    "clip", "rint", "abs", "maximum", "minimum", "outer", "meshgrid",
    "atleast_1d", "atleast_2d",
}
_LIKE_FNS = {"zeros_like", "ones_like", "empty_like", "full_like"}
_NP_MATH_FNS = {
    "sqrt", "log", "log2", "log10", "log1p", "exp", "expm1", "power",
    "cos", "sin", "tan", "arcsin", "arccos", "arctan", "arctan2",
}
_VIEW_FNS = {"transpose", "swapaxes"}
_DRAW_METHODS = {"standard_normal", "normal", "uniform", "integers", "random"}

# method / attribute spellings that mint per-request RNG stream handles.
# Deliberately narrow: a generic `rng` parameter (weight init, dataset
# synthesis, lockstep batch generation) is NOT a per-request stream; stream
# provenance comes from the factories below and flows interprocedurally into
# sampler `rng` parameters via the rngs-list call sites.
_STREAM_FACTORY_METHODS = {"sampler_rng"}
_STREAM_CLASSES = {"ReplayableRNG", "PerElementRNG"}
_STREAM_ATTRS = {"streams"}
_STREAM_PARAM_NAMES = {"rngs", "streams"}

_SESSION_FACTORY_METHODS = {"open_session"}
_SESSION_CLASSES = {"EngineSession"}

# with-block context managers that open a float32 calibration region; the
# spellings mirror repro.lint.runtime / repro.quant.calibration.
_REGION_MANAGERS = {"calibration_precision", "calibration_region"}


@dataclass
class CallFact:
    """One call expression, with evaluated operands and context."""

    node: ast.Call
    fn: FunctionInfo
    func_name: str  # trailing name: `F.linear(...)` -> "linear"
    receiver_name: Optional[str]  # `x.m()` -> "x"; None for plain calls
    receiver: Optional[AbstractValue]
    args: List[AbstractValue]
    kwargs: Dict[str, AbstractValue]
    resolved: Optional[FunctionInfo]
    targets: List[FunctionInfo]  # resolved + virtual-dispatch candidates
    in_region: bool  # lexically inside a calibration-region `with`
    line: int

    @property
    def path(self) -> str:
        return self.fn.path


@dataclass
class DrawFact:
    """A draw on a value carrying the rng-stream provenance tag."""

    node: ast.Call
    fn: FunctionInfo
    method: str
    stream: AbstractValue
    shape_node: Optional[ast.expr]
    guards: List[ast.expr]  # enclosing if/while tests at the draw
    loop_fixed: bool  # drawn inside a loop from a loop-invariant stream
    line: int

    @property
    def path(self) -> str:
        return self.fn.path


@dataclass
class AttrStoreFact:
    fn: FunctionInfo
    attr: str
    value: AbstractValue
    line: int


@dataclass
class Summary:
    """Converging interprocedural facts for one function.

    ``return_value`` is ``None`` until the function has been analyzed at
    least once (bottom, contributes nothing to joins) - starting at ``TOP``
    would absorb every join and erase all return evidence.
    """

    param_values: List[AbstractValue] = field(default_factory=list)
    return_value: Optional[AbstractValue] = None
    in_region: bool = False  # some call site is (transitively) in a region
    returns_array: Optional[bool] = None

    def state(self) -> Tuple:
        return (tuple(self.param_values), self.return_value, self.in_region)

    def result(self) -> AbstractValue:
        return self.return_value if self.return_value is not None else TOP


@dataclass
class FunctionFacts:
    calls: List[CallFact] = field(default_factory=list)
    draws: List[DrawFact] = field(default_factory=list)
    attr_stores: List[AttrStoreFact] = field(default_factory=list)
    values: Dict[int, AbstractValue] = field(default_factory=dict)  # id(node)


def _assumptions(handle: SourceFile, line: int) -> Set[str]:
    getter = getattr(handle, "assumptions", None)
    return getter(line) if getter is not None else set()


def _dtype_atom_from_node(node: Optional[ast.expr]) -> Optional[str]:
    """Map a dtype= expression to a lattice atom when statically knowable."""
    if node is None:
        return None
    text = None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value
    elif isinstance(node, ast.Attribute):
        text = node.attr
    elif isinstance(node, ast.Name):
        text = node.id
    if text is None:
        return None
    if "float32" in text:
        return DT_F32
    if "float64" in text or text == "double":
        return DT_F64
    if "int" in text:
        return DT_INT
    return None


class _Terminated(Exception):
    """Internal: the current block path ended (return/raise/break/continue)."""


class DataflowEngine:
    """Build the call graph, run the fixed point, expose facts to rules."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.graph = CallGraph(project)
        self.summaries: Dict[str, Summary] = {}
        self.facts: Dict[str, FunctionFacts] = {}
        self._eval_cache: Dict[int, AbstractValue] = {}
        for qual, info in self.graph.functions.items():
            self.summaries[qual] = Summary(param_values=self._initial_params(info))
        self._run_fixed_point()

    # -- public queries ----------------------------------------------------

    def value_of(self, node: ast.AST) -> AbstractValue:
        """The abstract value computed for an expression node (or top)."""
        return self._eval_cache.get(id(node), TOP)

    def all_calls(self) -> List[CallFact]:
        return [fact for facts in self.facts.values() for fact in facts.calls]

    def all_draws(self) -> List[DrawFact]:
        return [fact for facts in self.facts.values() for fact in facts.draws]

    def function_facts(self, info: FunctionInfo) -> FunctionFacts:
        return self.facts.get(info.qualname, FunctionFacts())

    def summary(self, info: FunctionInfo) -> Summary:
        return self.summaries[info.qualname]

    # -- fixed point -------------------------------------------------------

    def _initial_params(self, info: FunctionInfo) -> List[AbstractValue]:
        values: List[AbstractValue] = []
        args = info.node.args
        bottom = AbstractValue(dtypes=frozenset(), layouts=frozenset())
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            value = bottom
            annotation = getattr(arg, "annotation", None)
            if annotation is not None and "ndarray" in ast.unparse(annotation):
                value = AbstractValue(dtypes=frozenset(), layouts=frozenset(), array=True)
            if arg.arg == "self":
                tags = set()
                if info.class_name in _SESSION_CLASSES:
                    tags.add(TAG_SESSION)
                value = AbstractValue(array=False, tags=frozenset(tags))
            elif arg.arg in _STREAM_PARAM_NAMES:
                value = value.with_tags(TAG_RNG_STREAM)
            values.append(value)
        return values

    def _run_fixed_point(self) -> None:
        for _ in range(_MAX_PASSES):
            before = {qual: s.state() for qual, s in self.summaries.items()}
            self._eval_cache = {}
            for qual, info in self.graph.functions.items():
                facts = FunctionFacts()
                interp = _Interp(self, info, facts)
                interp.run()
                self.facts[qual] = facts
                self._eval_cache.update(facts.values)
            if all(self.summaries[q].state() == before[q] for q in before):
                break

    def _observe_call(self, fact: CallFact, caller_in_region: bool) -> None:
        """Join call-site bindings into the callee summaries (the fixed point)."""
        for target in fact.targets:
            self._observe_one(fact, target, caller_in_region)

    def _observe_one(self, fact: CallFact, target: FunctionInfo, caller_in_region: bool) -> None:
        summary = self.summaries[target.qualname]
        if fact.in_region or caller_in_region:
            summary.in_region = True
        bound: List[AbstractValue] = []
        if target.class_name is not None:
            # Slot 0 is `self`: the receiver for method calls, a fresh
            # instance (top) for constructor calls resolved to __init__.
            if target.name == "__init__":
                bound.append(TOP)
            else:
                bound.append(fact.receiver if fact.receiver is not None else TOP)
        bound.extend(fact.args)
        for i, value in enumerate(bound):
            if i < len(summary.param_values):
                summary.param_values[i] = join(summary.param_values[i], value)
        if fact.kwargs:
            args = target.node.args
            names = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
            for kw_name, value in fact.kwargs.items():
                if kw_name in names:
                    i = names.index(kw_name)
                    if i < len(summary.param_values):
                        summary.param_values[i] = join(summary.param_values[i], value)

    def _observe_return(self, info: FunctionInfo, value: AbstractValue) -> None:
        summary = self.summaries[info.qualname]
        summary.return_value = (
            value if summary.return_value is None else join(summary.return_value, value)
        )
        summary.returns_array = summary.return_value.array


class _Interp:
    """One flow-sensitive pass over one function body."""

    def __init__(self, engine: DataflowEngine, info: FunctionInfo, facts: FunctionFacts):
        self.engine = engine
        self.info = info
        self.facts = facts
        self.handle = info.handle
        self.guards: List[ast.expr] = []
        self.loop_targets: List[Set[str]] = []
        self.region_depth = 0
        self.return_value: Optional[AbstractValue] = None
        self.summary = engine.summaries[info.qualname]

    # -- entry -------------------------------------------------------------

    def run(self) -> None:
        env: Dict[str, AbstractValue] = {}
        args = self.info.node.args
        names = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for i, arg in enumerate(names):
            if i < len(self.summary.param_values):
                env[arg.arg] = self.summary.param_values[i].with_tags(f"param:{i}")
            else:
                env[arg.arg] = TOP
        if args.vararg is not None:
            env[args.vararg.arg] = TOP
        if args.kwarg is not None:
            env[args.kwarg.arg] = TOP
        try:
            self.exec_block(self.info.node.body, env)
        except _Terminated:
            pass
        if self.return_value is None:
            self.return_value = scalar_value()  # fell off the end -> None
        self.engine._observe_return(self.info, self.return_value)

    # -- statements --------------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt], env: Dict[str, AbstractValue]) -> None:
        """Execute statements in env (mutated in place); raises _Terminated."""
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.stmt, env: Dict[str, AbstractValue]) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._exec_assign(stmt, env)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value, env) if stmt.value is not None else scalar_value()
            self.return_value = (
                value if self.return_value is None else join(self.return_value, value)
            )
            raise _Terminated()
        elif isinstance(stmt, (ast.Raise, ast.Break, ast.Continue)):
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self.eval(stmt.exc, env)
            raise _Terminated()
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, env)
        elif isinstance(stmt, (ast.For, ast.While)):
            self._exec_loop(stmt, env)
        elif isinstance(stmt, ast.With):
            self._exec_with(stmt, env)
        elif isinstance(stmt, ast.Try):
            self._exec_try(stmt, env)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            env[stmt.name] = scalar_value()  # nested defs are opaque
        elif isinstance(stmt, ast.ClassDef):
            env[stmt.name] = scalar_value()

    def _exec_assign(self, stmt: ast.stmt, env: Dict[str, AbstractValue]) -> None:
        if isinstance(stmt, ast.Assign):
            targets, value_node = stmt.targets, stmt.value
        else:
            targets, value_node = [stmt.target], stmt.value
        if value_node is None:
            return
        value = self.eval(value_node, env)
        if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            value = self._binop_value(env.get(stmt.target.id, TOP), value)
        value = self._apply_assumptions(value, stmt.lineno)
        for target in targets:
            self._bind(target, value, env)

    def _bind(self, target: ast.AST, value: AbstractValue, env: Dict[str, AbstractValue]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            element = AbstractValue(tags=value.tags)
            for elt in target.elts:
                self._bind(elt, element, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value, env)
        elif isinstance(target, ast.Attribute):
            self.facts.attr_stores.append(
                AttrStoreFact(fn=self.info, attr=target.attr, value=value, line=target.lineno)
            )
            if isinstance(target.value, ast.Name):
                self.eval(target.value, env)
        elif isinstance(target, ast.Subscript):
            self.eval(target.value, env)

    def _apply_assumptions(self, value: AbstractValue, line: int) -> AbstractValue:
        assumes = _assumptions(self.handle, line)
        if not assumes:
            return value
        if "f32" in assumes:
            value = value.with_dtypes(DT_F32)
        if "f64" in assumes:
            value = value.with_dtypes(DT_F64)
        if "int" in assumes:
            value = value.with_dtypes(DT_INT)
        if "c-contiguous" in assumes:
            value = value.with_layouts(LAY_CONTIG)
        if "view" in assumes:
            value = value.with_layouts(LAY_VIEW)
        if "not-rng" in assumes:
            value = value.without_tags(TAG_RNG_STREAM, TAG_RNG_DRAW)
        if "healthy" in assumes:
            value = value.without_tags(TAG_UNHEALTHY)
        return value

    def _exec_if(self, stmt: ast.If, env: Dict[str, AbstractValue]) -> None:
        self.eval(stmt.test, env)
        self.guards.append(stmt.test)
        then_env, else_env = dict(env), dict(env)
        then_done = else_done = False
        try:
            self.exec_block(stmt.body, then_env)
        except _Terminated:
            then_done = True
        try:
            self.exec_block(stmt.orelse, else_env)
        except _Terminated:
            else_done = True
        self.guards.pop()
        if then_done and else_done:
            raise _Terminated()
        if then_done:
            merged = else_env
        elif else_done:
            merged = then_env
        else:
            merged = join_envs(then_env, else_env)
        env.clear()
        env.update(merged)

    def _exec_loop(self, stmt: ast.stmt, env: Dict[str, AbstractValue]) -> None:
        targets: Set[str] = set()
        if isinstance(stmt, ast.For):
            iterable = self.eval(stmt.iter, env)
            for node in ast.walk(stmt.target):
                if isinstance(node, ast.Name):
                    targets.add(node.id)
            element = self._element_of(iterable)
            self._bind(stmt.target, element, env)
            guard = None
        else:
            self.eval(stmt.test, env)
            guard = stmt.test
        if guard is not None:
            self.guards.append(guard)
        self.loop_targets.append(targets)
        # Bounded iteration to a fixed point: evidence sets only grow, so a
        # few passes reach the loop's join; a final env-join widens the result
        # to cover the zero-iteration path.
        pre = dict(env)
        for _ in range(_LOOP_ITERATIONS):
            snapshot = dict(env)
            try:
                self.exec_block(stmt.body, env)
            except _Terminated:
                env.clear()
                env.update(snapshot)
                break
            merged = join_envs(snapshot, env)
            env.clear()
            env.update(merged)
            if env == snapshot:
                break
        self.loop_targets.pop()
        if guard is not None:
            self.guards.pop()
        merged = join_envs(pre, env)
        env.clear()
        env.update(merged)
        for orelse in getattr(stmt, "orelse", []) or []:
            self.exec_stmt(orelse, env)

    def _element_of(self, iterable: AbstractValue) -> AbstractValue:
        tags = iterable.tags - frozenset(t for t in iterable.tags if t.startswith("param:"))
        return AbstractValue(dtypes=iterable.dtypes, array=None, tags=tags)

    def _exec_with(self, stmt: ast.With, env: Dict[str, AbstractValue]) -> None:
        opens_region = False
        for item in stmt.items:
            value = self.eval(item.context_expr, env)
            if isinstance(item.context_expr, ast.Call):
                name = _call_name(item.context_expr)
                if name in _REGION_MANAGERS:
                    opens_region = True
            if item.optional_vars is not None:
                self._bind(item.optional_vars, value, env)
        if opens_region:
            self.region_depth += 1
        try:
            self.exec_block(stmt.body, env)
        finally:
            if opens_region:
                self.region_depth -= 1

    def _exec_try(self, stmt: ast.Try, env: Dict[str, AbstractValue]) -> None:
        # Handlers may observe any intermediate state of the body; seed them
        # from the join of the pre-state and the body's exit state.
        pre = dict(env)
        body_done = False
        try:
            self.exec_block(stmt.body, env)
        except _Terminated:
            body_done = True
        handler_seed = join_envs(pre, env)
        exits: List[Dict[str, AbstractValue]] = [] if body_done else [dict(env)]
        for handler in stmt.handlers:
            h_env = dict(handler_seed)
            if handler.name is not None:
                h_env[handler.name] = scalar_value()
            try:
                self.exec_block(handler.body, h_env)
            except _Terminated:
                continue
            exits.append(h_env)
        for orelse in stmt.orelse:
            if exits:
                self.exec_stmt(orelse, exits[0])
        if not exits:
            merged = handler_seed  # every path terminated; finally still runs
        else:
            merged = exits[0]
            for other in exits[1:]:
                merged = join_envs(merged, other)
        env.clear()
        env.update(merged)
        self.exec_block(stmt.finalbody, env)
        if not exits:
            raise _Terminated()

    # -- expressions -------------------------------------------------------

    def eval(self, node: Optional[ast.expr], env: Dict[str, AbstractValue]) -> AbstractValue:
        if node is None:
            return TOP
        value = self._eval_inner(node, env)
        self.facts.values[id(node)] = value
        return value

    def _eval_inner(self, node: ast.expr, env: Dict[str, AbstractValue]) -> AbstractValue:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return scalar_value(DT_OTHER)
            if isinstance(node.value, int):
                return scalar_value(DT_INT)
            if isinstance(node.value, float):
                # Python floats are NEP-50 weak: no float64 evidence.
                return scalar_value(DT_OTHER)
            return scalar_value(DT_OTHER)
        if isinstance(node, ast.Name):
            return env.get(node.id, TOP)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            return self._binop_value(left, right)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            parts = (
                [node.left, *node.comparators] if isinstance(node, ast.Compare) else node.values
            )
            tags: frozenset = frozenset()
            for part in parts:
                tags |= self.eval(part, env).tags
            return AbstractValue(tags=tags - _param_tags(tags))
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return join(self.eval(node.body, env), self.eval(node.orelse, env))
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value, env)
            self.eval(node.slice, env)
            has_slice = isinstance(node.slice, ast.Slice) or (
                isinstance(node.slice, ast.Tuple)
                and any(isinstance(e, ast.Slice) for e in node.slice.elts)
            )
            return AbstractValue(
                dtypes=base.dtypes,
                array=base.array if has_slice else None,
                tags=base.tags - _param_tags(base.tags),
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            dtypes: Optional[frozenset] = frozenset()
            tags = frozenset()
            for elt in node.elts:
                value = self.eval(elt, env)
                dtypes = None if (dtypes is None or value.dtypes is None) else dtypes | value.dtypes
                tags |= value.tags
            return AbstractValue(dtypes=dtypes, array=False, tags=tags - _param_tags(tags))
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.eval(key, env)
            for value in node.values:
                self.eval(value, env)
            return scalar_value()
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            return self._eval_comprehension(node, env)
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value
            return value
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, ast.Lambda):
            return scalar_value()
        if isinstance(node, ast.JoinedStr):
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    self.eval(part.value, env)
            return scalar_value(DT_OTHER)
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value, env)
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part, env)
            return scalar_value()
        return TOP

    def _eval_attribute(self, node: ast.Attribute, env: Dict[str, AbstractValue]) -> AbstractValue:
        base = self.eval(node.value, env)
        attr = node.attr
        if attr == "T":
            return array_value(
                dtypes=base.dtypes, layouts=frozenset({LAY_VIEW}), tags=_carry(base.tags)
            )
        if attr in ("shape", "ndim", "size", "dtype", "nbytes", "strides", "flags"):
            return AbstractValue(array=False, tags=_carry(base.tags))
        if attr in _STREAM_ATTRS:
            return AbstractValue(tags=_carry(base.tags) | frozenset({TAG_RNG_STREAM}))
        return AbstractValue(tags=_carry(base.tags))

    def _eval_comprehension(self, node: ast.expr, env: Dict[str, AbstractValue]) -> AbstractValue:
        local = dict(env)
        targets: Set[str] = set()
        for gen in node.generators:
            iterable = self.eval(gen.iter, local)
            for sub in ast.walk(gen.target):
                if isinstance(sub, ast.Name):
                    targets.add(sub.id)
            self._bind(gen.target, self._element_of(iterable), local)
        self.loop_targets.append(targets)
        try:
            for gen in node.generators:
                for cond in gen.ifs:
                    self.eval(cond, local)
            tags: frozenset = frozenset()
            if isinstance(node, ast.DictComp):
                tags |= self.eval(node.key, local).tags
                tags |= self.eval(node.value, local).tags
            else:
                tags |= self.eval(node.elt, local).tags
        finally:
            self.loop_targets.pop()
        # A container of stream handles (`[r.sampler_rng() for r in batch]`)
        # is itself stream-tagged so positional/keyword bindings propagate.
        kept = _carry(tags) | (tags & frozenset({TAG_RNG_STREAM}))
        return AbstractValue(array=False, tags=kept)

    def _binop_value(self, left: AbstractValue, right: AbstractValue) -> AbstractValue:
        tags = _carry(left.tags | right.tags)
        is_array = True if (left.array or right.array) else None
        if left.array is False and right.array is False:
            is_array = False
        if is_array:
            # NEP-50: python-weak scalars don't steer array dtype; strong
            # np.float64 scalars (and f64 arrays) do.
            dtypes: Optional[frozenset] = frozenset()
            for side in (left, right):
                if side.dtypes is None:
                    if side.array is not False:
                        dtypes = None
                        break
                    continue  # unknown scalar: weak, ignore
                contributed = side.dtypes
                if side.array is False:
                    contributed = contributed - {DT_INT, DT_OTHER}
                dtypes = dtypes | contributed
            layouts = frozenset({LAY_CONTIG}) if is_array is True else None
            return AbstractValue(dtypes=dtypes, layouts=layouts, array=is_array, tags=tags)
        dtypes = (
            None
            if left.dtypes is None or right.dtypes is None
            else left.dtypes | right.dtypes
        )
        return AbstractValue(dtypes=dtypes, array=is_array, tags=tags)

    # -- calls -------------------------------------------------------------

    def _eval_call(self, node: ast.Call, env: Dict[str, AbstractValue]) -> AbstractValue:
        func = node.func
        arg_values = [self.eval(arg, env) for arg in node.args]
        kw_values = {kw.arg: self.eval(kw.value, env) for kw in node.keywords}
        receiver_name: Optional[str] = None
        receiver: Optional[AbstractValue] = None
        if isinstance(func, ast.Attribute):
            receiver = self.eval(func.value, env)
            if isinstance(func.value, ast.Name):
                receiver_name = func.value.id
        name = _call_name(node) or ""

        resolved = self.engine.graph.resolve_call(node, self.info.path, self.info.class_name)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self.info.class_name is not None
        ):
            # Virtual dispatch: `self.step(...)` binds into the statically
            # resolved method AND every same-module subclass override.
            targets = self.engine.graph.resolve_virtual(
                self.info.path, self.info.class_name, name
            )
        elif resolved is not None:
            targets = [resolved]
        else:
            targets = []
        fact = CallFact(
            node=node,
            fn=self.info,
            func_name=name,
            receiver_name=receiver_name,
            receiver=receiver,
            args=arg_values,
            kwargs={kw: v for kw, v in kw_values.items() if kw is not None},
            resolved=resolved,
            targets=targets,
            in_region=self.region_depth > 0,
            line=node.lineno,
        )
        self.facts.calls.append(fact)
        self.engine._observe_call(fact, self.summary.in_region)

        # RNG draws on tagged streams.
        if receiver is not None and name in _DRAW_METHODS:
            result = array_value(
                dtypes=frozenset({DT_F64}),
                layouts=frozenset({LAY_CONTIG}),
                tags=frozenset({TAG_RNG_DRAW}),
            )
            if receiver.has(TAG_RNG_STREAM):
                stream_names = {
                    sub.id for sub in ast.walk(func.value) if isinstance(sub, ast.Name)
                }
                in_loop = bool(self.loop_targets)
                loop_fixed = in_loop and not any(
                    stream_names & targets for targets in self.loop_targets
                )
                self.facts.draws.append(
                    DrawFact(
                        node=node,
                        fn=self.info,
                        method=name,
                        stream=receiver,
                        shape_node=node.args[0] if node.args else None,
                        guards=list(self.guards),
                        loop_fixed=loop_fixed,
                        line=node.lineno,
                    )
                )
            return result

        # Session lifecycle mutation: X.mark_unhealthy(...) taints X in env.
        if name == "mark_unhealthy" and receiver_name is not None:
            current = env.get(receiver_name)
            if current is not None:
                env[receiver_name] = current.with_tags(TAG_UNHEALTHY)
            return scalar_value()

        if targets and (resolved is None or len(targets) > 1):
            # Virtual dispatch: the result is the join of every candidate
            # override's converging return summary (not-yet-analyzed targets
            # are bottom and contribute nothing).
            result: Optional[AbstractValue] = None
            for target in targets:
                summary = self.engine.summaries[target.qualname].return_value
                if summary is None:
                    continue
                result = summary if result is None else join(result, summary)
            if result is not None:
                return result
        return self._call_result(node, name, arg_values, kw_values, receiver, resolved)

    def _call_result(
        self,
        node: ast.Call,
        name: str,
        args: List[AbstractValue],
        kwargs: Dict[Optional[str], AbstractValue],
        receiver: Optional[AbstractValue],
        resolved: Optional[FunctionInfo],
    ) -> AbstractValue:
        func = node.func
        arg0 = args[0] if args else TOP
        dtype_kw = None
        for kw in node.keywords:
            if kw.arg == "dtype":
                dtype_kw = _dtype_atom_from_node(kw.value)

        # Stream / session factories (by spelling, independent of resolution).
        if name in _STREAM_FACTORY_METHODS or name in _STREAM_CLASSES:
            return AbstractValue(array=False, tags=frozenset({TAG_RNG_STREAM}))
        if name in _SESSION_FACTORY_METHODS or name in _SESSION_CLASSES:
            return AbstractValue(array=False, tags=frozenset({TAG_SESSION}))

        # numpy module functions.
        if self._is_numpy_func(func):
            if name in _NP_MATH_FNS:
                if any(a.array is not False for a in args):
                    dtypes = _union_array_dtypes(args)
                    return array_value(
                        dtypes=dtypes, layouts=frozenset({LAY_CONTIG}), tags=_carry_args(args)
                    )
                # np.<math>(scalar): a strong float64 numpy scalar.
                return AbstractValue(
                    dtypes=frozenset({DT_F64}), array=False, tags=_carry_args(args)
                )
            if name in _DEFAULT_F64_FNS:
                dtypes = frozenset({dtype_kw}) if dtype_kw is not None else frozenset({DT_F64})
                return array_value(
                    dtypes=dtypes, layouts=frozenset({LAY_CONTIG}), tags=_carry_args(args)
                )
            if name == "arange":
                dtypes = frozenset({dtype_kw}) if dtype_kw is not None else None
                return array_value(
                    dtypes=dtypes, layouts=frozenset({LAY_CONTIG}), tags=_carry_args(args)
                )
            if name in _PROPAGATE_FNS:
                return array_value(
                    dtypes=_union_array_dtypes(args),
                    layouts=frozenset({LAY_CONTIG}),
                    tags=_carry_args(args),
                )
            if name in _LIKE_FNS:
                dtypes = frozenset({dtype_kw}) if dtype_kw is not None else arg0.dtypes
                return array_value(
                    dtypes=dtypes, layouts=frozenset({LAY_CONTIG}), tags=_carry(arg0.tags)
                )
            if name == "ascontiguousarray":
                dtypes = frozenset({dtype_kw}) if dtype_kw is not None else arg0.dtypes
                return array_value(
                    dtypes=dtypes, layouts=frozenset({LAY_CONTIG}), tags=_carry(arg0.tags)
                )
            if name in ("asarray", "array"):
                dtypes = frozenset({dtype_kw}) if dtype_kw is not None else arg0.dtypes
                layouts = frozenset({LAY_CONTIG}) if name == "array" else arg0.layouts
                return array_value(dtypes=dtypes, layouts=layouts, tags=_carry(arg0.tags))
            if name in _VIEW_FNS:
                return array_value(
                    dtypes=arg0.dtypes, layouts=frozenset({LAY_VIEW}), tags=_carry(arg0.tags)
                )
            if name == "reshape":
                return array_value(
                    dtypes=arg0.dtypes, layouts=arg0.layouts, tags=_carry(arg0.tags)
                )
            if name in ("matmul", "dot", "einsum", "tensordot"):
                return array_value(
                    dtypes=_union_array_dtypes(args),
                    layouts=frozenset({LAY_CONTIG}),
                    tags=_carry_args(args),
                )
            if name in ("float32", "float64", "dtype"):
                return scalar_value(DT_OTHER)
            return AbstractValue(tags=_carry_args(args))

        # Array methods on an evaluated receiver.
        if receiver is not None:
            if name == "astype":
                atom = dtype_kw or (_dtype_atom_from_node(node.args[0]) if node.args else None)
                dtypes = frozenset({atom}) if atom is not None else None
                return array_value(
                    dtypes=dtypes, layouts=frozenset({LAY_CONTIG}), tags=_carry(receiver.tags)
                )
            if name in ("copy", "flatten"):
                return array_value(
                    dtypes=receiver.dtypes,
                    layouts=frozenset({LAY_CONTIG}),
                    tags=_carry(receiver.tags),
                )
            if name in ("transpose", "swapaxes"):
                return array_value(
                    dtypes=receiver.dtypes,
                    layouts=frozenset({LAY_VIEW}),
                    tags=_carry(receiver.tags),
                )
            if name in ("reshape", "ravel"):
                return array_value(
                    dtypes=receiver.dtypes, layouts=receiver.layouts, tags=_carry(receiver.tags)
                )
            if name in ("mean", "sum", "std", "var", "min", "max", "item"):
                return AbstractValue(dtypes=receiver.dtypes, tags=_carry(receiver.tags))

        # Resolved project functions: use the converging return summary.
        if resolved is not None:
            if resolved.name == "__init__":
                tags: frozenset = frozenset()
                if resolved.class_name in _STREAM_CLASSES:
                    tags = frozenset({TAG_RNG_STREAM})
                elif resolved.class_name in _SESSION_CLASSES:
                    tags = frozenset({TAG_SESSION})
                return AbstractValue(array=False, tags=tags)
            return self.engine.summaries[resolved.qualname].result()
        if name == "float":
            return scalar_value(DT_OTHER)
        if name in ("len", "int", "bool", "str", "range", "enumerate", "zip"):
            return AbstractValue(array=False, tags=_carry_args(args))
        return AbstractValue(tags=_carry_args(args))

    def _is_numpy_func(self, func: ast.expr) -> bool:
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base in ("np", "numpy"):
                return True
            return self.engine.graph.is_numpy_alias(self.info.path, base)
        return False


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _param_tags(tags: frozenset) -> frozenset:
    return frozenset(t for t in tags if t.startswith("param:"))


def _carry(tags: frozenset) -> frozenset:
    """Tags that flow through derived expressions (drop param identity)."""
    return tags - _param_tags(tags) - frozenset({TAG_RNG_STREAM, TAG_SESSION, TAG_UNHEALTHY})


def _carry_args(args: Sequence[AbstractValue]) -> frozenset:
    tags: frozenset = frozenset()
    for arg in args:
        tags |= arg.tags
    return _carry(tags)


def _union_array_dtypes(args: Sequence[AbstractValue]):
    """Union of dtype evidence over arguments, NEP-50 weak scalars filtered."""
    dtypes: frozenset = frozenset()
    for arg in args:
        if arg.dtypes is None:
            if arg.array is False:
                continue  # unknown scalar: weak, steers nothing
            return None  # unknown array absorbs to top
        contributed = arg.dtypes
        if arg.array is False:
            contributed = contributed - frozenset({DT_INT, DT_OTHER})
        dtypes = dtypes | contributed
    return dtypes
