"""The product lattice the dataflow interpreter propagates.

One :class:`AbstractValue` summarises everything the rules need to know about
an expression: which dtypes it *may* have, which memory layouts it *may* have,
whether it is an ndarray at all, and a set of provenance tags (RNG-stream
handle, RNG draw, session handle, ...).

The design is deliberately *evidence-based* rather than sound: ``dtypes`` and
``layouts`` are finite sets of observed possibilities, and ``None`` means
"no evidence" (top).  Joins union the evidence; top absorbs.  Rules fire only
on positive evidence (``may_f64``/``may_view``), never on top, so unknown
code stays quiet instead of flooding findings - the same philosophy as the
syntactic checkers this engine backs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional

__all__ = [
    "AbstractValue",
    "TOP",
    "DT_F32",
    "DT_F64",
    "DT_INT",
    "DT_OTHER",
    "LAY_CONTIG",
    "LAY_VIEW",
    "TAG_RNG_STREAM",
    "TAG_RNG_DRAW",
    "TAG_SESSION",
    "TAG_UNHEALTHY",
    "join",
    "join_envs",
    "array_value",
    "scalar_value",
]

# dtype evidence atoms
DT_F32 = "f32"
DT_F64 = "f64"
DT_INT = "int"
DT_OTHER = "other"

# layout evidence atoms
LAY_CONTIG = "contig"
LAY_VIEW = "view"

# provenance tags (joined by union)
TAG_RNG_STREAM = "rng-stream"  # a per-request Generator / ReplayableRNG handle
TAG_RNG_DRAW = "rng-draw"  # value produced by drawing from an RNG stream
TAG_SESSION = "session"  # an EngineSession handle
TAG_UNHEALTHY = "may-unhealthy"  # session handle after mark_unhealthy on a path

_EMPTY: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class AbstractValue:
    """What the interpreter knows about one expression.

    * ``dtypes`` - frozenset of dtype atoms the value may have, or ``None``
      for "no evidence" (top).  ``may_f64`` is positive-evidence only.
    * ``layouts`` - frozenset of layout atoms, or ``None`` for top.  A fresh
      ufunc result is ``{contig}``; ``.T`` is ``{view}``; ``reshape``
      preserves (a reshape of a C-contiguous array is C-contiguous).
    * ``array`` - ``True``/``False``/``None`` three-valued arrayness.
    * ``tags`` - provenance markers, unioned on join.
    """

    dtypes: Optional[FrozenSet[str]] = None
    layouts: Optional[FrozenSet[str]] = None
    array: Optional[bool] = None
    tags: FrozenSet[str] = _EMPTY

    # -- queries -----------------------------------------------------------

    @property
    def may_f64(self) -> bool:
        """Positive evidence the value may be float64 (top stays quiet)."""
        return self.dtypes is not None and DT_F64 in self.dtypes

    @property
    def may_view(self) -> bool:
        """Positive evidence the value may be a non-contiguous view."""
        return self.layouts is not None and LAY_VIEW in self.layouts

    @property
    def is_contig(self) -> bool:
        """Definite evidence of C-contiguity (used to relax RPL005)."""
        return self.layouts == frozenset({LAY_CONTIG})

    def has(self, tag: str) -> bool:
        return tag in self.tags

    # -- builders ----------------------------------------------------------

    def with_tags(self, *tags: str) -> "AbstractValue":
        return replace(self, tags=self.tags | frozenset(tags))

    def without_tags(self, *tags: str) -> "AbstractValue":
        return replace(self, tags=self.tags - frozenset(tags))

    def with_dtypes(self, *atoms: str) -> "AbstractValue":
        return replace(self, dtypes=frozenset(atoms))

    def with_layouts(self, *atoms: str) -> "AbstractValue":
        return replace(self, layouts=frozenset(atoms))


TOP = AbstractValue()


def _join_set(a: Optional[FrozenSet[str]], b: Optional[FrozenSet[str]]) -> Optional[FrozenSet[str]]:
    if a is None or b is None:
        return None  # top absorbs
    return a | b


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound: evidence unions, top absorbs, tags union."""
    if a is b:
        return a
    return AbstractValue(
        dtypes=_join_set(a.dtypes, b.dtypes),
        layouts=_join_set(a.layouts, b.layouts),
        array=a.array if a.array == b.array else None,
        tags=a.tags | b.tags,
    )


def join_envs(a: dict, b: dict) -> dict:
    """Join two name->value environments (missing names go to top-with-tags).

    A name bound on only one branch keeps its tags (a may-property) but loses
    dtype/layout/arrayness certainty - it may be unbound or different on the
    other path.
    """
    out = dict(a)
    for name, value in b.items():
        if name in out:
            out[name] = join(out[name], value)
        else:
            out[name] = AbstractValue(tags=value.tags)
    for name, value in a.items():
        if name not in b:
            out[name] = AbstractValue(tags=value.tags)
    return out


def array_value(
    *,
    dtypes: Optional[FrozenSet[str]] = None,
    layouts: Optional[FrozenSet[str]] = None,
    tags: FrozenSet[str] = _EMPTY,
) -> AbstractValue:
    return AbstractValue(dtypes=dtypes, layouts=layouts, array=True, tags=tags)


def scalar_value(dtype: Optional[str] = None) -> AbstractValue:
    dtypes = frozenset({dtype}) if dtype is not None else None
    return AbstractValue(dtypes=dtypes, layouts=None, array=False)
