"""Interprocedural dataflow engine behind the RPL007-RPL010 lint rules.

Layout:

* :mod:`~repro.lint.dataflow.lattice` - the dtype/layout/provenance product
  lattice (:class:`AbstractValue`, evidence-based joins).
* :mod:`~repro.lint.dataflow.callgraph` - import-aware whole-program call
  resolution over the lint :class:`~repro.lint.framework.Project`.
* :mod:`~repro.lint.dataflow.interp` - the per-function flow-sensitive
  abstract interpreter plus the context-insensitive interprocedural fixed
  point (:class:`DataflowEngine`).
* :mod:`~repro.lint.dataflow.rules` - the checkers built on top, plus
  :func:`engine_for` (one shared engine per lint run).
"""

from .callgraph import CallGraph, FunctionInfo
from .interp import DataflowEngine, Summary
from .lattice import AbstractValue
from .rules import (
    DtypeFlowChecker,
    LayoutFlowChecker,
    RngStreamChecker,
    SessionLifecycleChecker,
    engine_for,
)

__all__ = [
    "AbstractValue",
    "CallGraph",
    "FunctionInfo",
    "DataflowEngine",
    "Summary",
    "engine_for",
    "DtypeFlowChecker",
    "LayoutFlowChecker",
    "RngStreamChecker",
    "SessionLifecycleChecker",
]
