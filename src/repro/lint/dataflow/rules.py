"""The dataflow-backed rules (RPL007-RPL010).

All four consume one shared :class:`~repro.lint.dataflow.interp.DataflowEngine`
per lint run (memoized on the :class:`~repro.lint.framework.Project`), so the
fixed point is paid once no matter how many rules are active.

Findings fire on *positive evidence* only: a top (unknown) dtype, layout or
provenance never produces a finding.  The escape hatches are the standard
``# repro-lint: ignore[RPLnnn]`` suppression plus the dataflow
``# repro-lint: assume[...]`` facts (``f32``, ``c-contiguous``, ``row-shape``,
``healthy``, ``not-rng``) for places where the author knows an invariant the
interpreter cannot see.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from ..checkers import (
    _GEMM_DIR_RE,
    _GEMM_SINKS,
    is_backend_dispatch,
    is_direct_strided_view,
)
from ..framework import Checker, Finding, Project, SourceFile
from ..runtime import COLS_CHECKED_KERNELS, DTYPE_CHECKED_KERNELS
from .interp import CallFact, DataflowEngine, DrawFact, _assumptions
from .lattice import TAG_RNG_DRAW, TAG_SESSION, TAG_UNHEALTHY

__all__ = [
    "engine_for",
    "DtypeFlowChecker",
    "LayoutFlowChecker",
    "RngStreamChecker",
    "SessionLifecycleChecker",
]


def engine_for(project: Project) -> DataflowEngine:
    """The per-run shared dataflow engine (built once, reused by every rule)."""
    engine = getattr(project, "_dataflow_engine", None)
    if engine is None:
        engine = DataflowEngine(project)
        project._dataflow_engine = engine  # type: ignore[attr-defined]
    return engine


class _DataflowChecker(Checker):
    """Common scope plumbing for the dataflow rules."""

    scopes = frozenset({"src"})

    def _handle(self, project: Project, path: str) -> Optional[SourceFile]:
        handle = project.files.get(path)
        if handle is None:
            return None
        if getattr(handle, "scope", "src") not in self.scopes:
            return None
        return handle


# ---------------------------------------------------------------------------
# RPL007 - may-float64 values must not reach f32-region kernels
# ---------------------------------------------------------------------------

_F_KERNELS: Set[str] = set(DTYPE_CHECKED_KERNELS) | set(COLS_CHECKED_KERNELS)


class DtypeFlowChecker(_DataflowChecker):
    """RPL007: the static twin of the ``REPRO_SANITIZE=1`` dtype check.

    Inside a ``calibration_precision(...)`` / ``calibration_region(...)``
    block - or any helper those blocks (transitively) call - a value with
    float64 evidence must not reach one of the sanitizer-wrapped kernels.
    The kernel list is imported from :mod:`repro.lint.runtime`, so static and
    runtime checks share one sink model by construction.
    """

    rule = "RPL007"
    title = "may-float64 value reaching a kernel inside a float32 calibration region"

    def check_project(self, project: Project) -> Iterable[Finding]:
        engine = engine_for(project)
        findings: List[Finding] = []
        for fact in engine.all_calls():
            if fact.func_name not in _F_KERNELS:
                continue
            handle = self._handle(project, fact.path)
            if handle is None or not self._is_kernel_call(fact):
                continue
            if not (fact.in_region or engine.summary(fact.fn).in_region):
                continue
            assumes = _assumptions(handle, fact.line)
            if "f32" in assumes:
                continue
            for arg_node, value in zip(fact.node.args, fact.args):
                if value.array is False or not value.may_f64:
                    continue
                findings.append(
                    Finding(
                        path=fact.path,
                        line=arg_node.lineno,
                        rule=self.rule,
                        message=(
                            f"{ast.unparse(arg_node)} may be float64 when it reaches "
                            f"{fact.func_name}() inside a float32 calibration region "
                            f"- the exact-f32 fast path would silently re-widen; "
                            f"cast with .astype(np.float32) or annotate "
                            f"# repro-lint: assume[f32]"
                        ),
                    )
                )
        return findings

    def _is_kernel_call(self, fact: CallFact) -> bool:
        if fact.resolved is not None:
            return fact.resolved.path.endswith("nn/functional.py")
        # Unresolvable but spelled like the canonical alias: F.<kernel>(...).
        return fact.receiver_name == "F"


# ---------------------------------------------------------------------------
# RPL008 - flow-sensitive layout discipline (RPL005 through def-use chains)
# ---------------------------------------------------------------------------


class LayoutFlowChecker(_DataflowChecker):
    """RPL008: strided views reaching GEMM sinks via any def-use chain.

    RPL005 owns the syntactic case (a ``.T``/``transpose()``/``reshape()``
    written directly in the argument list); this rule follows assignments,
    helper returns and parameter bindings, and fires when an operand carries
    positive view evidence by the time it reaches the sink.
    """

    rule = "RPL008"
    title = "strided view reaching an exact-f32 GEMM sink through a def-use chain"

    scopes = frozenset({"src", "scripts"})

    def check_project(self, project: Project) -> Iterable[Finding]:
        engine = engine_for(project)
        findings: List[Finding] = []
        for fact in engine.all_calls():
            if fact.func_name not in _GEMM_SINKS:
                continue
            if is_backend_dispatch(fact.node):
                continue  # the dispatch surface owns operand layout
            handle = self._handle(project, fact.path)
            if handle is None:
                continue
            scope = getattr(handle, "scope", "src")
            if scope == "src" and not _GEMM_DIR_RE.search(fact.path):
                continue
            n_args = 2 if fact.func_name in {"matmul", "dot"} else 1
            assumes = _assumptions(handle, fact.line)
            if "c-contiguous" in assumes:
                continue
            for arg_node, value in zip(fact.node.args[:n_args], fact.args[:n_args]):
                if is_direct_strided_view(arg_node):
                    continue  # RPL005's finding, not ours
                if not value.may_view:
                    continue
                findings.append(
                    Finding(
                        path=fact.path,
                        line=arg_node.lineno,
                        rule=self.rule,
                        message=(
                            f"{ast.unparse(arg_node)} may be a strided view when it "
                            f"reaches {fact.func_name}() (transpose/reshape earlier "
                            f"in the def-use chain); materialize with "
                            f"np.ascontiguousarray(...) or annotate "
                            f"# repro-lint: assume[c-contiguous]"
                        ),
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# RPL009 - per-request RNG stream discipline (the fast_forward replay contract)
# ---------------------------------------------------------------------------

_SHAPE_ATTRS = {"shape", "ndim", "size", "dtype", "nbytes", "strides", "flags"}


class RngStreamChecker(_DataflowChecker):
    """RPL009: draws on per-request streams must be replay-countable.

    ``ReplayableRNG.fast_forward`` replays a crashed request by re-drawing a
    *recorded number* of fixed-shape rows.  That only reconstructs the stream
    position if every draw on a per-request stream (``Request.sampler_rng()``,
    ``ReplayableRNG``) uses the row shape ``(1, *sample)`` (or ``x.shape``)
    and the number of draws per step cannot diverge on data: no draw guarded
    by an array- or noise-derived predicate, no fixed stream drawn inside a
    loop.
    """

    rule = "RPL009"
    title = "per-request RNG stream draw breaks the fast-forward replay contract"

    scopes = frozenset({"src", "tests"})

    def check_project(self, project: Project) -> Iterable[Finding]:
        engine = engine_for(project)
        findings: List[Finding] = []
        for draw in engine.all_draws():
            handle = self._handle(project, draw.path)
            if handle is None:
                continue
            assumes = _assumptions(handle, draw.line)
            if "row-shape" in assumes:
                continue
            if not self._row_shaped(draw.shape_node):
                shown = (
                    ast.unparse(draw.shape_node) if draw.shape_node is not None else "<none>"
                )
                findings.append(
                    Finding(
                        path=draw.path,
                        line=draw.line,
                        rule=self.rule,
                        message=(
                            f"per-request stream draw {draw.method}({shown}) is not "
                            f"statically row-shaped; fast_forward replay needs "
                            f"(1, *sample) or x.shape draws (or annotate "
                            f"# repro-lint: assume[row-shape])"
                        ),
                    )
                )
            divergent = next(
                (g for g in draw.guards if self._data_dependent(g, engine)), None
            )
            if divergent is not None:
                findings.append(
                    Finding(
                        path=draw.path,
                        line=draw.line,
                        rule=self.rule,
                        message=(
                            f"draw on a per-request stream is guarded by the data-"
                            f"dependent predicate ({ast.unparse(divergent)}); the "
                            f"draw count would diverge between live run and "
                            f"fast_forward replay"
                        ),
                    )
                )
            if draw.loop_fixed:
                findings.append(
                    Finding(
                        path=draw.path,
                        line=draw.line,
                        rule=self.rule,
                        message=(
                            "loop-invariant per-request stream drawn inside a loop; "
                            "the per-step draw count becomes iteration-dependent and "
                            "fast_forward replay cannot count it"
                        ),
                    )
                )
        return findings

    def _row_shaped(self, node: Optional[ast.expr]) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Attribute) and node.attr == "shape":
            return True
        if isinstance(node, ast.Tuple) and node.elts:
            first = node.elts[0]
            return isinstance(first, ast.Constant) and first.value == 1
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return self._row_shaped(node.left)
        if isinstance(node, ast.Subscript):
            # x.shape[...] slices of a row shape are schedule-static too.
            return self._row_shaped(node.value)
        return False

    def _data_dependent(self, guard: ast.expr, engine: DataflowEngine) -> bool:
        """True when the predicate reads array *data* or earlier draws."""
        stack: List[ast.AST] = [guard]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Attribute) and node.attr in _SHAPE_ATTRS:
                continue  # shape/dtype metadata is replay-static
            if isinstance(node, ast.Compare) and all(
                isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
            ):
                continue  # identity tests (`x is None`) are schedule-static
            value = engine.value_of(node)
            if value.array is True or TAG_RNG_DRAW in value.tags:
                return True
            stack.extend(ast.iter_child_nodes(node))
        return False


# ---------------------------------------------------------------------------
# RPL010 - EngineSession lifecycle: health machine + commit-before-forward
# ---------------------------------------------------------------------------

_REMAP_CALLS = {"remap_model_rows", "remap_rows"}
_COMMIT_ATTRS = {"_mapping"}
_FORWARD_CALLS = {"predict_noise_rows", "predict_noise"}
_GUARDED_METHODS = {"admit", "step"}


class SessionLifecycleChecker(_DataflowChecker):
    """RPL010: no admit/step on a dead session; commit remaps before forwards.

    Two halves of the PR 7 crash-recovery contract:

    * once ``mark_unhealthy`` ran on a session handle, no later path may call
      ``admit``/``step`` on that same handle - recovery must rebind the name
      to a fresh session first (``_recover_or_fail`` does);
    * inside any one function, a ``remap_model_rows``/``remap_rows`` call must
      be followed by the ``self._mapping = ...`` commit *before* the next
      forward (``predict_noise_rows``/``predict_noise``), the
      commit-before-forward ordering that makes retry replay idempotent.
    """

    rule = "RPL010"
    title = "EngineSession lifecycle violation (health machine / commit-before-forward)"

    def check_project(self, project: Project) -> Iterable[Finding]:
        engine = engine_for(project)
        findings: List[Finding] = []
        findings.extend(self._check_health(project, engine))
        findings.extend(self._check_commit_order(project, engine))
        return findings

    def _check_health(self, project: Project, engine: DataflowEngine) -> List[Finding]:
        findings = []
        for fact in engine.all_calls():
            if fact.func_name not in _GUARDED_METHODS:
                continue
            receiver = fact.receiver
            if receiver is None or not receiver.has(TAG_UNHEALTHY):
                continue
            if not (receiver.has(TAG_SESSION) or fact.receiver_name is not None):
                continue
            handle = self._handle(project, fact.path)
            if handle is None or "healthy" in _assumptions(handle, fact.line):
                continue
            who = fact.receiver_name or "<session>"
            findings.append(
                Finding(
                    path=fact.path,
                    line=fact.line,
                    rule=self.rule,
                    message=(
                        f"{who}.{fact.func_name}() may run on a session already "
                        f"marked unhealthy on this path; rebind to a recovered "
                        f"session first (or annotate # repro-lint: assume[healthy])"
                    ),
                )
            )
        return findings

    def _check_commit_order(self, project: Project, engine: DataflowEngine) -> List[Finding]:
        findings = []
        for qualname, info in engine.graph.functions.items():
            handle = self._handle(project, info.path)
            if handle is None:
                continue
            facts = engine.facts.get(qualname)
            if facts is None:
                continue
            remaps = [f.line for f in facts.calls if f.func_name in _REMAP_CALLS]
            commits = [s.line for s in facts.attr_stores if s.attr in _COMMIT_ATTRS]
            forwards = [f for f in facts.calls if f.func_name in _FORWARD_CALLS]
            if not remaps or not forwards:
                continue
            for forward in forwards:
                before = [line for line in remaps if line <= forward.line]
                if not before:
                    continue
                last_remap = max(before)
                if any(last_remap <= line <= forward.line for line in commits):
                    continue
                if "committed" in _assumptions(handle, forward.line):
                    continue
                findings.append(
                    Finding(
                        path=info.path,
                        line=forward.line,
                        rule=self.rule,
                        message=(
                            f"{forward.func_name}() runs after remap_rows with no "
                            f"self._mapping commit in between; a retry replaying "
                            f"this step would re-apply the remap "
                            f"(commit-before-forward)"
                        ),
                    )
                )
        return findings
