"""Whole-program call graph over the lintable sources.

Builds, per file, an import table (alias -> module file or imported object)
and an index of module-level functions and class methods, then resolves call
expressions to :class:`FunctionInfo` targets:

* ``helper(...)`` - a module-level function in the same file, or a
  ``from .mod import helper`` import.
* ``F.linear(...)`` - ``F`` is an imported module alias; ``linear`` is a
  module-level function there.
* ``self.step(...)`` - a method in the lexically-enclosing class or its
  locally-resolvable bases (same file, or imported base classes).

Anything else (calls on arbitrary objects, ``Module.__call__`` indirection,
``getattr`` dynamism) resolves to ``None`` - the interpreter treats such
calls as opaque, which keeps the analysis conservative-quiet rather than
conservative-loud.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..framework import Project, SourceFile

__all__ = ["FunctionInfo", "ModuleInfo", "CallGraph"]

_NUMPY = ("numpy",)  # sentinel import target


@dataclass
class FunctionInfo:
    """One analyzable function or method."""

    qualname: str  # "path::name" or "path::Class.name"
    path: str
    name: str
    class_name: Optional[str]
    node: ast.FunctionDef
    handle: SourceFile


@dataclass
class ModuleInfo:
    path: str
    handle: SourceFile
    # alias -> ("module", path) | ("object", path, name) | ("numpy",)
    imports: Dict[str, Tuple] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)
    methods: Dict[Tuple[str, str], FunctionInfo] = field(default_factory=dict)


def _module_key(rel_path: str) -> str:
    """src/repro/nn/functional.py -> repro.nn.functional (best effort)."""
    path = rel_path[:-3] if rel_path.endswith(".py") else rel_path
    parts = [p for p in path.split("/") if p not in ("src", "")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class CallGraph:
    """Import-aware call resolution over a lint :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._by_module_key: Dict[str, str] = {}
        for path, handle in project.files.items():
            self._by_module_key[_module_key(path)] = path
        for path, handle in project.files.items():
            self.modules[path] = self._scan_module(path, handle)

    # -- module scanning ---------------------------------------------------

    def _scan_module(self, path: str, handle: SourceFile) -> ModuleInfo:
        mod = ModuleInfo(path=path, handle=handle)
        for node in ast.walk(handle.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = self._resolve_absolute(alias.name)
                    if target is not None:
                        mod.imports[alias.asname or alias.name.split(".")[0]] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(path, node)
                if base is None:
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if base == _NUMPY:
                        mod.imports[bound] = _NUMPY
                        continue
                    # `from pkg import mod` binds a submodule if one exists,
                    # otherwise an object defined in pkg/__init__ (or pkg.py).
                    sub = self._submodule(base[1], alias.name)
                    if sub is not None:
                        mod.imports[bound] = ("module", sub)
                    else:
                        mod.imports[bound] = ("object", base[1], alias.name)
        for node in handle.tree.body:
            if isinstance(node, ast.FunctionDef):
                info = FunctionInfo(
                    qualname=f"{path}::{node.name}",
                    path=path,
                    name=node.name,
                    class_name=None,
                    node=node,
                    handle=handle,
                )
                mod.functions[node.name] = info
                self.functions[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                mod.classes[node.name] = node
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        info = FunctionInfo(
                            qualname=f"{path}::{node.name}.{item.name}",
                            path=path,
                            name=item.name,
                            class_name=node.name,
                            node=item,
                            handle=handle,
                        )
                        mod.methods[(node.name, item.name)] = info
                        self.functions[info.qualname] = info
        return mod

    def _resolve_absolute(self, dotted: str) -> Optional[Tuple]:
        if dotted == "numpy" or dotted.startswith("numpy."):
            return _NUMPY
        path = self._by_module_key.get(dotted)
        if path is not None:
            return ("module", path)
        return None

    def _resolve_from_base(self, path: str, node: ast.ImportFrom) -> Optional[Tuple]:
        """The package/module an ImportFrom pulls names out of."""
        if node.level == 0:
            if node.module is None:
                return None
            if node.module == "numpy" or node.module.startswith("numpy."):
                return _NUMPY
            target = self._by_module_key.get(node.module)
            return ("module", target) if target is not None else None
        # Relative: climb `level` packages up from the importing file.
        parts = path.split("/")[:-1]  # directory of the importing module
        up = node.level - 1
        if up > len(parts):
            return None
        parts = parts[: len(parts) - up] if up else parts
        if node.module:
            parts = parts + node.module.split(".")
        key = _module_key("/".join(parts) + ".py")
        # The base may be a package (dir) rather than a module file; either
        # works because _submodule probes file paths directly.
        target = self._by_module_key.get(key)
        if target is not None:
            return ("module", target)
        return ("package", "/".join(parts))

    def _submodule(self, base: str, name: str) -> Optional[str]:
        """Resolve `from <base> import <name>` where name is a submodule."""
        if base.endswith("/__init__.py"):
            base = base[: -len("/__init__.py")]
        elif base.endswith(".py"):
            return None  # plain module: names are objects, not submodules
        for candidate in (f"{base}/{name}.py", f"{base}/{name}/__init__.py"):
            if candidate in self.project.files:
                return candidate
        return None

    # -- call resolution ---------------------------------------------------

    def module(self, path: str) -> Optional[ModuleInfo]:
        return self.modules.get(path)

    def resolve_method(self, path: str, class_name: str, attr: str) -> Optional[FunctionInfo]:
        """Look up a method through the locally-resolvable MRO."""
        seen = set()
        stack = [(path, class_name)]
        while stack:
            mod_path, cls_name = stack.pop(0)
            if (mod_path, cls_name) in seen:
                continue
            seen.add((mod_path, cls_name))
            mod = self.modules.get(mod_path)
            if mod is None:
                continue
            info = mod.methods.get((cls_name, attr))
            if info is not None:
                return info
            cls = mod.classes.get(cls_name)
            if cls is None:
                continue
            for base in cls.bases:
                if isinstance(base, ast.Name):
                    if base.id in mod.classes:
                        stack.append((mod_path, base.id))
                    else:
                        target = mod.imports.get(base.id)
                        if target is not None and target[0] == "object":
                            stack.append((target[1], target[2]))
                elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
                    target = mod.imports.get(base.value.id)
                    if target is not None and target[0] == "module":
                        stack.append((target[1], base.attr))
        return None

    def resolve_virtual(self, path: str, class_name: str, attr: str) -> List[FunctionInfo]:
        """``self.attr(...)`` targets, including same-module subclass overrides.

        A base-class method calling ``self.step(...)`` dispatches to whichever
        subclass the instance is - even when the base defines the method only
        to raise ``NotImplementedError``.  Every override in a same-module
        subclass is a possible target, and the fixed point joins call-site
        bindings into all of them.
        """
        out: List[FunctionInfo] = []
        direct = self.resolve_method(path, class_name, attr)
        if direct is not None:
            out.append(direct)
        mod = self.modules.get(path)
        if mod is None:
            return out
        for (cls_name, name), info in mod.methods.items():
            if (
                name == attr
                and info is not direct
                and cls_name != class_name
                and self._derives_from(mod, cls_name, class_name)
            ):
                out.append(info)
        return out

    def _derives_from(self, mod: ModuleInfo, cls_name: str, base_name: str) -> bool:
        seen: set = set()
        stack = [cls_name]
        while stack:
            current = stack.pop()
            if current == base_name:
                return True
            if current in seen:
                continue
            seen.add(current)
            cls = mod.classes.get(current)
            if cls is None:
                continue
            for base in cls.bases:
                if isinstance(base, ast.Name):
                    stack.append(base.id)
        return False

    def is_numpy_alias(self, path: str, name: str) -> bool:
        mod = self.modules.get(path)
        return bool(mod) and mod.imports.get(name) == _NUMPY

    def resolve_call(
        self, call: ast.Call, path: str, class_name: Optional[str]
    ) -> Optional[FunctionInfo]:
        mod = self.modules.get(path)
        if mod is None:
            return None
        func = call.func
        if isinstance(func, ast.Name):
            local = mod.functions.get(func.id)
            if local is not None:
                return local
            target = mod.imports.get(func.id)
            if target is not None and target[0] == "object":
                other = self.modules.get(target[1])
                if other is not None:
                    hit = other.functions.get(target[2])
                    if hit is not None:
                        return hit
                    # `from .mod import Class` used as a constructor.
                    if target[2] in other.classes:
                        return other.methods.get((target[2], "__init__"))
            if func.id in mod.classes:
                return mod.methods.get((func.id, "__init__"))
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base == "self" and class_name is not None:
                return self.resolve_method(path, class_name, func.attr)
            target = mod.imports.get(base)
            if target is not None and target[0] == "module":
                other = self.modules.get(target[1])
                if other is not None:
                    return other.functions.get(func.attr)
        return None
