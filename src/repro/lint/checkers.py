"""The repo-specific invariant checkers (RPL001-RPL006, RPL011).

Each rule encodes a contract that a past PR violated by hand before being
fixed by inspection; see README "Invariants & static checks" for the full
contract table and suppression instructions.  The dataflow-backed rules
(RPL007-RPL010) live in :mod:`repro.lint.dataflow.rules`;
:func:`default_checkers` returns all eleven.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .framework import Checker, Finding, Project, SourceFile

__all__ = [
    "DtypePromotionChecker",
    "TemporalStateRegistryChecker",
    "SpecCacheKeyChecker",
    "ProfilerPhaseChecker",
    "GemmLayoutChecker",
    "SwallowedExceptionChecker",
    "BackendDispatchChecker",
    "default_checkers",
]

# Modules on the numeric hot path where NEP-50 scalar promotion and GEMM
# layout mistakes actually cost correctness or throughput.
_HOT_DIR_RE = re.compile(r"src/repro/(nn|diffusion|quant)/")
_GEMM_DIR_RE = re.compile(r"src/repro/(nn|diffusion|quant|core)/")

_NUMPY_ALIASES = {"np", "numpy"}


def _is_numpy_call(node: ast.Call, names: Set[str]) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_ALIASES
        and func.attr in names
    )


def _attr_call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


class _ParentAnnotator(ast.NodeVisitor):
    """Attach ``_lint_parent`` back-references so checkers can look upward."""

    def generic_visit(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]
        super().generic_visit(node)


def _annotate_parents(tree: ast.AST) -> None:
    tree._lint_parent = None  # type: ignore[attr-defined]
    _ParentAnnotator().visit(tree)


# ---------------------------------------------------------------------------
# RPL001 - numpy scalar math leaking float64 into hot-path array arithmetic
# ---------------------------------------------------------------------------

# np.<fn>(python_scalar) returns a np.float64 *scalar*, which NEP-50 treats
# as "strong": multiplying it into a float32 array silently promotes the
# whole array to float64 (the gelu/attention leak class PR 5 fixed by hand).
# math.<fn> / float(np.<fn>(...)) produce weak Python floats that preserve
# the array dtype - and are bit-identical on the float64 path (same
# correctly-rounded libm).
_SCALAR_MATH_FNS = {
    "sqrt",
    "log",
    "log2",
    "log10",
    "log1p",
    "exp",
    "expm1",
    "power",
    "cos",
    "sin",
    "tan",
    "arcsin",
    "arccos",
    "arctan",
    "arctan2",
}

# Calls that conjure an ndarray out of non-array inputs; names assigned from
# them (or from expressions containing known arrays) count as array evidence.
_ARRAY_PRODUCERS = {
    "arange",
    "linspace",
    "zeros",
    "zeros_like",
    "ones",
    "ones_like",
    "empty",
    "empty_like",
    "full",
    "full_like",
    "asarray",
    "array",
    "ascontiguousarray",
    "atleast_1d",
    "atleast_2d",
    "concatenate",
    "stack",
    "where",
    "cumprod",
    "cumsum",
    "clip",
    "pad",
    "rint",
    "abs",
    "maximum",
    "minimum",
    "outer",
    "meshgrid",
}

# Methods whose result is an ndarray whenever they are worth calling at all.
_ARRAY_METHODS = {"astype", "reshape", "copy", "transpose", "standard_normal", "normal", "uniform"}


class _ScopeInfo:
    """Names with local evidence of being ndarrays, per function scope."""

    def __init__(self) -> None:
        self.array_names: Set[str] = set()


def _annotation_is_array(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failures on exotic nodes
        return False
    return "ndarray" in text


class DtypePromotionChecker(Checker):
    """RPL001: ``np.<math>(scalar)`` in hot modules promotes f32 arrays.

    Dataflow-backed since the RPL007-RPL010 engine landed: the local
    name-evidence heuristic is refined by the interprocedural abstract
    interpreter, so an argument produced by a helper that provably returns an
    ndarray no longer trips the rule (and provably-scalar arguments flag even
    when a same-named array exists in scope).  Rule ID and messages are
    unchanged, so existing baselines and suppressions keep working.
    """

    rule = "RPL001"
    title = "numpy float64 scalar leaking into hot-path array arithmetic"

    def check_project(self, project: Project) -> Iterable[Finding]:
        from .dataflow.rules import engine_for

        engine = engine_for(project)
        findings: List[Finding] = []
        for handle in project.files.values():
            if handle.scope not in self.scopes:
                continue
            findings.extend(self._check_handle(handle, engine))
        return findings

    def _check_handle(self, handle: SourceFile, engine=None) -> List[Finding]:
        if not _HOT_DIR_RE.search(handle.rel_path):
            return []
        _annotate_parents(handle.tree)
        findings: List[Finding] = []
        for scope_node, body in self._scopes(handle.tree):
            info = self._scope_info(scope_node, body)
            for node in body:
                for call in ast.walk(node):
                    if not isinstance(call, ast.Call):
                        continue
                    # Don't descend into nested function scopes twice.
                    if self._enclosing_scope(call) is not scope_node:
                        continue
                    finding = self._check_call(call, info, handle, engine)
                    if finding is not None:
                        findings.append(finding)
        return findings

    # -- scope handling ----------------------------------------------------

    def _scopes(self, tree: ast.AST) -> List[Tuple[ast.AST, List[ast.stmt]]]:
        scopes: List[Tuple[ast.AST, List[ast.stmt]]] = [(tree, list(tree.body))]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node, list(node.body)))
        return scopes

    def _enclosing_scope(self, node: ast.AST) -> ast.AST:
        current = getattr(node, "_lint_parent", None)
        while current is not None and not isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
        ):
            current = getattr(current, "_lint_parent", None)
        return current

    def _scope_info(self, scope_node: ast.AST, body: Sequence[ast.stmt]) -> _ScopeInfo:
        info = _ScopeInfo()
        if isinstance(scope_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope_node.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if _annotation_is_array(arg.annotation):
                    info.array_names.add(arg.arg)
        # Two passes so chains like a = np.arange(n); b = a * 2 resolve.
        for _ in range(2):
            for stmt in body:
                for node in ast.walk(stmt):
                    target = None
                    value = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                        target, value = node.target, node.value
                    if not isinstance(target, ast.Name) or value is None:
                        continue
                    if self._is_arrayish(value, info):
                        info.array_names.add(target.id)
        return info

    def _is_arrayish(self, node: ast.AST, info: _ScopeInfo) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in info.array_names:
                return True
            if isinstance(sub, ast.Call):
                if _is_numpy_call(sub, _ARRAY_PRODUCERS):
                    return True
                if isinstance(sub.func, ast.Attribute) and sub.func.attr in _ARRAY_METHODS:
                    return True
        return False

    # -- the actual check --------------------------------------------------

    def _check_call(
        self, call: ast.Call, info: _ScopeInfo, handle: SourceFile, engine=None
    ) -> Optional[Finding]:
        if not _is_numpy_call(call, _SCALAR_MATH_FNS):
            return None
        # out= targets an existing array: no scalar is produced.
        if any(kw.arg == "out" for kw in call.keywords):
            return None
        # float(np.sqrt(...)) is the sanctioned weak-scalar idiom.
        parent = getattr(call, "_lint_parent", None)
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "float"
        ):
            return None
        # Dataflow refinement: positive array evidence on any argument (e.g.
        # a helper whose summary provably returns an ndarray) means the dtype
        # follows the array - fine even when no local name evidence exists.
        if engine is not None and any(
            engine.value_of(arg).array is True for arg in call.args
        ):
            return None
        # Any array evidence in the arguments means the result is an array
        # and dtype follows the input - fine.
        if any(self._is_arrayish(arg, info) for arg in call.args):
            # ... unless the dataflow engine proves every argument scalar
            # (a same-named scalar shadowing an array, a scalar helper).
            if not (
                engine is not None
                and call.args
                and all(engine.value_of(arg).array is False for arg in call.args)
            ):
                return None
        fn = call.func.attr  # type: ignore[union-attr]
        return Finding(
            path=handle.rel_path,
            line=call.lineno,
            rule=self.rule,
            message=(
                f"np.{fn}(<scalar>) yields a strong np.float64 scalar that "
                f"promotes float32 arrays under NEP 50; use math.{fn}(...) or "
                f"wrap in float(...)"
            ),
        )


# ---------------------------------------------------------------------------
# RPL002 - temporal-state attrs must be covered by the state registry
# ---------------------------------------------------------------------------

_REMAP_METHODS = {"remap_rows"}
_NBYTES_METHODS = {"state_nbytes"}
_CLEAR_METHODS = {"reset_state", "_invalidate_rows"}
_REGISTRY_METHODS = _REMAP_METHODS | _NBYTES_METHODS | _CLEAR_METHODS


def _is_scalar_only_value(node: ast.AST) -> bool:
    """True for assignments that never hold buffer state (ints, dtypes)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float, bool, str)):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.operand, ast.Constant):
        return True
    if isinstance(node, ast.Call) and _is_numpy_call(node, {"dtype"}):
        return True
    return False


class TemporalStateRegistryChecker(Checker):
    """RPL002: ``self._prev_*`` / ``self._cols_*`` must be registry-covered.

    PR 4's ``_prev_cols`` alias bug inflated the reported per-row footprint
    ~22% because a state buffer existed outside the remap/nbytes/clear
    bookkeeping.  Any buffer-holding ``_prev_*`` attribute assigned in a
    class whose hierarchy implements the registry must be referenced by
    ``remap_rows``, ``state_nbytes`` and the clear path
    (``reset_state``/``_invalidate_rows``); ``_cols_*`` scratch buffers must
    at least be counted by ``state_nbytes``.
    """

    rule = "RPL002"
    title = "temporal-state attribute missing from the state registry"

    def check_file(self, handle: SourceFile) -> Iterable[Finding]:
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(handle.tree)
            if isinstance(node, ast.ClassDef)
        }
        findings: List[Finding] = []
        for cls in classes.values():
            mro = self._local_mro(cls, classes)
            methods = self._methods(mro)
            if not (_REMAP_METHODS | _NBYTES_METHODS) & set(methods):
                continue  # not a stateful registry class
            attrs = self._state_attrs(mro)
            for attr, (line, values) in sorted(attrs.items()):
                if all(_is_scalar_only_value(v) for v in values if v is not None):
                    continue
                missing = self._missing_registries(attr, methods)
                if missing:
                    # Keyed on (line, message) so the same base-class attr is
                    # not re-reported once per subclass in the hierarchy.
                    findings.append(
                        Finding(
                            path=handle.rel_path,
                            line=line,
                            rule=self.rule,
                            message=(
                                f"state attribute {attr!r} "
                                f"is not referenced by {', '.join(missing)}"
                            ),
                        )
                    )
        return sorted(set(findings))

    def _local_mro(
        self, cls: ast.ClassDef, classes: Dict[str, ast.ClassDef]
    ) -> List[ast.ClassDef]:
        chain, seen = [cls], {cls.name}
        frontier = [cls]
        while frontier:
            current = frontier.pop()
            for base in current.bases:
                if isinstance(base, ast.Name) and base.id in classes and base.id not in seen:
                    seen.add(base.id)
                    chain.append(classes[base.id])
                    frontier.append(classes[base.id])
        return chain

    def _methods(self, mro: Sequence[ast.ClassDef]) -> Dict[str, List[ast.FunctionDef]]:
        methods: Dict[str, List[ast.FunctionDef]] = {}
        for cls in mro:
            for node in cls.body:
                if isinstance(node, ast.FunctionDef):
                    methods.setdefault(node.name, []).append(node)
        return methods

    def _state_attrs(
        self, mro: Sequence[ast.ClassDef]
    ) -> Dict[str, Tuple[int, List[Optional[ast.AST]]]]:
        """attr -> (first assignment line, assigned value nodes)."""
        attrs: Dict[str, Tuple[int, List[Optional[ast.AST]]]] = {}

        def record(name: str, line: int, value: Optional[ast.AST]) -> None:
            if not (name.startswith("_prev") or name.startswith("_cols_")):
                return
            if name in attrs:
                first_line, values = attrs[name]
                attrs[name] = (min(first_line, line), values + [value])
            else:
                attrs[name] = (line, [value])

        for cls in mro:
            for method in (n for n in cls.body if isinstance(n, ast.FunctionDef)):
                if method.name in _REGISTRY_METHODS:
                    continue  # registry writes are bookkeeping, not new state
                dict_aliases = self._dict_aliases(method)
                for node in ast.walk(method):
                    if isinstance(node, ast.Assign):
                        targets, value = node.targets, node.value
                    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                        targets, value = [node.target], node.value
                    else:
                        continue
                    for target in targets:
                        name = self._attr_store_name(target, dict_aliases)
                        if name is not None:
                            kind = value if not isinstance(node, ast.AugAssign) else None
                            record(name, target.lineno, kind)
        return attrs

    def _dict_aliases(self, method: ast.FunctionDef) -> Set[str]:
        """Local names bound to ``self.__dict__`` (the hot-loop store idiom)."""
        aliases: Set[str] = set()
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "__dict__"
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id == "self"
            ):
                aliases.add(node.targets[0].id)
        return aliases

    def _attr_store_name(self, target: ast.AST, dict_aliases: Set[str]) -> Optional[str]:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
        if isinstance(target, ast.Subscript) and isinstance(
            target.slice, ast.Constant
        ) and isinstance(target.slice.value, str):
            base = target.value
            # self.__dict__["attr"] = ... or d["attr"] = ... with d = self.__dict__
            if (
                isinstance(base, ast.Attribute)
                and base.attr == "__dict__"
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                return target.slice.value
            if isinstance(base, ast.Name) and base.id in dict_aliases:
                return target.slice.value
        return None

    def _missing_registries(
        self, attr: str, methods: Dict[str, List[ast.FunctionDef]]
    ) -> List[str]:
        groups = [("state_nbytes", _NBYTES_METHODS)]
        if attr.startswith("_prev"):
            groups.append(("remap_rows", _REMAP_METHODS))
            groups.append(("reset_state/_invalidate_rows", _CLEAR_METHODS))
        missing = []
        for label, names in groups:
            bodies = [m for name in names for m in methods.get(name, [])]
            if not bodies:
                continue  # hierarchy never implements it; out of scope
            if not any(self._references(body, attr) for body in bodies):
                missing.append(label)
        return missing

    def _references(self, method: ast.FunctionDef, attr: str) -> bool:
        for node in ast.walk(method):
            if isinstance(node, ast.Attribute) and node.attr == attr:
                return True
            if isinstance(node, ast.Constant) and node.value == attr:
                return True
        return False


# ---------------------------------------------------------------------------
# RPL003 - every BenchmarkSpec field feeds the cache key
# ---------------------------------------------------------------------------


class SpecCacheKeyChecker(Checker):
    """RPL003: spec fields must be consumed by both cache-key producers.

    PR 5 had to thread ``calibration_dtype`` into ``engine_key`` by hand to
    stop differently-calibrated engines from aliasing one cache entry.  Any
    ``BenchmarkSpec`` dataclass field must be referenced by
    ``BenchmarkSpec.signature()`` *and* by the duck-typing fallback in
    ``repro.runtime.hashing.spec_signature`` (which ``engine_key`` consumes).
    """

    rule = "RPL003"
    title = "BenchmarkSpec field missing from the cache-key signature"

    spec_suffix = "workloads/suite.py"
    hashing_suffix = "runtime/hashing.py"

    def check_project(self, project: Project) -> Iterable[Finding]:
        spec_file = project.find(self.spec_suffix)
        hashing_file = project.find(self.hashing_suffix)
        if spec_file is None or hashing_file is None:
            return []
        spec_cls = self._find_class(spec_file.tree, "BenchmarkSpec")
        if spec_cls is None:
            return []
        fields = self._dataclass_fields(spec_cls)
        signature = self._find_function(spec_cls, "signature")
        fallback = self._find_function(hashing_file.tree, "spec_signature")
        findings: List[Finding] = []
        for name, line in fields:
            missing = []
            if signature is not None and not self._references(signature, name):
                missing.append("BenchmarkSpec.signature()")
            if fallback is not None and not self._references(fallback, name):
                missing.append("runtime.hashing.spec_signature()")
            if missing:
                findings.append(
                    Finding(
                        path=spec_file.rel_path,
                        line=line,
                        rule=self.rule,
                        message=(
                            f"spec field {name!r} is not consumed by "
                            f"{' or '.join(missing)}; new knobs must reach the "
                            f"engine cache key or cached engines alias"
                        ),
                    )
                )
        return findings

    def _find_class(self, tree: ast.AST, name: str) -> Optional[ast.ClassDef]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == name:
                return node
        return None

    def _find_function(self, tree: ast.AST, name: str) -> Optional[ast.FunctionDef]:
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return node
        return None

    def _dataclass_fields(self, cls: ast.ClassDef) -> List[Tuple[str, int]]:
        fields = []
        for node in cls.body:
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                annotation = ast.unparse(node.annotation) if node.annotation else ""
                if "ClassVar" in annotation:
                    continue
                fields.append((node.target.id, node.lineno))
        return fields

    def _references(self, fn: ast.FunctionDef, name: str) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute) and node.attr == name:
                return True
            if isinstance(node, ast.Constant) and node.value == name:
                return True
        return False


# ---------------------------------------------------------------------------
# RPL004 - hot-loop entry points stay profiled; buckets stay gated
# ---------------------------------------------------------------------------

_PROFILING_NAMES = {"profiling", "prof", "profiler"}
_PROFILING_CALLS = {"phase", "add", "record", "active"}


class ProfilerPhaseChecker(Checker):
    """RPL004: registered hot-loop entry points must carry phase hooks.

    The bench schema and ``scripts/check_bench.py`` gate per-phase timings;
    an entry point that silently loses its hook (or a bucket unknown to the
    gate) makes the perf regression gate blind to exactly the loops it was
    built to watch.
    """

    rule = "RPL004"
    title = "hot-loop entry point without profiler-phase coverage"

    # path suffix -> function names that must contain a profiling hook
    entry_points: Dict[str, Set[str]] = {
        "nn/functional.py": {"group_norm", "layer_norm", "im2col", "im2col_t"},
        "core/engine.py": {"from_model"},
    }
    # files that must know every bucket name used at a phase call site
    gate_files = ("scripts/check_bench.py", "src/repro/bench.py")

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        findings.extend(self._check_entry_points(project))
        findings.extend(self._check_buckets(project))
        return findings

    def _check_entry_points(self, project: Project) -> List[Finding]:
        findings = []
        for suffix, names in self.entry_points.items():
            handle = project.find(suffix)
            if handle is None:
                continue
            for node in ast.walk(handle.tree):
                if isinstance(node, ast.FunctionDef) and node.name in names:
                    if not self._has_profiling_call(node):
                        findings.append(
                            Finding(
                                path=handle.rel_path,
                                line=node.lineno,
                                rule=self.rule,
                                message=(
                                    f"hot-loop entry point {node.name!r} has no "
                                    f"profiling phase hook (profiling.phase / "
                                    f"prof.add / profiling.record)"
                                ),
                            )
                        )
        return findings

    def _has_profiling_call(self, fn: ast.FunctionDef) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                base = node.func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in _PROFILING_NAMES
                    and node.func.attr in _PROFILING_CALLS
                ):
                    return True
        return False

    def _check_buckets(self, project: Project) -> List[Finding]:
        findings = []
        gates = {suffix: project.text(suffix) for suffix in self.gate_files}
        for handle in project.files.values():
            for bucket, line in self._bucket_sites(handle):
                for suffix, text in gates.items():
                    if text is None:
                        continue
                    if not re.search(rf"\b{re.escape(bucket)}\b", text):
                        findings.append(
                            Finding(
                                path=handle.rel_path,
                                line=line,
                                rule=self.rule,
                                message=(
                                    f"phase bucket {bucket!r} is unknown to "
                                    f"{suffix}; the perf gate cannot watch it"
                                ),
                            )
                        )
        return findings

    def _bucket_sites(self, handle: SourceFile) -> List[Tuple[str, int]]:
        sites = []
        for node in ast.walk(handle.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            base = node.func.value
            if not (isinstance(base, ast.Name) and base.id in _PROFILING_NAMES):
                continue
            if node.func.attr not in {"phase", "add", "record"}:
                continue
            if node.args and isinstance(node.args[0], ast.Constant):
                value = node.args[0].value
                if isinstance(value, str):
                    sites.append((value, node.lineno))
        return sites


# ---------------------------------------------------------------------------
# RPL005 - layout discipline at the exact-f32 GEMM call sites
# ---------------------------------------------------------------------------

_GEMM_SINKS = {"conv2d_from_cols", "conv2d_from_cols_t", "linear", "matmul", "dot"}
_VIEW_METHODS = {"transpose", "swapaxes", "reshape"}


# Receiver spellings of the compute-backend dispatch surface (PR 10):
# ``bk = backends.active(); bk.matmul(...)`` or ``backends.active().linear(...)``.
_BACKEND_RECEIVERS = {"bk", "backend", "backends"}


def is_backend_dispatch(node: ast.AST) -> bool:
    """True for calls routed through the compute-backend dispatch.

    The dispatch surface owns operand layout - a backend may materialize or
    re-block strided views internally (the blas-batched gather does exactly
    that) - so the layout rules treat dispatched calls as sanctioned and
    keep watching the raw kernels, including the backend implementations
    themselves.
    """
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    recv = node.func.value
    if isinstance(recv, ast.Name) and recv.id in _BACKEND_RECEIVERS:
        return True
    return (
        isinstance(recv, ast.Call)
        and isinstance(recv.func, ast.Attribute)
        and recv.func.attr == "active"
    )


def is_direct_strided_view(node: ast.AST) -> bool:
    """Syntactic ``.T`` / ``.transpose()`` / ``.reshape()`` view expression.

    Shared with RPL008 so the flow-sensitive rule skips exactly the operands
    the direct rule already owns (one finding per defect, stable rule IDs).
    """
    if isinstance(node, ast.Attribute) and node.attr == "T":
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _VIEW_METHODS:
            return True
    return False


class GemmLayoutChecker(Checker):
    """RPL005: no transposed/reshaped views straight into the GEMM kernels.

    The blocked integer GEMMs and the exact-f32 fast path assume C-contiguous
    operands (the PR 2 "reduction temporaries must inherit layout" subtlety);
    a strided view silently forces a copy per call or, worse, a slow BLAS
    path.  Wrap the operand in ``np.ascontiguousarray(...)`` (or materialize
    it earlier) to state the layout explicitly.
    """

    rule = "RPL005"
    title = "strided view fed directly into an exact-f32 GEMM call site"

    def check_project(self, project: Project) -> Iterable[Finding]:
        from .dataflow.rules import engine_for

        engine = engine_for(project)
        findings: List[Finding] = []
        for handle in project.files.values():
            if handle.scope not in self.scopes:
                continue
            findings.extend(self._check_handle(handle, engine))
        return findings

    def _check_handle(self, handle: SourceFile, engine=None) -> List[Finding]:
        if not _GEMM_DIR_RE.search(handle.rel_path):
            return []
        findings: List[Finding] = []
        for node in ast.walk(handle.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _attr_call_name(node)
            if callee not in _GEMM_SINKS:
                continue
            if is_backend_dispatch(node):
                continue
            # np.dot/np.matmul check both operands; the repo kernels take the
            # layout-critical cols/data operand first.
            n_args = 2 if callee in {"matmul", "dot"} else 1
            for arg in node.args[:n_args]:
                if self._is_strided_view(arg):
                    # Dataflow refinement: reshape of a provably C-contiguous
                    # base is itself C-contiguous - no copy, no strided view.
                    if (
                        engine is not None
                        and isinstance(arg, ast.Call)
                        and isinstance(arg.func, ast.Attribute)
                        and arg.func.attr == "reshape"
                        and engine.value_of(arg.func.value).is_contig
                    ):
                        continue
                    findings.append(
                        Finding(
                            path=handle.rel_path,
                            line=arg.lineno,
                            rule=self.rule,
                            message=(
                                f"{ast.unparse(arg)} is a strided view passed "
                                f"directly to {callee}(); wrap in "
                                f"np.ascontiguousarray(...) to guarantee layout"
                            ),
                        )
                    )
        return findings

    def _is_strided_view(self, node: ast.AST) -> bool:
        return is_direct_strided_view(node)


# ---------------------------------------------------------------------------
# RPL006 - the fault-tolerant serving stack may not swallow exceptions
# ---------------------------------------------------------------------------

# The two modules that own session health.  A swallowed exception here leaves
# a session that *looks* healthy but has diverged from its replay journal -
# exactly the state the crash-recovery contract (PR 7) exists to rule out.
_RPL006_FILE_RE = re.compile(r"src/repro/(core/session|runtime/serving)\.py$")


class SwallowedExceptionChecker(Checker):
    """RPL006: serving-stack ``except`` blocks must re-raise or mark unhealthy.

    Fault-tolerant serving relies on failures being *loud*: a step failure
    either propagates (so the retry/recovery machinery sees it) or flips the
    session's health flag (so later calls refuse to run on diverged state).
    An ``except`` handler in ``core/session.py`` or ``runtime/serving.py``
    that does neither silently absorbs a fault and lets bit-exactness claims
    rot.  Handlers that are intentionally terminal carry
    ``# repro-lint: ignore[RPL006]``.
    """

    rule = "RPL006"
    title = "exception swallowed in the fault-tolerant serving stack"

    def check_file(self, handle: SourceFile) -> Iterable[Finding]:
        if not _RPL006_FILE_RE.search(handle.rel_path):
            return []
        findings: List[Finding] = []
        for node in ast.walk(handle.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._handler_is_loud(node):
                continue
            caught = ast.unparse(node.type) if node.type is not None else "BaseException"
            findings.append(
                Finding(
                    path=handle.rel_path,
                    line=node.lineno,
                    rule=self.rule,
                    message=(
                        f"except {caught} swallows the exception; re-raise, "
                        f"mark the session unhealthy, or annotate with "
                        f"# repro-lint: ignore[RPL006]"
                    ),
                )
            )
        return findings

    def _handler_is_loud(self, handler: ast.ExceptHandler) -> bool:
        """True when the handler re-raises or touches session health."""
        for stmt in handler.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
                # mark_unhealthy(...), session.healthy, self._healthy = False,
                # "unhealthy" string reasons - any health-flag traffic counts.
                if isinstance(node, ast.Attribute) and "healthy" in node.attr:
                    return True
                if isinstance(node, ast.Name) and "healthy" in node.id:
                    return True
        return False


# ---------------------------------------------------------------------------
# RPL011 - quantized GEMMs must go through the compute-backend dispatch
# ---------------------------------------------------------------------------

# The backend package is the one place allowed to spell raw products: it IS
# the dispatch target.
_BACKEND_DIR_RE = re.compile(r"src/repro/nn/backends/")
_RAW_GEMM_CALLS = {"matmul", "einsum"}

# Operand spellings that carry quantized-integer evidence in this codebase:
# the q_*-prefixed quantized activations/weights, the qq/qk/qv/qp/dq/dk/dv/dp
# attention operand idiom, temporal diffs and prev_* carries, and *_int
# accumulators.  A raw product over such operands is exactly the GEMM the
# backend interface exists to own.
_QUANT_NAME_RE = re.compile(
    r"^(qq|qk|qv|qp|dq|dk|dv|dp)$"
    r"|^(q|int|diff|quant)_"
    r"|^(diff|prev)"
    r"|_(q|int|cols)$"
)


class BackendDispatchChecker(Checker):
    """RPL011: raw ``@`` / ``np.matmul`` / ``np.einsum`` on quantized operands.

    PR 10 routes every integer GEMM through
    ``repro.nn.backends.active()`` so alternative backends (``blas-batched``)
    can re-block the products under the exact-f32 gate and so the backend
    axis in the engine cache key actually governs the math that runs.  A raw
    matmul on quantized operands outside ``src/repro/nn/backends/`` silently
    pins that product to numpy regardless of the selected backend - the
    bench records a backend the hot loop never used.  Use
    ``backends.active().matmul(...)`` (or ``linear`` /
    ``conv2d_from_cols_t``), or annotate ``# repro-lint: ignore[RPL011]``
    when the product is genuinely backend-independent.

    The operand test is the name heuristic above refined by the dataflow
    engine: operands it proves non-array (plain scalars that merely reuse a
    quantized-sounding name) never fire.
    """

    rule = "RPL011"
    title = "quantized GEMM bypassing the compute-backend dispatch"

    def check_project(self, project: Project) -> Iterable[Finding]:
        from .dataflow.rules import engine_for

        engine = engine_for(project)
        findings: List[Finding] = []
        for handle in project.files.values():
            if handle.scope not in self.scopes:
                continue
            findings.extend(self._check_handle(handle, engine))
        return findings

    def _check_handle(self, handle: SourceFile, engine=None) -> List[Finding]:
        if not _GEMM_DIR_RE.search(handle.rel_path):
            return []
        if _BACKEND_DIR_RE.search(handle.rel_path):
            return []
        findings: List[Finding] = []
        for node in ast.walk(handle.tree):
            site, operands = self._raw_gemm(node)
            if site is None:
                continue
            quantized = [op for op in operands if self._is_quantized(op)]
            if not quantized:
                continue
            # Dataflow refinement: when every quantized-named operand is
            # provably non-array (a float knob reusing a quantized-sounding
            # name), this is scalar math, not a GEMM.
            if engine is not None and all(
                engine.value_of(op).array is False for op in quantized
            ):
                continue
            shown = ", ".join(ast.unparse(op) for op in quantized)
            findings.append(
                Finding(
                    path=handle.rel_path,
                    line=node.lineno,
                    rule=self.rule,
                    message=(
                        f"raw {site} on quantized operand(s) {shown} bypasses "
                        f"the compute-backend dispatch; route through "
                        f"repro.nn.backends.active() so the selected backend "
                        f"owns every integer GEMM"
                    ),
                )
            )
        return findings

    def _raw_gemm(self, node: ast.AST):
        """``(site_label, operand_nodes)`` for raw-product sites, else None."""
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            return "@", [node.left, node.right]
        if isinstance(node, ast.Call) and _is_numpy_call(node, _RAW_GEMM_CALLS):
            fn = node.func.attr  # type: ignore[union-attr]
            operands = list(node.args)
            # np.einsum("subscripts", *operands): skip the subscript string.
            if fn == "einsum" and operands and isinstance(operands[0], ast.Constant):
                operands = operands[1:]
            return f"np.{fn}", operands
        return None, []

    def _is_quantized(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and _QUANT_NAME_RE.search(sub.id):
                return True
            if isinstance(sub, ast.Attribute) and _QUANT_NAME_RE.search(sub.attr):
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "quantize"
            ):
                return True
        return False


def default_checkers() -> List[Checker]:
    # Imported lazily: dataflow.rules imports the sink sets from this module.
    from .dataflow.rules import (
        DtypeFlowChecker,
        LayoutFlowChecker,
        RngStreamChecker,
        SessionLifecycleChecker,
    )

    return [
        DtypePromotionChecker(),
        TemporalStateRegistryChecker(),
        SpecCacheKeyChecker(),
        ProfilerPhaseChecker(),
        GemmLayoutChecker(),
        SwallowedExceptionChecker(),
        DtypeFlowChecker(),
        LayoutFlowChecker(),
        RngStreamChecker(),
        SessionLifecycleChecker(),
        BackendDispatchChecker(),
    ]
