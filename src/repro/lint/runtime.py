"""Opt-in runtime numeric sanitizer for the serving stack.

The static checkers catch the patterns we know how to spot in source; this
module catches the same invariant classes *dynamically*:

* **no float64 inside a float32 calibration region** - the
  ``calibration_precision("float32")`` fast path casts the whole model to
  float32; any float64 array reaching a kernel inside that region means a
  NEP-50 promotion leak snuck past RPL001 (and silently doubles the
  calibration cost).
* **no non-C-contiguous cols into the integer GEMMs** - the blocked
  ``conv2d_from_cols``/``conv2d_from_cols_t`` kernels assume C-contiguous
  column buffers (RPL005's runtime twin).

Activation is opt-in: set ``REPRO_SANITIZE=1`` and the test suite's conftest
installs the kernel wrappers for the whole session (one CI matrix leg runs
this way).  ``calibration_precision`` always marks its region via
:func:`calibration_region` - the marker is a cheap thread-local push/pop, so
production runs pay nothing when the wrappers are not installed.

This module deliberately imports nothing from ``repro`` at import time (the
kernel module is resolved lazily inside :func:`install`) so
``quant.calibration`` can import it without cycles.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

import numpy as np

__all__ = [
    "SanitizerError",
    "DTYPE_CHECKED_KERNELS",
    "COLS_CHECKED_KERNELS",
    "enabled",
    "calibration_region",
    "active_calibration_dtype",
    "install",
    "uninstall",
    "installed",
    "sanitized",
]

# The shared region/sink model: these are the kernels install() wraps, and
# the RPL007 static rule (repro.lint.dataflow.rules) imports the same tuples
# so the runtime sanitizer and its static twin can never drift apart.
DTYPE_CHECKED_KERNELS = ("linear", "conv2d", "group_norm", "layer_norm")
COLS_CHECKED_KERNELS = ("conv2d_from_cols", "conv2d_from_cols_t")


class SanitizerError(AssertionError):
    """A numeric invariant was violated at runtime."""


_STATE = threading.local()


def _region_stack() -> list:
    stack = getattr(_STATE, "regions", None)
    if stack is None:
        stack = _STATE.regions = []
    return stack


def enabled() -> bool:
    """Whether the environment opted into sanitized runs."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in {"1", "true", "yes", "on"}


@contextmanager
def calibration_region(dtype: np.dtype) -> Iterator[None]:
    """Mark the dynamic extent of a ``calibration_precision`` region."""
    stack = _region_stack()
    stack.append(np.dtype(dtype))
    try:
        yield
    finally:
        stack.pop()


def active_calibration_dtype() -> Optional[np.dtype]:
    stack = _region_stack()
    return stack[-1] if stack else None


def _check_no_float64(kernel: str, *arrays: Optional[np.ndarray]) -> None:
    if active_calibration_dtype() != np.dtype(np.float32):
        return
    for array in arrays:
        if isinstance(array, np.ndarray) and array.dtype == np.float64:
            raise SanitizerError(
                f"float64 array (shape {array.shape}) reached {kernel}() inside a "
                f"float32 calibration region - a NEP-50 promotion leak is "
                f"re-widening the fast path"
            )


def _check_contiguous(kernel: str, name: str, array: np.ndarray) -> None:
    if isinstance(array, np.ndarray) and not array.flags.c_contiguous:
        raise SanitizerError(
            f"{kernel}() received a non-C-contiguous {name} buffer "
            f"(shape {array.shape}, strides {array.strides}) - the blocked "
            f"integer GEMM assumes C layout"
        )


_originals: Dict[str, Callable] = {}


def installed() -> bool:
    return bool(_originals)


def install() -> None:
    """Wrap the hot kernels in ``repro.nn.functional`` with invariant checks."""
    if _originals:
        return
    from ..nn import functional as F

    def wrap_dtype(name: str) -> None:
        original = getattr(F, name)

        def wrapper(*args, **kwargs):
            arrays = [a for a in args if isinstance(a, np.ndarray)]
            arrays += [v for v in kwargs.values() if isinstance(v, np.ndarray)]
            _check_no_float64(name, *arrays)
            return original(*args, **kwargs)

        wrapper.__name__ = f"sanitized_{name}"
        _originals[name] = original
        setattr(F, name, wrapper)

    def wrap_cols(name: str) -> None:
        original = getattr(F, name)

        def wrapper(cols, *args, **kwargs):
            _check_contiguous(name, "cols", cols)
            _check_no_float64(name, cols if isinstance(cols, np.ndarray) else None)
            return original(cols, *args, **kwargs)

        wrapper.__name__ = f"sanitized_{name}"
        _originals[name] = original
        setattr(F, name, wrapper)

    for kernel in DTYPE_CHECKED_KERNELS:
        wrap_dtype(kernel)
    for kernel in COLS_CHECKED_KERNELS:
        wrap_cols(kernel)


def uninstall() -> None:
    """Restore the original kernels."""
    if not _originals:
        return
    from ..nn import functional as F

    for name, original in _originals.items():
        setattr(F, name, original)
    _originals.clear()


@contextmanager
def sanitized() -> Iterator[None]:
    """Scoped install/uninstall (the conftest fixture uses this)."""
    install()
    try:
        yield
    finally:
        uninstall()
