"""Fig. 16 - design-space exploration: DS / DB / DB&DS / +Attn / Ditto / Ditto+.

Paper: sparsity-only (DS) and bit-width-only (DB) accelerators lose their
compute gains to temporal-difference memory stalls; combining both (DB&DS)
and adding attention differences preserves an edge but still stalls; Defo
(Ditto) cuts memory stall cycles by ~39% for an ~18% end-to-end win, with
slightly higher compute cycles than DB&DS&Attn (fallback layers run dense).
"""

import numpy as np

from repro.hw import FIG16_DESIGNS, evaluate_designs

ORDER = [d.name for d in FIG16_DESIGNS]


def test_fig16_mechanism_ablation(benchmark, engine_results, record_result):
    def analyze():
        table = {}
        for name, result in engine_results.items():
            results = evaluate_designs(FIG16_DESIGNS, result.rich_trace)
            itc_cycles = results["ITC"].report.total_cycles
            table[name] = {
                d: (
                    results[d].report.total_cycles / itc_cycles,
                    results[d].report.compute_cycles / itc_cycles,
                    results[d].report.stall_cycles / itc_cycles,
                )
                for d in ORDER
            }
        return table

    table = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [f"{'design':12s} {'rel.cycles':>10s} {'compute':>8s} {'stall':>7s} (avg)"]
    avg = {}
    for design in ORDER:
        cyc = float(np.mean([table[m][design][0] for m in table]))
        cmp_ = float(np.mean([table[m][design][1] for m in table]))
        stall = float(np.mean([table[m][design][2] for m in table]))
        avg[design] = (cyc, cmp_, stall)
        lines.append(f"{design:12s} {cyc:10.3f} {cmp_:8.3f} {stall:7.3f}")
    lines.append(
        "paper: DS/DB > ITC cycles (stall-bound); Ditto -39% stalls vs "
        "DB&DS&Attn, 18.3% faster"
    )
    record_result("fig16_ablation", lines)
    print("\n".join(lines))

    # Naive temporal schedules suffer memory stalls.
    assert avg["DS"][2] > avg["Ditto"][2]
    assert avg["DB"][2] > avg["Ditto"][2]
    assert avg["DB&DS&Attn"][2] > avg["Ditto"][2]
    # Defo trades a little compute for much less stalling and wins overall.
    assert avg["Ditto"][0] < avg["DB&DS&Attn"][0]
    assert avg["Ditto"][1] >= avg["DB&DS&Attn"][1] * 0.98
    # Attention differences are what make the combined design profitable
    # (paper: "Combining DB and DS, and applying attention differences can
    # reserve performance improvement over the baseline").
    assert avg["DB&DS&Attn"][0] < 1.0
    assert avg["DB&DS&Attn"][0] < avg["DB&DS"][0]
    assert avg["DB&DS"][0] <= avg["DB"][0] + 1e-9
    # Ditto ends below the dense baseline.
    assert avg["Ditto"][0] < 1.0
