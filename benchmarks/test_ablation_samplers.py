"""Ablation: Ditto under different samplers and trajectory lengths.

The paper's benefit comes from adjacent steps being similar; very short
trajectories (modern fast samplers) take larger jumps, weakening temporal
similarity.  This study sweeps samplers (DDIM / PLMS / DPM-Solver++) and
step counts on the DDPM workload, measuring the temporal zero fraction and
Ditto's speedup - quantifying the regime in which the paper's mechanism
pays off.
"""

from repro.core import DittoEngine
from repro.core.bitwidth import BitWidthStats
from repro.hw import DesignPoint, evaluate_designs
from repro.workloads import get_benchmark

DESIGNS = [
    DesignPoint("ITC", "ITC", "dense"),
    DesignPoint("Ditto", "Ditto", "defo"),
]


def _run(sampler: str, steps: int):
    spec = get_benchmark("DDPM")
    engine = DittoEngine.from_model(
        spec.build_model(),
        sampler_name=sampler,
        num_steps=steps,
        sample_shape=spec.sample_shape,
        conditioning=spec.build_conditioning(),
        benchmark=f"DDPM-{sampler}{steps}",
    )
    result = engine.run(seed=0)
    stats = BitWidthStats.empty()
    for record in result.rich_trace:
        if record.stats_temporal is not None:
            stats = stats.merge(record.stats_temporal)
    designs = evaluate_designs(DESIGNS, result.rich_trace)
    speedup = (
        designs["ITC"].report.total_cycles / designs["Ditto"].report.total_cycles
    )
    return stats.zero_frac, speedup


def test_ablation_sampler_and_steps(benchmark, record_result):
    cases = [
        ("ddim", 50),
        ("ddim", 12),
        ("plms", 20),
        ("dpmpp", 12),
    ]

    def analyze():
        return {case: _run(*case) for case in cases}

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [f"{'sampler':8s} {'steps':>5s} {'zero%':>7s} {'Ditto speedup':>14s}"]
    for (sampler, steps), (zero, speedup) in rows.items():
        lines.append(f"{sampler:8s} {steps:5d} {100 * zero:7.1f} {speedup:14.2f}")
    lines.append(
        "finer trajectories -> higher temporal similarity -> bigger wins"
    )
    record_result("ablation_samplers", lines)
    print("\n".join(lines))

    # Finer DDIM trajectories must show higher temporal similarity.
    assert rows[("ddim", 50)][0] > rows[("ddim", 12)][0]
    # Defo guarantees Ditto never loses badly, even on coarse trajectories.
    for case, (_zero, speedup) in rows.items():
        assert speedup > 0.85, case
    # And on the paper's regime (many steps) it clearly wins.
    assert rows[("ddim", 50)][1] > 1.2
