"""Fig. 18 - Defo against the oracle (Ideal-Ditto).

Paper: fixing the execution flow at the second time step costs almost
nothing - Ditto reaches 98.8% of Ideal-Ditto's performance and Ditto+
reaches 95.8%, because the layers Defo mispredicts sit at the decision
threshold where either choice costs about the same.
"""

import numpy as np

from repro.hw import FIG18_DESIGNS, evaluate_designs


def test_fig18_defo_vs_ideal(benchmark, engine_results, record_result):
    def analyze():
        rows = {}
        for name, result in engine_results.items():
            results = evaluate_designs(FIG18_DESIGNS, result.rich_trace)
            rows[name] = {
                "ditto_of_ideal": (
                    results["Ideal-Ditto"].report.total_cycles
                    / results["Ditto"].report.total_cycles
                ),
                "plus_of_ideal": (
                    results["Ideal-Ditto+"].report.total_cycles
                    / results["Ditto+"].report.total_cycles
                ),
                "speedups": {
                    d: (
                        results["ITC"].report.total_cycles
                        / results[d].report.total_cycles
                    )
                    for d in ("Ditto", "Ideal-Ditto", "Ditto+", "Ideal-Ditto+")
                },
            }
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [f"{'model':6s} {'Ditto/Ideal':>11s} {'Ditto+/Ideal+':>13s}"]
    for name, row in rows.items():
        lines.append(
            f"{name:6s} {100 * row['ditto_of_ideal']:10.1f}% "
            f"{100 * row['plus_of_ideal']:12.1f}%"
        )
    avg = float(np.mean([r["ditto_of_ideal"] for r in rows.values()]))
    avg_plus = float(np.mean([r["plus_of_ideal"] for r in rows.values()]))
    lines.append(
        f"AVG: Ditto reaches {100 * avg:.1f}% of ideal (paper 98.8%), "
        f"Ditto+ {100 * avg_plus:.1f}% (paper 95.8%)"
    )
    record_result("fig18_ideal", lines)
    print("\n".join(lines))

    for name, row in rows.items():
        # The oracle can only be faster or equal.
        assert row["ditto_of_ideal"] <= 1.0 + 1e-9, name
        assert row["plus_of_ideal"] <= 1.0 + 1e-9, name
        # The ideal design itself must beat the dense baseline.
        assert row["speedups"]["Ideal-Ditto"] > 1.0, name
    assert avg > 0.9  # paper: 98.8%
    # Defo+ sits further from its oracle here than in the paper (95.8%):
    # spatial-difference statistics drift across steps under random weights,
    # so the second-step decision ages faster (see EXPERIMENTS.md).
    assert avg_plus > 0.7
