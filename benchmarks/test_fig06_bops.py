"""Fig. 6 - Bit Operations (BOPs) of the three processing methods.

Paper: temporal difference processing cuts BOPs by 53.3% vs original
activations and 23.1% vs the spatial method on average (DDPM/CHUR best);
the reduction holds at every time step, weakest in the last steps where the
most denoising happens.
"""

import numpy as np

from repro.core import (
    lower_dense,
    lower_spatial,
    lower_temporal,
    per_step_relative_bops,
    relative_bops,
)


def test_fig06a_relative_bops(benchmark, engine_results, record_result):
    def analyze():
        rows = {}
        for name, result in engine_results.items():
            trace = result.rich_trace
            rows[name] = {
                "act": relative_bops(lower_dense(trace)),
                "spatial": relative_bops(lower_spatial(trace), zero_skipping=False),
                "temporal": relative_bops(lower_temporal(trace)),
            }
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [f"{'model':6s} {'act':>6s} {'spatial':>8s} {'temporal':>9s}"]
    for name, row in rows.items():
        lines.append(
            f"{name:6s} {row['act']:6.3f} {row['spatial']:8.3f} {row['temporal']:9.3f}"
        )
    avg = {
        key: float(np.mean([rows[m][key] for m in rows]))
        for key in ("act", "spatial", "temporal")
    }
    lines.append(
        f"AVG    {avg['act']:6.3f} {avg['spatial']:8.3f} {avg['temporal']:9.3f}"
    )
    lines.append(
        "paper: temporal = 0.467x act (-53.3%), spatial-to-temporal gap -23.1%"
    )
    record_result("fig06_bops", lines)
    print("\n".join(lines))

    for name, row in rows.items():
        assert row["temporal"] < row["act"], name
        assert row["temporal"] < row["spatial"], name
    assert avg["temporal"] < 0.75  # meaningful reduction on average
    assert avg["temporal"] < avg["spatial"] - 0.05


def test_fig06b_per_step_consistency(benchmark, engine_results, record_result):
    """BOPs reduction holds across (almost) all adjacent time steps."""

    def analyze():
        result = engine_results["SDM"]
        trace = lower_temporal(result.rich_trace)
        return per_step_relative_bops(trace)

    per_step = benchmark.pedantic(analyze, rounds=1, iterations=1)
    steps = sorted(per_step)
    series = [per_step[s] for s in steps]
    lines = ["step relative_bops"] + [
        f"{s:4d} {v:.3f}" for s, v in zip(steps, series)
    ]
    lines.append("paper: consistent reduction, weakest at the final steps")
    record_result("fig06b_bops_per_step", lines)
    print("\n".join(lines))

    # Step 0 is dense (no reduction); every difference step must reduce.
    assert series[0] >= max(series[1:])
    assert all(v < 1.0 for v in series[1:])
    # Deviation vs paper (documented in EXPERIMENTS.md): with random weights
    # the trajectory smooths toward t=0, so the reduction *improves* at the
    # final steps instead of weakening; the paper's main claim - consistent
    # reduction across (almost) all adjacent steps - still holds.
    assert np.mean(series[1:]) < 0.8
