"""Fig. 14 - memory accesses of the temporal-difference designs vs ITC.

Paper: Cambricon-D moves 1.95x the bytes of ITC, Ditto 1.56x, Ditto+ 1.36x -
Defo prunes exactly the memory-hungry layers, so Ditto lands between the
dense baseline and the naive temporal design, and Ditto+ (spatial fallback,
no prev-step traffic) lands below Ditto.
"""

import numpy as np

from repro.hw import FIG13_DESIGNS, evaluate_designs

DESIGNS = ["ITC", "Cambricon-D", "Ditto", "Ditto+"]


def test_fig14_relative_memory_accesses(benchmark, engine_results, record_result):
    def analyze():
        rows = {}
        for name, result in engine_results.items():
            results = evaluate_designs(FIG13_DESIGNS, result.rich_trace)
            itc_bytes = results["ITC"].report.total_bytes
            rows[name] = {
                d: results[d].report.total_bytes / itc_bytes for d in DESIGNS
            }
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [f"{'model':6s} " + " ".join(f"{d[:8]:>9s}" for d in DESIGNS)]
    for model, row in rows.items():
        lines.append(f"{model:6s} " + " ".join(f"{row[d]:9.2f}" for d in DESIGNS))
    avg = {d: float(np.mean([rows[m][d] for m in rows])) for d in DESIGNS}
    lines.append("AVG    " + " ".join(f"{avg[d]:9.2f}" for d in DESIGNS))
    lines.append("paper: ITC 1.0, Cambricon-D 1.95x, Ditto 1.56x, Ditto+ 1.36x")
    record_result("fig14_memory_accesses", lines)
    print("\n".join(lines))

    for model, row in rows.items():
        assert row["Cambricon-D"] > 1.0, model
        assert row["Ditto"] >= 1.0, model
        # Defo keeps Ditto below naive Cambricon-D; Ditto+ at or below Ditto.
        assert row["Ditto"] <= row["Cambricon-D"] + 1e-9, model
        assert row["Ditto+"] <= row["Ditto"] + 1e-9, model
    assert 1.1 < avg["Cambricon-D"] < 3.0
    assert 1.0 <= avg["Ditto"] < avg["Cambricon-D"]
    assert avg["Ditto+"] < avg["Ditto"]
