"""Fig. 4 - value range of activations vs temporal differences.

Paper: temporal differences are on average 8.96x narrower than the original
activations (up to 25.02x for DDPM, at least 2.44x for CHUR), consistently
across time steps.  We reproduce the universal ">1x narrower" property and
the benchmark-wide average being well above the paper's minimum.
"""

import numpy as np


def test_fig04_value_range_ratio(benchmark, similarity_reports, record_result):
    def analyze():
        return {
            name: report.avg_range_ratio
            for name, report in similarity_reports.items()
        }

    ratios = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [f"{'model':6s} {'act/diff range':>15s}"]
    for name, ratio in ratios.items():
        lines.append(f"{name:6s} {ratio:15.2f}")
    avg = float(np.mean(list(ratios.values())))
    lines.append(f"{'AVG':6s} {avg:15.2f}")
    lines.append("paper: avg 8.96x (max 25.02x DDPM, min 2.44x CHUR)")
    record_result("fig04_value_range", lines)
    print("\n".join(lines))

    for name, ratio in ratios.items():
        assert ratio > 1.3, f"{name}: differences must be narrower than activations"
    assert avg > 2.0


def test_fig04a_narrow_ranges_hold_across_steps(benchmark, similarity_reports):
    """The narrowing is consistent across time steps, not just on average."""

    def analyze():
        report = similarity_reports["SDM"]
        fractions = []
        for layer, entry in report.ranges.items():
            history = report.temporal.get(layer)
            if not history:
                continue
            fractions.append(entry["ratio"] > 1.0)
        return fractions

    fractions = benchmark.pedantic(analyze, rounds=1, iterations=1)
    assert fractions
    assert np.mean(fractions) > 0.9  # nearly every layer narrows
