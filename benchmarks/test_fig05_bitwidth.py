"""Fig. 5 - bit-width requirement of activations vs differences.

Paper (A8W8 quantized models): temporal differences are 44.48% zero and
96.01% representable in <=4 bits; spatial differences and original
activations are far worse (25.58% / 42.28% need more than 4 bits).  The
reproduction checks the ordering and the magnitude gaps; absolute
percentages are weight-dependent (see EXPERIMENTS.md).
"""

import numpy as np

from repro.core.bitwidth import BitWidthStats


def aggregate(trace, which):
    total = BitWidthStats.empty()
    for step in trace:
        stats = getattr(step, f"stats_{which}")
        if stats is not None:
            total = total.merge(stats)
    return total


def test_fig05_bitwidth_requirement(benchmark, engine_results, record_result):
    def analyze():
        rows = {}
        for name, result in engine_results.items():
            rows[name] = {
                which: aggregate(result.rich_trace, which)
                for which in ("dense", "spatial", "temporal")
            }
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [
        f"{'model':6s} {'kind':9s} {'zero%':>7s} {'<=4bit%':>8s} {'>4bit%':>7s}"
    ]
    for name, stats in rows.items():
        for which in ("dense", "spatial", "temporal"):
            s = stats[which]
            label = {"dense": "Act.", "spatial": "SpaDiff", "temporal": "TempDiff"}[which]
            lines.append(
                f"{name:6s} {label:9s} {100 * s.zero_frac:7.1f} "
                f"{100 * s.low_or_zero_frac:8.1f} {100 * s.high_frac:7.1f}"
            )
    avg = {
        which: float(np.mean([rows[m][which].zero_frac for m in rows]))
        for which in ("dense", "spatial", "temporal")
    }
    avg_low = {
        which: float(np.mean([rows[m][which].low_or_zero_frac for m in rows]))
        for which in ("dense", "spatial", "temporal")
    }
    lines.append(
        f"AVG zero%: act {100 * avg['dense']:.1f}, spatial {100 * avg['spatial']:.1f}, "
        f"temporal {100 * avg['temporal']:.1f}"
    )
    lines.append(
        f"AVG <=4bit%: act {100 * avg_low['dense']:.1f}, "
        f"spatial {100 * avg_low['spatial']:.1f}, "
        f"temporal {100 * avg_low['temporal']:.1f}"
    )
    lines.append("paper: temporal 44.5% zero / 96.0% <=4bit; act 18.4%/57.7%")
    record_result("fig05_bitwidth", lines)
    print("\n".join(lines))

    # Ordering claims of Fig. 5.
    for name, stats in rows.items():
        assert stats["temporal"].zero_frac > stats["dense"].zero_frac, name
        assert stats["temporal"].zero_frac > stats["spatial"].zero_frac, name
        assert (
            stats["temporal"].low_or_zero_frac > stats["dense"].low_or_zero_frac
        ), name
    # Magnitude claims (relaxed vs paper; random weights).
    assert avg["temporal"] > 0.2
    assert avg_low["temporal"] > 0.6
    assert avg["temporal"] - avg["dense"] > 0.1  # paper: +26.12%
    assert avg["temporal"] - avg["spatial"] > 0.05  # paper: +18.04%
