"""Shared session fixtures for the figure/table reproduction benchmarks.

Each of the paper's experiments consumes the same seven instrumented
generation runs (one per Table I benchmark), so the engine results are
produced once and cached.  Production goes through
:class:`repro.runtime.EngineRunner`: the first session builds the engines
(optionally across ``REPRO_BENCH_JOBS`` worker processes) and persists every
``EngineResult`` / ``SimilarityReport`` in the content-addressed on-disk
cache; later sessions are thin cache lookups that skip engine
reconstruction entirely.  Individual benchmark files lower the cached rich
traces under the relevant policies and run the hardware models - that
analysis step is what ``pytest-benchmark`` times.

Environment knobs:

``REPRO_BENCH_JOBS``
    Worker processes for cold-cache engine construction (default 1).
``REPRO_CACHE_DIR``
    Cache location (default ``~/.cache/ditto-repro``).
``REPRO_BENCH_NO_CACHE``
    Set to any non-empty value to force rebuilding from scratch.

Every benchmark also appends its headline numbers to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can be regenerated
from a plain run.
"""

import os
from pathlib import Path

import pytest

from repro.lint import runtime as lint_runtime
from repro.runtime import EngineRunner
from repro.workloads import SUITE

RESULTS_DIR = Path(__file__).parent / "results"

BENCHMARKS = list(SUITE)


@pytest.fixture(scope="session", autouse=True)
def _numeric_sanitizer():
    """Install the runtime numeric sanitizer when REPRO_SANITIZE=1.

    Covers in-process engine builds; REPRO_BENCH_JOBS worker processes run
    unwrapped (they re-import repro fresh), which is fine - the CI sanitize
    leg runs single-process.
    """
    if not lint_runtime.enabled():
        yield
        return
    with lint_runtime.sanitized():
        yield


@pytest.fixture(scope="session")
def engine_runner():
    return EngineRunner(
        jobs=int(os.environ.get("REPRO_BENCH_JOBS") or "1"),
        cache=not os.environ.get("REPRO_BENCH_NO_CACHE"),
        cache_dir=os.environ.get("REPRO_CACHE_DIR"),
    )


@pytest.fixture(scope="session")
def engine_results(engine_runner):
    """One instrumented quantized run per Table I benchmark (cache-backed)."""
    return engine_runner.run_suite(BENCHMARKS, seed=0)


@pytest.fixture(scope="session")
def similarity_reports(engine_runner):
    """FP32 activation-similarity reports (Figs. 3-4) per benchmark.

    Similarity analysis only needs a window of adjacent steps; the runner
    caps runs at ``SIMILARITY_MAX_STEPS`` and caches each report.
    """
    return engine_runner.similarity_suite(BENCHMARKS, seed=1)


def write_result(experiment: str, lines) -> None:
    """Persist a benchmark's headline table for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")


@pytest.fixture(scope="session")
def record_result():
    return write_result
