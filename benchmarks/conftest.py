"""Shared session fixtures for the figure/table reproduction benchmarks.

Each of the paper's experiments consumes the same seven instrumented
generation runs (one per Table I benchmark), so the engine results are
produced once per pytest session and cached here.  Individual benchmark
files lower the cached rich traces under the relevant policies and run the
hardware models - that analysis step is what ``pytest-benchmark`` times.

Every benchmark also appends its headline numbers to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can be regenerated
from a plain run.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import DittoEngine, similarity_report
from repro.diffusion import DiffusionSchedule, GenerationPipeline, make_sampler
from repro.workloads import SUITE

RESULTS_DIR = Path(__file__).parent / "results"

BENCHMARKS = list(SUITE)


@pytest.fixture(scope="session")
def engine_results():
    """One instrumented quantized run per Table I benchmark."""
    results = {}
    for name, spec in SUITE.items():
        engine = DittoEngine.from_benchmark(spec)
        results[name] = engine.run(seed=0)
    return results


@pytest.fixture(scope="session")
def similarity_reports():
    """FP32 activation-similarity reports (Figs. 3-4) per benchmark."""
    reports = {}
    for name, spec in SUITE.items():
        model = spec.build_model()
        schedule = DiffusionSchedule(1000)
        # Similarity analysis only needs a window of adjacent steps.
        steps = min(spec.num_steps, 16)
        sampler = make_sampler(spec.sampler, schedule, steps)
        pipeline = GenerationPipeline(
            model, sampler, spec.sample_shape, spec.build_conditioning()
        )
        rng = np.random.default_rng(1)
        reports[name] = similarity_report(
            name, model, lambda: pipeline.generate(1, rng)
        )
    return reports


def write_result(experiment: str, lines) -> None:
    """Persist a benchmark's headline table for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")


@pytest.fixture(scope="session")
def record_result():
    return write_result
