"""Fig. 3 - temporal vs spatial cosine similarity of activations.

Paper: temporal cosine similarity between adjacent time steps averages 0.983
(every model > 0.947), while spatial similarity inside activations averages
only 0.31.  We reproduce the *gap* and the floor on temporal similarity; the
absolute spatial value is weight-dependent (random weights decorrelate
activations more than trained ones; see EXPERIMENTS.md).
"""

import numpy as np


def test_fig03_temporal_vs_spatial_similarity(
    benchmark, similarity_reports, record_result
):
    def analyze():
        rows = {}
        for name, report in similarity_reports.items():
            rows[name] = (report.avg_temporal, report.avg_spatial)
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [f"{'model':6s} {'temporal':>9s} {'spatial':>8s}"]
    for name, (temporal, spatial) in rows.items():
        lines.append(f"{name:6s} {temporal:9.3f} {spatial:8.3f}")
    temporal_avg = float(np.mean([t for t, _ in rows.values()]))
    spatial_avg = float(np.mean([s for _, s in rows.values()]))
    lines.append(f"{'AVG':6s} {temporal_avg:9.3f} {spatial_avg:8.3f}")
    lines.append("paper: temporal avg 0.983 (min 0.947), spatial avg 0.31")
    record_result("fig03_similarity", lines)
    print("\n".join(lines))

    # Shape assertions (paper Fig. 3b).
    for name, (temporal, spatial) in rows.items():
        assert temporal > 0.85, f"{name} temporal similarity too low"
        assert temporal > spatial, f"{name}: temporal must exceed spatial"
    assert temporal_avg > 0.88
    assert temporal_avg - spatial_avg > 0.3


def test_fig03a_example_layers_high_similarity(benchmark, similarity_reports):
    """Fig. 3a spot-checks named layers (conv-in / decoder skip) in SDM."""

    def analyze():
        report = similarity_reports["SDM"]
        conv_in = report.temporal.get("conv_in", [])
        up_layers = {
            k: v for k, v in report.temporal.items() if k.startswith("up.")
        }
        return conv_in, up_layers

    conv_in, up_layers = benchmark.pedantic(analyze, rounds=1, iterations=1)
    assert conv_in, "conv_in not captured"
    assert np.mean(conv_in) > 0.9
    assert up_layers
    assert np.mean([np.mean(v) for v in up_layers.values()]) > 0.85
