"""Table II - generation quality of FP32 vs Ditto-processed models.

Paper: the Ditto algorithm (8-bit quantization + temporal difference
processing) preserves FID / IS / CLIP-score across all seven benchmarks
(e.g. DDPM 4.143 -> 4.406 FID; SDM CLIP-score 0.310 -> 0.309).

The reproduction's metrics are proxies over a frozen feature extractor
(DESIGN.md): we check the same *property* - the Ditto pipeline's metric
stays close to its own FP32 pipeline's metric, and sample-for-sample the
two pipelines produce nearly identical images (difference processing is
bit-exact vs the dense quantized model, so the only gap is 8-bit
quantization itself).
"""

import numpy as np
import pytest

from repro.core import DittoEngine
from repro.diffusion import DiffusionSchedule, GenerationPipeline, make_sampler
from repro.metrics import (
    FeatureExtractor,
    clip_score,
    fid_score,
    inception_score,
    snr_db,
)
from repro.workloads import SUITE, sample_prompts, synthetic_images

BATCH = 6
STEPS = 12
MODELS = ("DDPM", "IMG", "SDM", "DiT")


def generate_pair(name):
    """FP32 samples and Ditto (quantized, temporal) samples, same seed."""
    spec = SUITE[name]
    steps = min(STEPS, spec.num_steps)
    fp_model = spec.build_model()
    schedule = DiffusionSchedule(1000)
    sampler = make_sampler(spec.sampler, schedule, steps)
    pipeline = GenerationPipeline(
        fp_model, sampler, spec.sample_shape, spec.build_conditioning()
    )
    fp_samples = pipeline.generate(BATCH, np.random.default_rng(42))
    engine = DittoEngine.from_benchmark(spec, num_steps=steps)
    ditto_samples = engine.run(batch_size=BATCH, seed=42).samples
    return fp_samples, ditto_samples


@pytest.fixture(scope="module")
def sample_pairs():
    return {name: generate_pair(name) for name in MODELS}


def test_table2_fid_is_preserved(benchmark, sample_pairs, record_result):
    def analyze():
        rows = {}
        for name, (fp, ditto) in sample_pairs.items():
            channels = fp.shape[1]
            extractor = FeatureExtractor(image_channels=channels)
            spec = SUITE[name]
            if spec.latent:
                reference = synthetic_images(spec.dataset, 24, seed=9)
                # Latent models are scored in latent space: encode refs.
                from repro.models import build_vae

                reference = build_vae().encode(reference[:, :, :32, :32])
                reference = reference[:, :, : fp.shape[2], : fp.shape[3]]
            else:
                reference = synthetic_images(spec.dataset, 24, seed=9)
            rows[name] = {
                "fid_fp": fid_score(fp, reference, extractor),
                "fid_ditto": fid_score(ditto, reference, extractor),
                "is_fp": inception_score(fp, extractor),
                "is_ditto": inception_score(ditto, extractor),
                "snr_db": snr_db(fp, ditto),
            }
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [
        f"{'model':6s} {'FID fp32':>9s} {'FID ditto':>10s} "
        f"{'IS fp32':>8s} {'IS ditto':>9s} {'SNR dB':>7s}"
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:6s} {row['fid_fp']:9.3f} {row['fid_ditto']:10.3f} "
            f"{row['is_fp']:8.3f} {row['is_ditto']:9.3f} {row['snr_db']:7.1f}"
        )
    lines.append("paper: Ditto preserves FID/IS on every benchmark (Table II)")
    record_result("table2_accuracy", lines)
    print("\n".join(lines))

    for name, row in rows.items():
        # FID of the Ditto pipeline stays in the FP32 pipeline's regime.
        scale = max(row["fid_fp"], 1.0)
        assert abs(row["fid_ditto"] - row["fid_fp"]) / scale < 0.6, name
        # Inception Score moves by less than 25% relative.
        assert abs(row["is_ditto"] - row["is_fp"]) / row["is_fp"] < 0.25, name
        # Sample-for-sample the trajectories stay close (8-bit quant only).
        assert row["snr_db"] > 8.0, name


def test_table2_sdm_clip_score(benchmark, sample_pairs, record_result):
    """SDM's CLIP-score proxy is preserved (paper: 0.310 -> 0.309)."""
    from repro.models import build_vae

    def analyze():
        fp, ditto = sample_pairs["SDM"]
        vae = build_vae()
        prompts = sample_prompts(BATCH)
        fp_images = vae.decode(fp)
        ditto_images = vae.decode(ditto)
        extractor = FeatureExtractor(image_channels=3)
        return (
            clip_score(fp_images, prompts, extractor),
            clip_score(ditto_images, prompts, extractor),
        )

    cs_fp, cs_ditto = benchmark.pedantic(analyze, rounds=1, iterations=1)
    lines = [
        f"CLIP-score proxy: fp32 {cs_fp:.4f}, ditto {cs_ditto:.4f}",
        "paper: 0.310 -> 0.309",
    ]
    record_result("table2_clip_score", lines)
    print("\n".join(lines))
    assert abs(cs_ditto - cs_fp) < 0.1
