"""Fig. 8 - memory-access blow-up of naive temporal difference processing.

Paper: running every linear layer with temporal differences (no Defo, no
bypass) incurs 2.75x the memory accesses of original-activation processing,
because each layer must re-read its previous input and previous output.
This is the problem Defo exists to solve (Figs. 14/16 measure the rescue).
"""

import numpy as np

from repro.core import lower_dense, lower_temporal


def test_fig08_naive_temporal_memory_overhead(
    benchmark, engine_results, record_result
):
    def analyze():
        rows = {}
        for name, result in engine_results.items():
            trace = result.rich_trace
            dense_bytes = lower_dense(trace).total_bytes()
            naive_bytes = lower_temporal(trace, bypass_style="none").total_bytes()
            rows[name] = naive_bytes / dense_bytes
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [f"{'model':6s} {'naive temporal / act':>21s}"]
    for name, ratio in rows.items():
        lines.append(f"{name:6s} {ratio:21.2f}")
    avg = float(np.mean(list(rows.values())))
    lines.append(f"{'AVG':6s} {avg:21.2f}")
    lines.append("paper: 2.75x on average")
    record_result("fig08_memory", lines)
    print("\n".join(lines))

    for name, ratio in rows.items():
        assert ratio > 1.2, f"{name}: temporal must cost extra memory traffic"
    assert 1.5 < avg < 4.5  # paper: 2.75x


def test_fig08_dependency_bypass_reduces_traffic(benchmark, engine_results):
    """Defo's static bypass (difference reuse across chained linear layers)
    must never increase traffic and should help at least somewhere."""

    def analyze():
        deltas = []
        for result in engine_results.values():
            trace = result.rich_trace
            naive = lower_temporal(trace, bypass_style="none").total_bytes()
            chained = lower_temporal(trace, bypass_style="chained").total_bytes()
            deltas.append((naive, chained))
        return deltas

    deltas = benchmark.pedantic(analyze, rounds=1, iterations=1)
    assert all(chained <= naive for naive, chained in deltas)
    assert any(chained < naive for naive, chained in deltas)
