"""Fig. 13 - speedup and energy of all hardware designs, normalized to ITC.

Paper headline numbers: Ditto averages 1.5x speedup over ITC (the fastest
difference-processing design); Ditto+ adds ~6%; Diffy trails Ditto by ~24%;
Cambricon-D is 1.56x slower than Ditto and burns more energy than ITC on
several benchmarks; every dedicated accelerator beats the GPU, whose
relative energy is 22x-131x.  Ditto/Ditto+ save 17.74% / 22.92% energy vs
ITC, with the Encoding Unit / VPU / Defo Unit contributing only ~2.2% /
~2.9% / ~0.0001% of Ditto's energy.
"""

import numpy as np

from repro.hw import FIG13_DESIGNS, evaluate_designs

DESIGN_ORDER = ["GPU", "ITC", "Diffy", "Cambricon-D", "Ditto", "Ditto+"]


def test_fig13_speedup_and_energy(benchmark, engine_results, record_result):
    def analyze():
        table = {}
        for name, result in engine_results.items():
            table[name] = evaluate_designs(FIG13_DESIGNS, result.rich_trace)
        return table

    table = benchmark.pedantic(analyze, rounds=1, iterations=1)

    speedups = {d: [] for d in DESIGN_ORDER}
    energies = {d: [] for d in DESIGN_ORDER}
    lines = [
        f"{'model':6s} " + " ".join(f"{d[:7]:>13s}" for d in DESIGN_ORDER),
        f"{'':6s} " + " ".join(f"{'spd/energy':>13s}" for _ in DESIGN_ORDER),
    ]
    for model, results in table.items():
        itc = results["ITC"].report
        cells = []
        for design in DESIGN_ORDER:
            report = results[design].report
            speedup = itc.total_cycles / report.total_cycles
            energy = report.total_energy_pj / itc.total_energy_pj
            speedups[design].append(speedup)
            energies[design].append(energy)
            cells.append(f"{speedup:5.2f}/{energy:7.2f}")
        lines.append(f"{model:6s} " + " ".join(cells))
    avg_speed = {d: float(np.mean(v)) for d, v in speedups.items()}
    avg_energy = {d: float(np.mean(v)) for d, v in energies.items()}
    lines.append(
        "AVG    "
        + " ".join(f"{avg_speed[d]:5.2f}/{avg_energy[d]:7.2f}" for d in DESIGN_ORDER)
    )
    lines.append(
        "paper: Ditto 1.5x / 0.82x vs ITC; Diffy -24% vs Ditto; "
        "Cam-D 1.56x slower than Ditto; GPU energy 22-131x"
    )

    # Energy breakdown of the Ditto units (paper: EU 2.23%, VPU 2.9%).
    ditto_any = table["DDPM"]["Ditto"].report
    breakdown = ditto_any.energy_breakdown_pj()
    total = sum(breakdown.values())
    lines.append(
        "Ditto energy shares (DDPM): "
        + ", ".join(f"{k} {100 * v / total:.2f}%" for k, v in sorted(breakdown.items()))
    )
    record_result("fig13_speedup_energy", lines)
    print("\n".join(lines))

    # --- shape assertions --------------------------------------------------
    for model, results in table.items():
        itc_cycles = results["ITC"].report.total_cycles
        # Every dedicated accelerator beats the GPU.
        for design in ("ITC", "Diffy", "Ditto", "Ditto+"):
            assert (
                results[design].report.total_cycles
                < results["GPU"].report.total_cycles
            ), (model, design)
        # Ditto is the fastest difference-processing design.
        assert results["Ditto"].report.total_cycles < results["Cambricon-D"].report.total_cycles
        assert results["Ditto"].report.total_cycles <= results["Diffy"].report.total_cycles
        # Ditto beats the dense baseline.
        assert results["Ditto"].report.total_cycles < itc_cycles, model

    assert avg_speed["Ditto"] > 1.2  # paper: 1.5x
    assert avg_speed["Ditto+"] > 1.2
    assert avg_energy["Ditto"] < 0.95  # paper: 0.8226 (17.74% saving)
    assert avg_energy["Ditto+"] <= avg_energy["Ditto"] + 0.02
    assert avg_energy["Cambricon-D"] > avg_energy["Ditto"]
    assert avg_energy["GPU"] > 20.0  # paper: 22.9x - 130.7x

    # Unit overheads stay small (paper Section VI-B).
    assert breakdown["encode"] / total < 0.1
    assert breakdown["vpu"] / total < 0.1
    assert breakdown["defo"] / total < 0.001
