"""Fig. 19 - Defo under dynamically drifting temporal similarity.

Paper: on "Ditto-like" benchmarks whose value distribution is adjusted so
the execution-type threshold moves across time steps, Defo's one-shot
decision loses ~7% accuracy, yet Ditto and Dynamic-Ditto still reach
98.03% / 98.18% of the ideal design, with Dynamic-Ditto slightly ahead
because it can abandon difference processing mid-run.
"""

import numpy as np

from repro.core import run_defo, run_ideal
from repro.core.synthetic import apply_similarity_drift
from repro.hw import build_accelerator


def test_fig19_dynamic_ditto(benchmark, engine_results, record_result):
    hardware = build_accelerator("Ditto")

    def analyze():
        rows = {}
        for name, result in engine_results.items():
            drifted = apply_similarity_drift(result.rich_trace, period=6, strength=0.95)
            static = run_defo(drifted, hardware)
            dynamic = run_defo(drifted, hardware, dynamic=True)
            ideal_cycles = sum(
                hardware.layer_cycles(s).cycles for s in run_ideal(drifted, hardware)
            )
            static_cycles = sum(
                hardware.layer_cycles(s).cycles for s in static.trace
            )
            dynamic_cycles = sum(
                hardware.layer_cycles(s).cycles for s in dynamic.trace
            )
            # Accuracy on the *original* trace for the drop comparison.
            base_acc = run_defo(result.rich_trace, hardware).accuracy
            rows[name] = {
                "static_of_ideal": ideal_cycles / static_cycles,
                "dynamic_of_ideal": ideal_cycles / dynamic_cycles,
                "drift_acc": static.accuracy,
                "base_acc": base_acc,
            }
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [
        f"{'model':6s} {'Ditto/Ideal':>11s} {'Dyn/Ideal':>10s} "
        f"{'acc(drift)':>10s} {'acc(base)':>10s}"
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:6s} {100 * row['static_of_ideal']:10.1f}% "
            f"{100 * row['dynamic_of_ideal']:9.1f}% "
            f"{100 * row['drift_acc']:9.1f}% {100 * row['base_acc']:9.1f}%"
        )
    avg_static = float(np.mean([r["static_of_ideal"] for r in rows.values()]))
    avg_dynamic = float(np.mean([r["dynamic_of_ideal"] for r in rows.values()]))
    acc_drop = float(
        np.mean([r["base_acc"] - r["drift_acc"] for r in rows.values()])
    )
    lines.append(
        f"AVG: static {100 * avg_static:.1f}% of ideal (paper 98.03%), "
        f"dynamic {100 * avg_dynamic:.1f}% (paper 98.18%), "
        f"accuracy drop {100 * acc_drop:.1f}pp (paper ~7pp)"
    )
    record_result("fig19_dynamic", lines)
    print("\n".join(lines))

    # Drift must cost decision accuracy (that is the scenario's point).
    assert acc_drop > 0.0
    # Both designs stay close to the oracle.
    assert avg_static > 0.75
    assert avg_dynamic > 0.75
    # Dynamic-Ditto adapts at least as well as static Ditto on average.
    assert avg_dynamic >= avg_static - 0.01


def test_fig19_drift_helper_properties(benchmark, engine_results):
    """The drift transform only moves mass into the high bucket."""
    result = engine_results["DDPM"]

    def analyze():
        drifted = apply_similarity_drift(result.rich_trace, period=4, strength=1.0)
        pairs = [
            (a.stats_temporal, b.stats_temporal)
            for a, b in zip(result.rich_trace, drifted)
            if a.stats_temporal is not None
        ]
        return pairs

    pairs = benchmark.pedantic(analyze, rounds=1, iterations=1)
    assert pairs
    for original, drifted in pairs:
        assert drifted.total == original.total
        assert drifted.high >= original.high
        assert drifted.zero <= original.zero
