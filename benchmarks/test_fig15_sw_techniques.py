"""Fig. 15 - cross-applying software techniques between Cambricon-D and Ditto.

Paper: the software techniques are complementary - Cambricon-D gains 1.16x
from adopting the Ditto algorithm's techniques (attention differences +
Defo), and Ditto/Ditto+ gain 1.068x/1.055x from adopting Cambricon-D's
sign-mask dataflow; yet every Cambricon-D variant stays behind the Ditto
hardware because outlier-PE designs execute original activations on too few
PEs.
"""

import numpy as np

from repro.hw import FIG15_DESIGNS, evaluate_designs

ORDER = [d.name for d in FIG15_DESIGNS]


def test_fig15_software_technique_exchange(benchmark, engine_results, record_result):
    def analyze():
        table = {}
        for name, result in engine_results.items():
            results = evaluate_designs(FIG15_DESIGNS, result.rich_trace)
            base = results["Org. Cam-D"].report.total_cycles
            table[name] = {
                d: base / results[d].report.total_cycles for d in ORDER
            }
        return table

    table = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [f"{'design':28s} " + " ".join(f"{m:>6s}" for m in table)]
    for design in ORDER:
        lines.append(
            f"{design:28s} "
            + " ".join(f"{table[m][design]:6.2f}" for m in table)
        )
    avg = {d: float(np.mean([table[m][d] for m in table])) for d in ORDER}
    for design in ORDER:
        lines.append(f"AVG {design:24s} {avg[design]:6.2f}")
    lines.append(
        "paper: Cam-D +Ditto techniques 1.16x; Ditto & sign-mask 1.068x; "
        "all Cam-D variants < Ditto"
    )
    record_result("fig15_sw_techniques", lines)
    print("\n".join(lines))

    # Cambricon-D benefits from the Ditto software stack (paper: 1.16x
    # combined).  Defo itself can give a little of that back: layers it
    # reverts run dense on the outlier PEs only - the paper's own point that
    # "memory overhead reduction [is] offset by compute overhead".
    assert avg["Cam-D & Attn. Diff."] >= avg["Org. Cam-D"] * 0.99
    assert avg["Cam-D & Attn. Diff. & Defo"] >= avg["Cam-D & Attn. Diff."] * 0.85
    assert avg["Cam-D & Attn. Diff. & Defo"] > 1.0
    # Sign-mask helps (or at least never hurts) the Ditto hardware.
    assert avg["Ditto & Sign-mask"] >= avg["Ditto"] * 0.999
    assert avg["Ditto+ & Sign-mask"] >= avg["Ditto+"] * 0.999
    # The central claim: every Cambricon-D variant stays behind Ditto.
    for model, row in table.items():
        best_camd = max(
            row[d] for d in ORDER if d.startswith(("Org.", "Cam-D"))
        )
        assert row["Ditto"] > best_camd, model
