"""Fig. 17 - Defo execution-type changes and decision accuracy.

Paper: Defo flips 14.4% of layers back to original-activation execution on
average (Defo+ flips 38.29% to spatial processing, topping out at 81.6% on
Latte, whose video frames make spatial differences attractive); fixing the
decision at the second time step still matches the per-step optimum with
92% (Defo) / 88.11% (Defo+) accuracy.
"""

import numpy as np

from repro.core import run_defo
from repro.hw import build_accelerator


def test_fig17_defo_changes_and_accuracy(benchmark, engine_results, record_result):
    hardware = build_accelerator("Ditto")

    def analyze():
        rows = {}
        for name, result in engine_results.items():
            defo = run_defo(result.rich_trace, hardware)
            defo_plus = run_defo(result.rich_trace, hardware, plus=True)
            rows[name] = {
                "defo_changed": defo.changed_fraction,
                "defo_acc": defo.accuracy,
                "plus_changed": defo_plus.changed_fraction,
                "plus_acc": defo_plus.accuracy,
            }
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [
        f"{'model':6s} {'Defo chg%':>9s} {'Defo acc%':>9s} "
        f"{'Defo+ chg%':>10s} {'Defo+ acc%':>10s}"
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:6s} {100 * row['defo_changed']:9.1f} {100 * row['defo_acc']:9.1f} "
            f"{100 * row['plus_changed']:10.1f} {100 * row['plus_acc']:10.1f}"
        )
    avg_changed = float(np.mean([r["defo_changed"] for r in rows.values()]))
    avg_acc = float(np.mean([r["defo_acc"] for r in rows.values()]))
    avg_plus_acc = float(np.mean([r["plus_acc"] for r in rows.values()]))
    lines.append(
        f"AVG: Defo changed {100 * avg_changed:.1f}% (paper 14.4%), "
        f"accuracy {100 * avg_acc:.1f}% (paper 92%), "
        f"Defo+ accuracy {100 * avg_plus_acc:.1f}% (paper 88.11%)"
    )
    record_result("fig17_defo", lines)
    print("\n".join(lines))

    # Decision accuracy stays high despite deciding at the second step.
    assert avg_acc > 0.85
    assert avg_plus_acc > 0.7
    # Defo changes some but not all layers on every benchmark.
    for name, row in rows.items():
        assert 0.0 < row["defo_changed"] < 1.0, name
    # Defo+ flips at least as many layers (its fallback is cheaper).
    for name, row in rows.items():
        assert row["plus_changed"] >= row["defo_changed"] - 1e-9, name


def test_fig17_latte_prefers_spatial(benchmark, engine_results):
    """Video frames are spatially redundant: Latte flips the most layers
    under Defo+ (paper: 81.6%)."""
    hardware = build_accelerator("Ditto")

    def analyze():
        fracs = {}
        for name, result in engine_results.items():
            fracs[name] = run_defo(
                result.rich_trace, hardware, plus=True
            ).changed_fraction
        return fracs

    fracs = benchmark.pedantic(analyze, rounds=1, iterations=1)
    # Deviation vs paper (see EXPERIMENTS.md): our random-weight conv models
    # flip more layers than the paper's trained ones for memory reasons, so
    # Latte is not the global maximum; within the transformer family the
    # paper's ordering (video > image) holds, driven by Latte having the
    # highest spatial similarity of all benchmarks (Fig. 3 reproduction).
    assert fracs["Latte"] >= fracs["DiT"]
