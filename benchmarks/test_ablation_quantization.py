"""Ablation: quantization design choices called out in DESIGN.md.

Two studies beyond the paper's figures:

1. **Shared-scale requirement** - Ditto's exactness rests on adjacent steps
   sharing a scale.  Timestep-clustered quantization (the paper's
   Q-Diffusion/TDQ synergy, Related Work) trades tighter per-window scales
   against one dense re-run per cluster boundary; we sweep the cluster
   count and measure both sides of the trade.
2. **Dependency-bypass styles** - naive vs sign-mask (Cambricon-D) vs
   chained (Defo) vs both, measured as total traffic of the all-temporal
   schedule (the lever behind Figs. 8/14/15).
"""

import numpy as np

from repro.core import DittoEngine, lower_temporal
from repro.core.bitwidth import BitWidthStats
from repro.workloads import get_benchmark

STEPS = 16


def _temporal_stats(result):
    total = BitWidthStats.empty()
    for step in result.rich_trace:
        if step.stats_temporal is not None:
            total = total.merge(step.stats_temporal)
    return total


def _dense_fallbacks(result):
    return sum(1 for s in result.rich_trace if s.stats_temporal is None)


def test_ablation_step_cluster_count(benchmark, record_result):
    spec = get_benchmark("DDPM")

    def analyze():
        rows = {}
        for clusters in (1, 2, 4):
            if clusters == 1:
                engine = DittoEngine.from_benchmark(spec, num_steps=STEPS)
            else:
                engine = DittoEngine.from_model(
                    spec.build_model(),
                    sampler_name=spec.sampler,
                    num_steps=STEPS,
                    sample_shape=spec.sample_shape,
                    conditioning=spec.build_conditioning(),
                    step_clusters=clusters,
                    benchmark=spec.name,
                )
            result = engine.run(seed=0)
            stats = _temporal_stats(result)
            rows[clusters] = {
                "zero": stats.zero_frac,
                "fallbacks": _dense_fallbacks(result),
                "samples": result.samples,
            }
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [f"{'clusters':>8s} {'zero%':>7s} {'dense fallback records':>23s}"]
    for clusters, row in rows.items():
        lines.append(
            f"{clusters:8d} {100 * row['zero']:7.1f} {row['fallbacks']:23d}"
        )
    lines.append(
        "trade-off: tighter per-cluster scales vs one dense step per boundary"
    )
    record_result("ablation_step_clusters", lines)
    print("\n".join(lines))

    # More clusters -> strictly more dense boundary re-runs.
    fallbacks = [rows[c]["fallbacks"] for c in (1, 2, 4)]
    assert fallbacks[0] < fallbacks[1] < fallbacks[2]
    # Outputs of all variants stay in the same regime (same FP32 target).
    base = rows[1]["samples"]
    for clusters in (2, 4):
        drift = np.abs(rows[clusters]["samples"] - base).mean()
        assert drift < np.abs(base).mean()


def test_ablation_bypass_styles(benchmark, engine_results, record_result):
    def analyze():
        rows = {}
        for name, result in engine_results.items():
            trace = result.rich_trace
            rows[name] = {
                style: lower_temporal(trace, bypass_style=style).total_bytes()
                for style in ("none", "sign_mask", "chained", "both")
            }
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = [f"{'model':6s} {'none':>12s} {'sign_mask':>12s} {'chained':>12s} {'both':>12s}"]
    for name, row in rows.items():
        base = row["none"]
        lines.append(
            f"{name:6s} "
            + " ".join(f"{row[s] / base:12.3f}" for s in ("none", "sign_mask", "chained", "both"))
        )
    lines.append("bytes of the all-temporal schedule, normalized to no bypass")
    record_result("ablation_bypass_styles", lines)
    print("\n".join(lines))

    for name, row in rows.items():
        # Bypasses only remove traffic, and 'both' is the union.
        assert row["sign_mask"] <= row["none"], name
        assert row["chained"] <= row["none"], name
        assert row["both"] <= min(row["sign_mask"], row["chained"]), name
    # Sign-mask is nearly useless for the transformers: their token path is
    # LayerNorm/GeLU/Softmax; only the tiny adaLN conditioning MLPs sit
    # behind SiLU (paper's core argument for Defo's generality).
    for name in ("DiT", "Latte"):
        saving = 1.0 - rows[name]["sign_mask"] / rows[name]["none"]
        assert saving < 0.005, (name, saving)
    # ... but it meaningfully helps the SiLU/GroupNorm-rich UNets.
    for name in ("DDPM", "BED", "CHUR"):
        saving = 1.0 - rows[name]["sign_mask"] / rows[name]["none"]
        assert saving > 0.02, (name, saving)
