#!/usr/bin/env python
"""Quickstart: run the Ditto algorithm on a diffusion benchmark.

This walks the whole public API surface in ~40 lines of actual code:

1. pick a Table I benchmark,
2. build a quantized, calibrated engine and record an instrumented run,
3. inspect the temporal-difference statistics the Ditto paper builds on,
4. evaluate the Ditto accelerator against the ITC baseline with Defo.

Run:  python examples/quickstart.py [BENCHMARK]   (default: DDPM)
"""

import sys

from repro.core import DittoEngine, lower_temporal, relative_bops
from repro.core.bitwidth import BitWidthStats
from repro.hw import FIG13_DESIGNS, evaluate_designs
from repro.workloads import get_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "DDPM"
    spec = get_benchmark(name)
    print(f"benchmark: {spec.name} - {spec.description}")
    print(f"sampler:   {spec.sampler} x {spec.num_steps} steps "
          f"(paper: {spec.paper_steps})")

    # One instrumented generation run records everything Ditto needs.
    engine = DittoEngine.from_benchmark(spec)
    result = engine.run(seed=0)
    print(result.summary())

    # -- the paper's observation: temporal differences are tiny -------------
    stats = BitWidthStats.empty()
    for step in result.rich_trace:
        if step.stats_temporal is not None:
            stats = stats.merge(step.stats_temporal)
    print(
        f"temporal differences: {100 * stats.zero_frac:.1f}% zero, "
        f"{100 * stats.low_or_zero_frac:.1f}% fit in 4 bits"
    )
    bops = relative_bops(lower_temporal(result.rich_trace))
    print(f"relative BOPs with temporal processing: {bops:.3f} (dense = 1.0)")

    # -- hardware: Ditto vs the baselines ------------------------------------
    designs = evaluate_designs(FIG13_DESIGNS, result.rich_trace)
    itc = designs["ITC"].report
    print(f"\n{'design':13s} {'speedup':>8s} {'rel. energy':>12s}")
    for design_name, design_result in designs.items():
        report = design_result.report
        print(
            f"{design_name:13s} {itc.total_cycles / report.total_cycles:8.2f} "
            f"{report.total_energy_pj / itc.total_energy_pj:12.2f}"
        )
    defo = designs["Ditto"].defo
    print(f"\n{defo.summary()}")


if __name__ == "__main__":
    main()
