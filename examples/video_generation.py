#!/usr/bin/env python
"""Video generation with Latte under Ditto - the Defo+ showcase.

Latte denoises short clips with factorized spatio-temporal attention.
Because adjacent *frames* are redundant, Latte is the paper's one benchmark
where spatial difference processing shines: Fig. 17 reports Defo+ switching
81.6% of its layers to spatial differences.  This example reproduces that
behaviour on the scaled model, generates a clip, and reports per-frame
coherence.

Run:  python examples/video_generation.py
"""

import numpy as np

from repro.core import DittoEngine
from repro.hw import DesignPoint, evaluate_design, evaluate_designs, FIG13_DESIGNS
from repro.workloads import get_benchmark


def main() -> None:
    spec = get_benchmark("Latte")
    print(f"benchmark: {spec.name} ({spec.description})")
    engine = DittoEngine.from_benchmark(spec)
    result = engine.run(seed=0)
    print(result.summary())

    clip = result.samples[0]  # (frames, C, H, W)
    print(f"generated clip: {clip.shape[0]} frames of {clip.shape[1:]}")
    for f in range(clip.shape[0] - 1):
        a, b = clip[f].ravel(), clip[f + 1].ravel()
        cos = float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))
        print(f"  frame {f} -> {f + 1}: cosine similarity {cos:.3f}")

    # -- Defo vs Defo+ on video -------------------------------------------
    results = evaluate_designs(FIG13_DESIGNS, result.rich_trace)
    ditto = results["Ditto"]
    ditto_plus = results["Ditto+"]
    itc = results["ITC"].report
    print(f"\nDitto : speedup {itc.total_cycles / ditto.report.total_cycles:.2f}, "
          f"{ditto.defo.summary()}")
    print(f"Ditto+: speedup {itc.total_cycles / ditto_plus.report.total_cycles:.2f}, "
          f"{ditto_plus.defo.summary()}")
    print(
        "Defo+ flips more layers on video than on any image benchmark - "
        "frames give spatial differences real leverage (paper Fig. 17: 81.6%)."
    )

    # Dynamic-Ditto also runs out of the box:
    dyn = evaluate_design(
        DesignPoint("Dynamic-Ditto", "Ditto", "dynamic"), result.rich_trace
    )
    print(f"Dynamic-Ditto: speedup "
          f"{itc.total_cycles / dyn.report.total_cycles:.2f} ({dyn.defo.summary()})")


if __name__ == "__main__":
    main()
