#!/usr/bin/env python
"""Text-to-image generation with a Ditto-accelerated SDM-style pipeline.

The paper's motivating workload (Fig. 3a uses the prompt "a white vase with
yellow tulips against a grey background"): encode a prompt with the toy text
encoder, denoise a latent with the PLMS sampler under the Ditto algorithm,
decode it with the toy VAE, and compare the FP32 and Ditto outputs with the
CLIP-score proxy and pixel-level SNR - an end-to-end Table II measurement
for one prompt.

Pass a guidance scale as the second argument to enable classifier-free
guidance (the denoiser then runs conditional + unconditional branches as one
stacked batch, which keeps Ditto's temporal state valid - see
tests/test_cfg.py for the bit-exactness proof).

Run:  python examples/text_to_image.py ["your prompt"] [guidance_scale]
"""

import sys

import numpy as np

from repro.core import DittoEngine
from repro.diffusion import DiffusionSchedule, GenerationPipeline, make_sampler
from repro.metrics import FeatureExtractor, clip_score, snr_db
from repro.models import build_conditional_unet, build_text_encoder, build_vae
from repro.workloads import get_benchmark

DEFAULT_PROMPT = "a white vase with yellow tulips against a grey background"


def main() -> None:
    prompt = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_PROMPT
    guidance = float(sys.argv[2]) if len(sys.argv) > 2 else None
    print(f"prompt: {prompt!r}" + (f", guidance {guidance}" if guidance else ""))

    encoder = build_text_encoder()
    context = encoder.encode([prompt])
    uncond = {"context": encoder.encode([""])} if guidance else None
    spec = get_benchmark("SDM")

    # -- FP32 reference trajectory ------------------------------------------
    fp_model = build_conditional_unet(seed=13)
    sampler = make_sampler("plms", DiffusionSchedule(1000), spec.num_steps)
    pipeline = GenerationPipeline(
        fp_model, sampler, spec.sample_shape, {"context": context},
        guidance_scale=guidance, uncond_conditioning=uncond,
    )
    fp_latents = pipeline.generate(1, np.random.default_rng(0))

    # -- Ditto trajectory (quantized + temporal difference processing) -------
    engine = DittoEngine.from_model(
        build_conditional_unet(seed=13),
        sampler_name="plms",
        num_steps=spec.num_steps,
        sample_shape=spec.sample_shape,
        conditioning={"context": context},
        benchmark="SDM",
    )
    if guidance:
        engine.pipeline.guidance_scale = guidance
        engine.pipeline.uncond_conditioning = uncond
    result = engine.run(seed=0)
    print(result.summary())

    # -- decode and score ------------------------------------------------------
    vae = build_vae()
    fp_image = vae.decode(fp_latents)
    ditto_image = vae.decode(result.samples)
    extractor = FeatureExtractor(image_channels=3)
    cs_fp = clip_score(fp_image, [prompt], extractor)
    cs_ditto = clip_score(ditto_image, [prompt], extractor)
    print(f"decoded image shape: {ditto_image.shape}")
    print(f"CLIP-score proxy: fp32 {cs_fp:.4f} vs ditto {cs_ditto:.4f}")
    print(f"pixel SNR of Ditto vs FP32: {snr_db(fp_image, ditto_image):.1f} dB")
    print(
        "latent drift per step is tiny - that is the temporal similarity "
        "Ditto exploits (paper Fig. 3/4)."
    )


if __name__ == "__main__":
    main()
