#!/usr/bin/env python
"""Accelerator design-space study on one benchmark (paper Figs. 13-18).

Runs one instrumented generation, then sweeps:

* the Fig. 13 hardware comparison (GPU / ITC / Diffy / Cambricon-D / Ditto /
  Ditto+) with energy breakdowns,
* the Fig. 16 mechanism ablation (DS / DB / DB&DS / +attention / Defo),
* the Fig. 18 oracle comparison (Defo vs Ideal-Ditto),
* the Fig. 17 view of which layers Defo flips and why.

Run:  python examples/accelerator_study.py [BENCHMARK]   (default: SDM)
"""

import sys

from repro.core import DittoEngine, ExecutionMode
from repro.hw import (
    FIG13_DESIGNS,
    FIG16_DESIGNS,
    FIG18_DESIGNS,
    evaluate_designs,
)
from repro.workloads import get_benchmark


def sweep(title, designs, rich_trace):
    results = evaluate_designs(designs, rich_trace)
    itc = results["ITC"].report
    print(f"\n== {title}")
    print(f"{'design':14s} {'speedup':>8s} {'energy':>7s} {'mem':>6s} {'stall%':>7s}")
    for name, result in results.items():
        report = result.report
        print(
            f"{name:14s} {itc.total_cycles / report.total_cycles:8.2f} "
            f"{report.total_energy_pj / itc.total_energy_pj:7.2f} "
            f"{report.total_bytes / itc.total_bytes:6.2f} "
            f"{100 * report.stall_cycles / max(report.total_cycles, 1):7.1f}"
        )
    return results


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "SDM"
    spec = get_benchmark(name)
    print(f"benchmark: {spec.name} ({spec.description})")
    engine = DittoEngine.from_benchmark(spec)
    result = engine.run(seed=0)
    print(result.summary())

    fig13 = sweep("Fig.13: hardware comparison", FIG13_DESIGNS, result.rich_trace)
    sweep("Fig.16: mechanism ablation", FIG16_DESIGNS, result.rich_trace)
    sweep("Fig.18: Defo vs oracle", FIG18_DESIGNS, result.rich_trace)

    # -- Fig. 17: what did Defo decide, and why? ---------------------------
    defo = fig13["Ditto"].defo
    print(f"\n== Fig.17: {defo.summary()}")
    flipped = sorted(
        defo.changed_layers,
        key=lambda layer: defo.cycle_diff.get(layer, 0.0),
        reverse=True,
    )
    print("layers reverted to original-activation execution (top 10 by cost):")
    for layer in flipped[:10]:
        act = defo.cycle_act.get(layer, float("nan"))
        diff = defo.cycle_diff.get(layer, float("nan"))
        print(f"  {layer:42s} act {act:10.1f} cyc vs diff {diff:10.1f} cyc")
    kept = [
        layer
        for layer, mode in defo.decisions.items()
        if mode is ExecutionMode.TEMPORAL
    ]
    print(f"{len(kept)} layers keep temporal difference processing")


if __name__ == "__main__":
    main()
