"""Legacy setup shim: the sandbox has no `wheel` package, so editable
installs must go through `setup.py develop` (pip --no-use-pep517)."""

from setuptools import setup

setup()
