"""Unit tests for the similarity-drift transform (Fig. 19 support)."""

import pytest

from repro.core.bitwidth import BitWidthStats
from repro.core.synthetic import apply_similarity_drift, degrade_stats
from repro.core.trace import RichTrace

from helpers import make_rich


def test_degrade_zero_severity_is_identity():
    stats = BitWidthStats(total=100, zero=40, low=50, high=10)
    assert degrade_stats(stats, 0.0) == stats


def test_degrade_full_severity_all_high():
    stats = BitWidthStats(total=100, zero=40, low=50, high=10)
    collapsed = degrade_stats(stats, 1.0)
    assert collapsed.zero == 0
    assert collapsed.low == 0
    assert collapsed.high == 100


def test_degrade_preserves_total():
    stats = BitWidthStats(total=97, zero=13, low=61, high=23)
    for severity in (0.1, 0.37, 0.5, 0.9):
        out = degrade_stats(stats, severity)
        assert out.total == 97
        assert out.zero + out.low + out.high == 97


def test_degrade_rejects_bad_severity():
    stats = BitWidthStats(total=10, zero=5, low=3, high=2)
    with pytest.raises(ValueError):
        degrade_stats(stats, -0.1)
    with pytest.raises(ValueError):
        degrade_stats(stats, 1.5)


def _trace(num_steps=8):
    trace = RichTrace()
    for s in range(num_steps):
        trace.append(make_rich(step_index=s, temporal=s > 0))
    return trace


def test_drift_periodic_shape():
    trace = _trace(9)
    drifted = apply_similarity_drift(trace, period=4, strength=1.0)
    highs = [
        r.stats_temporal.high
        for r in drifted
        if r.stats_temporal is not None
    ]
    # sin^2 drift: zero at period boundaries (steps 4, 8), max mid-period.
    by_step = {r.step_index: r for r in drifted if r.stats_temporal is not None}
    assert by_step[4].stats_temporal.high == by_step[8].stats_temporal.high
    assert by_step[2].stats_temporal.high > by_step[4].stats_temporal.high


def test_drift_leaves_first_step_alone():
    trace = _trace(4)
    drifted = apply_similarity_drift(trace, period=2)
    assert drifted.steps[0].stats_temporal is None


def test_drift_does_not_mutate_original():
    trace = _trace(4)
    before = [r.stats_temporal for r in trace]
    apply_similarity_drift(trace, period=2, strength=1.0)
    after = [r.stats_temporal for r in trace]
    assert before == after


def test_drift_custom_phase_fn():
    trace = _trace(5)
    drifted = apply_similarity_drift(trace, phase_fn=lambda step: 1.0)
    for rich in drifted:
        if rich.stats_temporal is not None:
            assert rich.stats_temporal.zero == 0


def test_drift_rejects_bad_period():
    with pytest.raises(ValueError):
        apply_similarity_drift(_trace(3), period=1)
