"""Tests for the analysis helpers and the command-line interface."""

import pytest

from repro.analysis import BenchmarkStudy, format_table, run_study
from repro.cli import build_parser, main
from repro.hw import FIG13_DESIGNS, evaluate_designs


def test_format_table_alignment():
    table = format_table(["a", "bb"], [["x", 1.0], ["yy", 2.5]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines)
    assert "2.500" in lines[-1]


def test_format_table_empty_rows():
    table = format_table(["col"], [])
    assert "col" in table


@pytest.fixture(scope="module")
def study(tiny_engine_result):
    designs = evaluate_designs(FIG13_DESIGNS, tiny_engine_result.rich_trace)
    return BenchmarkStudy(
        benchmark="tiny",
        engine_result=tiny_engine_result,
        design_results=designs,
    )


def test_study_temporal_stats(study):
    stats = study.temporal_stats()
    assert stats.total > 0
    assert 0.0 < stats.low_or_zero_frac <= 1.0


def test_study_tables_render(study):
    bops = study.bops_table()
    assert "temporal diff" in bops
    hardware = study.hardware_table()
    assert "Ditto" in hardware and "speedup" in hardware


def test_study_summary_mentions_defo(study):
    assert "Defo" in study.summary()


def test_run_study_end_to_end():
    study = run_study("DDPM", num_steps=4, seed=1)
    assert study.benchmark == "DDPM"
    assert "Ditto" in study.design_results
    assert study.engine_result.rich_trace.num_steps() == 4


def test_run_study_with_clusters():
    study = run_study("DDPM", num_steps=6, step_clusters=2)
    dense_fallbacks = sum(
        1 for s in study.engine_result.rich_trace if s.stats_temporal is None
    )
    # One extra dense step at the cluster boundary.
    assert dense_fallbacks > 59  # more than the first step alone


# -- CLI ---------------------------------------------------------------------

@pytest.fixture(autouse=True)
def isolated_cache_dir(tmp_path, monkeypatch):
    """Keep cache-on-by-default CLI invocations away from the user's cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "SDXL"])


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("DDPM", "SDM", "Latte"):
        assert name in out


def test_cli_run(capsys):
    assert main(["run", "DDPM", "--steps", "4"]) == 0
    out = capsys.readouterr().out
    assert "relative BOPs" in out
    assert "Ditto" in out


def test_cli_similarity(capsys):
    assert main(["similarity", "DDPM", "--steps", "4"]) == 0
    out = capsys.readouterr().out
    assert "temporal sim" in out
    assert "layer" in out and "temporal" in out
