"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.diffusion import DiffusionSchedule

from helpers import make_tiny_engine


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def schedule():
    return DiffusionSchedule(num_train_steps=100)


@pytest.fixture(scope="session")
def tiny_engine_result():
    """One cached instrumented run shared by trace/defo/hw tests."""
    engine = make_tiny_engine(num_steps=5)
    return engine.run(seed=3)
