"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core import DittoEngine
from repro.diffusion import DiffusionSchedule


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def schedule():
    return DiffusionSchedule(num_train_steps=100)


def make_tiny_engine(
    sampler: str = "ddim",
    num_steps: int = 4,
    block_type: str = "attention",
    calibrate: bool = False,
    seed: int = 5,
):
    """A fast DittoEngine over a miniature UNet (for integration tests)."""
    from repro.models import UNet

    model = UNet(
        in_channels=2,
        base_channels=8,
        channel_mults=(1, 2),
        num_res_blocks=1,
        attention_levels=(1,),
        block_type=block_type,
        rng=np.random.default_rng(seed),
    )
    return DittoEngine.from_model(
        model,
        sampler_name=sampler,
        num_steps=num_steps,
        sample_shape=(2, 8, 8),
        num_train_steps=100,
        calibrate=calibrate,
        benchmark="tiny",
    )


@pytest.fixture(scope="session")
def tiny_engine_result():
    """One cached instrumented run shared by trace/defo/hw tests."""
    engine = make_tiny_engine(num_steps=5)
    return engine.run(seed=3)
