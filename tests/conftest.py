"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.diffusion import DiffusionSchedule
from repro.lint import runtime as lint_runtime

from helpers import make_tiny_engine


@pytest.fixture(scope="session", autouse=True)
def _numeric_sanitizer():
    """Install the runtime numeric sanitizer when REPRO_SANITIZE=1.

    One CI matrix leg runs the whole suite this way: every kernel call is
    checked for float64 leaks inside float32 calibration regions and for
    non-C-contiguous cols entering the integer GEMMs.
    """
    if not lint_runtime.enabled():
        yield
        return
    with lint_runtime.sanitized():
        yield


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def schedule():
    return DiffusionSchedule(num_train_steps=100)


@pytest.fixture(scope="session")
def tiny_engine_result():
    """One cached instrumented run shared by trace/defo/hw tests."""
    engine = make_tiny_engine(num_steps=5)
    return engine.run(seed=3)
