"""Property-based tests for Defo invariants over random traces (hypothesis).

The key lattice: for any trace and any hardware model,

    cycles(ideal) <= cycles(Defo) and cycles(ideal) <= cycles(naive temporal)

because the ideal oracle picks the per-layer-step argmin over the exact
choices the other policies have.  These properties must hold for *any*
operand statistics, not just the ones real models produce.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExecutionMode, RichTrace, run_defo, run_ideal
from repro.core.bitwidth import BitWidthStats
from repro.core.trace import RichLayerStep
from repro.hw import build_accelerator


def random_trace(seed: int, num_layers: int, num_steps: int) -> RichTrace:
    rng = np.random.default_rng(seed)
    trace = RichTrace()
    for step in range(num_steps):
        for layer in range(num_layers):
            total = 100
            zero, low = sorted(rng.integers(0, total + 1, size=2))
            stats = BitWidthStats(
                total=total, zero=zero, low=low - zero, high=total - low
            )
            d_zero, d_low = sorted(rng.integers(0, total + 1, size=2))
            dense_stats = BitWidthStats(
                total=total, zero=d_zero, low=d_low - d_zero, high=total - d_low
            )
            trace.append(
                RichLayerStep(
                    step_index=step,
                    layer_name=f"L{layer}",
                    kind="conv" if layer % 2 else "fc",
                    macs=int(rng.integers(1_000, 1_000_000)),
                    in_elems=int(rng.integers(10, 50_000)),
                    out_elems=int(rng.integers(10, 50_000)),
                    weight_elems=int(rng.integers(10, 10_000)),
                    data_elems=total,
                    stats_dense=dense_stats,
                    stats_spatial=stats,
                    stats_temporal=stats if step > 0 else None,
                    sub_ops_temporal=int(rng.integers(1, 3)),
                    vpu_elems=int(rng.integers(0, 1_000)),
                )
            )
    return trace


def total_cycles(hardware, trace) -> float:
    return sum(hardware.layer_cycles(step).cycles for step in trace)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_layers=st.integers(1, 6),
    num_steps=st.integers(2, 8),
    hw_name=st.sampled_from(["Ditto", "Cambricon-D"]),
)
def test_ideal_lower_bounds_defo_and_naive(seed, num_layers, num_steps, hw_name):
    trace = random_trace(seed, num_layers, num_steps)
    hardware = build_accelerator(hw_name)
    ideal = total_cycles(hardware, run_ideal(trace, hardware))
    defo = total_cycles(hardware, run_defo(trace, hardware).trace)
    naive = total_cycles(
        hardware, trace.lower(lambda r: ExecutionMode.TEMPORAL)
    )
    assert ideal <= defo + 1e-6
    assert ideal <= naive + 1e-6


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), plus=st.booleans())
def test_defo_decisions_cover_all_layers(seed, plus):
    trace = random_trace(seed, 5, 4)
    hardware = build_accelerator("Ditto")
    report = run_defo(trace, hardware, plus=plus)
    assert set(report.decisions) == {f"L{i}" for i in range(5)}
    assert 0.0 <= report.accuracy <= 1.0
    assert 0.0 <= report.changed_fraction <= 1.0
    # The lowered trace covers every record exactly once.
    assert len(report.trace) == len(trace)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_dynamic_never_switches_into_temporal(seed):
    """Dynamic-Ditto may only abandon difference processing, never adopt it."""
    trace = random_trace(seed, 4, 7)
    hardware = build_accelerator("Ditto")
    report = run_defo(trace, hardware, dynamic=True)
    steps = sorted({r.step_index for r in trace})[2:]
    for layer in report.decisions:
        was_temporal = report.decisions[layer] is ExecutionMode.TEMPORAL
        for step in steps:
            mode = report.assigned.get((layer, step))
            if mode is None:
                continue
            if mode is ExecutionMode.TEMPORAL:
                assert was_temporal  # can't re-enter after leaving
            else:
                was_temporal = False


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_defo_trace_mode_consistency(seed):
    """Step 0 runs the fallback, step 1 temporal, later steps the decision."""
    trace = random_trace(seed, 3, 5)
    hardware = build_accelerator("Ditto")
    report = run_defo(trace, hardware)
    for step_record in report.trace:
        if step_record.step_index == 0:
            assert step_record.mode is ExecutionMode.DENSE
        elif step_record.step_index == 1:
            assert step_record.mode is ExecutionMode.TEMPORAL
        else:
            expected = report.decisions[step_record.layer_name]
            assert step_record.mode is expected
