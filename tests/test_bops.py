"""Unit tests for BOPs accounting (Fig. 6)."""

import pytest

from repro.core import ExecutionMode, per_step_relative_bops, relative_bops
from repro.core.bitwidth import BitWidthStats
from repro.core.bops import bops_per_mac, dense_bops_reference, layer_bops
from repro.core.trace import Trace

from helpers import make_rich
from repro.core.trace import derive_layer_step


def make_trace(mode, steps=2, temporal=True, sub_ops=1):
    trace = Trace()
    for s in range(steps):
        rich = make_rich(step_index=s, temporal=temporal and s > 0, sub_ops=sub_ops)
        trace.append(derive_layer_step(rich, mode))
    return trace


def test_bops_per_mac_with_zero_skipping():
    stats = BitWidthStats(total=100, zero=50, low=30, high=20)
    # 0.3 * 32 + 0.2 * 64 = 22.4
    assert bops_per_mac(stats) == pytest.approx(22.4)


def test_bops_per_mac_without_zero_skipping():
    stats = BitWidthStats(total=100, zero=50, low=30, high=20)
    # zeros cost a 4-bit op: + 0.5 * 32
    assert bops_per_mac(stats, zero_skipping=False) == pytest.approx(38.4)


def test_dense_layer_costs_full_bops():
    """Dense execution is the Fig. 6a baseline: exactly macs * 8 * 8 BOPs."""
    trace = make_trace(ExecutionMode.DENSE)
    step = trace.steps[0]
    assert layer_bops(step) == pytest.approx(step.macs * 64)


def test_dense_relative_bops_is_unity():
    trace = make_trace(ExecutionMode.DENSE, steps=3)
    assert relative_bops(trace) == pytest.approx(1.0)


def test_relative_bops_temporal_below_dense():
    temporal = make_trace(ExecutionMode.TEMPORAL, steps=4)
    dense = make_trace(ExecutionMode.DENSE, steps=4)
    assert relative_bops(temporal) < relative_bops(dense) <= 1.0


def test_relative_bops_bounds():
    trace = make_trace(ExecutionMode.TEMPORAL, steps=3)
    value = relative_bops(trace)
    assert 0.0 < value < 1.0


def test_sub_ops_double_attention_cost():
    single = make_trace(ExecutionMode.TEMPORAL, steps=2, sub_ops=1)
    double = make_trace(ExecutionMode.TEMPORAL, steps=2, sub_ops=2)
    # Step 0 is dense in both; step 1 doubles.
    s1 = layer_bops(single.steps[1])
    d1 = layer_bops(double.steps[1])
    assert d1 == pytest.approx(2 * s1)


def test_dense_reference_ignores_sub_ops():
    trace = make_trace(ExecutionMode.TEMPORAL, steps=2, sub_ops=2)
    assert dense_bops_reference(trace) == 2 * 10_000 * 64


def test_per_step_relative_bops_keys():
    trace = make_trace(ExecutionMode.TEMPORAL, steps=5)
    per_step = per_step_relative_bops(trace)
    assert set(per_step) == {0, 1, 2, 3, 4}
    # First step is dense -> highest relative BOPs.
    assert per_step[0] == max(per_step.values())


def test_empty_trace_relative_bops():
    assert relative_bops(Trace()) == 0.0
