"""Integration tests for the DittoEngine."""

import numpy as np
import pytest

from repro.core import DittoEngine
from repro.workloads import get_benchmark

from helpers import make_tiny_engine


def test_engine_result_summary(tiny_engine_result):
    text = tiny_engine_result.summary()
    assert "tiny" in text
    assert "5 denoiser calls" in text


def test_engine_records_every_step(tiny_engine_result):
    assert tiny_engine_result.rich_trace.num_steps() == 5
    assert tiny_engine_result.num_model_calls == 5


def test_engine_first_step_dense(tiny_engine_result):
    by_step = tiny_engine_result.rich_trace.by_step()
    assert all(s.stats_temporal is None for s in by_step[0])
    later = [s for s in by_step[2] if s.kind in ("conv", "fc")]
    assert later and all(s.stats_temporal is not None for s in later)


def test_engine_samples_shape(tiny_engine_result):
    assert tiny_engine_result.samples.shape == (1, 2, 8, 8)
    assert np.isfinite(tiny_engine_result.samples).all()


def test_engine_static_info_populated(tiny_engine_result):
    assert tiny_engine_result.static_info
    assert any(
        info.producer_kind == "silu"
        for info in tiny_engine_result.static_info.values()
    )


def test_engine_deterministic():
    a = make_tiny_engine(num_steps=3).run(seed=1)
    b = make_tiny_engine(num_steps=3).run(seed=1)
    np.testing.assert_array_equal(a.samples, b.samples)
    assert len(a.rich_trace) == len(b.rich_trace)


def test_engine_plms_extra_step():
    engine = make_tiny_engine(sampler="plms", num_steps=3)
    result = engine.run()
    # PLMS warmup adds one call: 4 recorded "steps" for 3 sampler steps.
    assert result.num_model_calls == 4
    assert result.rich_trace.num_steps() == 4


def test_engine_from_benchmark_spec():
    spec = get_benchmark("DDPM")
    engine = DittoEngine.from_benchmark(spec, num_steps=3, calibrate=False)
    result = engine.run()
    assert result.benchmark == "DDPM"
    assert result.samples.shape == (1, 3, 16, 16)


def test_engine_calibrated_scales_cover_trajectory():
    engine = make_tiny_engine(num_steps=3, calibrate=True)
    from repro.quant import iter_qlayers

    scales = [q.input_quant.scale for _, q in iter_qlayers(engine.qmodel)
              if q.input_quant.scale is not None]
    assert scales and all(s > 0 for s in scales)


def test_unknown_benchmark_rejected():
    with pytest.raises(ValueError):
        get_benchmark("SDXL")


def test_from_benchmark_with_guidance_doubles_stacked_batch():
    """SDM exposes an empty-prompt uncond branch; guidance stacks the batch."""
    spec = get_benchmark("SDM")
    engine = DittoEngine.from_benchmark(
        spec, num_steps=2, calibrate=False, guidance_scale=4.0
    )
    assert engine.pipeline.guidance_scale == 4.0
    result = engine.run(seed=1)
    assert result.samples.shape == (1,) + spec.sample_shape
    assert np.isfinite(result.samples).all()
    plain = DittoEngine.from_benchmark(spec, num_steps=2, calibrate=False).run(seed=1)
    assert not np.allclose(result.samples, plain.samples)


def test_from_benchmark_guidance_needs_uncond_branch():
    spec = get_benchmark("DDPM")  # unconditional: no uncond builder
    with pytest.raises(ValueError, match="build_uncond_conditioning"):
        DittoEngine.from_benchmark(spec, num_steps=2, guidance_scale=2.0)
