"""Golden-equivalence suite for the single-pass/columnar instrumentation.

Pins the three invariants the PR-2 perf rebuild must not move:

* the columnar ``RichTrace``/``Trace`` stores round-trip exactly to their
  dataclass views (append -> view -> append), including through pickle;
* the fused ``classify_many`` equals merging per-array ``classify`` calls,
  and the vectorized ``lower_modes``/accelerator columns equal the scalar
  ``derive_layer_step``/``layer_cycles`` path record by record;
* an instrumented engine run is *bit-exact* with the naive pre-refactor
  formulation: plain (uninstrumented) dense generation produces the same
  samples, and the recorded per-step ``BitWidthStats`` match a reference
  implementation that unfolds twice, pads with ``np.pad`` and concatenates
  per-batch row differences.
"""

import pickle

import numpy as np
import pytest

from repro.core import ExecutionMode, RichTrace, classify, derive_layer_step
from repro.core.bitwidth import BitWidthStats, classify_many
from repro.core.trace import MODE_ID, Trace, TraceRecorder
from repro.hw import build_accelerator
from repro.nn import backends, functional as F
from repro.quant.qlayers import QConv2d

from helpers import make_rich, make_tiny_engine

# Every bit-exactness invariant below must hold under every backend that can
# run here (the CI backend matrix additionally routes the whole suite through
# each one via REPRO_BACKEND).
BACKENDS = list(backends.available_backends())


def build_mixed_trace(num_steps=4):
    trace = RichTrace()
    for step in range(num_steps):
        for name, kwargs in [
            ("conv_a", {}),
            ("attn.qk", {"sub_ops": 2}),
            ("chained", {"chained": True}),
            ("silu_fed", {"producer": "silu"}),
        ]:
            trace.append(
                make_rich(step_index=step, name=name, temporal=step > 0, **kwargs)
            )
    return trace


# -- columnar store <-> dataclass views --------------------------------------

def test_rich_trace_view_round_trip():
    trace = build_mixed_trace()
    rebuilt = RichTrace(steps=list(trace))
    assert list(rebuilt) == list(trace)
    assert rebuilt.layer_names() == trace.layer_names()
    assert rebuilt.total_macs() == trace.total_macs()
    # negative indexing and slices behave like a list of records
    assert trace[-1] == trace.steps[-1]
    assert trace[1:3] == trace.steps[1:3]


def test_rich_trace_pickle_round_trip():
    trace = build_mixed_trace()
    clone = pickle.loads(pickle.dumps(trace))
    assert list(clone) == list(trace)
    # sealed clones must accept further appends
    clone.append(make_rich(step_index=9, name="late"))
    assert len(clone) == len(trace) + 1
    assert clone[-1].layer_name == "late"


def test_lowered_trace_pickle_and_views():
    lowered = build_mixed_trace().lower(lambda r: ExecutionMode.TEMPORAL)
    clone = pickle.loads(pickle.dumps(lowered))
    assert isinstance(clone, Trace)
    assert list(clone) == list(lowered)
    assert clone.total_bytes() == lowered.total_bytes()


def test_recorder_appends_through_columnar_store():
    rec = TraceRecorder()
    rec.set_step(3)
    step = make_rich(step_index=3, name="x")
    with rec:
        rec.record(step)
    assert rec.trace[0] == step


# -- fused classification ----------------------------------------------------

def test_classify_many_equals_merged_classify():
    rng = np.random.default_rng(7)
    arrays = [
        rng.integers(-260, 260, size=size).astype(dtype)
        for size, dtype in [(1, np.int64), (97, np.float64), (1000, np.float32)]
    ]
    merged = BitWidthStats.empty()
    for arr in arrays:
        merged = merged.merge(classify(arr))
    assert classify_many(*arrays) == merged


def test_classify_f32_matches_f64():
    rng = np.random.default_rng(11)
    values = rng.integers(-510, 511, size=4096).astype(np.float64)
    assert classify(values.astype(np.float32)) == classify(values)


# -- vectorized lowering == scalar lowering ----------------------------------

@pytest.mark.parametrize("bypass", ["chained", "sign_mask", "both", "none"])
@pytest.mark.parametrize(
    "mode", [ExecutionMode.DENSE, ExecutionMode.TEMPORAL, ExecutionMode.SPATIAL]
)
def test_lower_modes_matches_derive_layer_step(mode, bypass):
    trace = build_mixed_trace()
    lowered = trace.lower_modes(
        np.full(len(trace), MODE_ID[mode], dtype=np.int64), bypass
    )
    for rich, got in zip(trace, lowered):
        assert got == derive_layer_step(rich, mode, bypass)


@pytest.mark.parametrize("hardware", ["ITC", "Diffy", "Ditto", "Cambricon-D", "GPU"])
def test_vectorized_accelerator_matches_scalar(hardware):
    accel = build_accelerator(hardware)
    trace = build_mixed_trace().lower(
        lambda r: ExecutionMode.TEMPORAL if r.has_temporal else ExecutionMode.SPATIAL
    )
    report = accel.run(trace)
    for step, layer in zip(trace, report.layers):
        ref = accel.layer_cycles(step)
        assert layer.layer_name == ref.layer_name
        assert layer.cycles == ref.cycles
        assert layer.compute_cycles == ref.compute_cycles
        assert layer.memory_cycles == ref.memory_cycles
        assert layer.encode_cycles == ref.encode_cycles
        assert layer.vpu_cycles == ref.vpu_cycles
        assert layer.bytes_moved == ref.bytes_moved
        assert set(layer.energy_pj) == set(ref.energy_pj)
        for component, value in ref.energy_pj.items():
            assert layer.energy_pj[component] == pytest.approx(value, rel=1e-12)
    assert report.total_cycles == pytest.approx(
        sum(accel.layer_cycles(s).cycles for s in trace), rel=1e-12
    )


# -- bit-exactness vs the pre-refactor formulation ---------------------------

def _reference_conv_record(layer: QConv2d, q_in, diff):
    """The pre-refactor stats math: second unfold, np.pad, concatenate."""

    def naive_im2col(x, kernel, stride, padding):
        if padding:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                mode="constant",
            )
        n, c, h, w = x.shape
        out_h = (h - kernel) // stride + 1
        out_w = (w - kernel) // stride + 1
        rows = np.empty((n, out_h * out_w, c * kernel * kernel))
        for b in range(n):
            idx = 0
            for i in range(out_h):
                for j in range(out_w):
                    patch = x[
                        b,
                        :,
                        i * stride : i * stride + kernel,
                        j * stride : j * stride + kernel,
                    ]
                    rows[b, idx] = patch.ravel()
                    idx += 1
        return rows

    def spatial_diff_rows(mat):
        d = mat.copy()
        if mat.shape[0] > 1:
            d[1:] -= mat[:-1]
        return d

    cols = naive_im2col(
        np.asarray(q_in, dtype=np.float64),
        layer.kernel_size,
        layer.stride,
        layer.padding,
    )
    spatial = np.concatenate([spatial_diff_rows(batch) for batch in cols])
    return (
        classify(np.asarray(q_in, dtype=np.float64)),
        classify(spatial),
        None if diff is None else classify(np.asarray(diff, dtype=np.float64)),
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("padding,stride", [(1, 1), (0, 1), (1, 2)])
def test_conv_stats_match_naive_reference(padding, stride, backend):
    rng = np.random.default_rng(5)
    weight = rng.standard_normal((6, 3, 3, 3))
    layer = QConv2d(weight, None, stride=stride, padding=padding)
    layer.layer_name = "conv"
    x0 = rng.standard_normal((2, 3, 8, 8))
    x1 = x0 + 0.05 * rng.standard_normal((2, 3, 8, 8))
    for mode, x in [
        (ExecutionMode.DENSE, x0),
        (ExecutionMode.TEMPORAL, x1),
    ]:
        layer.mode = mode
        with TraceRecorder() as rec, backends.use_backend(backend):
            layer(x)
        record = rec.trace[0]
        q_in = layer._prev_q_in
        diff = None
        if record.stats_temporal is not None:
            # reconstruct the integer difference the layer classified
            q_prev = layer.input_quant.quantize(x0)
            diff = np.asarray(q_in, dtype=np.float64) - q_prev
        dense, spatial, temporal = _reference_conv_record(layer, q_in, diff)
        assert record.stats_dense == dense
        assert record.stats_spatial == spatial
        assert record.stats_temporal == temporal


@pytest.mark.parametrize("backend", BACKENDS)
def test_f32_and_f64_conv_paths_identical(backend):
    """The exactness license holds per backend: f32 == f64 bit-for-bit."""
    rng = np.random.default_rng(9)
    weight = rng.standard_normal((4, 2, 3, 3))
    fast = QConv2d(weight, None, padding=1)
    slow = QConv2d(weight, None, padding=1)
    assert fast._use_f32
    slow._use_f32 = False
    slow._q_weight_f32 = None
    slow._cols_dtype = np.dtype(np.float64)
    for step in range(3):
        x = rng.standard_normal((1, 2, 6, 6))
        for layer in (fast, slow):
            layer.mode = (
                ExecutionMode.DENSE if step == 0 else ExecutionMode.TEMPORAL
            )
            layer.input_quant.scale = 0.05
        with TraceRecorder() as rec_fast, backends.use_backend(backend):
            out_fast = fast(x)
        with TraceRecorder() as rec_slow, backends.use_backend(backend):
            out_slow = slow(x)
        np.testing.assert_array_equal(out_fast, out_slow)
        assert rec_fast.trace[0] == rec_slow.trace[0]


def test_f32_gate_covers_difference_range():
    """The exactness gate must bound *difference* operands (2^bits - 1 wide).

    A 64-channel 3x3 conv (dot_len 576) passes the naive dense-operand bound
    (576 * 2^14 < 2^24) but a temporal-difference dot product can reach
    576 * 255 * 128 > 2^24, where float32 accumulation rounds.  Such layers
    must stay on the float64 path.
    """
    rng = np.random.default_rng(2)
    wide = QConv2d(rng.standard_normal((4, 64, 3, 3)), None, padding=1)
    assert not wide._use_f32  # dot_len 576 > 2^24 / 2^15
    narrow = QConv2d(rng.standard_normal((4, 32, 3, 3)), None, padding=1)
    assert narrow._use_f32  # dot_len 288 <= 511
    # The reviewer's counterexample, end to end: saturated differences whose
    # exact dot product is odd and above 2^24 must survive bit-exactly.
    from repro.quant.qlayers import QLinear

    lin = QLinear(np.ones((1, 1000)), None)
    assert not lin._use_f32
    lin.input_quant.scale = 1.0
    lin.mode = ExecutionMode.DENSE
    lin(np.full((1, 1000), -128.0))
    lin.mode = ExecutionMode.TEMPORAL
    out = lin(np.concatenate([[[127.0]], np.full((1, 999), 127.0)], axis=1))
    # weights quantize to 127 with scale 1/127; the dequantized output is
    # exactly 1000 * 127 * 127 / 127 - any f32 rounding in the temporal
    # reconstruction (int dot 16_129_000 > 2^24) would show here.
    assert float(out.ravel()[0]) == 1000 * 127


def test_pad_workspace_not_shared_across_padding_widths():
    """Two paddings with coinciding padded shapes must not share borders."""
    rng = np.random.default_rng(4)
    a = rng.standard_normal((1, 2, 32, 32))  # padded shape (1,2,34,34), p=1
    b = rng.standard_normal((1, 2, 30, 30))  # padded shape (1,2,34,34), p=2
    F.im2col(a, 3, 1, 1)  # dirty the p=1 workspace interior
    cols, _ = F.im2col(b, 3, 1, 2)
    ref = np.pad(b, ((0, 0), (0, 0), (2, 2), (2, 2)), mode="constant")
    ref_cols, _ = F.im2col(ref, 3, 1, 0)
    np.testing.assert_array_equal(cols, ref_cols)


@pytest.mark.parametrize("backend", BACKENDS)
def test_instrumented_run_matches_plain_generation(backend):
    """Recording + single-pass sharing must not perturb the samples."""
    engine = make_tiny_engine(num_steps=4, backend=backend)
    assert engine.backend == backend
    assert engine.effective_backend == backend
    result = engine.run(seed=123)
    # Plain dense generation with no recorder and no temporal processing:
    # the Ditto algorithm is bit-exact, so samples must be identical.  The
    # plain run dispatches on the same backend as the engine - this pins
    # within-backend bit-exactness, the invariant every backend must keep.
    from repro.quant.qlayers import reset_model_state, set_model_mode

    reset_model_state(engine.qmodel)
    set_model_mode(engine.qmodel, ExecutionMode.DENSE)
    with backends.use_backend(backend):
        plain = engine.pipeline.generate(1, np.random.default_rng(123))
    np.testing.assert_array_equal(result.samples, plain)
