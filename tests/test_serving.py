"""Unit tests for the batched serving runtime (``repro serve``)."""

import json

import numpy as np
import pytest

from repro.nn import backends
from repro.runtime.serving import (
    ARRIVAL_PATTERNS,
    SCHEDULERS,
    Request,
    estimate_row_footprint,
    generate_requests,
    pool_budget_row_cap,
    simulate_serving,
    _drain_queue,
)

from helpers import make_tiny_spec


# -- request generation -----------------------------------------------------

def test_arrival_patterns_shapes():
    for pattern in ARRIVAL_PATTERNS:
        reqs = generate_requests(8, rate_rps=4.0, pattern=pattern, seed=1)
        assert len(reqs) == 8
        assert [r.req_id for r in reqs] == list(range(8))
        arrivals = [r.arrival_s for r in reqs]
        assert arrivals[0] == 0.0
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))


def test_uniform_arrivals_spacing():
    reqs = generate_requests(5, rate_rps=2.0, pattern="uniform")
    assert [r.arrival_s for r in reqs] == [0.0, 0.5, 1.0, 1.5, 2.0]


def test_burst_arrivals_all_at_zero():
    reqs = generate_requests(6, pattern="burst")
    assert all(r.arrival_s == 0.0 for r in reqs)


def test_poisson_arrivals_reproducible():
    a = generate_requests(10, 4.0, "poisson", seed=3)
    b = generate_requests(10, 4.0, "poisson", seed=3)
    assert [r.arrival_s for r in a] == [r.arrival_s for r in b]


def test_request_noise_independent_of_batching():
    req = Request(req_id=2, arrival_s=0.1, seed=(0, 2))
    n1 = req.draw_noise((2, 4, 4))
    n2 = req.draw_noise((2, 4, 4))
    assert n1.shape == (1, 2, 4, 4)
    np.testing.assert_array_equal(n1, n2)


def test_generate_requests_validation():
    with pytest.raises(ValueError):
        generate_requests(0)
    with pytest.raises(ValueError):
        generate_requests(4, pattern="bimodal")
    with pytest.raises(ValueError):
        generate_requests(4, rate_rps=0.0, pattern="poisson")


# -- micro-batching ---------------------------------------------------------

class _InstantEngine:
    """Stub engine: constant service time, records each launch's x_init."""

    class _Result:
        def __init__(self, samples):
            self.samples = samples

    def __init__(self):
        self.launches = []

    def run(self, batch_size=1, seed=0, x_init=None, record_trace=True, rngs=None):
        self.launches.append(np.array(x_init))
        return self._Result(np.array(x_init))


def _reqs(arrivals):
    return [
        Request(req_id=i, arrival_s=float(t), seed=(0, i))
        for i, t in enumerate(arrivals)
    ]


def _noises(n):
    return [np.full((1, 2), float(i)) for i in range(n)]


def test_burst_fills_batches_to_cap():
    reqs = _reqs([0.0] * 6)
    served, service = _drain_queue(
        _InstantEngine(), reqs, _noises(6), window_s=0.0, max_batch=4
    )
    assert [s.batch_fill for s in served] == [4, 4, 4, 4, 2, 2]
    assert len(service) == 2


def test_window_admits_near_arrivals():
    # Second request lands inside the 0.2 s window, third far outside.
    reqs = _reqs([0.0, 0.1, 5.0])
    served, service = _drain_queue(
        _InstantEngine(), reqs, _noises(3), window_s=0.2, max_batch=8
    )
    assert [s.batch_fill for s in served] == [2, 2, 1]


def test_window_zero_serves_immediately():
    reqs = _reqs([0.0, 0.3, 0.6])
    served, service = _drain_queue(
        _InstantEngine(), reqs, _noises(3), window_s=0.0, max_batch=8
    )
    # Service is near-instant, so nothing queues up behind the server.
    assert [s.batch_fill for s in served] == [1, 1, 1]
    assert all(s.latency_s >= 0.0 for s in served)


def test_batch_order_preserves_request_order():
    reqs = _reqs([0.0] * 4)
    engine = _InstantEngine()
    served, _ = _drain_queue(
        engine, reqs, _noises(4), window_s=0.0, max_batch=4
    )
    # The stacked x_init must follow request order: request i's noise is the
    # constant i, recorded by the stub engine at launch.
    np.testing.assert_array_equal(engine.launches[0][:, 0], [0.0, 1.0, 2.0, 3.0])
    assert [s.req_id for s in served] == [0, 1, 2, 3]


# -- end-to-end simulation --------------------------------------------------

@pytest.fixture(scope="module")
def tiny_report():
    return simulate_serving(
        make_tiny_spec("tinyServe", num_steps=3),
        batch_sizes=(1, 2),
        num_requests=4,
        rate_rps=50.0,
        pattern="uniform",
        window_s=0.05,
        seed=0,
        calibrate=False,
        verify_invariance=True,
    )


def test_simulate_serving_reports_all_batch_sizes(tiny_report):
    assert sorted(tiny_report.per_batch) == [1, 2]
    for size, report in tiny_report.per_batch.items():
        assert report.num_requests == 4
        assert report.throughput_rps > 0.0
        assert report.latency_p50_s <= report.latency_p99_s
        assert 1.0 <= report.mean_batch_fill <= size
        assert 0.0 <= report.temporal_relative_bops <= 1.0
        assert report.mac_savings_pct == pytest.approx(
            100.0 * (1.0 - report.temporal_relative_bops)
        )


def test_simulate_serving_verifies_invariance(tiny_report):
    # verify_invariance re-ran a micro-batch request-by-request bit-exactly.
    assert tiny_report.invariance_checked


@pytest.mark.parametrize("backend", list(backends.available_backends()))
def test_serving_verify_smoke_per_backend(backend):
    """--verify must hold under every backend, and the report must say which."""
    report = simulate_serving(
        make_tiny_spec("tinyServeBk", num_steps=2),
        batch_sizes=(2,),
        num_requests=3,
        rate_rps=50.0,
        pattern="burst",
        window_s=0.05,
        seed=0,
        calibrate=False,
        verify_invariance=True,
        backend=backend,
    )
    assert report.invariance_checked
    assert report.backend == backend
    assert report.backend_effective == backend
    assert report.backend_fallback_reason is None
    assert f"backend {backend}" in report.summary()
    assert report.to_json()["backend"] == backend


def test_serving_backend_override_conflicts_with_prebuilt_engine():
    from repro.core import DittoEngine

    spec = make_tiny_spec("tinyServeConflict", num_steps=2)
    engine = DittoEngine.from_benchmark(spec, calibrate=False, backend="reference")
    with pytest.raises(ValueError, match="conflicts with a prebuilt engine"):
        simulate_serving(
            spec,
            engine=engine,
            batch_sizes=(1,),
            num_requests=1,
            backend="blas-batched",
        )


def test_serving_report_renders_and_serializes(tiny_report):
    text = tiny_report.summary()
    assert "tinyServe" in text
    assert "req/s" in text
    payload = json.loads(json.dumps(tiny_report.to_json()))
    assert payload["num_requests"] == 4
    assert set(payload["per_batch"]) == {"1", "2"}
    assert payload["per_batch"]["2"]["batch_size"] == 2


def test_simulate_serving_validates_batch_sizes():
    with pytest.raises(ValueError):
        simulate_serving(make_tiny_spec(), batch_sizes=(0,), num_requests=2)


def test_verify_refuses_when_no_multi_request_batch_possible():
    # --verify must never silently verify nothing: with a max batch of 1
    # no multi-request batch can exist, so it fails loudly.
    with pytest.raises(ValueError, match="multi-request batch"):
        simulate_serving(
            make_tiny_spec("tinyV", num_steps=2),
            batch_sizes=(1,),
            num_requests=4,
            calibrate=False,
            verify_invariance=True,
        )


def test_mean_batch_fill_counts_batches_not_requests():
    reqs = _reqs([0.0] * 6)
    served, service = _drain_queue(
        _InstantEngine(), reqs, _noises(6), window_s=0.0, max_batch=4
    )
    # One batch of 4 + one of 2: per-batch mean is 3.0 (a request-weighted
    # mean would claim 3.33).
    assert len(served) / len(service) == pytest.approx(3.0)


# -- continuous scheduler ----------------------------------------------------

@pytest.fixture(scope="module")
def continuous_report():
    return simulate_serving(
        make_tiny_spec("tinyCont", num_steps=3),
        batch_sizes=(1, 2),
        num_requests=4,
        rate_rps=50.0,
        pattern="uniform",
        seed=0,
        calibrate=False,
        scheduler="continuous",
        verify_invariance=True,
    )


def test_continuous_scheduler_serves_all_requests(continuous_report):
    assert continuous_report.scheduler == "continuous"
    assert sorted(continuous_report.per_batch) == [1, 2]
    for size, report in continuous_report.per_batch.items():
        assert report.num_requests == 4
        assert report.throughput_rps > 0.0
        # num_batches counts denoiser steps: 4 requests x 3 steps, shared
        # across up-to-`size` concurrent rows.
        assert report.num_batches >= 4 * 3 / size
        assert 0.0 < report.utilization <= 1.0
        assert report.mean_batch_fill == pytest.approx(
            report.utilization * size
        )


def test_continuous_scheduler_verified_bit_exact(continuous_report):
    # --verify replayed EVERY request against its batch-1 reference.
    assert continuous_report.invariance_checked


def test_continuous_report_serializes(continuous_report):
    payload = json.loads(json.dumps(continuous_report.to_json()))
    assert payload["scheduler"] == "continuous"
    assert set(payload["per_batch"]) == {"1", "2"}
    for entry in payload["per_batch"].values():
        assert 0.0 < entry["utilization"] <= 1.0
    text = continuous_report.summary()
    assert "continuous scheduler" in text
    assert "utilization" in text
    # Continuous verify covers every request; the tail must say so (the
    # fixed scheduler's weaker one-micro-batch claim is tested separately).
    assert "every request verified" in text


def test_fixed_report_has_utilization(tiny_report):
    for size, report in tiny_report.per_batch.items():
        assert report.utilization == pytest.approx(
            report.mean_batch_fill / size
        )
    text = tiny_report.summary()
    assert "utilization" in text
    # Fixed verify checks one synthetic micro-batch, not every request -
    # the tail must claim only what ran.
    assert "batch-N == N x batch-1" in text
    assert "every request verified" not in text
    assert tiny_report.to_json()["scheduler"] == "fixed"


def test_sampler_override_conflicts_with_prebuilt_engine():
    from repro.core import DittoEngine

    spec = make_tiny_spec("tinyConflict", num_steps=2)
    engine = DittoEngine.from_benchmark(spec, calibrate=False)
    with pytest.raises(ValueError, match="prebuilt engine"):
        simulate_serving(
            spec, batch_sizes=(1,), num_requests=2,
            engine=engine, sampler="ddpm",
        )


def test_runtime_package_exports_serving_surface():
    from repro.runtime import (  # noqa: F401
        SCHEDULERS,
        estimate_row_footprint,
        pool_budget_row_cap,
    )


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="unknown scheduler"):
        simulate_serving(
            make_tiny_spec("tinyBad", num_steps=2),
            batch_sizes=(1,),
            num_requests=2,
            calibrate=False,
            scheduler="speculative",
        )
    assert SCHEDULERS == ("fixed", "continuous")


def test_continuous_stochastic_sampler_verified():
    """DDPM ancestral sampling through the continuous scheduler: per-request
    SeedSequence.spawn streams keep every request bit-exact (verify raises
    otherwise)."""
    report = simulate_serving(
        make_tiny_spec("tinyContDdpm", num_steps=3),
        batch_sizes=(2,),
        num_requests=3,
        rate_rps=50.0,
        pattern="burst",
        seed=1,
        calibrate=False,
        scheduler="continuous",
        sampler="ddpm",
        verify_invariance=True,
    )
    assert report.invariance_checked
    assert report.sampler == "ddpm"


# -- pool budget --------------------------------------------------------------

def test_row_footprint_measured_positive():
    from repro.core import DittoEngine

    engine = DittoEngine.from_benchmark(
        make_tiny_spec("tinyFoot", num_steps=2), calibrate=False
    )
    row_bytes = estimate_row_footprint(engine)
    assert row_bytes > 0
    # A generous budget admits many rows; the measured floor refuses.
    assert pool_budget_row_cap(engine, 64.0) >= 1
    tiny_mb = row_bytes / 2**20 / 4.0
    with pytest.raises(ValueError, match="below one batch row"):
        pool_budget_row_cap(engine, tiny_mb)
    with pytest.raises(ValueError, match="positive"):
        pool_budget_row_cap(engine, 0.0)


def test_pool_budget_refusal_names_footprint_and_floor():
    """The refusal must be actionable: it reports the measured per-row
    footprint (MB and bytes) AND the smallest --pool-budget-mb that would
    admit one row - and that suggestion must actually work."""
    import math

    from repro.core import DittoEngine

    engine = DittoEngine.from_benchmark(
        make_tiny_spec("tinyFloor", num_steps=2), calibrate=False
    )
    row_bytes = estimate_row_footprint(engine)
    min_mb = math.ceil(row_bytes / 2**20 * 100.0) / 100.0
    with pytest.raises(ValueError) as err:
        pool_budget_row_cap(engine, row_bytes / 2**20 / 4.0)
    message = str(err.value)
    assert f"{row_bytes / 2**20:.2f} MB = {row_bytes} bytes" in message
    assert f"pass --pool-budget-mb {min_mb:.2f} or more" in message
    assert pool_budget_row_cap(engine, min_mb) >= 1


def test_pool_budget_caps_batch_sizes():
    from repro.core import DittoEngine

    spec = make_tiny_spec("tinyPool", num_steps=2)
    # Size a budget that fits ~2 rows of the measured footprint (a twin
    # engine from the same spec has the same buffer shapes).
    twin = DittoEngine.from_benchmark(spec, calibrate=False)
    budget_mb = 2.5 * estimate_row_footprint(twin) / 2**20
    report = simulate_serving(
        spec,
        batch_sizes=(1, 64),
        num_requests=3,
        rate_rps=50.0,
        pattern="burst",
        calibrate=False,
        scheduler="continuous",
        pool_budget_mb=budget_mb,
    )
    assert report.pool_row_cap == 2
    assert max(report.per_batch) <= report.pool_row_cap
    assert "pool budget" in report.summary()


# -- per-request sampler streams ----------------------------------------------

def test_sampler_rng_matches_seedsequence_spawn():
    req = Request(req_id=5, arrival_s=0.0, seed=(42, 5))
    direct = req.sampler_rng().standard_normal(8)
    spawned = np.random.default_rng(
        np.random.SeedSequence(42).spawn(6)[5]
    ).standard_normal(8)
    np.testing.assert_array_equal(direct, spawned)
    # Fresh generator per call: the batched replay and the reference replay
    # both start at the stream head.
    np.testing.assert_array_equal(direct, req.sampler_rng().standard_normal(8))


def test_cli_serve_continuous_smoke(capsys):
    from repro.cli import main

    code = main(
        [
            "serve", "DDPM", "--steps", "3", "--requests", "3",
            "--batch-sizes", "2", "--scheduler", "continuous",
            "--rate", "20", "--pattern", "uniform", "--verify",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "continuous scheduler" in out
    assert "utilization" in out
    assert "verified bit-exact" in out


def test_cli_serve_smoke(capsys):
    from repro.cli import main

    code = main(
        [
            "serve", "DDPM", "--steps", "3", "--requests", "3",
            "--batch-sizes", "1", "2", "--rate", "20", "--pattern", "uniform",
            "--window", "0.02",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "DDPM: 3 requests" in out
    assert "MAC sav%" in out
