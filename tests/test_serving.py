"""Unit tests for the batched serving runtime (``repro serve``)."""

import json

import numpy as np
import pytest

from repro.runtime.serving import (
    ARRIVAL_PATTERNS,
    Request,
    generate_requests,
    simulate_serving,
    _drain_queue,
)

from helpers import make_tiny_spec


# -- request generation -----------------------------------------------------

def test_arrival_patterns_shapes():
    for pattern in ARRIVAL_PATTERNS:
        reqs = generate_requests(8, rate_rps=4.0, pattern=pattern, seed=1)
        assert len(reqs) == 8
        assert [r.req_id for r in reqs] == list(range(8))
        arrivals = [r.arrival_s for r in reqs]
        assert arrivals[0] == 0.0
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))


def test_uniform_arrivals_spacing():
    reqs = generate_requests(5, rate_rps=2.0, pattern="uniform")
    assert [r.arrival_s for r in reqs] == [0.0, 0.5, 1.0, 1.5, 2.0]


def test_burst_arrivals_all_at_zero():
    reqs = generate_requests(6, pattern="burst")
    assert all(r.arrival_s == 0.0 for r in reqs)


def test_poisson_arrivals_reproducible():
    a = generate_requests(10, 4.0, "poisson", seed=3)
    b = generate_requests(10, 4.0, "poisson", seed=3)
    assert [r.arrival_s for r in a] == [r.arrival_s for r in b]


def test_request_noise_independent_of_batching():
    req = Request(req_id=2, arrival_s=0.1, seed=(0, 2))
    n1 = req.draw_noise((2, 4, 4))
    n2 = req.draw_noise((2, 4, 4))
    assert n1.shape == (1, 2, 4, 4)
    np.testing.assert_array_equal(n1, n2)


def test_generate_requests_validation():
    with pytest.raises(ValueError):
        generate_requests(0)
    with pytest.raises(ValueError):
        generate_requests(4, pattern="bimodal")
    with pytest.raises(ValueError):
        generate_requests(4, rate_rps=0.0, pattern="poisson")


# -- micro-batching ---------------------------------------------------------

class _InstantEngine:
    """Stub engine: constant service time, echoes x_init as samples."""

    class _Result:
        def __init__(self, samples):
            self.samples = samples

    def run(self, batch_size=1, seed=0, x_init=None, record_trace=True):
        return self._Result(np.array(x_init))


def _reqs(arrivals):
    return [
        Request(req_id=i, arrival_s=float(t), seed=(0, i))
        for i, t in enumerate(arrivals)
    ]


def _noises(n):
    return [np.full((1, 2), float(i)) for i in range(n)]


def test_burst_fills_batches_to_cap():
    reqs = _reqs([0.0] * 6)
    served, service, samples = _drain_queue(
        _InstantEngine(), reqs, _noises(6), window_s=0.0, max_batch=4
    )
    assert [s.batch_fill for s in served] == [4, 4, 4, 4, 2, 2]
    assert len(service) == 2


def test_window_admits_near_arrivals():
    # Second request lands inside the 0.2 s window, third far outside.
    reqs = _reqs([0.0, 0.1, 5.0])
    served, service, _ = _drain_queue(
        _InstantEngine(), reqs, _noises(3), window_s=0.2, max_batch=8
    )
    assert [s.batch_fill for s in served] == [2, 2, 1]


def test_window_zero_serves_immediately():
    reqs = _reqs([0.0, 0.3, 0.6])
    served, service, _ = _drain_queue(
        _InstantEngine(), reqs, _noises(3), window_s=0.0, max_batch=8
    )
    # Service is near-instant, so nothing queues up behind the server.
    assert [s.batch_fill for s in served] == [1, 1, 1]
    assert all(s.latency_s >= 0.0 for s in served)


def test_batch_order_preserves_request_order():
    reqs = _reqs([0.0] * 4)
    served, _, samples = _drain_queue(
        _InstantEngine(), reqs, _noises(4), window_s=0.0, max_batch=4
    )
    # The stacked x_init must follow request order: request i's noise is the
    # constant i, echoed back by the stub engine.
    np.testing.assert_array_equal(samples[0][:, 0], [0.0, 1.0, 2.0, 3.0])
    assert [s.req_id for s in served] == [0, 1, 2, 3]


# -- end-to-end simulation --------------------------------------------------

@pytest.fixture(scope="module")
def tiny_report():
    return simulate_serving(
        make_tiny_spec("tinyServe", num_steps=3),
        batch_sizes=(1, 2),
        num_requests=4,
        rate_rps=50.0,
        pattern="uniform",
        window_s=0.05,
        seed=0,
        calibrate=False,
        verify_invariance=True,
    )


def test_simulate_serving_reports_all_batch_sizes(tiny_report):
    assert sorted(tiny_report.per_batch) == [1, 2]
    for size, report in tiny_report.per_batch.items():
        assert report.num_requests == 4
        assert report.throughput_rps > 0.0
        assert report.latency_p50_s <= report.latency_p99_s
        assert 1.0 <= report.mean_batch_fill <= size
        assert 0.0 <= report.temporal_relative_bops <= 1.0
        assert report.mac_savings_pct == pytest.approx(
            100.0 * (1.0 - report.temporal_relative_bops)
        )


def test_simulate_serving_verifies_invariance(tiny_report):
    # verify_invariance re-ran a micro-batch request-by-request bit-exactly.
    assert tiny_report.invariance_checked


def test_serving_report_renders_and_serializes(tiny_report):
    text = tiny_report.summary()
    assert "tinyServe" in text
    assert "req/s" in text
    payload = json.loads(json.dumps(tiny_report.to_json()))
    assert payload["num_requests"] == 4
    assert set(payload["per_batch"]) == {"1", "2"}
    assert payload["per_batch"]["2"]["batch_size"] == 2


def test_simulate_serving_validates_batch_sizes():
    with pytest.raises(ValueError):
        simulate_serving(make_tiny_spec(), batch_sizes=(0,), num_requests=2)


def test_verify_refuses_when_no_multi_request_batch_possible():
    # --verify must never silently verify nothing: with a max batch of 1
    # no multi-request batch can exist, so it fails loudly.
    with pytest.raises(ValueError, match="multi-request batch"):
        simulate_serving(
            make_tiny_spec("tinyV", num_steps=2),
            batch_sizes=(1,),
            num_requests=4,
            calibrate=False,
            verify_invariance=True,
        )


def test_mean_batch_fill_counts_batches_not_requests():
    reqs = _reqs([0.0] * 6)
    served, service, _ = _drain_queue(
        _InstantEngine(), reqs, _noises(6), window_s=0.0, max_batch=4
    )
    # One batch of 4 + one of 2: per-batch mean is 3.0 (a request-weighted
    # mean would claim 3.33).
    assert len(served) / len(service) == pytest.approx(3.0)


def test_cli_serve_smoke(capsys):
    from repro.cli import main

    code = main(
        [
            "serve", "DDPM", "--steps", "3", "--requests", "3",
            "--batch-sizes", "1", "2", "--rate", "20", "--pattern", "uniform",
            "--window", "0.02",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "DDPM: 3 requests" in out
    assert "MAC sav%" in out
