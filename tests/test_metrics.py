"""Unit tests for the FID / IS / CLIP-score proxies and pixel metrics."""

import numpy as np
import pytest

from repro.metrics import (
    FeatureExtractor,
    clip_score,
    fid_score,
    frechet_distance,
    gaussian_stats,
    inception_score,
    psnr,
    snr_db,
)
from repro.workloads import synthetic_images


@pytest.fixture(scope="module")
def images():
    return synthetic_images("cifar10", 24, seed=1)


@pytest.fixture(scope="module")
def extractor():
    return FeatureExtractor(image_channels=3)


def test_features_shape(images, extractor):
    feats = extractor.features(images)
    assert feats.shape == (24, 64)
    assert np.isfinite(feats).all()


def test_features_deterministic(images):
    a = FeatureExtractor(image_channels=3).features(images)
    b = FeatureExtractor(image_channels=3).features(images)
    np.testing.assert_array_equal(a, b)


def test_features_reject_bad_input(extractor):
    with pytest.raises(ValueError):
        extractor.features(np.zeros((3, 16, 16)))
    with pytest.raises(ValueError):
        extractor.features(np.zeros((1, 4, 16, 16)))


def test_gaussian_stats_shapes(images, extractor):
    mu, sigma = gaussian_stats(extractor.features(images))
    assert mu.shape == (64,)
    assert sigma.shape == (64, 64)


def test_gaussian_stats_needs_samples():
    with pytest.raises(ValueError):
        gaussian_stats(np.zeros((1, 8)))


def test_frechet_distance_identity():
    mu = np.zeros(4)
    sigma = np.eye(4)
    assert frechet_distance(mu, sigma, mu, sigma) == pytest.approx(0.0, abs=1e-8)


def test_frechet_distance_mean_shift():
    sigma = np.eye(3)
    d = frechet_distance(np.zeros(3), sigma, np.full(3, 2.0), sigma)
    assert d == pytest.approx(12.0)


def test_fid_self_is_zero(images):
    assert fid_score(images, images) == pytest.approx(0.0, abs=1e-6)


def test_fid_separates_distributions(images):
    noise = np.random.default_rng(0).uniform(-1, 1, images.shape)
    same = fid_score(images, synthetic_images("cifar10", 24, seed=2))
    different = fid_score(images, noise)
    assert different > same


def test_inception_score_bounds(images):
    score = inception_score(images)
    assert 1.0 <= score <= 10.0  # between 1 and the class count


def test_inception_score_collapse_detection(images):
    """A batch of identical images must score lower than a diverse batch."""
    collapsed = np.tile(images[:1], (24, 1, 1, 1))
    assert inception_score(collapsed) <= inception_score(images) + 1e-9


def test_clip_score_range(images):
    prompts = [f"an image number {i}" for i in range(len(images))]
    score = clip_score(images, prompts)
    assert 0.0 <= score <= 1.0


def test_clip_score_prompt_count_checked(images):
    with pytest.raises(ValueError):
        clip_score(images, ["only one prompt"])


def test_psnr_identity(images):
    assert psnr(images, images) == float("inf")


def test_psnr_decreases_with_noise(images):
    rng = np.random.default_rng(0)
    small = psnr(images, images + rng.normal(0, 0.01, images.shape))
    large = psnr(images, images + rng.normal(0, 0.1, images.shape))
    assert small > large > 0


def test_snr_db_reference(images):
    noisy = images + 0.1 * images  # noise = 0.1 * signal -> SNR = 20 dB
    assert snr_db(images, noisy) == pytest.approx(20.0, abs=1e-9)


def test_shape_mismatch_rejected(images):
    with pytest.raises(ValueError):
        psnr(images, images[:2])
    with pytest.raises(ValueError):
        snr_db(images, images[:2])
