"""Unit tests for the runtime result cache and its stable hashing."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runtime import (
    ResultCache,
    callable_fingerprint,
    code_fingerprint,
    engine_build_key,
    engine_key,
    similarity_key,
    spec_signature,
    stable_hash,
)
from repro.workloads import get_benchmark

from helpers import make_tiny_spec


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


# -- cache behavior --------------------------------------------------------

def test_miss_then_hit(cache):
    key = stable_hash({"k": 1})
    assert cache.get(key) is None
    assert cache.stats.misses == 1
    cache.put(key, {"payload": [1, 2, 3]})
    assert cache.stats.stores == 1
    assert cache.get(key) == {"payload": [1, 2, 3]}
    assert cache.stats.hits == 1


def test_contains_and_invalidate(cache):
    key = stable_hash("entry")
    assert not cache.contains(key)
    cache.put(key, 42)
    assert cache.contains(key)
    assert cache.invalidate(key)
    assert not cache.contains(key)
    assert not cache.invalidate(key)


def test_corrupted_entry_recovers_as_miss(cache):
    key = stable_hash("soon corrupt")
    cache.put(key, "good value")
    path = cache.path_for(key)
    path.write_bytes(b"\x00not a pickle")
    assert cache.get(key) is None
    assert cache.stats.corrupt == 1
    assert not path.exists()  # dropped so the recompute overwrites cleanly
    cache.put(key, "recomputed")
    assert cache.get(key) == "recomputed"


def test_disabled_cache_never_touches_disk(tmp_path):
    cache = ResultCache(tmp_path / "cache", enabled=False)
    key = stable_hash("x")
    cache.put(key, 1)
    assert cache.get(key) is None
    assert not (tmp_path / "cache").exists()


def test_clear_removes_all_entries(cache):
    for i in range(5):
        cache.put(stable_hash(i), i)
    assert cache.entry_count() == 5
    assert cache.size_bytes() > 0
    assert cache.clear() == 5
    assert cache.get(stable_hash(0)) is None
    assert cache.entry_count() == 0


def test_clear_sweeps_orphaned_tmp_files(cache):
    key = stable_hash("x")
    cache.put(key, 1)
    # Simulate a writer killed mid-dump_pickle.
    orphan = cache.path_for(key).parent / "interrupted.tmp"
    orphan.write_bytes(b"partial")
    cache.clear()
    assert not orphan.exists()


# -- key construction ------------------------------------------------------

def test_engine_key_sensitivity():
    spec = get_benchmark("DDPM")
    base = engine_key(spec, num_steps=8, seed=0)
    assert base == engine_key(spec, num_steps=8, seed=0)
    assert base != engine_key(spec, num_steps=9, seed=0)
    assert base != engine_key(spec, num_steps=8, seed=1)
    assert base != engine_key(spec, num_steps=8, seed=0, step_clusters=2)
    assert base != engine_key(spec, num_steps=8, seed=0, calibration_seed=12)
    assert base != engine_key(get_benchmark("BED"), num_steps=8, seed=0)
    assert base != similarity_key(spec, num_steps=8)


def test_engine_build_key_sensitivity():
    """The engine-*object* key crash recovery warms from: no run params
    (seed/batch size), but the sampler override axis engine_key lacks."""
    spec = get_benchmark("DDPM")
    base = engine_build_key(spec, num_steps=8)
    assert base == engine_build_key(spec, num_steps=8)
    assert base != engine_build_key(spec, num_steps=9)
    assert base != engine_build_key(spec, num_steps=8, sampler="ddpm")
    assert base != engine_build_key(spec, num_steps=8, sampler_eta=0.5)
    assert base != engine_build_key(spec, num_steps=8, calibrate=False)
    assert base != engine_key(spec, num_steps=8)  # distinct key namespace


def test_custom_spec_signature_is_stable():
    a = make_tiny_spec("tinyA", num_steps=3)
    b = make_tiny_spec("tinyA", num_steps=3)
    assert spec_signature(a) == spec_signature(b)
    assert engine_key(a) == engine_key(b)
    assert engine_key(a) != engine_key(make_tiny_spec("tinyA", num_steps=4))


def test_callable_fingerprint_tracks_source_not_just_name():
    # Same module, same qualname ("<lambda>"), different bodies: only the
    # source hash tells them apart - the property that keeps cached results
    # honest when an out-of-package builder is edited.
    first = lambda: 1  # noqa: E731
    second = lambda: 2  # noqa: E731
    assert callable_fingerprint(first) != callable_fingerprint(second)
    assert "#" in callable_fingerprint(first)
    # Builtins have no retrievable source: name-only fallback, no crash.
    assert callable_fingerprint(len) == "builtins.len"


def test_callable_fingerprint_distinguishes_partials():
    import functools

    eight = functools.partial(dict, base_channels=8)
    sixteen = functools.partial(dict, base_channels=16)
    assert callable_fingerprint(eight) != callable_fingerprint(sixteen)
    assert callable_fingerprint(eight) == callable_fingerprint(
        functools.partial(dict, base_channels=8)
    )


def test_stable_hash_rejects_opaque_objects():
    with pytest.raises(TypeError):
        stable_hash({"fn": object()})


def test_key_stable_across_processes():
    """The exact property cross-session cache reuse depends on."""
    code = (
        "from repro.runtime import engine_key, code_fingerprint\n"
        "from repro.workloads import get_benchmark\n"
        "print(engine_key(get_benchmark('DDPM'), num_steps=8, seed=3))\n"
        "print(code_fingerprint())\n"
    )
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    child_key, child_fingerprint = proc.stdout.split()
    assert child_key == engine_key(get_benchmark("DDPM"), num_steps=8, seed=3)
    assert child_fingerprint == code_fingerprint()
