"""Tests for weight serialization and JSON export."""

import json

import numpy as np
import pytest

from repro.export import (
    defo_report_to_dict,
    dump_json,
    hardware_report_to_dict,
    rich_step_to_dict,
    trace_to_dict,
)
from repro.core import run_defo
from repro.hw import build_accelerator
from repro.models import build_ddpm_unet
from repro.nn.io import load_state_dict, load_weights, save_weights, state_dict


# -- weights ------------------------------------------------------------------

def test_state_dict_roundtrip():
    model = build_ddpm_unet(seed=1)
    state = state_dict(model)
    assert state
    other = build_ddpm_unet(seed=2)  # different init
    load_state_dict(other, state)
    x = np.random.default_rng(0).standard_normal((1, 3, 16, 16))
    np.testing.assert_array_equal(
        model(x, np.array([5.0])), other(x, np.array([5.0]))
    )


def test_state_dict_returns_copies():
    model = build_ddpm_unet(seed=1)
    state = state_dict(model)
    key = next(iter(state))
    state[key][...] = 0.0
    assert not np.allclose(dict(model.named_parameters())[key].data, 0.0)


def test_strict_load_rejects_mismatch():
    model = build_ddpm_unet(seed=1)
    state = state_dict(model)
    state.pop(next(iter(state)))
    with pytest.raises(KeyError):
        load_state_dict(model, state, strict=True)
    load_state_dict(model, state, strict=False)  # intersection is fine


def test_shape_mismatch_rejected():
    model = build_ddpm_unet(seed=1)
    state = state_dict(model)
    key = next(iter(state))
    state[key] = np.zeros((1, 1))
    with pytest.raises(ValueError):
        load_state_dict(model, state, strict=False)


def test_save_load_npz(tmp_path):
    model = build_ddpm_unet(seed=1)
    path = tmp_path / "weights.npz"
    save_weights(model, path)
    other = build_ddpm_unet(seed=9)
    load_weights(other, path)
    x = np.random.default_rng(0).standard_normal((1, 3, 16, 16))
    np.testing.assert_array_equal(
        model(x, np.array([5.0])), other(x, np.array([5.0]))
    )


# -- JSON export ---------------------------------------------------------------

def test_rich_step_export(tiny_engine_result):
    record = tiny_engine_result.rich_trace.steps[-1]
    payload = rich_step_to_dict(record)
    assert payload["layer_name"] == record.layer_name
    assert payload["stats_dense"]["total"] == record.stats_dense.total
    json.dumps(payload)  # must be serializable


def test_trace_export_counts(tiny_engine_result):
    payload = trace_to_dict(tiny_engine_result.rich_trace)
    assert payload["num_records"] == len(tiny_engine_result.rich_trace)
    assert payload["total_macs"] == tiny_engine_result.rich_trace.total_macs()
    assert len(payload["records"]) == payload["num_records"]


def test_hardware_report_export(tiny_engine_result):
    hardware = build_accelerator("Ditto")
    report = run_defo(tiny_engine_result.rich_trace, hardware)
    hw_report = hardware.run(report.trace)
    payload = hardware_report_to_dict(hw_report)
    assert payload["total_cycles"] == pytest.approx(hw_report.total_cycles)
    assert sum(payload["energy_breakdown_pj"].values()) == pytest.approx(
        hw_report.total_energy_pj
    )
    json.dumps(payload)


def test_defo_report_export(tiny_engine_result):
    hardware = build_accelerator("Ditto")
    report = run_defo(tiny_engine_result.rich_trace, hardware)
    payload = defo_report_to_dict(report)
    assert set(payload["decisions"]) == set(report.decisions)
    assert payload["accuracy"] == report.accuracy
    json.dumps(payload)


def test_dump_json(tmp_path, tiny_engine_result):
    path = tmp_path / "trace.json"
    dump_json(trace_to_dict(tiny_engine_result.rich_trace), path)
    with open(path) as fh:
        loaded = json.load(fh)
    assert loaded["num_records"] == len(tiny_engine_result.rich_trace)
