"""Unit tests for multi-head attention and embeddings."""

import numpy as np
import pytest

from repro.nn import Attention, LabelEmbedding, PatchEmbed, TimestepEmbedding
from repro.nn import functional as F


def test_self_attention_shape(rng):
    attn = Attention(8, num_heads=2, rng=rng)
    out = attn(rng.normal(size=(2, 5, 8)))
    assert out.shape == (2, 5, 8)


def test_cross_attention_shape(rng):
    attn = Attention(8, num_heads=2, context_dim=6, rng=rng)
    x = rng.normal(size=(2, 5, 8))
    ctx = rng.normal(size=(2, 3, 6))
    out = attn(x, context=ctx)
    assert out.shape == (2, 5, 8)
    assert attn.is_cross


def test_attention_rejects_indivisible_heads():
    with pytest.raises(ValueError):
        Attention(7, num_heads=2)


def test_split_merge_roundtrip(rng):
    attn = Attention(8, num_heads=4, rng=rng)
    x = rng.normal(size=(2, 5, 8))
    np.testing.assert_array_equal(attn.merge_heads(attn.split_heads(x)), x)


def test_attention_probs_normalized(rng):
    attn = Attention(8, num_heads=2, rng=rng)
    x = rng.normal(size=(1, 4, 8))
    q = attn.split_heads(attn.to_q(x))
    k = attn.split_heads(attn.to_k(x))
    probs = F.softmax(attn.scores(q, k), axis=-1)
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-10)


def test_uniform_attention_on_identical_tokens(rng):
    """Identical tokens must receive identical attention weights."""
    attn = Attention(8, num_heads=2, rng=rng)
    token = rng.normal(size=8)
    x = np.tile(token, (1, 6, 1))
    q = attn.split_heads(attn.to_q(x))
    k = attn.split_heads(attn.to_k(x))
    probs = F.softmax(attn.scores(q, k), axis=-1)
    np.testing.assert_allclose(probs, 1.0 / 6.0, rtol=1e-9)


def test_timestep_embedding_shapes(rng):
    emb = TimestepEmbedding(8, 16, rng=rng)
    out = emb(np.array([0.0, 50.0]))
    assert out.shape == (2, 16)
    assert not np.allclose(out[0], out[1])


def test_patch_embed_token_count(rng):
    pe = PatchEmbed(4, 16, patch=2, rng=rng)
    out = pe(rng.normal(size=(2, 4, 8, 8)))
    assert out.shape == (2, 16, 16)


def test_label_embedding_lookup(rng):
    emb = LabelEmbedding(10, 8, rng=rng)
    out = emb(np.array([1, 1, 3]))
    assert out.shape == (3, 8)
    np.testing.assert_array_equal(out[0], out[1])
    assert not np.allclose(out[0], out[2])


def test_label_embedding_bounds():
    emb = LabelEmbedding(5, 4)
    with pytest.raises(ValueError):
        emb(np.array([5]))
    with pytest.raises(ValueError):
        emb(np.array([-1]))
