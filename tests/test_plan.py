"""Plan-then-execute serving (PR 9): the ``ExecutionPlan`` contract.

Three properties pinned here (see ``docs/plan-cache.md``):

* **Determinism** - deriving a plan from the same engine source twice
  yields a bit-identical digest, so the digest is a real identity and the
  drift check can demand exact equality.
* **Replay exactness** - ``simulate_serving(use_plan=True,
  verify_invariance=True)`` proves every served request of the
  plan-replay (``record_trace=False``) path bit-exact against its
  *instrumented* batch-1 reference, for both schedulers.
* **Cache hygiene** - ``plan_key`` embeds the package source fingerprint
  (a source edit strands every cached plan), and a cache-hit plan is
  drift-checked against a re-instrumented derivation: a perturbed cached
  artifact is reported, never silently trusted and never a crash.
"""

import dataclasses

import numpy as np
import pytest

from helpers import make_tiny_spec
from repro.core import DittoEngine, compare_plans, extract_plan
from repro.core.plan import PLAN_FORMAT
from repro.runtime import ResultCache, plan_key, simulate_serving
from repro.runtime import hashing


def _tiny_engine(num_steps=3):
    return DittoEngine.from_benchmark(
        make_tiny_spec(num_steps=num_steps), calibrate=False
    )


def _serve(tmp_path, **kwargs):
    params = dict(
        batch_sizes=(1, 2),
        num_requests=4,
        rate_rps=50.0,
        pattern="uniform",
        window_s=0.05,
        seed=0,
        calibrate=False,
        use_plan=True,
        plan_cache_dir=tmp_path,
    )
    params.update(kwargs)
    return simulate_serving(make_tiny_spec(), **params)


# -- derivation ------------------------------------------------------------

def test_extract_plan_deterministic_across_rebuilds():
    plans = [_tiny_engine().derive_plan(seed=0, batch_size=1) for _ in range(2)]
    assert plans[0].digest == plans[1].digest
    assert compare_plans(plans[0], plans[1]) == []
    plan = plans[0]
    assert plan.format == PLAN_FORMAT
    assert plan.benchmark == "tinyA"
    assert plan.num_steps == 3
    assert plan.num_records > 0
    assert 0.0 < plan.temporal_relative_bops < 1.0
    assert plan.mac_savings_pct == pytest.approx(
        100.0 * (1.0 - plan.temporal_relative_bops)
    )
    # 3 steps >= 2: Defo had a second step to compare against.
    assert plan.decisions
    assert plan.temporal_stats.total == (
        plan.temporal_stats.zero
        + plan.temporal_stats.low
        + plan.temporal_stats.high
    )


def test_extract_plan_requires_instrumented_run():
    engine = _tiny_engine()
    result = engine.run(batch_size=1, seed=0, record_trace=False)
    with pytest.raises(ValueError, match="record_trace"):
        extract_plan(result)


def test_plan_seed_changes_digest():
    engine = _tiny_engine()
    a = engine.derive_plan(seed=0, batch_size=1)
    b = engine.derive_plan(seed=1, batch_size=1)
    # Bit-width stats depend on the sampled noise; the derivation seed is
    # part of both the artifact and its cache key.
    assert a.digest != b.digest
    assert any("seed" in d or "stats" in d for d in compare_plans(a, b))


def test_compare_plans_reports_field_diffs():
    plan = _tiny_engine().derive_plan(seed=0, batch_size=1)
    bumped = dataclasses.replace(
        plan, temporal_relative_bops=plan.temporal_relative_bops + 0.1
    )
    diffs = compare_plans(plan, bumped)
    assert any("temporal_relative_bops" in d for d in diffs)


# -- plan-replay serving ---------------------------------------------------

@pytest.mark.parametrize("scheduler", ["fixed", "continuous"])
def test_plan_replay_verified_bit_exact(tmp_path, scheduler):
    report = _serve(
        tmp_path, scheduler=scheduler, verify_invariance=True
    )
    assert report.plan_source == "derived"
    assert report.plan_digest
    assert report.plan_drift == {
        "checked": False, "matches": True, "mismatches": []
    }
    for size_report in report.per_batch.values():
        assert 0.0 < size_report.temporal_relative_bops < 1.0
    assert "plan-replay mode" in report.summary()
    payload = report.to_json()
    assert payload["plan_source"] == "derived"
    assert payload["plan_digest"] == report.plan_digest


def test_second_serve_hits_cache_and_drift_checks(tmp_path):
    first = _serve(tmp_path)
    second = _serve(tmp_path)
    assert second.plan_source == "cache"
    assert second.plan_digest == first.plan_digest
    assert second.plan_drift == {
        "checked": True, "matches": True, "mismatches": []
    }
    assert "drift check: re-derived plan matches bit-exactly" in second.summary()


def test_plan_mode_reports_consistent_savings_across_batch_sizes(tmp_path):
    # One plan prices every batch size: the per-size MAC savings are the
    # plan's, not per-size instrumented re-derivations.
    report = _serve(tmp_path)
    savings = {
        round(r.mac_savings_pct, 6) for r in report.per_batch.values()
    }
    assert len(savings) == 1


# -- invalidation ----------------------------------------------------------

def test_plan_key_changes_with_code_fingerprint(monkeypatch):
    spec = make_tiny_spec()
    before = plan_key(spec, num_steps=3, calibrate=False)
    monkeypatch.setattr(hashing, "_CODE_FINGERPRINT", "f" * 64)
    after = plan_key(spec, num_steps=3, calibrate=False)
    assert before != after


def test_stale_plan_rederived_after_source_change(tmp_path, monkeypatch):
    first = _serve(tmp_path)
    assert first.plan_source == "derived"
    # Simulate a source edit: the memoized fingerprint changes, the old
    # entry becomes unreachable, and the next serve re-derives.
    monkeypatch.setattr(hashing, "_CODE_FINGERPRINT", "e" * 64)
    second = _serve(tmp_path)
    assert second.plan_source == "derived"
    assert second.plan_digest == first.plan_digest  # same engine, same plan


def test_plan_key_axes():
    spec = make_tiny_spec()
    base = plan_key(spec, num_steps=3, calibrate=False)
    assert plan_key(spec, num_steps=3, calibrate=False) == base
    assert plan_key(spec, num_steps=4, calibrate=False) != base
    assert plan_key(spec, num_steps=3, calibrate=False, derivation_seed=1) != base
    assert plan_key(spec, num_steps=3, calibrate=False, hardware="GPU") != base
    assert (
        plan_key(spec, num_steps=3, calibrate=False, plan_format=PLAN_FORMAT + 1)
        != base
    )


# -- drift check -----------------------------------------------------------

def test_drift_check_fires_on_perturbed_plan(tmp_path):
    first = _serve(tmp_path)
    assert first.plan_source == "derived"
    key = plan_key(
        make_tiny_spec(), num_steps=3, calibrate=False,
        derivation_seed=0, derivation_batch_size=1,
    )
    cache = ResultCache(tmp_path)
    cached = cache.get(key)
    assert cached is not None and cached.digest == first.plan_digest
    cache.put(key, dataclasses.replace(cached, total_macs=cached.total_macs + 1))

    report = _serve(tmp_path)
    assert report.plan_source == "cache"
    assert report.plan_drift["checked"] is True
    assert report.plan_drift["matches"] is False
    assert any("total_macs" in m for m in report.plan_drift["mismatches"])
    assert "WARNING plan drift" in report.summary()
    assert report.to_json()["plan_drift"]["matches"] is False


# -- session validation ----------------------------------------------------

def test_session_rejects_foreign_plan():
    engine = _tiny_engine()
    plan = engine.derive_plan(seed=0, batch_size=1)
    wrong = dataclasses.replace(plan, benchmark="other")
    with pytest.raises(ValueError, match="benchmark"):
        engine.open_session(capacity=2, plan=wrong)
    with engine.open_session(capacity=2, plan=plan) as session:
        assert session.plan is plan


def test_plan_payload_round_trips_canonically():
    plan = _tiny_engine().derive_plan(seed=0, batch_size=1)
    payload = plan.to_payload()
    assert payload["decisions"] == dict(sorted(payload["decisions"].items()))
    assert payload["changed_layers"] == sorted(payload["changed_layers"])
    # np ints must not leak into the canonical payload (json must accept it).
    import json

    json.dumps(payload)
    assert isinstance(payload["total_macs"], int)
    assert isinstance(payload["temporal_stats"]["total"], int)
