"""Unit tests for the model zoo builders."""

import numpy as np
import pytest

from repro.models import (
    build_conditional_unet,
    build_ddpm_unet,
    build_dit,
    build_latent_unet,
    build_latte,
    build_text_encoder,
    build_vae,
)
from repro.nn.io import state_dict


@pytest.mark.parametrize(
    "builder",
    [build_ddpm_unet, build_latent_unet, build_conditional_unet,
     build_dit, build_latte, build_vae, build_text_encoder],
)
def test_builders_deterministic_per_seed(builder):
    a = state_dict(builder())
    b = state_dict(builder())
    assert set(a) == set(b)
    for name in a:
        np.testing.assert_array_equal(a[name], b[name], err_msg=name)


def test_different_seeds_differ():
    a = state_dict(build_latent_unet(seed=2))
    b = state_dict(build_latent_unet(seed=12))
    assert any(not np.allclose(a[k], b[k]) for k in a)


def test_parameter_counts_reasonable():
    """Scaled models: big enough to be interesting, small enough for numpy."""
    for builder, low, high in [
        (build_ddpm_unet, 50_000, 2_000_000),
        (build_conditional_unet, 50_000, 2_000_000),
        (build_dit, 100_000, 20_000_000),
        (build_latte, 100_000, 20_000_000),
    ]:
        count = builder().num_parameters()
        assert low <= count <= high, (builder.__name__, count)


def test_dit_larger_than_unets():
    """DiT-XL is the paper's biggest model; the scaled zoo preserves that."""
    assert build_dit().num_parameters() > build_ddpm_unet().num_parameters()


def test_conditional_unet_has_cross_attention():
    from repro.nn import Attention

    model = build_conditional_unet()
    cross = [
        m for _, m in model.named_modules()
        if isinstance(m, Attention) and m.is_cross
    ]
    assert cross, "IMG/SDM model must contain cross attention"


def test_ddpm_unet_has_no_cross_attention():
    from repro.nn import Attention

    model = build_ddpm_unet()
    assert all(
        not m.is_cross
        for _, m in model.named_modules()
        if isinstance(m, Attention)
    )


def test_latte_has_temporal_blocks():
    model = build_latte()
    assert len(model.temporal_blocks) == len(model.spatial_blocks) >= 1
