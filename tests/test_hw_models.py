"""Unit tests for the hardware cycle/energy models (Table III designs)."""

import pytest

from repro.core import ExecutionMode, derive_layer_step
from repro.hw import (
    DBDS_CONFIG,
    DB_CONFIG,
    DS_CONFIG,
    TABLE_III,
    AdderTreeAccelerator,
    CambriconDAccelerator,
    GPUModel,
    build_accelerator,
    get_config,
)

from helpers import make_rich


def lowered(mode=ExecutionMode.TEMPORAL, **kwargs):
    return derive_layer_step(make_rich(**kwargs), mode)


# -- Table III configuration -------------------------------------------------

def test_table_iii_pe_counts():
    assert TABLE_III["ITC"].num_mults == 27648
    assert TABLE_III["Diffy"].num_mults == 39398
    assert TABLE_III["Ditto"].num_mults == 39398
    camd = TABLE_III["Cambricon-D"]
    assert camd.num_mults == 38280
    assert camd.outlier_mults == 2552


def test_table_iii_shared_budget():
    """SRAM / area / frequency are fixed across designs (iso-area)."""
    for cfg in TABLE_III.values():
        assert cfg.sram_mb == 192
        assert cfg.area_mm2 == pytest.approx(64.48)
        assert cfg.freq_ghz == 1.0


def test_only_ditto_has_both_mechanisms():
    assert TABLE_III["Ditto"].supports_zero_skip
    assert TABLE_III["Ditto"].supports_dyn_bitwidth
    assert not TABLE_III["ITC"].supports_zero_skip
    assert not TABLE_III["Diffy"].supports_zero_skip


def test_dense_macs_per_cycle():
    assert TABLE_III["ITC"].dense_macs_per_cycle == 27648
    assert TABLE_III["Ditto"].dense_macs_per_cycle == 19699.0


def test_get_config_unknown():
    with pytest.raises(ValueError):
        get_config("TPU")


# -- compute-cycle formulas --------------------------------------------------

def test_itc_dense_cycles():
    itc = AdderTreeAccelerator(get_config("ITC"))
    step = lowered(ExecutionMode.DENSE)
    assert itc.compute_cycles(step) == pytest.approx(step.macs / 27648)


def test_ditto_dense_pairs_lanes():
    ditto = AdderTreeAccelerator(get_config("Ditto"))
    step = lowered(ExecutionMode.DENSE)
    assert ditto.compute_cycles(step) == pytest.approx(2 * step.macs / 39398)


def test_ditto_temporal_skips_zeros():
    ditto = AdderTreeAccelerator(get_config("Ditto"))
    step = lowered(ExecutionMode.TEMPORAL)
    # stats: 40% zero (skipped), 50% low (1 lane), 10% high (2 lanes)
    expected = step.macs * (0.5 + 0.2) / 39398
    assert ditto.compute_cycles(step) == pytest.approx(expected)


def test_db_pays_for_zeros():
    db = AdderTreeAccelerator(DB_CONFIG)
    step = lowered(ExecutionMode.TEMPORAL)
    expected = step.macs * (0.4 + 0.5 + 0.2) / 39398
    assert db.compute_cycles(step) == pytest.approx(expected)


def test_ds_eight_bit_lanes():
    ds = AdderTreeAccelerator(DS_CONFIG)
    step = lowered(ExecutionMode.TEMPORAL)
    # zero skipped, low and high both one 8-bit MAC
    expected = step.macs * 0.6 / 27648
    assert ds.compute_cycles(step) == pytest.approx(expected)


def test_dbds_equals_ditto_compute():
    step = lowered(ExecutionMode.TEMPORAL)
    ditto = AdderTreeAccelerator(get_config("Ditto"))
    dbds = AdderTreeAccelerator(DBDS_CONFIG)
    assert dbds.compute_cycles(step) == pytest.approx(ditto.compute_cycles(step))


def test_sub_ops_scale_compute():
    ditto = AdderTreeAccelerator(get_config("Ditto"))
    one = lowered(ExecutionMode.TEMPORAL, sub_ops=1)
    two = lowered(ExecutionMode.TEMPORAL, sub_ops=2)
    assert ditto.compute_cycles(two) == pytest.approx(2 * ditto.compute_cycles(one))


# -- Cambricon-D --------------------------------------------------------------

def test_cambricon_outlier_bottleneck():
    camd = CambriconDAccelerator(get_config("Cambricon-D"))
    step = lowered(ExecutionMode.TEMPORAL)
    normal = step.macs * 0.9 / 38280  # zero+low on normal lanes (no skip)
    outlier = step.macs * 0.1 / 2552
    assert camd.compute_cycles(step) == pytest.approx(max(normal, outlier))
    assert camd.compute_cycles(step) == pytest.approx(outlier)  # outliers bind


def test_cambricon_dense_runs_on_outliers_only():
    camd = CambriconDAccelerator(get_config("Cambricon-D"))
    step = lowered(ExecutionMode.DENSE)
    assert camd.compute_cycles(step) == pytest.approx(step.macs / 2552)


# -- pipelining / memory -----------------------------------------------------

def test_layer_cycles_is_stage_max():
    ditto = AdderTreeAccelerator(get_config("Ditto"))
    step = lowered(ExecutionMode.TEMPORAL)
    result = ditto.layer_cycles(step)
    assert result.cycles == pytest.approx(
        max(result.compute_cycles, result.memory_cycles,
            result.encode_cycles, result.vpu_cycles)
    )


def test_memory_cycles_use_bandwidth():
    ditto = AdderTreeAccelerator(get_config("Ditto"))
    step = lowered(ExecutionMode.TEMPORAL)
    assert ditto.memory_cycles(step) == pytest.approx(step.bytes_total / 2048)


def test_encode_only_for_difference_modes():
    ditto = AdderTreeAccelerator(get_config("Ditto"))
    assert ditto.encode_cycles(lowered(ExecutionMode.DENSE)) == 0.0
    assert ditto.encode_cycles(lowered(ExecutionMode.TEMPORAL)) > 0.0


def test_stall_cycles_nonnegative():
    ditto = AdderTreeAccelerator(get_config("Ditto"))
    result = ditto.layer_cycles(lowered(ExecutionMode.TEMPORAL))
    assert result.stall_cycles >= 0.0


# -- energy ----------------------------------------------------------------

def test_energy_components_present():
    ditto = AdderTreeAccelerator(get_config("Ditto"))
    energy = ditto.layer_cycles(lowered(ExecutionMode.TEMPORAL)).energy_pj
    for key in ("compute", "encode", "vpu", "defo", "sram", "dram", "leak"):
        assert key in energy
        assert energy[key] >= 0.0


def test_dense_has_no_encode_energy():
    ditto = AdderTreeAccelerator(get_config("Ditto"))
    energy = ditto.layer_cycles(lowered(ExecutionMode.DENSE)).energy_pj
    assert energy["encode"] == 0.0


def test_temporal_compute_energy_below_dense():
    ditto = AdderTreeAccelerator(get_config("Ditto"))
    dense = ditto.layer_cycles(lowered(ExecutionMode.DENSE)).energy_pj["compute"]
    temporal = ditto.layer_cycles(lowered(ExecutionMode.TEMPORAL)).energy_pj["compute"]
    assert temporal < dense


# -- GPU ----------------------------------------------------------------------

def test_gpu_model_launch_overhead():
    gpu = GPUModel(utilization=0.1, launch_cycles=100.0)
    step = lowered(ExecutionMode.DENSE)
    result = gpu.layer_cycles(step)
    assert result.compute_cycles > 100.0
    assert result.total_energy_pj > 0


def test_build_accelerator_factory():
    assert isinstance(build_accelerator("GPU"), GPUModel)
    assert isinstance(build_accelerator("Cambricon-D"), CambriconDAccelerator)
    assert isinstance(build_accelerator("Ditto"), AdderTreeAccelerator)
    with pytest.raises(ValueError):
        build_accelerator("NPU")


# -- Defo Unit table (paper Section V-B) --------------------------------------

def test_defo_table_sizing():
    """512 entries x 33 bits: 16+16 cycle counters plus the decision bit."""
    cfg = get_config("Ditto")
    assert cfg.defo_table_entries == 512
    assert cfg.defo_entry_bits == 33
    assert cfg.defo_table_bits == 512 * 33


def test_defo_table_fits_every_benchmark_model():
    """The paper sizes the table for <= 347 layers; our suite must fit too."""
    from repro.quant import iter_qlayers, quantize_model
    from repro.workloads import SUITE

    cfg = get_config("Ditto")
    for name, spec in SUITE.items():
        qmodel = quantize_model(spec.build_model())
        # Attention layers contribute two tracked matmuls each.
        entries = sum(
            2 if getattr(q, "is_cross", None) is not None else 1
            for _, q in iter_qlayers(qmodel)
        )
        assert entries <= cfg.defo_table_entries, name
