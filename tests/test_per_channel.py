"""Tests for per-output-channel weight quantization (Q-Diffusion style)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modes import ExecutionMode
from repro.nn import Conv2d, Linear
from repro.quant import QConv2d, QLinear, iter_qlayers, quantize_model


def test_qlinear_per_channel_scales_vector(rng):
    fp = Linear(8, 4, rng=rng)
    q = QLinear.from_float(fp, per_channel=True)
    assert np.shape(q.weight_scale) == (4,)
    # Every channel's quantized weights span the full int8 grid.
    assert np.abs(q.q_weight).max(axis=1).min() >= 126


def test_per_channel_more_accurate_than_per_tensor(rng):
    """With wildly different channel magnitudes, per-channel must win."""
    weight = rng.normal(size=(4, 16))
    weight[0] *= 100.0  # one dominant channel ruins the per-tensor grid
    fp = Linear(16, 4, rng=rng)
    fp.weight.data = weight
    x = rng.normal(size=(8, 16))
    exact = x @ weight.T + fp.bias.data

    per_tensor = QLinear.from_float(fp, per_channel=False)
    per_channel = QLinear.from_float(fp, per_channel=True)
    err_tensor = np.abs(per_tensor(x) - exact).mean()
    err_channel = np.abs(per_channel(x) - exact).mean()
    assert err_channel < err_tensor


def test_qconv_per_channel_shapes(rng):
    fp = Conv2d(3, 5, 3, padding=1, rng=rng)
    q = QConv2d.from_float(fp, per_channel=True)
    assert np.shape(q.weight_scale) == (5,)
    out = q(rng.normal(size=(1, 3, 6, 6)))
    assert out.shape == (1, 5, 6, 6)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 3000))
def test_per_channel_temporal_exactness(seed):
    """Difference processing stays bit-exact with per-channel weights."""
    rng = np.random.default_rng(seed)
    fp = Conv2d(2, 4, 3, padding=1, rng=rng)
    q_dense = QConv2d.from_float(fp, per_channel=True)
    q_temp = QConv2d.from_float(fp, per_channel=True)
    q_temp.mode = ExecutionMode.TEMPORAL
    a = rng.normal(size=(1, 2, 6, 6))
    b = a + rng.normal(0.0, 0.05, size=a.shape)
    np.testing.assert_array_equal(q_dense(a), q_temp(a))
    np.testing.assert_array_equal(q_dense(b), q_temp(b))


def test_zero_channel_weight_handled():
    """A dead output channel must not produce a zero scale."""
    fp = Linear(4, 2)
    fp.weight.data = np.array([[1.0, -2.0, 0.5, 0.0], [0.0, 0.0, 0.0, 0.0]])
    q = QLinear.from_float(fp, per_channel=True)
    assert np.all(np.asarray(q.weight_scale) > 0)
    out = q(np.ones((1, 4)))
    assert np.isfinite(out).all()


def test_quantize_model_per_channel_flag(rng):
    from repro.models import UNet

    model = UNet(
        in_channels=2, base_channels=8, channel_mults=(1,),
        attention_levels=(0,), block_type="attention",
        rng=np.random.default_rng(1),
    )
    qmodel = quantize_model(model, per_channel_weights=True)
    layers = [q for _, q in iter_qlayers(qmodel) if isinstance(q, (QLinear, QConv2d))]
    assert layers
    assert all(layer.per_channel for layer in layers)
    out = qmodel(rng.normal(size=(1, 2, 8, 8)), np.array([3.0]))
    assert out.shape == (1, 2, 8, 8)
